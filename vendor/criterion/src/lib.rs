//! Offline stand-in for the subset of the `criterion` benchmarking API this
//! workspace uses. The build environment has no access to crates.io, so
//! `cargo bench` runs against this shim: each benchmark's closure is timed
//! with `std::time::Instant` over a fixed iteration budget and the mean
//! wall-clock time is printed. No statistics, no HTML reports, no
//! regression tracking — just enough to keep `cargo bench` compiling and
//! producing useful relative numbers.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Iterations measured per benchmark (after one warm-up pass).
const DEFAULT_SAMPLES: usize = 20;

/// Top-level benchmark driver.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            samples: DEFAULT_SAMPLES,
        }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.samples, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            samples: self.samples,
            _parent: self,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id: BenchmarkId = id.into();
        run_one(&format!("{}/{}", self.name, id.0), self.samples, f);
        self
    }

    /// Runs one benchmark parameterized by an input value.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &T),
    {
        let id: BenchmarkId = id.into();
        run_one(&format!("{}/{}", self.name, id.0), self.samples, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: &str, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// Identifier carrying only the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` over the configured iteration budget.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up pass (not measured).
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.total = start.elapsed();
        self.iters = self.samples as u64;
    }
}

fn run_one<F>(name: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples,
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if b.iters > 0 {
        let mean = b.total / b.iters as u32;
        println!("bench: {name:<60} {mean:>12.3?}/iter  ({} iters)", b.iters);
    } else {
        println!("bench: {name:<60} (no measurement)");
    }
}

/// Collects benchmark functions under a group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn group_with_input_and_sample_size() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut seen = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(42), &10u64, |b, &x| {
            b.iter(|| {
                seen = x;
            })
        });
        group.finish();
        assert_eq!(seen, 10);
    }
}
