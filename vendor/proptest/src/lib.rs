//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses. The build environment has no access to crates.io, so this crate
//! provides the same surface — the [`proptest!`] macro, [`Strategy`]
//! combinators, `prop::collection::vec`, `any`, `prop_oneof!` and the
//! `prop_assert*` family — implemented as plain randomized testing.
//!
//! **Deliberate simplification:** there is no shrinking. A failing case
//! panics with the case number; re-running reproduces it exactly because
//! generation is seeded deterministically per test.

#![forbid(unsafe_code)]

pub use crate::strategy::Strategy;

/// Deterministic RNG and run configuration.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Number of random cases to run per property.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// How many random cases each property executes.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// The RNG handed to strategies (and to `prop_perturb` callbacks).
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Fixed-seed RNG so every `cargo test` run generates the same
        /// cases.
        pub fn deterministic() -> Self {
            TestRng(StdRng::seed_from_u64(0x5EED_CAFE_F00D_0001))
        }

        /// An independent RNG stream split off this one.
        pub fn fork(&mut self) -> Self {
            TestRng(StdRng::seed_from_u64(self.0.next_u64()))
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// Next 32 random bits.
        pub fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
    }

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Value-generation strategies and combinators.
pub mod strategy {
    use core::ops::{Range, RangeInclusive};

    use rand::SampleUniform;

    use crate::test_runner::TestRng;

    /// A recipe for generating random values of an output type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Builds a dependent strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Maps generated values through `f` with an extra RNG argument.
        fn prop_perturb<O, F>(self, f: F) -> Perturb<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value, TestRng) -> O,
        {
            Perturb { inner: self, f }
        }

        /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always generates a clone of the held value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_perturb`].
    pub struct Perturb<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Perturb<S, F>
    where
        S: Strategy,
        F: Fn(S::Value, TestRng) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            let v = self.inner.generate(rng);
            (self.f)(v, rng.fork())
        }
    }

    /// Uniform choice between boxed strategies (the [`crate::prop_oneof!`]
    /// backend).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        /// A uniform union over the given alternatives (non-empty).
        pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
            assert!(
                !alternatives.is_empty(),
                "prop_oneof! needs at least one arm"
            );
            Union(alternatives)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let k = (rng.next_u64() % self.0.len() as u64) as usize;
            self.0[k].generate(rng)
        }
    }

    impl<T: SampleUniform + 'static> Strategy for Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::sample_half_open(self.start, self.end, rng)
        }
    }

    impl<T: SampleUniform + 'static> Strategy for RangeInclusive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::sample_inclusive(*self.start(), *self.end(), rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F2);
}

/// `any::<T>()` support for primitive types.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy type.
        type Strategy: Strategy<Value = Self>;
        /// The canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    /// Strategy generating uniform primitive values.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyPrimitive<T>(core::marker::PhantomData<T>);

    macro_rules! impl_arbitrary {
        ($t:ty, $rng:ident => $draw:expr) => {
            impl Strategy for AnyPrimitive<$t> {
                type Value = $t;
                fn generate(&self, $rng: &mut TestRng) -> $t {
                    $draw
                }
            }
            impl Arbitrary for $t {
                type Strategy = AnyPrimitive<$t>;
                fn arbitrary() -> Self::Strategy {
                    AnyPrimitive(core::marker::PhantomData)
                }
            }
        };
    }

    impl_arbitrary!(bool, rng => rng.next_u64() & 1 == 1);
    impl_arbitrary!(u32, rng => rng.next_u32());
    impl_arbitrary!(u64, rng => rng.next_u64());
    impl_arbitrary!(usize, rng => rng.next_u64() as usize);
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use core::ops::{Range, RangeInclusive};

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy generating `Vec`s of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Defines `#[test]` functions that run their body over many generated
/// inputs. No shrinking: failures report the case index.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_funcs!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_funcs!(
            $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_funcs {
    ($cfg:expr;
     $(#[$attr:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic();
            for __case in 0..__config.cases {
                $(
                    let __strategy = $strat;
                    let $pat =
                        $crate::strategy::Strategy::generate(&__strategy, &mut __rng);
                )+
                let __outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__msg) = __outcome {
                    panic!("proptest case {} of {}: {}", __case, __config.cases, __msg);
                }
            }
        }
        $crate::__proptest_funcs!($cfg; $($rest)*);
    };
    ($cfg:expr;) => {};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts inside a [`proptest!`] body (fails the current case).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(format!(
                "assert_eq failed: {:?} != {:?}", __l, __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    }};
}

/// Skips the current case when its generated inputs are uninteresting.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(a in 3i32..=9, b in 0u64..10) {
            prop_assert!((3..=9).contains(&a));
            prop_assert!(b < 10);
        }

        #[test]
        fn vec_sizes_respect_range(v in prop::collection::vec(0u32..5, 2..=4)) {
            prop_assert!(v.len() >= 2 && v.len() <= 4);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn tuples_and_maps_compose((x, y) in (1i32..=3, (0i32..2).prop_map(|v| v * 10))) {
            prop_assert!((1..=3).contains(&x));
            prop_assert!(y == 0 || y == 10);
        }

        #[test]
        fn flat_map_feeds_dependent_strategy(v in (1usize..=4).prop_flat_map(|n| prop::collection::vec(Just(7u8), n..=n))) {
            prop_assert!(!v.is_empty() && v.len() <= 4);
            prop_assert!(v.iter().all(|&x| x == 7));
        }

        #[test]
        fn oneof_picks_only_listed_arms(x in prop_oneof![Just(1u8), Just(2u8), Just(3u8)]) {
            prop_assert!((1..=3).contains(&x));
        }

        #[test]
        fn assume_skips_cases(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn perturb_receives_forked_rng(n in Just(5u64).prop_perturb(|n, mut rng| n + (rng.next_u64() % 3))) {
            prop_assert!((5..=7).contains(&n));
        }
    }

    #[test]
    fn any_bool_generates_both_values() {
        let mut rng = crate::test_runner::TestRng::deterministic();
        let strat = any::<bool>();
        let draws: Vec<bool> = (0..64).map(|_| strat.generate(&mut rng)).collect();
        assert!(draws.iter().any(|&b| b));
        assert!(draws.iter().any(|&b| !b));
    }
}
