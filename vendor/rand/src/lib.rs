//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses. The build environment has no access to crates.io, so the few
//! primitives needed — a seedable `StdRng`, `Rng::gen_range`, and a uniform
//! `f64` distribution — are implemented here on top of xoshiro256++.
//!
//! Only determinism and reasonable uniformity are promised; the streams do
//! NOT match the real `rand` crate bit-for-bit. All experiment seeds in this
//! repository were produced against this implementation.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// Low-level source of randomness (object-safe).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that can be uniformly sampled from a range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

/// Converts 64 random bits into a `f64` in `[0, 1)` (53-bit precision).
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo < hi, "empty range in gen_range: {lo}..{hi}");
        lo + unit_f64(rng) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo <= hi, "empty range in gen_range: {lo}..={hi}");
        // Close enough to inclusive for continuous draws.
        lo + unit_f64(rng) * (hi - lo)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = sample_below(span, rng);
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = sample_below(span, rng);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Debiased uniform draw from `[0, span)` (`span >= 1`).
fn sample_below<R: RngCore + ?Sized>(span: u128, rng: &mut R) -> u128 {
    debug_assert!(span >= 1);
    if span == 1 {
        return 0;
    }
    // Rejection sampling on 64-bit words (span always fits: ranges in this
    // workspace are tiny).
    let span64 = span as u64;
    let zone = u64::MAX - (u64::MAX % span64) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return (v % span64) as u128;
        }
    }
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// High-level convenience methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// A uniformly random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed (SplitMix64 key expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ with SplitMix64 seeding.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Distributions sampled through an RNG.
pub mod distributions {
    use super::{RngCore, SampleUniform};

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over an interval.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Uniform<T> {
        lo: T,
        hi: T,
        inclusive: bool,
    }

    impl<T: SampleUniform> Uniform<T> {
        /// Uniform over `[lo, hi)`.
        pub fn new(lo: T, hi: T) -> Self {
            Uniform {
                lo,
                hi,
                inclusive: false,
            }
        }

        /// Uniform over `[lo, hi]`.
        pub fn new_inclusive(lo: T, hi: T) -> Self {
            Uniform {
                lo,
                hi,
                inclusive: true,
            }
        }
    }

    impl<T: SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            if self.inclusive {
                T::sample_inclusive(self.lo, self.hi, rng)
            } else {
                T::sample_half_open(self.lo, self.hi, rng)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f: f64 = rng.gen_range(2.0..5.0);
            assert!((2.0..5.0).contains(&f));
            let i: i32 = rng.gen_range(-4..=4);
            assert!((-4..=4).contains(&i));
            let u: usize = rng.gen_range(0..7);
            assert!(u < 7);
        }
    }

    #[test]
    fn f64_draws_look_uniform() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "biased mean {mean}");
    }

    #[test]
    fn integer_draws_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
