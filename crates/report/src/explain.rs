//! Schedule-explain report: *why* a schedule has the makespan it has.
//!
//! Built from a [`dls_sim::Trace`]: renders the per-worker ASCII Gantt
//! (via [`dls_sim::gantt`]), attributes **every** idle interval of every
//! worker to a cause, and summarizes per-worker utilization and
//! master-port occupancy share. The attribution invariant — checked by
//! `debug_assert` here and by tests — is that each worker's attributed
//! idle time sums to `makespan − busy` exactly (the intervals *are* the
//! complement of the busy intervals, so the sums agree to rounding).

use dls_platform::WorkerId;
use dls_sim::gantt::{self, GanttConfig};
use dls_sim::Trace;

/// Why a worker sat idle over one interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdleCause {
    /// The worker was ready for a transfer, but the master's one-port was
    /// busy serving another worker.
    MasterPort,
    /// Nothing occupied the master port, yet the worker's next activity
    /// had not started — its input was still upstream (predecessor hop in
    /// a store-and-forward chain, or an earlier phase of its own timeline).
    PredecessorHop,
    /// After the worker's last activity (its result was returned), it
    /// drains until the whole schedule completes.
    PostReturnDrain,
}

impl IdleCause {
    /// Stable human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            IdleCause::MasterPort => "waiting-for-master-port",
            IdleCause::PredecessorHop => "waiting-for-predecessor-hop",
            IdleCause::PostReturnDrain => "post-return drain",
        }
    }
}

/// One attributed idle interval of one worker.
#[derive(Debug, Clone, PartialEq)]
pub struct IdleInterval {
    /// The idle worker.
    pub worker: WorkerId,
    /// Interval start (seconds).
    pub start: f64,
    /// Interval end (seconds).
    pub end: f64,
    /// Attributed cause.
    pub cause: IdleCause,
}

impl IdleInterval {
    /// Interval length.
    pub fn len(&self) -> f64 {
        self.end - self.start
    }

    /// `true` for zero-length intervals.
    pub fn is_empty(&self) -> bool {
        self.len() <= 0.0
    }
}

/// Per-worker explanation row.
#[derive(Debug, Clone)]
pub struct WorkerExplain {
    /// The worker.
    pub worker: WorkerId,
    /// Total busy time (recv + compute + return).
    pub busy: f64,
    /// `busy / makespan`.
    pub utilization: f64,
    /// This worker's share of the master port's total busy time
    /// (its communication time / master busy; 0 when the port is never
    /// used).
    pub port_share: f64,
    /// Every idle interval, attributed, in chronological order.
    pub idle: Vec<IdleInterval>,
}

impl WorkerExplain {
    /// Total attributed idle time.
    pub fn idle_total(&self) -> f64 {
        // fold, not sum: the empty f64 sum is -0.0, which renders as
        // "-0.0000" in the report tables.
        self.idle
            .iter()
            .map(IdleInterval::len)
            .fold(0.0, |a, b| a + b)
    }

    /// Total idle time attributed to `cause`.
    pub fn idle_for(&self, cause: IdleCause) -> f64 {
        self.idle
            .iter()
            .filter(|i| i.cause == cause)
            .map(IdleInterval::len)
            .fold(0.0, |a, b| a + b)
    }
}

/// The full schedule-explain report.
#[derive(Debug, Clone)]
pub struct ExplainReport {
    /// Whole-schedule makespan.
    pub makespan: f64,
    /// Total master-port busy time.
    pub master_busy: f64,
    /// `master_busy / makespan`.
    pub master_utilization: f64,
    /// One row per traced worker, in first-appearance order.
    pub workers: Vec<WorkerExplain>,
    gantt: String,
}

/// Merges a worker's spans into disjoint busy intervals (tolerating
/// touching or overlapping spans).
fn busy_intervals(trace: &Trace, worker: WorkerId) -> Vec<(f64, f64)> {
    let mut spans: Vec<(f64, f64)> = trace
        .spans_for(worker)
        .filter(|s| !s.is_empty())
        .map(|s| (s.start, s.end))
        .collect();
    spans.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
    let mut merged: Vec<(f64, f64)> = Vec::new();
    for (start, end) in spans {
        match merged.last_mut() {
            Some((_, last_end)) if start <= *last_end => *last_end = last_end.max(end),
            _ => merged.push((start, end)),
        }
    }
    merged
}

/// `true` when any *other* worker occupies the master port somewhere
/// strictly inside `(a, b)`.
fn port_contended(trace: &Trace, worker: WorkerId, a: f64, b: f64) -> bool {
    trace
        .spans()
        .iter()
        .any(|s| s.worker != worker && s.kind.uses_master_port() && s.start < b && s.end > a)
}

/// Builds the explain report from a trace.
///
/// Idle attribution: for each worker the complement of its merged busy
/// intervals over `[0, makespan]` is enumerated; a gap after the worker's
/// last span is a [`IdleCause::PostReturnDrain`], a gap during which some
/// other worker holds the master port is [`IdleCause::MasterPort`], and
/// the rest are [`IdleCause::PredecessorHop`] (the port was free — the
/// worker's input simply had not reached it yet).
pub fn explain(trace: &Trace) -> ExplainReport {
    let makespan = trace.makespan();
    let master_busy = trace.master_busy();
    let mut workers = Vec::new();
    for worker in trace.workers() {
        let busy_iv = busy_intervals(trace, worker);
        let busy: f64 = busy_iv.iter().map(|(s, e)| e - s).sum();
        let comm: f64 = trace
            .spans_for(worker)
            .filter(|s| s.kind.uses_master_port())
            .map(|s| s.end - s.start)
            .sum();
        let last_end = busy_iv.last().map(|&(_, e)| e).unwrap_or(0.0);

        let mut idle = Vec::new();
        let mut cursor = 0.0;
        let push_gap = |a: f64, b: f64, idle: &mut Vec<IdleInterval>| {
            if b <= a {
                return;
            }
            let cause = if a >= last_end {
                IdleCause::PostReturnDrain
            } else if port_contended(trace, worker, a, b) {
                IdleCause::MasterPort
            } else {
                IdleCause::PredecessorHop
            };
            idle.push(IdleInterval {
                worker,
                start: a,
                end: b,
                cause,
            });
        };
        for &(start, end) in &busy_iv {
            push_gap(cursor, start, &mut idle);
            cursor = cursor.max(end);
        }
        push_gap(cursor, makespan, &mut idle);

        let idle_total: f64 = idle.iter().map(IdleInterval::len).sum();
        debug_assert!(
            (idle_total - (makespan - busy)).abs() <= 1e-9 * makespan.max(1.0),
            "idle attribution must cover makespan - busy exactly \
             (got {idle_total}, want {})",
            makespan - busy
        );

        workers.push(WorkerExplain {
            worker,
            busy,
            utilization: if makespan > 0.0 { busy / makespan } else { 0.0 },
            port_share: if master_busy > 0.0 {
                comm / master_busy
            } else {
                0.0
            },
            idle,
        });
    }
    ExplainReport {
        makespan,
        master_busy,
        master_utilization: trace.master_utilization(),
        workers,
        gantt: gantt::render(trace, &GanttConfig::default()),
    }
}

impl ExplainReport {
    /// Renders the full report: Gantt, per-worker summary table, and the
    /// chronological idle-attribution list.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "schedule explain — makespan {:.4} s, master port busy {:.4} s ({:.1}% occupied)\n\n",
            self.makespan,
            self.master_busy,
            100.0 * self.master_utilization
        ));
        out.push_str(&self.gantt);
        out.push('\n');
        out.push_str(&format!(
            "{:>8} {:>10} {:>7} {:>7} {:>10} {:>11} {:>10} {:>10}\n",
            "worker", "busy_s", "util%", "port%", "idle_s", "port-wait", "pred-hop", "drain"
        ));
        for w in &self.workers {
            out.push_str(&format!(
                "{:>8} {:>10.4} {:>6.1}% {:>6.1}% {:>10.4} {:>11.4} {:>10.4} {:>10.4}\n",
                format!("{}", w.worker),
                w.busy,
                100.0 * w.utilization,
                100.0 * w.port_share,
                w.idle_total(),
                w.idle_for(IdleCause::MasterPort),
                w.idle_for(IdleCause::PredecessorHop),
                w.idle_for(IdleCause::PostReturnDrain),
            ));
        }
        let attributed: Vec<&IdleInterval> = self
            .workers
            .iter()
            .flat_map(|w| w.idle.iter())
            .filter(|i| !i.is_empty())
            .collect();
        if !attributed.is_empty() {
            out.push_str("\nidle attribution:\n");
            for i in attributed {
                out.push_str(&format!(
                    "  {}: {:.4}–{:.4} s ({:.4} s) {}\n",
                    i.worker,
                    i.start,
                    i.end,
                    i.len(),
                    i.cause.label()
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls_sim::{Span, SpanKind};

    fn sample() -> Trace {
        // P1: recv 0-1, compute 1-3, return 3.5-4  (gap 3-3.5 port free)
        // P2: recv 1-2, compute 2-2.5, return 4-4.25 (gap 2.5-4: 3.5-4 is
        //     P1's return = port contention; 2.5-3.5 port free)
        let mut t = Trace::new();
        for (w, kind, start, end) in [
            (0, SpanKind::Recv, 0.0, 1.0),
            (0, SpanKind::Compute, 1.0, 3.0),
            (0, SpanKind::Return, 3.5, 4.0),
            (1, SpanKind::Recv, 1.0, 2.0),
            (1, SpanKind::Compute, 2.0, 2.5),
            (1, SpanKind::Return, 4.0, 4.25),
        ] {
            t.push(Span {
                worker: WorkerId(w),
                kind,
                start,
                end,
            });
        }
        t
    }

    #[test]
    fn idle_attribution_sums_to_makespan_minus_busy() {
        let t = sample();
        let rep = explain(&t);
        for w in &rep.workers {
            let expect = rep.makespan - w.busy;
            assert!(
                (w.idle_total() - expect).abs() < 1e-9,
                "{}: idle {} vs makespan-busy {}",
                w.worker,
                w.idle_total(),
                expect
            );
        }
    }

    #[test]
    fn causes_are_assigned_sensibly() {
        let t = sample();
        let rep = explain(&t);
        let w0 = &rep.workers[0];
        // P1's only idle: 3.0-3.5 before its return; the port is free
        // (nobody else communicates in that window), so it's a
        // predecessor/input wait, then 4.0-4.25 is post-return drain
        // (P2's return happens after P1 finished).
        assert!(w0.idle_for(IdleCause::PostReturnDrain) > 0.0);
        let w1 = &rep.workers[1];
        // P2 waits 1.0-... no: P2 idle 0-1 while P1 holds the port (recv).
        assert!(
            w1.idle_for(IdleCause::MasterPort) > 0.0,
            "P2 must attribute port contention: {:?}",
            w1.idle
        );
    }

    #[test]
    fn port_shares_sum_to_one_when_port_used() {
        let t = sample();
        let rep = explain(&t);
        let total: f64 = rep.workers.iter().map(|w| w.port_share).sum();
        assert!((total - 1.0).abs() < 1e-9, "shares sum to {total}");
    }

    #[test]
    fn render_contains_gantt_and_attribution() {
        let rep = explain(&sample());
        let s = rep.render();
        assert!(s.contains("schedule explain"));
        assert!(s.contains("master"));
        assert!(s.contains("legend"));
        assert!(s.contains("idle attribution:"));
        assert!(s.contains("waiting-for-master-port"));
        assert!(s.contains("post-return drain"));
    }

    #[test]
    fn cross_checks_against_to_obs_gauges() {
        let t = sample();
        let rep = explain(&t);
        dls_sim::trace::to_obs(&t);
        let snap = dls_obs::snapshot();
        let makespan = snap.gauge("sim.makespan.seconds").expect("gauge set");
        let util = snap.gauge("sim.master_utilization").expect("gauge set");
        assert!((makespan - rep.makespan).abs() < 1e-12);
        assert!((util - rep.master_utilization).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_explained_without_panicking() {
        let rep = explain(&Trace::new());
        assert!(rep.makespan.abs() < 1e-12);
        assert!(rep.workers.is_empty());
        assert!(rep.render().contains("empty trace"));
    }
}
