//! File output helpers: CSV/DAT series files for external plotting.
//!
//! Every figure harness writes a gnuplot-friendly `.dat` file next to its
//! stdout table so the paper's plots can be regenerated with any plotting
//! tool. Writers are buffered per the I/O guidance in the project's
//! performance references.

use std::fs::{self, File};
use std::io::{BufWriter, Write};
use std::path::Path;

/// A named series of `(x, y)` points sharing an x-axis.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label (also the column header).
    pub name: String,
    /// y values, aligned with the shared x vector.
    pub ys: Vec<f64>,
}

impl Series {
    /// New series.
    pub fn new(name: impl Into<String>, ys: Vec<f64>) -> Self {
        Series {
            name: name.into(),
            ys,
        }
    }
}

/// Writes a whitespace-separated `.dat` file: first column x, one column
/// per series, with a `#`-prefixed header line.
///
/// # Panics
/// Panics when series lengths disagree with `xs` (harness bug).
pub fn write_dat(path: &Path, x_label: &str, xs: &[f64], series: &[Series]) -> std::io::Result<()> {
    for s in series {
        assert_eq!(
            s.ys.len(),
            xs.len(),
            "series '{}' has {} points for {} x values",
            s.name,
            s.ys.len(),
            xs.len()
        );
    }
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let mut w = BufWriter::new(File::create(path)?);
    write!(w, "# {x_label}")?;
    for s in series {
        write!(w, "\t{}", s.name.replace(char::is_whitespace, "_"))?;
    }
    writeln!(w)?;
    for (i, x) in xs.iter().enumerate() {
        write!(w, "{x}")?;
        for s in series {
            write!(w, "\t{:.9}", s.ys[i])?;
        }
        writeln!(w)?;
    }
    w.flush()
}

/// Writes arbitrary text to `path`, creating parent directories.
pub fn write_text(path: &Path, content: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(content.as_bytes())?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("dls_report_test_{name}_{}", std::process::id()))
    }

    #[test]
    fn dat_roundtrip() {
        let path = tmp("dat").join("series.dat");
        write_dat(
            &path,
            "size",
            &[1.0, 2.0],
            &[
                Series::new("a b", vec![0.5, 0.6]),
                Series::new("c", vec![1.5, 1.6]),
            ],
        )
        .unwrap();
        let content = fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines[0], "# size\ta_b\tc");
        assert!(lines[1].starts_with("1\t0.5"));
        assert_eq!(lines.len(), 3);
        fs::remove_dir_all(tmp("dat")).ok();
    }

    #[test]
    #[should_panic(expected = "points for")]
    fn mismatched_series_panics() {
        let path = tmp("bad").join("x.dat");
        let _ = write_dat(&path, "x", &[1.0], &[Series::new("s", vec![])]);
    }

    #[test]
    fn write_text_creates_dirs() {
        let path = tmp("txt").join("deep").join("note.txt");
        write_text(&path, "hello").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "hello");
        fs::remove_dir_all(tmp("txt")).ok();
    }
}
