//! Minimal scoped-thread parallel map for embarrassingly parallel sweeps.
//!
//! The figure harnesses evaluate 50 random platforms × several heuristics
//! per matrix size; each evaluation is an independent LP solve plus a
//! simulation, so a static block partition over `std::thread::scope` is all
//! the parallelism the workload needs (no rayon dependency; see
//! `DESIGN.md` §7).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every element of `items` in parallel, preserving order.
///
/// Work is distributed dynamically via an atomic cursor so uneven item
/// costs (LPs of different sizes) balance across threads. Runs inline when
/// `items` is small or only one CPU is available.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let n = items.len();
    let threads = available_threads().min(n.max(1));
    if threads <= 1 || n < 2 {
        return items.iter().map(&f).collect();
    }

    let mut results: Vec<Option<U>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    let cursor = AtomicUsize::new(0);
    let slots = std::sync::Mutex::new(&mut results);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                // Each worker claims indices off the shared cursor and
                // buffers its outputs locally to keep the mutex cold.
                let mut local: Vec<(usize, U)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, f(&items[i])));
                }
                let mut guard = slots.lock().expect("no poisoned threads");
                for (i, v) in local {
                    guard[i] = Some(v);
                }
            });
        }
    });

    results
        .into_iter()
        .map(|v| v.expect("every index was claimed"))
        .collect()
}

fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_on_empty_and_singleton() {
        let out: Vec<u64> = par_map(&[], |&x: &u64| x);
        assert!(out.is_empty());
        assert_eq!(par_map(&[7], |&x: &i32| x + 1), vec![8]);
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items with wildly different costs still produce correct results.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, |&x| {
            let mut acc = 0u64;
            for i in 0..(x % 7) * 10_000 {
                acc = acc.wrapping_add(i);
            }
            (x, acc).0
        });
        assert_eq!(out, items);
    }

    #[test]
    fn closures_can_capture() {
        let offset = 100;
        let out = par_map(&[1, 2, 3], |&x: &i32| x + offset);
        assert_eq!(out, vec![101, 102, 103]);
    }
}
