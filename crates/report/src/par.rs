//! Minimal scoped-thread parallel map for embarrassingly parallel sweeps.
//!
//! The figure harnesses evaluate 50 random platforms × several heuristics
//! per matrix size; each evaluation is an independent LP solve plus a
//! simulation, so a static block partition over `std::thread::scope` is all
//! the parallelism the workload needs (no rayon dependency; see
//! `DESIGN.md` §7).

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every element of `items` in parallel, preserving order.
///
/// Work is distributed dynamically via an atomic cursor so uneven item
/// costs (LPs of different sizes) balance across threads. Runs inline when
/// `items` is small or only one CPU is available.
///
/// # Panics
/// If `f` panics on some item, the *rest of the batch still completes*:
/// the panic is caught, the remaining items are processed, and the first
/// failing item's panic is then re-raised with its index and message (so a
/// single bad platform in a 450-instance sweep is diagnosable instead of
/// aborting the scope with an opaque joined-thread panic and losing all
/// completed work).
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let n = items.len();
    let threads = available_threads().min(n.max(1));
    dls_obs::histogram!("par_map.batch_items").record(n as f64);
    dls_obs::gauge!("par_map.threads").set(threads as f64);
    // Capture the caller's trace context before spawning: worker threads
    // attach it so per-item spans (and the solve trees under them) nest
    // under the span that submitted the batch, not as orphan roots.
    let ctx = dls_obs::current_context();
    let run = |i: usize| -> Result<U, String> {
        let _item_span = dls_obs::trace_span!("par_map.item.seconds", "index" => i);
        catch_unwind(AssertUnwindSafe(|| f(&items[i]))).map_err(|payload| {
            if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            }
        })
    };

    let mut results: Vec<Option<Result<U, String>>> = Vec::with_capacity(n);
    if threads <= 1 || n < 2 {
        for i in 0..n {
            results.push(Some(run(i)));
        }
    } else {
        results.resize_with(n, || None);
        let cursor = AtomicUsize::new(0);
        let slots = std::sync::Mutex::new(&mut results);

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    // Adopt the submitting thread's span as parent for the
                    // lifetime of this worker (explicit TraceContext handoff).
                    let _ctx_guard = ctx.map(dls_obs::TraceContext::attach);
                    // Each worker claims indices off the shared cursor and
                    // buffers its outputs locally to keep the mutex cold.
                    let mut local: Vec<(usize, Result<U, String>)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, run(i)));
                    }
                    // Items this worker claimed off the cursor: the spread
                    // across workers is the occupancy/balance signal.
                    dls_obs::histogram!("par_map.worker_items").record(local.len() as f64);
                    let mut guard = slots.lock().expect("no poisoned threads");
                    for (i, v) in local {
                        guard[i] = Some(v);
                    }
                });
            }
        });
    }

    let completed = results.iter().filter(|r| matches!(r, Some(Ok(_)))).count();
    let mut out = Vec::with_capacity(n);
    for (i, slot) in results.into_iter().enumerate() {
        match slot.expect("every index was claimed") {
            Ok(v) => out.push(v),
            Err(msg) => resume_unwind(Box::new(format!(
                "par_map: item {i} of {n} panicked ({completed} items completed): {msg}"
            ))),
        }
    }
    out
}

fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_on_empty_and_singleton() {
        let out: Vec<u64> = par_map(&[], |&x: &u64| x);
        assert!(out.is_empty());
        assert_eq!(par_map(&[7], |&x: &i32| x + 1), vec![8]);
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items with wildly different costs still produce correct results.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, |&x| {
            let mut acc = 0u64;
            for i in 0..(x % 7) * 10_000 {
                acc = acc.wrapping_add(i);
            }
            (x, acc).0
        });
        assert_eq!(out, items);
    }

    #[test]
    fn closures_can_capture() {
        let offset = 100;
        let out = par_map(&[1, 2, 3], |&x: &i32| x + offset);
        assert_eq!(out, vec![101, 102, 103]);
    }

    #[test]
    fn panicking_item_is_reported_with_its_index() {
        let items: Vec<u64> = (0..64).collect();
        let err = catch_unwind(AssertUnwindSafe(|| {
            par_map(&items, |&x| {
                if x == 13 {
                    panic!("platform 13 is cursed");
                }
                x
            })
        }))
        .unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .expect("formatted panic message")
            .clone();
        assert!(msg.contains("item 13 of 64"), "message was: {msg}");
        assert!(msg.contains("platform 13 is cursed"), "message was: {msg}");
        assert!(msg.contains("63 items completed"), "message was: {msg}");
    }

    #[test]
    fn inline_path_also_reports_index() {
        // n < 2 forces the inline path; a singleton panic still carries its
        // index and message.
        let err = catch_unwind(AssertUnwindSafe(|| {
            par_map(&[1u64], |_| -> u64 { panic!("bad singleton") })
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap().clone();
        assert!(msg.contains("item 0 of 1"), "message was: {msg}");
        assert!(msg.contains("bad singleton"), "message was: {msg}");
    }

    #[test]
    fn item_spans_nest_under_the_callers_span() {
        dls_obs::set_mode(Some(dls_obs::Mode::Summary));
        {
            let _batch = dls_obs::trace_span!("par.test.batch.seconds");
            let items: Vec<u64> = (0..16).collect();
            let out = par_map(&items, |&x| x + 1);
            assert_eq!(out.len(), 16);
        }
        let events = dls_obs::trace_events();
        let batch = events
            .iter()
            .find(|e| e.name == "par.test.batch.seconds")
            .expect("batch span recorded");
        let nested = events
            .iter()
            .filter(|e| e.name == "par_map.item.seconds" && e.parent_id == Some(batch.span_id))
            .count();
        assert_eq!(nested, 16, "every item span is a child of the batch span");
    }

    #[test]
    fn earliest_failing_index_wins() {
        // Multiple failures: the re-raised panic names the smallest index
        // (deterministic regardless of thread interleaving).
        let items: Vec<u64> = (0..32).collect();
        let err = catch_unwind(AssertUnwindSafe(|| {
            par_map(&items, |&x| {
                if x % 10 == 7 {
                    panic!("bad {x}");
                }
                x
            })
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap().clone();
        assert!(msg.contains("item 7 of 32"), "message was: {msg}");
    }
}
