//! Ordinary least-squares linear regression.
//!
//! Used by the Figure 8 reproduction: the paper fits transfer time against
//! message size to check that the linear cost model holds and "no latency
//! needs to be taken into account" — i.e. slope ≈ 1/bandwidth and intercept
//! ≈ 0, with R² ≈ 1.

/// Result of fitting `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]` (1 = perfect linear fit).
    pub r_squared: f64,
}

/// Least-squares fit; `None` when fewer than two distinct x values exist.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Option<LinearFit> {
    assert_eq!(xs.len(), ys.len(), "mismatched sample lengths");
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let xm = xs.iter().sum::<f64>() / n as f64;
    let ym = ys.iter().sum::<f64>() / n as f64;
    let sxx: f64 = xs.iter().map(|x| (x - xm).powi(2)).sum();
    if sxx <= f64::EPSILON {
        return None;
    }
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - xm) * (y - ym)).sum();
    let slope = sxy / sxx;
    let intercept = ym - slope * xm;

    let ss_tot: f64 = ys.iter().map(|y| (y - ym).powi(2)).sum();
    let ss_res: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| (y - (slope * x + intercept)).powi(2))
        .sum();
    let r_squared = if ss_tot <= f64::EPSILON {
        1.0
    } else {
        (1.0 - ss_res / ss_tot).clamp(0.0, 1.0)
    };
    Some(LinearFit {
        slope,
        intercept,
        r_squared,
    })
}

#[cfg(test)]
// Unit tests assert exact outcomes of exact arithmetic.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn perfect_line_recovered() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys: Vec<f64> = xs.iter().map(|x| 2.5 * x + 1.0).collect();
        let f = linear_fit(&xs, &ys).unwrap();
        assert!((f.slope - 2.5).abs() < 1e-12);
        assert!((f.intercept - 1.0).abs() < 1e-12);
        assert!((f.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_good_r2() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 3.0 * x + if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let f = linear_fit(&xs, &ys).unwrap();
        assert!((f.slope - 3.0).abs() < 0.01);
        assert!(f.r_squared > 0.99);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(linear_fit(&[1.0], &[2.0]).is_none());
        assert!(linear_fit(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]).is_none());
        assert!(linear_fit(&[], &[]).is_none());
    }

    #[test]
    fn constant_y_has_r2_one() {
        let f = linear_fit(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.intercept, 5.0);
        assert_eq!(f.r_squared, 1.0);
    }

    #[test]
    #[should_panic(expected = "mismatched")]
    fn mismatched_lengths_panic() {
        let _ = linear_fit(&[1.0], &[1.0, 2.0]);
    }
}
