//! Basic descriptive statistics for experiment harnesses.

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

/// Computes summary statistics. Returns `None` on an empty sample.
pub fn summarize(xs: &[f64]) -> Option<Summary> {
    if xs.is_empty() {
        return None;
    }
    let n = xs.len();
    let mean = xs.iter().sum::<f64>() / n as f64;
    let var = if n < 2 {
        0.0
    } else {
        xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
    };
    let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    Some(Summary {
        n,
        mean,
        std_dev: var.sqrt(),
        min,
        max,
    })
}

/// Arithmetic mean (`NaN` on empty input — callers that can see empty
/// samples should use [`summarize`]).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        f64::NAN
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Geometric mean of strictly positive values (`NaN` otherwise/empty).
pub fn geometric_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return f64::NAN;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// `p`-th percentile (0..=100) by linear interpolation; `None` on empty.
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..=100.0).contains(&p) {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

#[cfg(test)]
// Unit tests assert exact outcomes of exact arithmetic.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = summarize(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.n, 8);
        assert_eq!(s.mean, 5.0);
        // Sample std dev with n-1: sqrt(32/7).
        assert!((s.std_dev - (32.0_f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(summarize(&[]).is_none());
        let s = summarize(&[3.5]).unwrap();
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.mean, 3.5);
    }

    #[test]
    fn mean_and_geometric_mean() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!(mean(&[]).is_nan());
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!(geometric_mean(&[1.0, -1.0]).is_nan());
    }

    #[test]
    fn percentiles() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 100.0), Some(4.0));
        assert_eq!(percentile(&xs, 50.0), Some(2.5));
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile(&xs, 101.0), None);
    }
}
