//! Plain-text tables for figure/table harness output, including the
//! registry-driven strategy comparison table.

use std::fmt::Write as _;

use dls_core::engine::Provenance;
use dls_platform::Platform;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple monospace table builder.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers (all right-aligned except
    /// the first).
    pub fn new(headers: &[&str]) -> Self {
        let aligns = headers
            .iter()
            .enumerate()
            .map(|(i, _)| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            aligns,
            rows: Vec::new(),
        }
    }

    /// Overrides column alignments (must match the header count).
    pub fn with_aligns(mut self, aligns: &[Align]) -> Self {
        assert_eq!(aligns.len(), self.headers.len());
        self.aligns = aligns.to_vec();
        self
    }

    /// Appends a row of already formatted cells.
    ///
    /// # Panics
    /// Panics when the cell count does not match the header count.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells for {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Appends a row of mixed display values.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with a header separator.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String], widths: &[usize], aligns: &[Align]| {
            for i in 0..cols {
                if i > 0 {
                    out.push_str("  ");
                }
                let cell = &cells[i];
                let pad = widths[i] - cell.chars().count();
                match aligns[i] {
                    Align::Left => {
                        out.push_str(cell);
                        out.push_str(&" ".repeat(pad));
                    }
                    Align::Right => {
                        out.push_str(&" ".repeat(pad));
                        out.push_str(cell);
                    }
                }
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.headers, &widths, &self.aligns);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            fmt_row(&mut out, row, &widths, &self.aligns);
        }
        out
    }

    /// Renders as CSV (no alignment, comma-separated, quoted when needed).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Formats an `f64` with `prec` decimal places (the harness' standard
/// number format).
pub fn num(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

/// Renders every strategy in [`dls_core::registry`] side by side on one
/// platform: throughput, enrolled workers, rounds, verified makespan and
/// solution provenance. Strategies that do not apply to the platform (e.g.
/// the bus closed form on a star, exhaustive search past its size guard)
/// get an explanatory `n/a` row instead of being skipped, so the table
/// always lists the full registry. Multi-round solutions (installed via
/// `dls_rounds::install`) are timed on their expanded execution platform
/// and report distinct *physical* workers in the `enrolled` column.
pub fn strategy_table(platform: &Platform) -> Table {
    let mut t = Table::new(&[
        "strategy",
        "legend",
        "rho",
        "enrolled",
        "rounds",
        "makespan",
        "provenance",
    ]);
    for s in dls_core::registry() {
        match s.solve(platform) {
            Ok(sol) => {
                let makespan = match sol.verified_timeline(platform, 1e-7) {
                    Ok(timeline) => num(timeline.makespan(), 6),
                    Err(violations) => format!("INFEASIBLE ({})", violations.len()),
                };
                let provenance = match sol.provenance {
                    Provenance::Lp {
                        iterations,
                        warm_start,
                    } => {
                        let warm = if warm_start { ", warm" } else { "" };
                        format!("lp ({iterations} pivots{warm})")
                    }
                    Provenance::ClosedForm => "closed form".into(),
                    Provenance::Search { evaluated } => {
                        format!("search ({evaluated} scenarios)")
                    }
                    Provenance::LpBound { iterations, bound } => {
                        format!("lp bound {} ({iterations} pivots)", num(bound, 6))
                    }
                };
                t.row(&[
                    s.name().to_string(),
                    s.legend().to_string(),
                    num(sol.throughput, 6),
                    format!(
                        "{}/{}",
                        sol.enrolled_workers(platform),
                        platform.num_workers()
                    ),
                    sol.rounds().to_string(),
                    makespan,
                    provenance,
                ]);
            }
            Err(e) => {
                t.row(&[
                    s.name().to_string(),
                    s.legend().to_string(),
                    "n/a".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    format!("{e}"),
                ]);
            }
        }
    }
    t
}

/// The multi-round latency/throughput trade-off table: one row per
/// installment count `R`, columns for each `multiround_*` planner's
/// predicted makespan (unit total load) and the best planner's speedup
/// over the one-round `optimal_fifo` makespan.
///
/// Resolves the parameterized ids `multiround_{uniform,geometric,lp}@R`
/// through [`dls_core::lookup`], so the caller must have installed the
/// multi-round provider (`dls_rounds::install()`); unresolvable or failing
/// ids render as `n/a` rather than aborting the table.
pub fn multiround_table(platform: &Platform, rounds: &[usize]) -> Table {
    const PLANNERS: [(&str, &str); 3] = [
        ("multiround_uniform", "MR_UNI"),
        ("multiround_geometric", "MR_GEO"),
        ("multiround_lp", "MR_LP"),
    ];
    let baseline = dls_core::lookup("optimal_fifo")
        .and_then(|s| s.solve(platform).ok())
        .map(|sol| 1.0 / sol.throughput);

    let mut headers: Vec<String> = vec!["R".into()];
    headers.extend(
        PLANNERS
            .iter()
            .map(|(_, legend)| format!("{legend} makespan")),
    );
    headers.push("best vs OPT_FIFO".into());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);

    for &r in rounds {
        let mut cells = vec![r.to_string()];
        let mut best: Option<f64> = None;
        for (id, _) in PLANNERS {
            let makespan = dls_core::lookup(&format!("{id}@{r}"))
                .and_then(|s| s.solve(platform).ok())
                .map(|sol| 1.0 / sol.throughput);
            match makespan {
                Some(m) => {
                    best = Some(best.map_or(m, |b: f64| b.min(m)));
                    cells.push(num(m, 6));
                }
                None => cells.push("n/a".into()),
            }
        }
        cells.push(match (best, baseline) {
            (Some(m), Some(b)) => format!("{}x", num(b / m, 4)),
            _ => "-".into(),
        });
        t.row(&cells);
    }
    t
}

/// The tree depth/fan-out trade-off table: one row per balanced-tree
/// fanout, columns for the resulting depth and each `tree_*` strategy's
/// collapsed-star makespan (unit horizon × the strategy's makespan ratio),
/// plus the best strategy's slowdown versus the flat-star `optimal_fifo`.
///
/// Resolves the parameterized ids `tree_{fifo,lifo}@<fanout>` through
/// [`dls_core::lookup`], so the caller must have installed the tree
/// provider (`dls_tree::install()`); unresolvable or failing ids render as
/// `n/a` rather than aborting the table.
pub fn tree_table(platform: &Platform, fanouts: &[usize]) -> Table {
    const STRATEGIES: [(&str, &str); 2] = [("tree_fifo", "TREE_FIFO"), ("tree_lifo", "TREE_LIFO")];
    let baseline = dls_core::lookup("optimal_fifo")
        .and_then(|s| s.solve(platform).ok())
        .map(|sol| 1.0 / sol.throughput);

    let mut headers: Vec<String> = vec!["fanout".into(), "depth".into()];
    headers.extend(
        STRATEGIES
            .iter()
            .map(|(_, legend)| format!("{legend} makespan")),
    );
    headers.push("best vs OPT_FIFO".into());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);

    for &k in fanouts {
        let depth = dls_platform::TreePlatform::balanced(platform, k).depth();
        let mut cells = vec![k.to_string(), depth.to_string()];
        let mut best: Option<f64> = None;
        for (id, _) in STRATEGIES {
            let makespan = dls_core::lookup(&format!("{id}@{k}"))
                .and_then(|s| s.solve(platform).ok())
                .map(|sol| 1.0 / sol.throughput);
            match makespan {
                Some(m) => {
                    best = Some(best.map_or(m, |b: f64| b.min(m)));
                    cells.push(num(m, 6));
                }
                None => cells.push("n/a".into()),
            }
        }
        cells.push(match (best, baseline) {
            (Some(m), Some(b)) => format!("{}x", num(m / b, 4)),
            _ => "-".into(),
        });
        t.row(&cells);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["alpha".into(), "1.50".into()]);
        t.row(&["b".into(), "10.25".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Right-aligned values line up at the end.
        assert!(lines[2].ends_with("1.50"));
        assert!(lines[3].ends_with("10.25"));
    }

    #[test]
    #[should_panic(expected = "cells for")]
    fn wrong_cell_count_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new(&["k", "v"]);
        t.row(&["with,comma".into(), "with\"quote".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"with,comma\""));
        assert!(csv.contains("\"with\"\"quote\""));
    }

    #[test]
    fn num_formatting() {
        assert_eq!(num(1.23456, 2), "1.23");
        assert_eq!(num(2.0, 0), "2");
    }

    #[test]
    fn row_display_and_count() {
        let mut t = Table::new(&["x", "y"]);
        t.row_display(&[&1, &2.5]);
        assert_eq!(t.num_rows(), 1);
        assert!(t.render().contains("2.5"));
    }

    #[test]
    fn strategy_table_lists_whole_registry_on_a_bus() {
        // Install the multi-round provider so the registry contents (and
        // therefore the expected row count) are deterministic regardless of
        // test execution order within this binary.
        dls_rounds::install();
        let p = Platform::bus(1.0, 0.5, &[3.0, 5.0, 4.0]).unwrap();
        let t = strategy_table(&p);
        assert_eq!(t.num_rows(), dls_core::registry().len());
        let rendered = t.render();
        // Every strategy applies on a small bus: no n/a rows.
        assert!(!rendered.contains("n/a"), "unexpected n/a:\n{rendered}");
        assert!(rendered.contains("optimal_fifo"));
        assert!(rendered.contains("closed form"));
        assert!(rendered.contains("pivots"));
        // Multi-round rows report their installed round count.
        assert!(
            rendered.contains("multiround_lp"),
            "missing multiround rows"
        );
    }

    #[test]
    fn strategy_table_reports_inapplicable_strategies() {
        // A star: the Theorem 2 bus closed form must row out as n/a rather
        // than vanish.
        dls_rounds::install();
        let p = Platform::star_with_z(&[(1.0, 2.0), (2.0, 1.0)], 0.5).unwrap();
        let t = strategy_table(&p);
        assert_eq!(t.num_rows(), dls_core::registry().len());
        let rendered = t.render();
        assert!(rendered.contains("n/a"));
        assert!(rendered.contains("bus"));
    }

    #[test]
    fn multiround_table_rows_per_round_count() {
        dls_rounds::install();
        let p = Platform::star_with_z(&[(1.0, 5.0), (2.0, 4.0), (1.5, 6.0)], 0.5).unwrap();
        let t = multiround_table(&p, &[1, 2, 4]);
        assert_eq!(t.num_rows(), 3);
        let rendered = t.render();
        assert!(rendered.contains("MR_LP"));
        assert!(rendered.contains("best vs OPT_FIFO"));
        assert!(!rendered.contains("n/a"), "planners failed:\n{rendered}");
        // R = 1 reduces to optimal_fifo: speedup exactly 1.0000x.
        let r1 = rendered.lines().nth(2).expect("R = 1 row");
        assert!(r1.trim_end().ends_with("1.0000x"), "R = 1 row: {r1}");
    }

    #[test]
    fn tree_table_rows_per_fanout_with_flat_identity() {
        dls_tree::install();
        let p = Platform::star_with_z(&[(1.0, 5.0), (2.0, 4.0), (1.5, 6.0)], 0.5).unwrap();
        let t = tree_table(&p, &[3, 2, 1]);
        assert_eq!(t.num_rows(), 3);
        let rendered = t.render();
        assert!(rendered.contains("TREE_FIFO"));
        assert!(rendered.contains("best vs OPT_FIFO"));
        assert!(!rendered.contains("n/a"), "strategies failed:\n{rendered}");
        // fanout >= p is the flat star: TREE_FIFO reproduces optimal_fifo
        // exactly (the LIFO column may beat it — LIFO is not a FIFO
        // schedule — so "best vs OPT_FIFO" can dip below 1x on depth 1).
        let opt = 1.0
            / dls_core::lookup("optimal_fifo")
                .unwrap()
                .solve(&p)
                .unwrap()
                .throughput;
        let flat = rendered.lines().nth(2).expect("fanout 3 row");
        assert!(flat.contains(&num(opt, 6)), "flat row: {flat}");
        assert!(
            flat.split_whitespace().nth(1) == Some("1"),
            "flat depth: {flat}"
        );
        // The chain row is the deepest.
        let chain = rendered.lines().nth(4).expect("fanout 1 row");
        assert!(
            chain.split_whitespace().nth(1) == Some(&p.num_workers().to_string()),
            "chain row: {chain}"
        );
    }

    #[test]
    fn tree_table_degrades_unresolvable_ids_to_na_cells() {
        // Without relying on provider state, an id that resolves but fails
        // to solve: a non-z-tied platform makes optimal_fifo (and thus the
        // collapsed solves) error, degrading cells instead of aborting.
        dls_tree::install();
        let p = Platform::new(vec![
            dls_platform::Worker::new(1.0, 2.0, 0.9),
            dls_platform::Worker::new(2.0, 1.0, 0.2),
        ])
        .unwrap();
        let t = tree_table(&p, &[2]);
        let rendered = t.render();
        let row = rendered.lines().nth(2).expect("row");
        assert_eq!(row.matches("n/a").count(), 2, "row: {row}");
        assert!(row.trim_end().ends_with('-'), "row: {row}");
    }

    #[test]
    fn multiround_table_degrades_failing_rounds_to_na_cells() {
        // A round count past the expanded-platform cap makes every planner
        // error (CoreError::TooManyRounds): the row must render n/a cells
        // and a "-" speedup instead of aborting — the same path an
        // uninstalled provider (lookup -> None) takes.
        dls_rounds::install();
        let p = Platform::star_with_z(&[(1.0, 2.0), (2.0, 1.0)], 0.5).unwrap();
        let t = multiround_table(&p, &[1, 1_000_000]);
        assert_eq!(t.num_rows(), 2);
        let rendered = t.render();
        let bad_row = rendered.lines().nth(3).expect("overflow row");
        assert_eq!(bad_row.matches("n/a").count(), 3, "row: {bad_row}");
        assert!(bad_row.trim_end().ends_with('-'), "row: {bad_row}");
        let good_row = rendered.lines().nth(2).expect("R = 1 row");
        assert!(!good_row.contains("n/a"), "row: {good_row}");
    }
}
