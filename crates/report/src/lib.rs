//! # dls-report — experiment plumbing
//!
//! Small toolkit shared by the figure harnesses and benchmarks of the
//! RR-5738 reproduction:
//!
//! * [`Table`] — aligned monospace tables (the "rows the paper reports");
//! * [`strategy_table`] — every strategy in [`dls_core::registry`]
//!   compared side by side on one platform;
//! * [`multiround_table`] — the makespan-vs-R installment trade-off table
//!   (requires the `dls-rounds` provider to be installed);
//! * [`tree_table`] — the makespan-vs-depth/fan-out trade-off table for
//!   tree platforms (requires the `dls-tree` provider to be installed);
//! * [`summarize`] / [`linear_fit`] — statistics for averaged sweeps and
//!   the Figure 8 linearity check;
//! * [`write_dat`] — gnuplot-friendly series files for regenerating plots;
//! * [`par_map`] — scoped-thread parallel map for the 50-platform sweeps;
//! * [`explain`] — schedule-explain report from a [`dls_sim::Trace`]:
//!   Gantt plus per-worker idle-cause attribution and port-occupancy
//!   shares (the figure binaries expose it behind `--explain`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explain;
mod output;
mod par;
mod regression;
mod stats;
mod table;

pub use explain::{explain, ExplainReport, IdleCause, IdleInterval, WorkerExplain};
pub use output::{write_dat, write_text, Series};
pub use par::par_map;
pub use regression::{linear_fit, LinearFit};
pub use stats::{geometric_mean, mean, percentile, summarize, Summary};
pub use table::{multiround_table, num, strategy_table, tree_table, Align, Table};
