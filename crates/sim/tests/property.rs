//! Property tests of the executor: invariants that must hold for every
//! schedule, policy, and noise level.

use dls_core::prelude::*;
use dls_core::Schedule;
use dls_platform::{Platform, WorkerId};
use dls_sim::{simulate, MasterPolicy, Noise, RealismModel, SimConfig, SpanKind};
use proptest::prelude::*;

fn cost() -> impl Strategy<Value = f64> {
    (1u32..=40).prop_map(|v| v as f64 / 4.0)
}

fn scenario() -> impl Strategy<Value = (Platform, Schedule)> {
    (2usize..=6).prop_flat_map(|n| {
        (
            prop::collection::vec((cost(), cost()), n..=n),
            prop::collection::vec(0u32..=12, n..=n),
            any::<bool>(),
        )
            .prop_map(|(cw, loads, lifo)| {
                let platform = Platform::star_with_z(&cw, 0.5).expect("valid");
                let order: Vec<WorkerId> = platform.ids().collect();
                let loads: Vec<f64> = loads.into_iter().map(|l| l as f64 / 3.0).collect();
                let schedule = if lifo {
                    Schedule::lifo(&platform, order, loads).expect("valid")
                } else {
                    Schedule::fifo(&platform, order, loads).expect("valid")
                };
                (platform, schedule)
            })
    })
}

fn configs() -> impl Strategy<Value = SimConfig> {
    (
        prop_oneof![
            Just(MasterPolicy::SendsThenReceives),
            Just(MasterPolicy::Interleaved)
        ],
        prop_oneof![
            Just(Noise::None),
            (1u32..=10).prop_map(|a| Noise::Uniform {
                amplitude: a as f64 / 100.0
            }),
            (1u32..=8).prop_map(|s| Noise::Gaussian {
                sigma: s as f64 / 100.0
            }),
        ],
        0u64..1000,
    )
        .prop_map(|(policy, noise, seed)| SimConfig {
            policy,
            realism: RealismModel {
                comm_noise: noise,
                comp_noise: noise,
                comm_latency: 0.0,
                comp_inflation: 1.0,
            },
            seed,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The master's port never carries two transfers at once, under any
    /// policy and noise.
    #[test]
    fn master_port_is_exclusive((p, s) in scenario(), cfg in configs()) {
        let rep = simulate(&p, &s, &cfg);
        let mut port: Vec<(f64, f64)> = rep
            .trace
            .spans()
            .iter()
            .filter(|sp| sp.kind.uses_master_port() && sp.len() > 0.0)
            .map(|sp| (sp.start, sp.end))
            .collect();
        port.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in port.windows(2) {
            prop_assert!(w[0].1 <= w[1].0 + 1e-9,
                "port overlap: {:?} then {:?}", w[0], w[1]);
        }
    }

    /// Per-worker causality: recv before compute before return, no
    /// negative spans, all times finite and non-negative.
    #[test]
    fn per_worker_causality((p, s) in scenario(), cfg in configs()) {
        let rep = simulate(&p, &s, &cfg);
        for id in rep.trace.workers() {
            let mut recv_end = None;
            let mut compute = None;
            let mut ret = None;
            for sp in rep.trace.spans_for(id) {
                prop_assert!(sp.start >= -1e-12 && sp.end >= sp.start);
                match sp.kind {
                    SpanKind::Recv => recv_end = Some(sp.end),
                    SpanKind::Compute => compute = Some((sp.start, sp.end)),
                    SpanKind::Return => ret = Some(sp.start),
                }
            }
            let (cs, ce) = compute.expect("every traced worker computes");
            prop_assert!(cs >= recv_end.expect("every traced worker receives") - 1e-9);
            if let Some(rs) = ret {
                prop_assert!(rs >= ce - 1e-9, "{id} returned before computing");
            }
        }
    }

    /// sigma2 is respected by both policies: non-empty returns start in
    /// return-order.
    #[test]
    fn return_order_is_respected((p, s) in scenario(), cfg in configs()) {
        let rep = simulate(&p, &s, &cfg);
        let mut last = f64::NEG_INFINITY;
        for id in s.return_order() {
            if let Some(sp) = rep
                .trace
                .spans_for(*id)
                .find(|sp| sp.kind == SpanKind::Return && sp.len() > 0.0)
            {
                prop_assert!(sp.start >= last - 1e-9, "sigma2 violated at {id}");
                last = sp.start;
            }
        }
    }

    /// Same config, same result — bit-for-bit determinism.
    #[test]
    fn simulation_is_deterministic((p, s) in scenario(), cfg in configs()) {
        let a = simulate(&p, &s, &cfg);
        let b = simulate(&p, &s, &cfg);
        prop_assert_eq!(a.trace, b.trace);
    }

    /// The simulator's claimed policy ordering (see the executor module
    /// docs): on the paper's random platform families (the gdsdmi cluster
    /// model with speed factors in `[1, 10]`, matrix sizes 40..200) and
    /// their canonical LP-optimal schedules, greedy interleaving is never
    /// worse than the paper's sends-then-receives policy on noise-free
    /// inputs — these platforms are compute-bound enough that no return
    /// both becomes ready mid-sends and profits from preemption — and it
    /// cannot beat the LP optimum either (the noise-free makespan of the
    /// optimum is the unit horizon, by Section 5's linearity). The scope
    /// matters: hand-built load vectors (executor unit test
    /// `interleaving_returns_never_helps`) and communication-bound cost
    /// regimes outside the paper's families *can* be hurt by greedy
    /// preemption, so this property quantifies over exactly the sweeps'
    /// platform distribution.
    #[test]
    fn interleaving_never_hurts_optimal_schedules_on_paper_platforms(
        n in 40usize..=200,
        seed in 0u64..1_000_000,
        family in 0u8..3,
        lifo in any::<bool>(),
    ) {
        use dls_platform::{ClusterModel, MatrixApp, PlatformSampler};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let sampler = match family {
            0 => PlatformSampler::homogeneous(),
            1 => PlatformSampler::hetero_compute_bus(),
            _ => PlatformSampler::hetero_star(),
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let p = sampler.sample(&MatrixApp::new(n), &ClusterModel::gdsdmi(), &mut rng);
        let sol = if lifo {
            optimal_lifo(&p).expect("cluster platforms are z-tied")
        } else {
            optimal_fifo(&p).expect("cluster platforms are z-tied")
        };
        let plain = simulate(&p, &sol.schedule, &SimConfig::ideal()).makespan;
        let inter = simulate(
            &p,
            &sol.schedule,
            &SimConfig {
                policy: MasterPolicy::Interleaved,
                ..SimConfig::ideal()
            },
        )
        .makespan;
        prop_assert!(
            inter <= plain + 1e-9,
            "interleaving hurt the optimal schedule: {inter} > {plain}"
        );
        // ... and cannot beat the LP optimum (horizon T = 1).
        prop_assert!(inter >= 1.0 - 1e-7, "interleaving beat the LP optimum: {inter}");
        prop_assert!((plain - 1.0).abs() < 1e-7, "optimum missed the horizon: {plain}");
    }

    /// Makespan is bounded below by the best possible (serial work of any
    /// single participant) and above by total serialization of everything.
    #[test]
    fn makespan_bounds((p, s) in scenario()) {
        let rep = simulate(&p, &s, &SimConfig::ideal());
        let mut serial_total = 0.0;
        let mut max_single: f64 = 0.0;
        for id in s.participants() {
            let w = p.worker(id);
            let a = s.load(id);
            serial_total += a * (w.c + w.w + w.d);
            max_single = max_single.max(a * (w.c + w.w + w.d));
        }
        prop_assert!(rep.makespan <= serial_total + 1e-9,
            "worse than full serialization: {} > {serial_total}", rep.makespan);
        prop_assert!(rep.makespan >= max_single - 1e-9,
            "beats a participant's own critical path: {} < {max_single}", rep.makespan);
    }
}
