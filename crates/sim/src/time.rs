//! Simulation time: a totally ordered wrapper over `f64` seconds.

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, Sub};

/// A point in simulated time (seconds since simulation start).
///
/// Construction rejects NaN so the type can implement `Ord` and live inside
/// a priority queue. Negative times are allowed (useful in tests) but never
/// produced by the executor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimTime(f64);

impl SimTime {
    /// Simulation origin.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Wraps a finite number of seconds.
    ///
    /// # Panics
    /// Panics on NaN or infinity — such times indicate a modeling bug and
    /// must not propagate silently through the event queue.
    pub fn new(seconds: f64) -> Self {
        assert!(seconds.is_finite(), "non-finite SimTime: {seconds}");
        SimTime(seconds)
    }

    /// Seconds since simulation start.
    pub fn seconds(&self) -> f64 {
        self.0
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;

    fn add(self, dur: f64) -> SimTime {
        SimTime::new(self.0 + dur)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = f64;

    fn sub(self, other: SimTime) -> f64 {
        self.0 - other.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

#[cfg(test)]
// Unit tests assert exact outcomes of exact arithmetic.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_max() {
        let a = SimTime::new(1.0);
        let b = SimTime::new(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
        assert_eq!(a.max(a), a);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::new(1.5) + 0.5;
        assert_eq!(t.seconds(), 2.0);
        assert_eq!(t - SimTime::new(0.5), 1.5);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_rejected() {
        let _ = SimTime::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn inf_rejected_via_add() {
        let _ = SimTime::new(1.0) + f64::INFINITY;
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::new(0.25).to_string(), "0.250000s");
    }
}
