//! ASCII/Unicode Gantt rendering of execution traces (Figure 9 of the
//! paper shows exactly this kind of visualisation: data transfers in white,
//! computation in dark gray, output transfers in pale gray).

use dls_platform::WorkerId;

use crate::trace::{SpanKind, Trace};

/// Rendering options.
#[derive(Debug, Clone, Copy)]
pub struct GanttConfig {
    /// Number of character columns the makespan is scaled to.
    pub width: usize,
    /// Use unicode block characters (`░ █ ▒`) instead of ASCII (`. # o`).
    pub unicode: bool,
}

impl Default for GanttConfig {
    fn default() -> Self {
        GanttConfig {
            width: 96,
            unicode: true,
        }
    }
}

impl GanttConfig {
    fn glyph(&self, kind: SpanKind) -> char {
        match (self.unicode, kind) {
            (true, SpanKind::Recv) => '░',
            (true, SpanKind::Compute) => '█',
            (true, SpanKind::Return) => '▒',
            (false, SpanKind::Recv) => '.',
            (false, SpanKind::Compute) => '#',
            (false, SpanKind::Return) => 'o',
        }
    }

    fn idle_glyph(&self) -> char {
        if self.unicode {
            '·'
        } else {
            '-'
        }
    }
}

/// Renders the trace as a Gantt chart: one row for the master's port, one
/// per worker, plus a legend and time axis.
pub fn render(trace: &Trace, cfg: &GanttConfig) -> String {
    let makespan = trace.makespan();
    let width = cfg.width.max(10);
    let mut out = String::new();

    if makespan <= 0.0 || trace.spans().is_empty() {
        out.push_str("(empty trace)\n");
        return out;
    }

    let col =
        |t: f64| -> usize { (((t / makespan) * width as f64).floor() as usize).min(width - 1) };

    let paint = |row: &mut [char], start: f64, end: f64, glyph: char| {
        if end <= start {
            return;
        }
        let (a, b) = (col(start), col(end - 1e-12).max(col(start)));
        for cell in row.iter_mut().take(b + 1).skip(a) {
            *cell = glyph;
        }
    };

    // Master row: every port-occupying span.
    let mut master: Vec<char> = vec![' '; width];
    for s in trace.spans() {
        if s.kind.uses_master_port() {
            paint(&mut master, s.start, s.end, cfg.glyph(s.kind));
        }
    }
    out.push_str(&format!(
        "{:>8} |{}|\n",
        "master",
        master.iter().collect::<String>()
    ));

    // Worker rows.
    for w in trace.workers() {
        let mut row: Vec<char> = vec![' '; width];
        // Idle shading between first and last activity.
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for s in trace.spans_for(w) {
            lo = lo.min(s.start);
            hi = hi.max(s.end);
        }
        if lo < hi {
            paint(&mut row, lo, hi, cfg.idle_glyph());
        }
        for s in trace.spans_for(w) {
            paint(&mut row, s.start, s.end, cfg.glyph(s.kind));
        }
        out.push_str(&format!(
            "{:>8} |{}|\n",
            format_worker(w),
            row.iter().collect::<String>()
        ));
    }

    // Time axis.
    out.push_str(&format!(
        "{:>8} |0{}{:.4}s|\n",
        "",
        " ".repeat(width.saturating_sub(10)),
        makespan
    ));
    out.push_str(&format!(
        "legend: {} recv  {} compute  {} return  {} idle\n",
        cfg.glyph(SpanKind::Recv),
        cfg.glyph(SpanKind::Compute),
        cfg.glyph(SpanKind::Return),
        cfg.idle_glyph()
    ));
    out
}

fn format_worker(w: WorkerId) -> String {
    format!("{w}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Span;

    fn sample() -> Trace {
        let mut t = Trace::new();
        t.push(Span {
            worker: WorkerId(0),
            kind: SpanKind::Recv,
            start: 0.0,
            end: 1.0,
        });
        t.push(Span {
            worker: WorkerId(0),
            kind: SpanKind::Compute,
            start: 1.0,
            end: 3.0,
        });
        t.push(Span {
            worker: WorkerId(0),
            kind: SpanKind::Return,
            start: 3.5,
            end: 4.0,
        });
        t
    }

    #[test]
    fn renders_rows_for_master_and_workers() {
        let s = render(&sample(), &GanttConfig::default());
        assert!(s.contains("master"));
        assert!(s.contains("P1"));
        assert!(s.contains("legend"));
        // Master row shows both communications but not the compute.
        let master_line = s.lines().next().unwrap();
        assert!(master_line.contains('░'));
        assert!(master_line.contains('▒'));
        assert!(!master_line.contains('█'));
    }

    #[test]
    fn worker_row_shows_all_three_phases_and_idle() {
        let s = render(&sample(), &GanttConfig::default());
        let row = s.lines().nth(1).unwrap();
        for glyph in ['░', '█', '▒', '·'] {
            assert!(row.contains(glyph), "missing {glyph} in {row}");
        }
    }

    #[test]
    fn ascii_mode_has_no_unicode() {
        let s = render(
            &sample(),
            &GanttConfig {
                width: 40,
                unicode: false,
            },
        );
        assert!(s.is_ascii(), "non-ascii output in ascii mode:\n{s}");
        assert!(s.contains('#'));
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        let s = render(&Trace::new(), &GanttConfig::default());
        assert!(s.contains("empty trace"));
    }

    #[test]
    fn width_is_respected() {
        let cfg = GanttConfig {
            width: 50,
            unicode: true,
        };
        let s = render(&sample(), &cfg);
        let first = s.lines().next().unwrap();
        // "  master |" + 50 cells + "|"
        let cells = first.split('|').nth(1).unwrap();
        assert_eq!(cells.chars().count(), 50);
    }
}
