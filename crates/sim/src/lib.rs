//! # dls-sim — discrete-event star-network simulator
//!
//! The experimental substrate of this reproduction. The paper (Section 5)
//! validates its theory with MPI runs on the 12-node `gdsdmi` cluster; this
//! crate plays that testbed's role (see `DESIGN.md` §4 for the substitution
//! argument): it executes [`dls_core::Schedule`]s on a simulated star
//! network whose master enforces the **one-port** rule, with seeded jitter,
//! per-message latency and cache-degradation models standing in for
//! real-cluster effects.
//!
//! * [`simulate`] — run a schedule under a [`SimConfig`] (master policy ×
//!   realism model × seed) and obtain a [`SimReport`] with a full
//!   activity [`Trace`];
//! * [`simulate_tree`] — store-and-forward replay of tree-platform
//!   schedules with every node (master, relays, workers) one-port, plus
//!   the independent [`verify_tree`] constraint checker;
//! * [`gantt::render`] — Figure 9-style Gantt visualisation;
//! * [`EventQueue`] / [`SimTime`] — deterministic discrete-event plumbing
//!   for extensions (multi-round schedules, tree platforms).
//!
//! The key invariant, enforced by tests here and in the workspace
//! integration suite: under [`RealismModel::ideal`] the simulator
//! reproduces the analytical timeline of `dls-core` *exactly*.
//!
//! ```
//! use dls_core::prelude::*;
//! use dls_platform::Platform;
//! use dls_sim::{simulate, SimConfig};
//!
//! let p = Platform::star_with_z(&[(1.0, 2.0), (2.0, 1.0)], 0.5).unwrap();
//! let sol = optimal_fifo(&p).unwrap();
//! let report = simulate(&p, &sol.schedule, &SimConfig::ideal());
//! assert!((report.makespan - 1.0).abs() < 1e-7); // LP optimum fills T = 1
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod executor;
pub mod gantt;
mod noise;
mod queue;
mod time;
pub mod trace;
mod tree;

pub use executor::{simulate, simulate_reps, MasterPolicy, SimConfig, SimReport};
pub use noise::{Noise, RealismModel};
pub use queue::EventQueue;
pub use time::SimTime;
pub use trace::{Span, SpanKind, Trace, WorkerStats};
pub use tree::{
    ideal_tree_makespan, simulate_tree, verify_tree, TreeSimReport, TreeSpan, TreeSpanKind,
};
