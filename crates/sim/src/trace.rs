//! Execution traces: per-worker activity spans with summary statistics.

use dls_platform::WorkerId;

/// What a span represents, from the worker's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// Reception of the initial data from the master (master port busy).
    Recv,
    /// Local computation (master port free).
    Compute,
    /// Transfer of the result message to the master (master port busy).
    Return,
}

impl SpanKind {
    /// `true` when the span occupies the master's communication port.
    pub fn uses_master_port(&self) -> bool {
        matches!(self, SpanKind::Recv | SpanKind::Return)
    }
}

/// One activity interval of one worker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// The worker.
    pub worker: WorkerId,
    /// Activity kind.
    pub kind: SpanKind,
    /// Start time (seconds).
    pub start: f64,
    /// End time (seconds, `>= start`).
    pub end: f64,
}

impl Span {
    /// Span duration.
    pub fn len(&self) -> f64 {
        self.end - self.start
    }

    /// `true` for zero-length spans.
    pub fn is_empty(&self) -> bool {
        self.len() <= 0.0
    }
}

/// A complete execution trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    spans: Vec<Span>,
}

/// Per-worker summary derived from a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerStats {
    /// The worker.
    pub worker: WorkerId,
    /// Total time receiving data.
    pub recv: f64,
    /// Total time computing.
    pub compute: f64,
    /// Total time sending results.
    pub ret: f64,
    /// Idle gap between end of compute and start of the return transfer.
    pub idle: f64,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends a span.
    ///
    /// # Panics
    /// Panics if `end < start` or times are non-finite (simulation bug).
    pub fn push(&mut self, span: Span) {
        assert!(
            span.start.is_finite() && span.end.is_finite() && span.end >= span.start,
            "malformed span: {span:?}"
        );
        self.spans.push(span);
    }

    /// All spans in insertion (chronological-dispatch) order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Spans of one worker.
    pub fn spans_for(&self, worker: WorkerId) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.worker == worker)
    }

    /// Completion time of the whole execution (0 for an empty trace).
    pub fn makespan(&self) -> f64 {
        self.spans.iter().map(|s| s.end).fold(0.0, f64::max)
    }

    /// Total time the master's port is busy (sum of communication spans).
    pub fn master_busy(&self) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.kind.uses_master_port())
            .map(Span::len)
            .sum()
    }

    /// Master port utilization (busy / makespan; 0 for an empty trace).
    pub fn master_utilization(&self) -> f64 {
        let ms = self.makespan();
        if ms <= 0.0 {
            0.0
        } else {
            self.master_busy() / ms
        }
    }

    /// Workers appearing in the trace, in order of first appearance.
    pub fn workers(&self) -> Vec<WorkerId> {
        let mut out: Vec<WorkerId> = Vec::new();
        for s in &self.spans {
            if !out.contains(&s.worker) {
                out.push(s.worker);
            }
        }
        out
    }

    /// Per-worker activity summary.
    pub fn worker_stats(&self, worker: WorkerId) -> Option<WorkerStats> {
        let mut recv = 0.0;
        let mut compute = 0.0;
        let mut ret = 0.0;
        let mut compute_end: Option<f64> = None;
        let mut ret_start: Option<f64> = None;
        let mut seen = false;
        for s in self.spans_for(worker) {
            seen = true;
            match s.kind {
                SpanKind::Recv => recv += s.len(),
                SpanKind::Compute => {
                    compute += s.len();
                    compute_end = Some(compute_end.unwrap_or(0.0).max(s.end));
                }
                SpanKind::Return => {
                    ret += s.len();
                    ret_start = Some(ret_start.map_or(s.start, |r: f64| r.min(s.start)));
                }
            }
        }
        if !seen {
            return None;
        }
        let idle = match (compute_end, ret_start) {
            (Some(ce), Some(rs)) => (rs - ce).max(0.0),
            _ => 0.0,
        };
        Some(WorkerStats {
            worker,
            recv,
            compute,
            ret,
            idle,
        })
    }

    /// Serializes the trace to CSV (`worker,kind,start,end`), suitable for
    /// external plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("worker,kind,start,end\n");
        for s in &self.spans {
            let kind = match s.kind {
                SpanKind::Recv => "recv",
                SpanKind::Compute => "compute",
                SpanKind::Return => "return",
            };
            out.push_str(&format!(
                "{},{},{:.9},{:.9}\n",
                s.worker.index() + 1,
                kind,
                s.start,
                s.end
            ));
        }
        out
    }
}

/// Folds a trace into the `dls-obs` registry, so simulated schedules and
/// real solves share one reporting path (`dls_obs::emit` renders both).
///
/// Per-worker [`WorkerStats`] intervals land in the `sim.worker.*.seconds`
/// histograms (one observation per worker per call — the spread across
/// workers is the busy/idle balance signal) and the whole-trace aggregates
/// in the `sim.makespan.seconds` / `sim.master_utilization` gauges
/// (last-trace-wins). Values come from simulated clocks, not the wall
/// clock, so recording is deterministic and independent of `DLS_TRACE`.
pub fn to_obs(trace: &Trace) {
    for worker in trace.workers() {
        let Some(stats) = trace.worker_stats(worker) else {
            continue;
        };
        dls_obs::histogram!("sim.worker.recv.seconds").record(stats.recv);
        dls_obs::histogram!("sim.worker.compute.seconds").record(stats.compute);
        dls_obs::histogram!("sim.worker.return.seconds").record(stats.ret);
        dls_obs::histogram!("sim.worker.idle.seconds").record(stats.idle);
        dls_obs::histogram!("sim.worker.busy.seconds")
            .record(stats.recv + stats.compute + stats.ret);
    }
    dls_obs::gauge!("sim.makespan.seconds").set(trace.makespan());
    dls_obs::gauge!("sim.master_utilization").set(trace.master_utilization());
}

#[cfg(test)]
// Unit tests assert exact outcomes of exact arithmetic.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new();
        t.push(Span {
            worker: WorkerId(0),
            kind: SpanKind::Recv,
            start: 0.0,
            end: 1.0,
        });
        t.push(Span {
            worker: WorkerId(0),
            kind: SpanKind::Compute,
            start: 1.0,
            end: 3.0,
        });
        t.push(Span {
            worker: WorkerId(1),
            kind: SpanKind::Recv,
            start: 1.0,
            end: 2.0,
        });
        t.push(Span {
            worker: WorkerId(1),
            kind: SpanKind::Compute,
            start: 2.0,
            end: 2.5,
        });
        t.push(Span {
            worker: WorkerId(0),
            kind: SpanKind::Return,
            start: 3.5,
            end: 4.0,
        });
        t.push(Span {
            worker: WorkerId(1),
            kind: SpanKind::Return,
            start: 4.0,
            end: 4.25,
        });
        t
    }

    #[test]
    fn to_obs_folds_worker_stats_and_aggregates() {
        let t = sample();
        to_obs(&t);
        let snap = dls_obs::snapshot();
        let busy = snap
            .histogram("sim.worker.busy.seconds")
            .expect("busy intervals recorded");
        assert!(busy.count >= 2, "one observation per traced worker");
        // Worker 0 is the busiest: recv 1 + compute 2 + return 0.5.
        assert!(busy.max >= 3.5);
        assert_eq!(snap.gauge("sim.makespan.seconds"), Some(4.25));
        let util = snap.gauge("sim.master_utilization").expect("set");
        assert!((util - 2.75 / 4.25).abs() < 1e-12);
    }

    #[test]
    fn makespan_and_master_busy() {
        let t = sample();
        assert_eq!(t.makespan(), 4.25);
        // Master busy: 1 + 1 + 0.5 + 0.25 = 2.75.
        assert!((t.master_busy() - 2.75).abs() < 1e-12);
        assert!((t.master_utilization() - 2.75 / 4.25).abs() < 1e-12);
    }

    #[test]
    fn worker_stats_computed() {
        let t = sample();
        let s0 = t.worker_stats(WorkerId(0)).unwrap();
        assert_eq!(s0.recv, 1.0);
        assert_eq!(s0.compute, 2.0);
        assert_eq!(s0.ret, 0.5);
        assert!((s0.idle - 0.5).abs() < 1e-12);
        let s1 = t.worker_stats(WorkerId(1)).unwrap();
        assert!((s1.idle - 1.5).abs() < 1e-12);
        assert!(t.worker_stats(WorkerId(9)).is_none());
    }

    #[test]
    fn workers_in_first_appearance_order() {
        let t = sample();
        assert_eq!(t.workers(), vec![WorkerId(0), WorkerId(1)]);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "worker,kind,start,end");
        assert_eq!(lines.len(), 7);
        assert!(lines[1].starts_with("1,recv,"));
    }

    #[test]
    #[should_panic(expected = "malformed span")]
    fn backwards_span_rejected() {
        let mut t = Trace::new();
        t.push(Span {
            worker: WorkerId(0),
            kind: SpanKind::Recv,
            start: 2.0,
            end: 1.0,
        });
    }

    #[test]
    fn empty_trace_defaults() {
        let t = Trace::new();
        assert_eq!(t.makespan(), 0.0);
        assert_eq!(t.master_utilization(), 0.0);
        assert!(t.workers().is_empty());
    }
}
