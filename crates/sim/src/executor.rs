//! Schedule executor: runs a [`Schedule`] on a simulated star network.
//!
//! This is the reproduction's stand-in for the paper's MPI program
//! (Section 5). The default [`MasterPolicy::SendsThenReceives`] mirrors the
//! MPI code exactly: the master posts all sends in `σ1` order, then all
//! receives in `σ2` order — which is precisely the canonical one-port
//! schedule shape assumed by the LP. [`MasterPolicy::Interleaved`] is an
//! ablation: the master may slot a *ready* return ahead of remaining sends
//! (still respecting `σ2` among returns). Interleaving cannot beat the LP
//! optimum on noise-free inputs, but can absorb jitter.
//!
//! Worker-side durations are drawn from the [`RealismModel`] when the
//! master dispatches the corresponding operation, in a fixed order, so any
//! seeded run replays bit-for-bit.
//!
//! A note on architecture: because a one-round star platform has no
//! worker-to-worker interaction, every completion time is known at dispatch
//! and the master loop can advance time directly; the generic
//! [`crate::EventQueue`] remains available for multi-round or tree-platform
//! extensions.

use dls_core::{Schedule, LOAD_EPS};
use dls_platform::{Platform, WorkerId};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::noise::RealismModel;
use crate::trace::{Span, SpanKind, Trace};

/// How the master schedules its port between pending sends and returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MasterPolicy {
    /// All `σ1` sends, then all `σ2` receives — the paper's MPI program.
    SendsThenReceives,
    /// Greedy: a return whose worker has finished computing (and is next in
    /// `σ2`) preempts remaining sends.
    Interleaved,
}

/// Simulation configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Master port policy.
    pub policy: MasterPolicy,
    /// Perturbation model.
    pub realism: RealismModel,
    /// RNG seed (every run with the same seed and inputs is identical).
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            policy: MasterPolicy::SendsThenReceives,
            realism: RealismModel::ideal(),
            seed: 0,
        }
    }
}

impl SimConfig {
    /// Ideal (noise-free) execution under the paper's master policy.
    pub fn ideal() -> Self {
        Self::default()
    }

    /// Jittered execution with the given seed.
    pub fn jittered(seed: u64) -> Self {
        SimConfig {
            realism: RealismModel::cluster_jitter(),
            seed,
            ..Self::default()
        }
    }
}

/// Result of one simulated execution.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Full activity trace.
    pub trace: Trace,
    /// Completion time of the last operation.
    pub makespan: f64,
}

/// Executes `schedule` on `platform` under `config`.
///
/// Loads are interpreted as numbers of load units (fractional loads are
/// legal — the linear model does not care). Workers with negligible load
/// exchange no messages.
pub fn simulate(platform: &Platform, schedule: &Schedule, config: &SimConfig) -> SimReport {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut trace = Trace::new();

    let p = platform.num_workers();
    let mut compute_finish: Vec<f64> = vec![0.0; p];
    let mut received: Vec<bool> = vec![false; p];

    let sends: Vec<WorkerId> = schedule.participants();
    let returns: Vec<WorkerId> = schedule
        .return_order()
        .iter()
        .copied()
        .filter(|id| schedule.load(*id) > LOAD_EPS)
        .collect();

    let mut now = 0.0_f64;
    let mut next_send = 0usize;
    let mut next_ret = 0usize;

    // One master operation per loop turn; the port is busy for its whole
    // duration.
    loop {
        let ret_head = returns.get(next_ret).copied();
        let send_head = sends.get(next_send).copied();

        let do_return_now = match (config.policy, ret_head) {
            (_, None) => false,
            // Paper policy: returns only once every send is posted.
            (MasterPolicy::SendsThenReceives, Some(_)) => send_head.is_none(),
            // Greedy: a *ready* head return preempts sends.
            (MasterPolicy::Interleaved, Some(r)) => {
                received[r.index()] && compute_finish[r.index()] <= now || send_head.is_none()
            }
        };

        if do_return_now {
            let r = ret_head.expect("checked above");
            let w = platform.worker(r);
            let alpha = schedule.load(r);
            let start = now.max(compute_finish[r.index()]);
            let dur = config
                .realism
                .transfer_duration(alpha * w.d, &mut rng)
                .max(0.0);
            trace.push(Span {
                worker: r,
                kind: SpanKind::Return,
                start,
                end: start + dur,
            });
            now = start + dur;
            next_ret += 1;
        } else if let Some(s) = send_head {
            let w = platform.worker(s);
            let alpha = schedule.load(s);
            let dur = config.realism.transfer_duration(alpha * w.c, &mut rng);
            trace.push(Span {
                worker: s,
                kind: SpanKind::Recv,
                start: now,
                end: now + dur,
            });
            let compute_dur = config.realism.compute_duration(alpha * w.w, &mut rng);
            trace.push(Span {
                worker: s,
                kind: SpanKind::Compute,
                start: now + dur,
                end: now + dur + compute_dur,
            });
            compute_finish[s.index()] = now + dur + compute_dur;
            received[s.index()] = true;
            now += dur;
            next_send += 1;
        } else if ret_head.is_some() {
            // Interleaved with sends exhausted but head return not ready:
            // handled by do_return_now's `|| send_head.is_none()` arm above,
            // so this branch is unreachable; kept as a defensive exit.
            unreachable!("return dispatch covers the no-sends case");
        } else {
            break;
        }
    }

    let makespan = trace.makespan();
    SimReport { trace, makespan }
}

/// Simulates the same scenario `reps` times with seeds `base_seed..+reps`,
/// returning the makespans. Used by the figure harnesses to average jitter.
pub fn simulate_reps(
    platform: &Platform,
    schedule: &Schedule,
    config: &SimConfig,
    reps: u32,
) -> Vec<f64> {
    (0..reps)
        .map(|k| {
            let cfg = SimConfig {
                seed: config.seed.wrapping_add(k as u64),
                ..*config
            };
            simulate(platform, schedule, &cfg).makespan
        })
        .collect()
}

#[cfg(test)]
// Unit tests assert exact outcomes of exact arithmetic.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use dls_core::prelude::*;
    use dls_core::PortModel;
    use dls_platform::Worker;

    fn ids(v: &[usize]) -> Vec<WorkerId> {
        v.iter().map(|&i| WorkerId(i)).collect()
    }

    fn platform() -> Platform {
        Platform::new(vec![Worker::new(1.0, 2.0, 0.5), Worker::new(2.0, 1.0, 1.0)]).unwrap()
    }

    #[test]
    fn ideal_simulation_matches_analytic_timeline() {
        // The noise-free simulator must reproduce dls-core's Timeline
        // makespan exactly (this is the key cross-crate invariant).
        let p = platform();
        for (sched, name) in [
            (
                Schedule::fifo(&p, ids(&[0, 1]), vec![1.0, 1.0]).unwrap(),
                "fifo",
            ),
            (
                Schedule::lifo(&p, ids(&[0, 1]), vec![2.0, 0.5]).unwrap(),
                "lifo",
            ),
        ] {
            let analytic = makespan(&p, &sched, PortModel::OnePort);
            let sim = simulate(&p, &sched, &SimConfig::ideal()).makespan;
            assert!(
                (analytic - sim).abs() < 1e-9,
                "{name}: analytic {analytic} vs simulated {sim}"
            );
        }
    }

    #[test]
    fn ideal_simulation_of_lp_optimum_hits_unit_horizon() {
        let p = Platform::star_with_z(&[(1.0, 2.0), (2.0, 1.0), (1.5, 3.0)], 0.5).unwrap();
        let sol = optimal_fifo(&p).unwrap();
        let sim = simulate(&p, &sol.schedule, &SimConfig::ideal());
        assert!((sim.makespan - 1.0).abs() < 1e-7, "got {}", sim.makespan);
    }

    #[test]
    fn jitter_changes_makespan_but_seed_fixes_it() {
        let p = platform();
        let s = Schedule::fifo(&p, ids(&[0, 1]), vec![1.0, 1.0]).unwrap();
        let a = simulate(&p, &s, &SimConfig::jittered(1)).makespan;
        let b = simulate(&p, &s, &SimConfig::jittered(1)).makespan;
        let c = simulate(&p, &s, &SimConfig::jittered(2)).makespan;
        assert_eq!(a, b, "same seed must replay identically");
        assert_ne!(a, c, "different seeds should differ");
        let ideal = simulate(&p, &s, &SimConfig::ideal()).makespan;
        assert!((a - ideal).abs() / ideal < 0.25, "jitter too large");
    }

    #[test]
    fn interleaving_returns_never_helps() {
        // Ablation supporting the paper's canonical shape ("the master
        // sends initial messages as soon as possible"): slotting a ready
        // return ahead of a pending send delays that worker's computation,
        // so greedy interleaving is never faster — and is strictly *slower*
        // here: P1's early return postpones P3's send, whose compute ends
        // the schedule.
        let p = Platform::new(vec![
            Worker::new(1.0, 0.1, 1.0),
            Worker::new(1.0, 10.0, 1.0),
            Worker::new(1.0, 10.0, 1.0),
        ])
        .unwrap();
        let s = Schedule::fifo(&p, ids(&[0, 1, 2]), vec![1.0, 1.0, 1.0]).unwrap();
        let plain = simulate(&p, &s, &SimConfig::ideal()).makespan;
        let inter = simulate(
            &p,
            &s,
            &SimConfig {
                policy: MasterPolicy::Interleaved,
                ..SimConfig::ideal()
            },
        )
        .makespan;
        // Plain: sends [0,3], computes end at 1.1/12/13, returns 3-4/12-13/
        // 13-14 -> 14. Interleaved: P1's return at [2,3] pushes P3's send to
        // [3,4], compute to 14, return to [14,15].
        assert!((plain - 14.0).abs() < 1e-9, "plain = {plain}");
        assert!((inter - 15.0).abs() < 1e-9, "interleaved = {inter}");
    }

    #[test]
    fn interleaved_respects_return_order() {
        // Even when a later return is ready first, sigma_2 is binding.
        let p = Platform::new(vec![
            Worker::new(1.0, 10.0, 1.0), // slow compute, first in sigma2
            Worker::new(1.0, 0.1, 1.0),  // fast compute, second in sigma2
        ])
        .unwrap();
        let s = Schedule::fifo(&p, ids(&[0, 1]), vec![1.0, 1.0]).unwrap();
        let rep = simulate(
            &p,
            &s,
            &SimConfig {
                policy: MasterPolicy::Interleaved,
                ..SimConfig::ideal()
            },
        );
        let r0 = rep
            .trace
            .spans_for(WorkerId(0))
            .find(|sp| sp.kind == SpanKind::Return)
            .unwrap()
            .start;
        let r1 = rep
            .trace
            .spans_for(WorkerId(1))
            .find(|sp| sp.kind == SpanKind::Return)
            .unwrap()
            .start;
        assert!(r0 < r1, "sigma2 violated: P1 at {r0}, P2 at {r1}");
    }

    #[test]
    fn zero_load_workers_produce_no_spans() {
        let p = platform();
        let s = Schedule::fifo(&p, ids(&[0, 1]), vec![0.0, 1.0]).unwrap();
        let rep = simulate(&p, &s, &SimConfig::ideal());
        assert!(rep.trace.spans_for(WorkerId(0)).next().is_none());
        assert!(rep.trace.spans_for(WorkerId(1)).next().is_some());
    }

    #[test]
    fn master_port_never_double_booked() {
        let p =
            Platform::star_with_z(&[(1.0, 2.0), (2.0, 1.0), (1.5, 3.0), (0.7, 4.0)], 0.5).unwrap();
        let sol = optimal_lifo(&p).unwrap();
        for policy in [MasterPolicy::SendsThenReceives, MasterPolicy::Interleaved] {
            let rep = simulate(
                &p,
                &sol.schedule,
                &SimConfig {
                    policy,
                    ..SimConfig::jittered(3)
                },
            );
            let mut port: Vec<(f64, f64)> = rep
                .trace
                .spans()
                .iter()
                .filter(|s| s.kind.uses_master_port() && s.len() > 0.0)
                .map(|s| (s.start, s.end))
                .collect();
            port.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in port.windows(2) {
                assert!(
                    w[0].1 <= w[1].0 + 1e-9,
                    "port overlap: {:?} then {:?}",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn latency_increases_makespan() {
        let p = platform();
        let s = Schedule::fifo(&p, ids(&[0, 1]), vec![1.0, 1.0]).unwrap();
        let base = simulate(&p, &s, &SimConfig::ideal()).makespan;
        let with_latency = simulate(
            &p,
            &s,
            &SimConfig {
                realism: RealismModel {
                    comm_latency: 0.1,
                    ..RealismModel::ideal()
                },
                ..SimConfig::ideal()
            },
        )
        .makespan;
        // 4 messages, each +0.1, but overlap structure means the increase is
        // at least the two sends plus the last return.
        assert!(with_latency > base + 0.2);
    }

    #[test]
    fn simulate_reps_varies_seeds() {
        let p = platform();
        let s = Schedule::fifo(&p, ids(&[0, 1]), vec![1.0, 1.0]).unwrap();
        let reps = simulate_reps(&p, &s, &SimConfig::jittered(0), 5);
        assert_eq!(reps.len(), 5);
        let all_same = reps.windows(2).all(|w| w[0] == w[1]);
        assert!(!all_same, "seeds did not vary: {reps:?}");
    }
}
