//! Store-and-forward execution of tree-platform schedules.
//!
//! [`simulate_tree`] replays a collapsed-star schedule (worker ids = tree
//! node ids, see `dls-tree`) on the *actual* [`TreePlatform`]: every
//! message travels hop by hop, a relay must fully receive a message before
//! forwarding it (store-and-forward), and **every node — master, relays,
//! workers — is one-port**: at most one transfer on any of its incident
//! links (parent side or child side) at a time.
//!
//! The forwarding policy mirrors the paper's canonical shape at every
//! node: each port handles its downward transfers (receives *and*
//! forwards) strictly in `σ1` order with receive-before-forward per
//! payload, drains its downward traffic before touching returns, and then
//! handles upward transfers strictly in `σ2` order (which also enforces
//! `σ2` at the master). The strict per-port sequences are exactly the port
//! orders of the serialized star-collapse schedule — merely letting a
//! *later* message's hop slip in front of an earlier one whenever it is
//! ready first looks harmless but can delay an earlier payload's delivery
//! past the serialized prediction. With identical per-port sequences,
//! dispatching each hop as early as possible can only run *ahead* of the
//! collapsed prediction: the simulated makespan equals it on depth-1 trees
//! and is never larger on deeper ones — the reduction's conservatism,
//! pinned by the `dls-tree` replay tests.
//!
//! Like the star executor, per-hop and per-compute durations are drawn
//! from the [`RealismModel`] in a fixed dispatch order, so seeded runs
//! replay bit-for-bit.

use dls_core::{Schedule, LOAD_EPS};
use dls_platform::{TreePlatform, WorkerId};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::executor::SimConfig;

/// What one tree-trace span records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeSpanKind {
    /// A downward payload hop (data toward its worker).
    Down,
    /// The worker's computation.
    Compute,
    /// An upward result hop (results toward the master).
    Up,
}

/// One span of simulated tree activity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeSpan {
    /// The node whose load this span serves (the message's subject).
    pub msg: WorkerId,
    /// For hops: the *child endpoint* of the edge crossed (the edge
    /// "belongs" to its child, like [`TreePlatform`] costs). For computes:
    /// the computing node (`== msg`).
    pub node: WorkerId,
    /// Span kind.
    pub kind: TreeSpanKind,
    /// Start time.
    pub start: f64,
    /// End time.
    pub end: f64,
}

impl TreeSpan {
    /// Span length.
    pub fn len(&self) -> f64 {
        self.end - self.start
    }

    /// `true` when the span has (numerically) zero length.
    pub fn is_empty(&self) -> bool {
        self.len() <= LOAD_EPS
    }
}

/// Result of one simulated tree execution.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeSimReport {
    /// All spans, in dispatch order.
    pub spans: Vec<TreeSpan>,
    /// Completion time of the last span.
    pub makespan: f64,
}

impl TreeSimReport {
    /// Spans serving one node's load.
    pub fn spans_for(&self, msg: WorkerId) -> impl Iterator<Item = &TreeSpan> + '_ {
        self.spans.iter().filter(move |s| s.msg == msg)
    }
}

/// One pending hop action in the greedy loop.
struct Candidate {
    start: f64,
    /// Global priority (σ-index) of the message, the tie-break.
    priority: usize,
    msg: usize,
    down: bool,
}

/// Executes `schedule` on `tree` under `config`.
///
/// The schedule's worker ids are tree node ids (its loads/orders come from
/// a solve of the collapsed star). [`MasterPolicy`](crate::MasterPolicy)
/// is ignored: every node, master included, runs the canonical
/// sends-then-receives discipline (interleaving is a star-executor
/// ablation).
///
/// # Panics
/// Panics when the schedule's load vector does not match the tree's node
/// count.
pub fn simulate_tree(
    tree: &TreePlatform,
    schedule: &Schedule,
    config: &SimConfig,
) -> TreeSimReport {
    assert_eq!(
        schedule.loads().len(),
        tree.num_nodes(),
        "schedule loads must cover every tree node"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut spans: Vec<TreeSpan> = Vec::new();
    let n = tree.num_nodes();
    let master = n;

    // Messages in sigma_1 order; paths as port-index chains master -> node.
    struct Msg {
        target: WorkerId,
        load: f64,
        /// Node indices along the path, master's child first.
        path: Vec<usize>,
        /// Hops completed downward (position = path[hops_done - 1]).
        down_done: usize,
        /// Time the payload is fully stored at its current position.
        avail: f64,
        /// Hops completed upward.
        up_done: usize,
        /// Return-message availability (set at compute end); `None` while
        /// the payload is still inbound or computing.
        up_avail: Option<f64>,
        /// Whether a return message exists at all (`Σd > 0`).
        returns: bool,
    }
    let mut msgs: Vec<Msg> = schedule
        .participants()
        .iter()
        .map(|&id| {
            let path: Vec<usize> = tree.path(id).iter().map(|p| p.index()).collect();
            let ret_cost: f64 = path.iter().map(|&p| tree.node(WorkerId(p)).d).sum();
            let load = schedule.load(id);
            Msg {
                target: id,
                load,
                path,
                down_done: 0,
                avail: 0.0,
                up_done: 0,
                up_avail: None,
                returns: load * ret_cost > LOAD_EPS,
            }
        })
        .collect();

    // Per-port transfer sequences: every port processes its incident
    // downward hops (receives *and* forwards) in sigma_1 order with
    // receive-before-forward per payload, and its incident upward hops in
    // sigma_2 order — exactly the port orders of the serialized collapsed
    // schedule. A hop runs only when it is at the head of *both* endpoint
    // queues; the shared global key makes the heads always agree on the
    // minimal pending message, so the loop cannot deadlock.
    //
    // Down hop `j` of message `m` crosses the edge into `path[j]`: its
    // sender is `path[j-1]` (the master for `j = 0`), its receiver
    // `path[j]`. Up hop `k` of `m`'s return leaves `path[L-1-k]` toward
    // `path[L-2-k]` (the master at the top).
    let mut down_seq: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n + 1];
    let mut up_seq: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n + 1];
    for (m, msg) in msgs.iter().enumerate() {
        for j in 0..msg.path.len() {
            let sender = if j == 0 { master } else { msg.path[j - 1] };
            down_seq[sender].push((m, j));
            down_seq[msg.path[j]].push((m, j));
        }
    }
    let sigma2: Vec<usize> = schedule
        .return_order()
        .iter()
        .filter_map(|id| msgs.iter().position(|m| m.target == *id && m.returns))
        .collect();
    let mut priority2 = vec![usize::MAX; msgs.len()];
    for (m, msg) in sigma2.iter().enumerate() {
        priority2[*msg] = m;
    }
    for &m in &sigma2 {
        let path = &msgs[m].path;
        for k in 0..path.len() {
            let sender = path[path.len() - 1 - k];
            let receiver = if k + 1 < path.len() {
                path[path.len() - 2 - k]
            } else {
                master
            };
            up_seq[sender].push((m, k));
            up_seq[receiver].push((m, k));
        }
    }

    let mut down_next = vec![0usize; n + 1];
    let mut up_next = vec![0usize; n + 1];
    let mut port_free = vec![0.0f64; n + 1];

    loop {
        // Candidates: hops at the head of both endpoint queues (downward
        // traffic first at every port — the canonical sends-then-receives
        // discipline, nodes included).
        let mut best: Option<Candidate> = None;
        for (m, msg) in msgs.iter().enumerate() {
            let cand = if msg.down_done < msg.path.len() {
                let j = msg.down_done;
                let sender = if j == 0 { master } else { msg.path[j - 1] };
                let receiver = msg.path[j];
                if down_seq[sender].get(down_next[sender]) != Some(&(m, j))
                    || down_seq[receiver].get(down_next[receiver]) != Some(&(m, j))
                {
                    continue; // not this port-sequence's turn yet
                }
                Some(Candidate {
                    start: msg.avail.max(port_free[sender]).max(port_free[receiver]),
                    priority: m,
                    msg: m,
                    down: true,
                })
            } else if msg.returns && msg.up_done < msg.path.len() {
                let Some(up_avail) = msg.up_avail else {
                    continue; // still computing
                };
                let k = msg.up_done;
                let sender = msg.path[msg.path.len() - 1 - k];
                let receiver = if k + 1 < msg.path.len() {
                    msg.path[msg.path.len() - 2 - k]
                } else {
                    master
                };
                // Sends-then-receives: both endpoints must have drained
                // their downward traffic, and this hop must head both
                // upward queues.
                if down_next[sender] < down_seq[sender].len()
                    || down_next[receiver] < down_seq[receiver].len()
                    || up_seq[sender].get(up_next[sender]) != Some(&(m, k))
                    || up_seq[receiver].get(up_next[receiver]) != Some(&(m, k))
                {
                    continue;
                }
                Some(Candidate {
                    start: up_avail.max(port_free[sender]).max(port_free[receiver]),
                    priority: priority2[m],
                    msg: m,
                    down: false,
                })
            } else {
                None
            };
            if let Some(c) = cand {
                let better = match &best {
                    None => true,
                    Some(b) => {
                        c.start < b.start - LOAD_EPS
                            || ((c.start - b.start).abs() <= LOAD_EPS
                                && (!c.down, c.priority) < (!b.down, b.priority))
                    }
                };
                if better {
                    best = Some(c);
                }
            }
        }

        let Some(act) = best else {
            break; // every queue drained
        };

        if act.down {
            let msg = &mut msgs[act.msg];
            let j = msg.down_done;
            let sender = if j == 0 { master } else { msg.path[j - 1] };
            let receiver = msg.path[j];
            let edge = WorkerId(receiver);
            let dur = config
                .realism
                .transfer_duration(msg.load * tree.node(edge).c, &mut rng);
            spans.push(TreeSpan {
                msg: msg.target,
                node: edge,
                kind: TreeSpanKind::Down,
                start: act.start,
                end: act.start + dur,
            });
            port_free[sender] = act.start + dur;
            port_free[receiver] = act.start + dur;
            down_next[sender] += 1;
            down_next[receiver] += 1;
            msg.down_done += 1;
            msg.avail = act.start + dur;
            if msg.down_done == msg.path.len() {
                // Delivered: compute immediately.
                let cdur = config
                    .realism
                    .compute_duration(msg.load * tree.node(msg.target).w, &mut rng);
                spans.push(TreeSpan {
                    msg: msg.target,
                    node: msg.target,
                    kind: TreeSpanKind::Compute,
                    start: msg.avail,
                    end: msg.avail + cdur,
                });
                if msg.returns {
                    msg.up_avail = Some(msg.avail + cdur);
                }
            }
        } else {
            let msg = &mut msgs[act.msg];
            let k = msg.up_done;
            let sender = msg.path[msg.path.len() - 1 - k];
            let receiver = if k + 1 < msg.path.len() {
                msg.path[msg.path.len() - 2 - k]
            } else {
                master
            };
            let edge = WorkerId(sender);
            let dur = config
                .realism
                .transfer_duration(msg.load * tree.node(edge).d, &mut rng)
                .max(0.0);
            spans.push(TreeSpan {
                msg: msg.target,
                node: edge,
                kind: TreeSpanKind::Up,
                start: act.start,
                end: act.start + dur,
            });
            port_free[sender] = act.start + dur;
            port_free[receiver] = act.start + dur;
            up_next[sender] += 1;
            up_next[receiver] += 1;
            msg.up_done += 1;
            msg.up_avail = Some(act.start + dur);
        }
    }

    let makespan = spans.iter().map(|s| s.end).fold(0.0, f64::max);
    TreeSimReport { spans, makespan }
}

/// Convenience: the noise-free store-and-forward makespan of `schedule`
/// on `tree` — [`simulate_tree`] under [`SimConfig::ideal`], makespan
/// only. This is the replay oracle the `tree_lp` solver scores its
/// relaxation loads against: ideal durations are exact products, so the
/// result is linear in the schedule's loads.
pub fn ideal_tree_makespan(tree: &TreePlatform, schedule: &Schedule) -> f64 {
    simulate_tree(tree, schedule, &SimConfig::ideal()).makespan
}

/// Independently re-checks the tree model constraints of a simulated run
/// against an *ideal* (noise-free) cost model: hop/compute durations,
/// store-and-forward precedence per message, `σ1` dispatch order at the
/// master, `σ2` arrival order at the master, and one-port exclusivity at
/// every node. Returns the violation list (empty = feasible).
pub fn verify_tree(
    tree: &TreePlatform,
    schedule: &Schedule,
    report: &TreeSimReport,
    tol: f64,
) -> Vec<String> {
    let mut violations = Vec::new();
    let master = tree.num_nodes();

    for &id in &schedule.participants() {
        let alpha = schedule.load(id);
        let path = tree.path(id);
        let down: Vec<&TreeSpan> = report
            .spans_for(id)
            .filter(|s| s.kind == TreeSpanKind::Down)
            .collect();
        if down.len() != path.len() {
            violations.push(format!(
                "{id}: {} down hops for depth {}",
                down.len(),
                path.len()
            ));
            continue;
        }
        let mut prev_end = f64::NEG_INFINITY;
        for (hop, &edge) in down.iter().zip(&path) {
            if hop.node != edge {
                violations.push(format!("{id}: down hops off the root path"));
            }
            if (hop.len() - alpha * tree.node(edge).c).abs() > tol {
                violations.push(format!("{id}: down hop duration != alpha*c"));
            }
            if hop.start < prev_end - tol {
                violations.push(format!("{id}: forwarded before full receipt"));
            }
            prev_end = hop.end;
        }
        let compute = report
            .spans_for(id)
            .find(|s| s.kind == TreeSpanKind::Compute);
        let Some(compute) = compute else {
            violations.push(format!("{id}: no compute span"));
            continue;
        };
        if (compute.len() - alpha * tree.node(id).w).abs() > tol {
            violations.push(format!("{id}: compute duration != alpha*w"));
        }
        if compute.start < prev_end - tol {
            violations.push(format!("{id}: computes before delivery"));
        }
        let up: Vec<&TreeSpan> = report
            .spans_for(id)
            .filter(|s| s.kind == TreeSpanKind::Up)
            .collect();
        let ret_cost: f64 = path.iter().map(|&e| tree.node(e).d).sum();
        if up.is_empty() {
            if alpha * ret_cost > tol.max(LOAD_EPS) {
                violations.push(format!("{id}: return chain missing"));
            }
        } else {
            if up.len() != path.len() {
                violations.push(format!("{id}: partial return chain"));
            }
            let mut prev_end = compute.end;
            for (hop, &edge) in up.iter().zip(path.iter().rev()) {
                if hop.node != edge {
                    violations.push(format!("{id}: up hops off the root path"));
                }
                if (hop.len() - alpha * tree.node(edge).d).abs() > tol {
                    violations.push(format!("{id}: up hop duration != alpha*d"));
                }
                if hop.start < prev_end - tol {
                    violations.push(format!("{id}: return forwarded before ready"));
                }
                prev_end = hop.end;
            }
        }
    }

    // One-port at every node (master = index n): transfer spans incident
    // to the same port are pairwise disjoint.
    let mut port_use: Vec<(f64, f64, usize)> = Vec::new();
    for s in &report.spans {
        if s.kind == TreeSpanKind::Compute || s.is_empty() {
            continue;
        }
        let parent = tree.parent(s.node).map_or(master, |p| p.index());
        port_use.push((s.start, s.end, s.node.index()));
        port_use.push((s.start, s.end, parent));
    }
    for (i, a) in port_use.iter().enumerate() {
        for b in &port_use[i + 1..] {
            if a.2 == b.2 && a.0 + tol < b.1 && b.0 + tol < a.1 {
                let port = if a.2 == master {
                    "master".to_string()
                } else {
                    WorkerId(a.2).to_string()
                };
                violations.push(format!("one-port violated at {port}"));
            }
        }
    }

    // sigma_1 at the master: first hops start in send order.
    let mut last = f64::NEG_INFINITY;
    for &id in &schedule.participants() {
        if let Some(first) = report
            .spans_for(id)
            .find(|s| s.kind == TreeSpanKind::Down && tree.parent(s.node).is_none())
        {
            if first.start < last - tol {
                violations.push("send order violated at the master".into());
            }
            last = first.start;
        }
    }
    // sigma_2 at the master: final up hops start in return order.
    let mut last = f64::NEG_INFINITY;
    for &id in schedule.return_order() {
        if let Some(hop) = report
            .spans_for(id)
            .find(|s| s.kind == TreeSpanKind::Up && tree.parent(s.node).is_none())
        {
            if hop.start < last - tol {
                violations.push("return order violated at the master".into());
            }
            last = hop.start;
        }
    }
    violations
}

#[cfg(test)]
// Unit tests assert exact outcomes of exact arithmetic.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use dls_core::PortModel;
    use dls_platform::{Platform, Worker};

    fn ids(v: &[usize]) -> Vec<WorkerId> {
        v.iter().map(|&i| WorkerId(i)).collect()
    }

    /// The hand-checkable two-worker platform from `dls-core::timeline`.
    fn platform() -> Platform {
        Platform::new(vec![Worker::new(1.0, 2.0, 0.5), Worker::new(2.0, 1.0, 1.0)]).unwrap()
    }

    #[test]
    fn depth_one_tree_matches_the_star_timeline_exactly() {
        let p = platform();
        let tree = TreePlatform::star(&p);
        let s = Schedule::fifo(&p, ids(&[0, 1]), vec![1.0, 1.0]).unwrap();
        let analytic = dls_core::timeline::makespan(&p, &s, PortModel::OnePort);
        let rep = simulate_tree(&tree, &s, &SimConfig::ideal());
        assert!((rep.makespan - analytic).abs() < 1e-9);
        assert!(verify_tree(&tree, &s, &rep, 1e-9).is_empty());
    }

    #[test]
    fn chain_hand_computed_store_and_forward() {
        // Chain master -> P1 (c=1,w=2,d=0.5) -> P2 (c=2,w=1,d=1), loads 1.
        // Down: P1 recv [0,1]; P2's payload crosses edge P1 [1,2], then
        // edge P2 [2,4]. P1 computes [1,3]; P2 computes [4,5].
        // Returns FIFO: P1's compute ends at 3, but its port is busy
        // forwarding P2's payload until 4 and the per-port discipline
        // drains all downward traffic before any return, so P1's return
        // to master runs [4,4.5]. P2's return then climbs: edge P2 up
        // [5,6], edge P1 up [6,6.5].
        let p = platform();
        let tree = TreePlatform::chain(&p);
        let s = Schedule::fifo(&p, ids(&[0, 1]), vec![1.0, 1.0]).unwrap();
        let rep = simulate_tree(&tree, &s, &SimConfig::ideal());
        assert!(verify_tree(&tree, &s, &rep, 1e-9).is_empty());
        let p2_down: Vec<(f64, f64)> = rep
            .spans_for(WorkerId(1))
            .filter(|sp| sp.kind == TreeSpanKind::Down)
            .map(|sp| (sp.start, sp.end))
            .collect();
        assert_eq!(p2_down, vec![(1.0, 2.0), (2.0, 4.0)]);
        let p2_up: Vec<(f64, f64)> = rep
            .spans_for(WorkerId(1))
            .filter(|sp| sp.kind == TreeSpanKind::Up)
            .map(|sp| (sp.start, sp.end))
            .collect();
        assert_eq!(p2_up, vec![(5.0, 6.0), (6.0, 6.5)]);
        assert!((rep.makespan - 6.5).abs() < 1e-12);
    }

    #[test]
    fn pipelining_beats_the_serialized_collapse_prediction() {
        // The same chain, serialized through the master's port (the
        // star-collapse model), is strictly slower than the pipelined
        // store-and-forward replay: the reduction is conservative.
        let p = platform();
        let tree = TreePlatform::chain(&p);
        let s = Schedule::fifo(&p, ids(&[0, 1]), vec![1.0, 1.0]).unwrap();
        let rep = simulate_tree(&tree, &s, &SimConfig::ideal());
        // Collapsed star: P2_eq has c = 3, d = 1.5. Sends [0,1],[1,4];
        // computes [1,3],[4,5]; returns [4,4.5],[5,6.5] -> makespan 6.5.
        // (Here the chain replay happens to meet the prediction's end; the
        // master send of P2's payload still frees the port 2 units early.)
        let first_master_hops: Vec<f64> = rep
            .spans
            .iter()
            .filter(|sp| sp.kind == TreeSpanKind::Down && tree.parent(sp.node).is_none())
            .map(|sp| sp.end)
            .collect();
        assert_eq!(first_master_hops, vec![1.0, 2.0]);
        assert!(rep.makespan <= 6.5 + 1e-12);
    }

    #[test]
    fn zero_load_nodes_exchange_no_messages() {
        let p = platform();
        let tree = TreePlatform::chain(&p);
        let s = Schedule::fifo(&p, ids(&[0, 1]), vec![0.0, 1.0]).unwrap();
        let rep = simulate_tree(&tree, &s, &SimConfig::ideal());
        assert!(rep.spans_for(WorkerId(0)).next().is_none());
        // P1 still relays P2's payload (spans tagged msg = P2).
        assert!(rep.spans_for(WorkerId(1)).any(|sp| sp.node == WorkerId(0)));
        assert!(verify_tree(&tree, &s, &rep, 1e-9).is_empty());
    }

    #[test]
    fn seeded_jitter_replays_bit_for_bit() {
        let p = platform();
        let tree = TreePlatform::chain(&p);
        let s = Schedule::fifo(&p, ids(&[0, 1]), vec![1.0, 1.0]).unwrap();
        let a = simulate_tree(&tree, &s, &SimConfig::jittered(7));
        let b = simulate_tree(&tree, &s, &SimConfig::jittered(7));
        let c = simulate_tree(&tree, &s, &SimConfig::jittered(8));
        assert_eq!(a, b);
        assert_ne!(a.makespan, c.makespan);
    }

    #[test]
    fn verify_catches_tampered_replay() {
        let p = platform();
        let tree = TreePlatform::chain(&p);
        let s = Schedule::fifo(&p, ids(&[0, 1]), vec![1.0, 1.0]).unwrap();
        let mut rep = simulate_tree(&tree, &s, &SimConfig::ideal());
        let i = rep
            .spans
            .iter()
            .position(|sp| sp.kind == TreeSpanKind::Down && sp.node == WorkerId(1))
            .unwrap();
        rep.spans[i].start = 0.0; // forwarded before stored
        assert!(!verify_tree(&tree, &s, &rep, 1e-9).is_empty());
    }
}
