//! Stochastic and systematic perturbation models.
//!
//! The paper's measured execution times deviate from the LP prediction by
//! up to ~20% (Section 5.3.2) and diverge systematically when the linear
//! cost model stops holding (Section 5.3.3). Since our testbed is a
//! simulator (see `DESIGN.md` §4), these deviations are *modeled*:
//!
//! * [`Noise`] — seeded multiplicative jitter applied to every transfer and
//!   compute interval, standing in for OS scheduling, MPI progress and
//!   network variability;
//! * [`RealismModel`] — per-message latency and a compute inflation factor.
//!   The inflation models cache degradation on large matrices: the paper's
//!   Figure 13(b) shows real/predicted growing roughly linearly in the
//!   matrix size once communication is fast, which a per-unit compute cost
//!   `w · (1 + γ·n)` reproduces.

use rand::Rng;

/// Multiplicative random jitter on a nominal duration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Noise {
    /// No jitter: durations are exactly nominal.
    None,
    /// `nominal · (1 + U(-a, a))`.
    Uniform {
        /// Half-width `a` of the relative perturbation (e.g. `0.05` = ±5%).
        amplitude: f64,
    },
    /// `nominal · (1 + N(0, σ))`, truncated at ±3σ so durations can never
    /// go negative for σ < 1/3.
    Gaussian {
        /// Relative standard deviation.
        sigma: f64,
    },
}

impl Noise {
    /// Applies the jitter to a nominal duration (always returns a
    /// non-negative value).
    pub fn apply(&self, nominal: f64, rng: &mut impl Rng) -> f64 {
        debug_assert!(nominal >= 0.0);
        let jittered = match *self {
            Noise::None => nominal,
            Noise::Uniform { amplitude } => {
                let eps: f64 = rng.gen_range(-amplitude..=amplitude);
                nominal * (1.0 + eps)
            }
            Noise::Gaussian { sigma } => {
                // Box-Muller transform; both uniforms drawn regardless of
                // truncation to keep the RNG stream aligned.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let n = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                let eps = (n * sigma).clamp(-3.0 * sigma, 3.0 * sigma);
                nominal * (1.0 + eps)
            }
        };
        jittered.max(0.0)
    }
}

/// Systematic deviations from the pure linear cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RealismModel {
    /// Jitter on communication intervals.
    pub comm_noise: Noise,
    /// Jitter on computation intervals.
    pub comp_noise: Noise,
    /// Fixed per-message latency (seconds), added to every transfer. The
    /// paper's Figure 8 finds it negligible on the real cluster; it is 0 by
    /// default and available for sensitivity studies.
    pub comm_latency: f64,
    /// Multiplicative inflation of computation time (`>= 1`); models cache
    /// degradation for large working sets (Figure 13(b) discussion).
    pub comp_inflation: f64,
}

impl RealismModel {
    /// The pure linear model: no noise, no latency, no inflation. The
    /// simulator then reproduces [`dls_core::timeline::Timeline`] exactly.
    pub fn ideal() -> Self {
        RealismModel {
            comm_noise: Noise::None,
            comp_noise: Noise::None,
            comm_latency: 0.0,
            comp_inflation: 1.0,
        }
    }

    /// Default "real cluster" jitter used for the Section 5 reproduction:
    /// ±3% Gaussian on both communication and computation.
    pub fn cluster_jitter() -> Self {
        RealismModel {
            comm_noise: Noise::Gaussian { sigma: 0.03 },
            comp_noise: Noise::Gaussian { sigma: 0.03 },
            comm_latency: 0.0,
            comp_inflation: 1.0,
        }
    }

    /// Cluster jitter plus cache-degradation inflation for matrix size `n`:
    /// `comp_inflation = 1 + γ·n` with `γ = 0.002` (calibrated so that the
    /// real/LP ratio roughly doubles over the paper's 40..200 size sweep
    /// when communication is fast, matching Figure 13(b)'s trend).
    pub fn cluster_with_cache_effects(n: usize) -> Self {
        RealismModel {
            comp_inflation: 1.0 + 0.002 * n as f64,
            ..Self::cluster_jitter()
        }
    }

    /// Effective duration of a transfer whose nominal linear cost is
    /// `nominal` seconds.
    pub fn transfer_duration(&self, nominal: f64, rng: &mut impl Rng) -> f64 {
        self.comm_noise.apply(nominal, rng) + self.comm_latency
    }

    /// Effective duration of a computation whose nominal linear cost is
    /// `nominal` seconds.
    pub fn compute_duration(&self, nominal: f64, rng: &mut impl Rng) -> f64 {
        self.comp_noise.apply(nominal * self.comp_inflation, rng)
    }
}

#[cfg(test)]
// Unit tests assert exact outcomes of exact arithmetic.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn none_is_identity() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(Noise::None.apply(3.5, &mut rng), 3.5);
    }

    #[test]
    fn uniform_stays_in_band() {
        let mut rng = StdRng::seed_from_u64(1);
        let noise = Noise::Uniform { amplitude: 0.1 };
        for _ in 0..1000 {
            let v = noise.apply(2.0, &mut rng);
            assert!((1.8..=2.2).contains(&v), "out of band: {v}");
        }
    }

    #[test]
    fn gaussian_is_centered_and_truncated() {
        let mut rng = StdRng::seed_from_u64(2);
        let noise = Noise::Gaussian { sigma: 0.05 };
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = noise.apply(1.0, &mut rng);
            assert!((0.85..=1.15).contains(&v), "beyond 3 sigma: {v}");
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 1.0).abs() < 0.01, "bias: {mean}");
    }

    #[test]
    fn noise_never_negative() {
        let mut rng = StdRng::seed_from_u64(3);
        let noise = Noise::Uniform { amplitude: 2.0 }; // absurd amplitude
        for _ in 0..100 {
            assert!(noise.apply(1.0, &mut rng) >= 0.0);
        }
    }

    #[test]
    fn seeded_noise_is_deterministic() {
        let noise = Noise::Gaussian { sigma: 0.1 };
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..10).map(|_| noise.apply(1.0, &mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..10).map(|_| noise.apply(1.0, &mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn ideal_model_is_exact() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = RealismModel::ideal();
        assert_eq!(m.transfer_duration(1.25, &mut rng), 1.25);
        assert_eq!(m.compute_duration(0.75, &mut rng), 0.75);
    }

    #[test]
    fn latency_adds_per_message() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = RealismModel {
            comm_latency: 0.1,
            ..RealismModel::ideal()
        };
        assert!((m.transfer_duration(1.0, &mut rng) - 1.1).abs() < 1e-12);
    }

    #[test]
    fn inflation_scales_compute_only() {
        let mut rng = StdRng::seed_from_u64(6);
        let m = RealismModel {
            comp_inflation: 1.5,
            ..RealismModel::ideal()
        };
        assert!((m.compute_duration(2.0, &mut rng) - 3.0).abs() < 1e-12);
        assert_eq!(m.transfer_duration(2.0, &mut rng), 2.0);
    }

    #[test]
    fn cache_effect_grows_with_n() {
        let a = RealismModel::cluster_with_cache_effects(40).comp_inflation;
        let b = RealismModel::cluster_with_cache_effects(200).comp_inflation;
        assert!(b > a);
        assert!((a - 1.08).abs() < 1e-12);
        assert!((b - 1.4).abs() < 1e-12);
    }
}
