//! Time-ordered event queue with deterministic FIFO tie-breaking.

use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Internal heap entry: min-ordered by `(time, seq)` so simultaneous events
/// pop in insertion order — determinism matters because seeded experiments
/// must replay bit-for-bit.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event queue: events pop in non-decreasing time order, ties in
/// insertion order.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        self.heap.push(Entry {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::new(3.0), "c");
        q.push(SimTime::new(1.0), "a");
        q.push(SimTime::new(2.0), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        for label in ["first", "second", "third"] {
            q.push(SimTime::new(1.0), label);
        }
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "third");
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::new(5.0), ());
        q.push(SimTime::new(2.0), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::new(2.0)));
        q.pop();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::new(1.0), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(SimTime::new(0.5), 2);
        q.push(SimTime::new(0.7), 3);
        assert_eq!(q.pop().unwrap().1, 2);
        q.push(SimTime::new(0.6), 4);
        assert_eq!(q.pop().unwrap().1, 4);
        assert_eq!(q.pop().unwrap().1, 3);
    }
}
