//! Named platform scenarios taken verbatim from the paper.

use crate::app::{ClusterModel, MatrixApp};
use crate::platform::Platform;

/// The four-worker resource-selection scenario of Section 5.3.4.
///
/// > "We use a platform consisting in 4 workers, where the first 3 workers
/// > are fast both in computation and in communication, and the last worker
/// > is slower:
/// >
/// > | worker              | 1  | 2 | 3  | 4 |
/// > |---------------------|----|---|----|---|
/// > | communication speed | 10 | 8 | 8  | x |
/// > | computation speed   | 9  | 9 | 10 | 1 |"
///
/// `x` is the communication-speed factor of the slow worker: with `x = 1`
/// the paper finds it is never enrolled; with `x = 3` it is enrolled and
/// improves the makespan slightly (Figure 14).
pub fn fig14_factors(x: f64) -> (Vec<f64>, Vec<f64>) {
    (vec![10.0, 8.0, 8.0, x], vec![9.0, 9.0, 10.0, 1.0])
}

/// Builds the Figure 14 platform for matrix size `n` (the paper uses
/// `n = 400`).
pub fn fig14_platform(x: f64, n: usize) -> Platform {
    let (comm, comp) = fig14_factors(x);
    ClusterModel::gdsdmi()
        .platform(&MatrixApp::new(n), &comm, &comp)
        .expect("paper factors are valid")
}

/// A five-worker heterogeneous platform in the spirit of Figure 9's trace
/// visualisation: workers 1-3 are fast communicators/computers and get
/// enrolled; workers 4-5 have such slow links that the optimal FIFO
/// schedule leaves them idle.
pub fn fig9_like_factors() -> (Vec<f64>, Vec<f64>) {
    (
        vec![10.0, 9.0, 8.0, 1.0, 1.0],
        vec![8.0, 9.0, 7.0, 1.0, 1.0],
    )
}

/// Builds the Figure 9-style trace platform for matrix size `n`.
pub fn fig9_platform(n: usize) -> Platform {
    let (comm, comp) = fig9_like_factors();
    ClusterModel::gdsdmi()
        .platform(&MatrixApp::new(n), &comm, &comp)
        .expect("factors are valid")
}

/// The linearity-test speed factors of Figure 8: five workers whose
/// (simulated) communication speeds differ.
pub fn fig8_comm_factors() -> Vec<f64> {
    vec![1.0, 2.0, 3.0, 4.0, 5.0]
}

#[cfg(test)]
// Unit tests assert exact outcomes of exact arithmetic.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn fig14_platform_shape() {
        let p = fig14_platform(1.0, 400);
        assert_eq!(p.num_workers(), 4);
        // Worker 4 with x = 1 has the slowest link (largest c).
        let cs: Vec<f64> = p.workers().iter().map(|w| w.c).collect();
        assert!(cs[3] > cs[0] && cs[3] > cs[1] && cs[3] > cs[2]);
        // Worker 4 is also the slowest computer.
        let ws: Vec<f64> = p.workers().iter().map(|w| w.w).collect();
        assert!(ws[3] > ws[2]);
        assert!((p.common_z().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fig14_x_speeds_up_worker4() {
        let slow = fig14_platform(1.0, 400);
        let fast = fig14_platform(3.0, 400);
        assert!(fast.workers()[3].c < slow.workers()[3].c);
        assert_eq!(fast.workers()[3].w, slow.workers()[3].w);
    }

    #[test]
    fn fig9_platform_has_five_workers() {
        let p = fig9_platform(200);
        assert_eq!(p.num_workers(), 5);
        assert!(!p.is_bus());
    }

    #[test]
    fn fig8_factors() {
        assert_eq!(fig8_comm_factors().len(), 5);
    }
}
