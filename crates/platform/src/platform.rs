//! Star-network platform: one master, `p` heterogeneous workers.

use core::fmt;

use crate::worker::{Worker, WorkerId};

/// Errors raised while building a platform.
#[derive(Debug, Clone, PartialEq)]
pub enum PlatformError {
    /// A platform needs at least one worker.
    Empty,
    /// A cost parameter was zero, negative, or non-finite.
    InvalidCost {
        /// Offending worker.
        worker: usize,
        /// Which parameter (`"c"`, `"w"` or `"d"`).
        param: &'static str,
        /// The bad value.
        value: f64,
    },
    /// A tree node's parent link was missing or pointed at a node that is
    /// not strictly earlier in the topological numbering (see
    /// [`crate::TreePlatform::new`]).
    InvalidParent {
        /// Offending node index.
        node: usize,
    },
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::Empty => write!(f, "platform has no workers"),
            PlatformError::InvalidCost {
                worker,
                param,
                value,
            } => write!(
                f,
                "worker P{} has invalid {param} = {value} (must be finite and > 0)",
                worker + 1
            ),
            PlatformError::InvalidParent { node } => write!(
                f,
                "tree node P{} has a missing or non-topological parent link",
                node + 1
            ),
        }
    }
}

impl std::error::Error for PlatformError {}

/// A heterogeneous star platform `S = {P0, P1, .., Pp}` (Figure 1 of the
/// paper): master `P0` linked to each worker by a dedicated link.
///
/// A *bus* platform is the special case where every link has identical
/// `c` and `d` (worker compute speeds may still differ).
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    workers: Vec<Worker>,
}

impl Platform {
    /// Builds a platform from explicit workers, validating every cost.
    ///
    /// `d` may be zero (the classical no-return-message model); `c` and `w`
    /// must be strictly positive.
    pub fn new(workers: Vec<Worker>) -> Result<Self, PlatformError> {
        if workers.is_empty() {
            return Err(PlatformError::Empty);
        }
        for (i, wk) in workers.iter().enumerate() {
            for (param, v) in [("c", wk.c), ("w", wk.w)] {
                if !v.is_finite() || v <= 0.0 {
                    return Err(PlatformError::InvalidCost {
                        worker: i,
                        param,
                        value: v,
                    });
                }
            }
            if !wk.d.is_finite() || wk.d < 0.0 {
                return Err(PlatformError::InvalidCost {
                    worker: i,
                    param: "d",
                    value: wk.d,
                });
            }
        }
        Ok(Platform { workers })
    }

    /// Builds a star platform from `(c, w)` pairs with `d = z·c`.
    pub fn star_with_z(cw: &[(f64, f64)], z: f64) -> Result<Self, PlatformError> {
        Self::new(
            cw.iter()
                .map(|&(c, w)| Worker::with_z(c, w, z))
                .collect::<Vec<_>>(),
        )
    }

    /// Builds a bus platform: identical links (`c`, `d`), per-worker compute
    /// costs `ws`.
    pub fn bus(c: f64, d: f64, ws: &[f64]) -> Result<Self, PlatformError> {
        Self::new(ws.iter().map(|&w| Worker::new(c, w, d)).collect())
    }

    /// Number of workers `p`.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Worker ids in declaration order.
    pub fn ids(&self) -> impl Iterator<Item = WorkerId> + '_ {
        (0..self.workers.len()).map(WorkerId)
    }

    /// The worker with the given id.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn worker(&self, id: WorkerId) -> &Worker {
        &self.workers[id.0]
    }

    /// All workers in declaration order.
    pub fn workers(&self) -> &[Worker] {
        &self.workers
    }

    /// `true` when every link has the same `(c, d)` up to relative tolerance
    /// (i.e. the star degenerates into a bus).
    pub fn is_bus(&self) -> bool {
        let first = &self.workers[0];
        self.workers
            .iter()
            .all(|w| rel_eq(w.c, first.c) && rel_eq(w.d, first.d))
    }

    /// Returns the application constant `z = d/c` when it is common to all
    /// workers (up to relative tolerance), `None` otherwise.
    pub fn common_z(&self) -> Option<f64> {
        let z0 = self.workers[0].ratio();
        if self.workers.iter().all(|w| rel_eq(w.ratio(), z0)) {
            Some(z0)
        } else {
            None
        }
    }

    /// Mirror platform: every worker's `c` and `d` swapped. A schedule for
    /// the mirror, with time reversed, is a schedule for the original with
    /// the same throughput (Section 3, case `z > 1`).
    pub fn mirror(&self) -> Platform {
        Platform {
            workers: self.workers.iter().map(Worker::mirrored).collect(),
        }
    }

    /// Worker ids sorted by non-decreasing forward-communication cost `c`
    /// (the paper's `INC_C` order: "serve fast-communicating workers
    /// first"). Ties broken by declaration order (stable).
    pub fn order_by_c(&self) -> Vec<WorkerId> {
        let mut ids: Vec<WorkerId> = self.ids().collect();
        ids.sort_by(|a, b| self.worker(*a).c.total_cmp(&self.worker(*b).c));
        ids
    }

    /// Worker ids sorted by non-increasing `c` (optimal FIFO send order when
    /// `z > 1`, by the mirror argument).
    pub fn order_by_c_desc(&self) -> Vec<WorkerId> {
        let mut ids = self.order_by_c();
        ids.reverse();
        ids
    }

    /// Worker ids sorted by non-decreasing compute cost `w` (the paper's
    /// `INC_W` heuristic: "serve fast-computing workers first").
    pub fn order_by_w(&self) -> Vec<WorkerId> {
        let mut ids: Vec<WorkerId> = self.ids().collect();
        ids.sort_by(|a, b| self.worker(*a).w.total_cmp(&self.worker(*b).w));
        ids
    }

    /// Uniformly scales all communication costs (both `c` and `d`) by `k`.
    /// `k < 1` models faster links (the paper's "communication power ×10"
    /// scales by `1/10`).
    pub fn scale_comm(&self, k: f64) -> Platform {
        Platform {
            workers: self
                .workers
                .iter()
                .map(|w| Worker::new(w.c * k, w.w, w.d * k))
                .collect(),
        }
    }

    /// Uniformly scales all computation costs by `k`.
    pub fn scale_comp(&self, k: f64) -> Platform {
        Platform {
            workers: self
                .workers
                .iter()
                .map(|w| Worker::new(w.c, w.w * k, w.d))
                .collect(),
        }
    }

    /// Restriction of the platform to the given workers (in the given
    /// order); ids in the result are renumbered `0..k`.
    pub fn restrict(&self, ids: &[WorkerId]) -> Result<Platform, PlatformError> {
        Platform::new(ids.iter().map(|id| *self.worker(*id)).collect())
    }
}

fn rel_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "star platform, {} workers:", self.num_workers())?;
        for (i, w) in self.workers.iter().enumerate() {
            writeln!(
                f,
                "  P{:<3} c = {:>10.6}  w = {:>10.6}  d = {:>10.6}",
                i + 1,
                w.c,
                w.w,
                w.d
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
// Unit tests assert exact outcomes of exact arithmetic.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn sample() -> Platform {
        Platform::star_with_z(&[(3.0, 5.0), (1.0, 2.0), (2.0, 9.0)], 0.5).unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let p = sample();
        assert_eq!(p.num_workers(), 3);
        assert_eq!(p.worker(WorkerId(0)).c, 3.0);
        assert_eq!(p.worker(WorkerId(1)).d, 0.5);
        assert_eq!(p.common_z(), Some(0.5));
        assert!(!p.is_bus());
    }

    #[test]
    fn empty_platform_rejected() {
        assert_eq!(Platform::new(vec![]), Err(PlatformError::Empty));
    }

    #[test]
    fn invalid_costs_rejected() {
        let bad = Platform::new(vec![Worker::new(0.0, 1.0, 0.5)]);
        assert!(matches!(
            bad,
            Err(PlatformError::InvalidCost { param: "c", .. })
        ));
        let bad = Platform::new(vec![Worker::new(1.0, -1.0, 0.5)]);
        assert!(matches!(
            bad,
            Err(PlatformError::InvalidCost { param: "w", .. })
        ));
        let bad = Platform::new(vec![Worker::new(1.0, 1.0, f64::NAN)]);
        assert!(matches!(
            bad,
            Err(PlatformError::InvalidCost { param: "d", .. })
        ));
    }

    #[test]
    fn zero_return_cost_allowed() {
        // The classical DLS model without return messages.
        let p = Platform::new(vec![Worker::new(1.0, 2.0, 0.0)]).unwrap();
        assert_eq!(p.worker(WorkerId(0)).d, 0.0);
    }

    #[test]
    fn bus_detection() {
        let bus = Platform::bus(2.0, 1.0, &[1.0, 5.0, 9.0]).unwrap();
        assert!(bus.is_bus());
        assert_eq!(bus.common_z(), Some(0.5));
        assert!(!sample().is_bus());
    }

    #[test]
    fn order_by_c_is_stable_nondecreasing() {
        let p = sample();
        let order = p.order_by_c();
        assert_eq!(order, vec![WorkerId(1), WorkerId(2), WorkerId(0)]);
        let tie = Platform::star_with_z(&[(1.0, 9.0), (1.0, 2.0)], 0.5).unwrap();
        assert_eq!(tie.order_by_c(), vec![WorkerId(0), WorkerId(1)]);
    }

    #[test]
    fn order_by_w() {
        let p = sample();
        assert_eq!(p.order_by_w(), vec![WorkerId(1), WorkerId(0), WorkerId(2)]);
    }

    #[test]
    fn mirror_swaps_and_inverts_z() {
        let p = sample();
        let m = p.mirror();
        assert_eq!(m.worker(WorkerId(0)).c, 1.5);
        assert_eq!(m.worker(WorkerId(0)).d, 3.0);
        let z = m.common_z().unwrap();
        assert!((z - 2.0).abs() < 1e-12);
        assert_eq!(m.mirror(), p);
    }

    #[test]
    fn scaling() {
        let p = sample();
        let fast_comm = p.scale_comm(0.1);
        assert!((fast_comm.worker(WorkerId(0)).c - 0.3).abs() < 1e-12);
        assert!((fast_comm.worker(WorkerId(0)).d - 0.15).abs() < 1e-12);
        assert_eq!(fast_comm.worker(WorkerId(0)).w, 5.0);
        let fast_comp = p.scale_comp(0.1);
        assert!((fast_comp.worker(WorkerId(0)).w - 0.5).abs() < 1e-12);
    }

    #[test]
    fn restrict_renumbers() {
        let p = sample();
        let r = p.restrict(&[WorkerId(2), WorkerId(0)]).unwrap();
        assert_eq!(r.num_workers(), 2);
        assert_eq!(r.worker(WorkerId(0)).w, 9.0);
        assert_eq!(r.worker(WorkerId(1)).w, 5.0);
    }

    #[test]
    fn display_contains_costs() {
        let s = sample().to_string();
        assert!(s.contains("3 workers"));
        assert!(s.contains("P1"));
    }
}
