//! Random platform generation matching Section 5.3.2 of the paper.
//!
//! The paper evaluates heuristics on "a large number of platforms, randomly
//! generated, with parameters varying from 1 to 10, where 1 represents the
//! original speed ... and 10 represents a worker 10 times faster". Three
//! families appear in Figures 10-12:
//!
//! * **homogeneous** platforms (Fig. 10): every worker shares the same
//!   (random) communication and computation speed — a bus;
//! * **homogeneous communication, heterogeneous computation** (Fig. 11):
//!   a bus with per-worker compute speeds — the Theorem 2 regime;
//! * **fully heterogeneous** stars (Fig. 12).
//!
//! Generation is seeded and deterministic: every figure in
//! `EXPERIMENTS.md` regenerates bit-for-bit.

use rand::distributions::{Distribution, Uniform};
use rand::Rng;

use crate::app::{ClusterModel, MatrixApp};
use crate::platform::Platform;

/// How a speed factor varies across the workers of one platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Heterogeneity {
    /// Factor fixed to 1 for every worker (the base cluster).
    Base,
    /// One random factor drawn per platform, shared by all workers.
    PerPlatform,
    /// An independent random factor per worker.
    PerWorker,
}

/// Configuration for random platform sampling.
#[derive(Debug, Clone)]
pub struct PlatformSampler {
    /// Number of workers (the paper uses 11: twelve nodes, one master).
    pub workers: usize,
    /// Communication-speed heterogeneity.
    pub comm: Heterogeneity,
    /// Computation-speed heterogeneity.
    pub comp: Heterogeneity,
    /// Inclusive range speed factors are drawn from (paper: `[1, 10]`).
    pub factor_range: (f64, f64),
}

impl PlatformSampler {
    /// The paper's default: 11 workers, factors in `[1, 10]`.
    pub fn paper_default(comm: Heterogeneity, comp: Heterogeneity) -> Self {
        PlatformSampler {
            workers: 11,
            comm,
            comp,
            factor_range: (1.0, 10.0),
        }
    }

    /// Fig. 10 family: homogeneous random platforms (bus, uniform compute).
    pub fn homogeneous() -> Self {
        Self::paper_default(Heterogeneity::PerPlatform, Heterogeneity::PerPlatform)
    }

    /// Fig. 11 family: homogeneous communication, heterogeneous computation.
    pub fn hetero_compute_bus() -> Self {
        Self::paper_default(Heterogeneity::PerPlatform, Heterogeneity::PerWorker)
    }

    /// Fig. 12 family: fully heterogeneous star.
    pub fn hetero_star() -> Self {
        Self::paper_default(Heterogeneity::PerWorker, Heterogeneity::PerWorker)
    }

    /// Draws the per-worker speed-factor vectors `(comm, comp)`.
    pub fn sample_factors(&self, rng: &mut impl Rng) -> (Vec<f64>, Vec<f64>) {
        let dist = Uniform::new_inclusive(self.factor_range.0, self.factor_range.1);
        let draw = |kind: Heterogeneity, rng: &mut dyn rand::RngCore| -> Vec<f64> {
            match kind {
                Heterogeneity::Base => vec![1.0; self.workers],
                Heterogeneity::PerPlatform => {
                    let f = dist.sample(rng);
                    vec![f; self.workers]
                }
                Heterogeneity::PerWorker => (0..self.workers).map(|_| dist.sample(rng)).collect(),
            }
        };
        let comm = draw(self.comm, rng);
        let comp = draw(self.comp, rng);
        (comm, comp)
    }

    /// Samples a platform for the matrix application `app` on cluster
    /// `cluster`.
    pub fn sample(&self, app: &MatrixApp, cluster: &ClusterModel, rng: &mut impl Rng) -> Platform {
        let (comm, comp) = self.sample_factors(rng);
        cluster
            .platform(app, &comm, &comp)
            .expect("sampled factors always yield valid costs")
    }

    /// Samples an *abstract* platform with unit base costs (`c = 1/f_comm`,
    /// `w = base_w/f_comp`, `d = z·c`). Useful for theory-level tests that
    /// need no application model.
    pub fn sample_abstract(&self, base_w: f64, z: f64, rng: &mut impl Rng) -> Platform {
        let (comm, comp) = self.sample_factors(rng);
        let workers: Vec<(f64, f64)> = comm
            .iter()
            .zip(&comp)
            .map(|(&cf, &wf)| (1.0 / cf, base_w / wf))
            .collect();
        Platform::star_with_z(&workers, z).expect("positive factors yield valid costs")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn homogeneous_sampler_yields_bus() {
        let mut rng = StdRng::seed_from_u64(42);
        let app = MatrixApp::new(100);
        let cl = ClusterModel::gdsdmi();
        for _ in 0..10 {
            let p = PlatformSampler::homogeneous().sample(&app, &cl, &mut rng);
            assert!(p.is_bus());
            assert_eq!(p.num_workers(), 11);
            // Fig. 10 platforms are fully homogeneous: same w too.
            let w0 = p.workers()[0].w;
            assert!(p.workers().iter().all(|w| (w.w - w0).abs() < 1e-12));
        }
    }

    #[test]
    fn hetero_compute_bus_is_bus_with_varied_w() {
        let mut rng = StdRng::seed_from_u64(7);
        let app = MatrixApp::new(100);
        let cl = ClusterModel::gdsdmi();
        let p = PlatformSampler::hetero_compute_bus().sample(&app, &cl, &mut rng);
        assert!(p.is_bus());
        let w0 = p.workers()[0].w;
        assert!(p.workers().iter().any(|w| (w.w - w0).abs() > 1e-9));
    }

    #[test]
    fn hetero_star_varies_links() {
        let mut rng = StdRng::seed_from_u64(3);
        let app = MatrixApp::new(100);
        let cl = ClusterModel::gdsdmi();
        let p = PlatformSampler::hetero_star().sample(&app, &cl, &mut rng);
        assert!(!p.is_bus());
        // z stays pinned at the application value.
        assert!((p.common_z().unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn factors_respect_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let s = PlatformSampler::hetero_star();
        for _ in 0..100 {
            let (comm, comp) = s.sample_factors(&mut rng);
            for f in comm.iter().chain(&comp) {
                assert!(*f >= 1.0 && *f <= 10.0, "factor {f} out of range");
            }
        }
    }

    #[test]
    fn seeded_sampling_is_deterministic() {
        let app = MatrixApp::new(80);
        let cl = ClusterModel::gdsdmi();
        let a = PlatformSampler::hetero_star().sample(&app, &cl, &mut StdRng::seed_from_u64(5));
        let b = PlatformSampler::hetero_star().sample(&app, &cl, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    fn abstract_sampler_ties_z() {
        let mut rng = StdRng::seed_from_u64(13);
        let p = PlatformSampler::hetero_star().sample_abstract(5.0, 0.8, &mut rng);
        assert!((p.common_z().unwrap() - 0.8).abs() < 1e-9);
        assert_eq!(p.num_workers(), 11);
    }

    #[test]
    fn base_heterogeneity_gives_unit_factors() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = PlatformSampler {
            workers: 4,
            comm: Heterogeneity::Base,
            comp: Heterogeneity::Base,
            factor_range: (1.0, 10.0),
        };
        let (comm, comp) = s.sample_factors(&mut rng);
        assert_eq!(comm, vec![1.0; 4]);
        assert_eq!(comp, vec![1.0; 4]);
    }
}
