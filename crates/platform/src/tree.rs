//! Multi-level tree platforms: master → relays → workers.
//!
//! The paper's platform is a single-level star (Figure 1). Real deployments
//! are hierarchical: the master feeds *relay* nodes which forward load to
//! deeper nodes over their own links (cf. the linear daisy-chain platforms
//! of Gallet, Robert & Vivien). A [`TreePlatform`] is an arbitrary-depth
//! rooted tree over the same per-node cost triple `(c, w, d)`:
//!
//! * the (implicit) root is the master, exactly like [`Platform`]'s `P0`;
//! * every non-root node `i` owns the link to its parent — forwarding one
//!   load unit down that link costs `c_i`, returning results up costs
//!   `d_i` — and can itself process load at cost `w_i` per unit;
//! * communication is **store-and-forward** (a relay must fully receive a
//!   message before forwarding it) and every node, master included, is
//!   **one-port**: at most one transfer on any of its incident links at a
//!   time.
//!
//! A depth-1 tree (every node a child of the master) *is* a star, and
//! [`TreePlatform::star`] / [`TreePlatform::to_star`] convert losslessly.
//! The scheduling machinery for trees — the bandwidth-equivalent
//! star-collapse reduction and the `tree_fifo`/`tree_lifo` strategies —
//! lives in the `dls-tree` crate; the store-and-forward simulator lives in
//! `dls-sim`.

use core::fmt;

use rand::Rng;

use crate::platform::{Platform, PlatformError};
use crate::worker::{Worker, WorkerId};

/// A rooted tree of relay/worker nodes under one master.
///
/// Nodes are numbered `0..n` in *topological* order: a node's parent always
/// has a smaller index (enforced at construction), so bottom-up folds are
/// plain reverse iterations. Node ids reuse [`WorkerId`], which keeps a
/// depth-1 tree literally id-compatible with the [`Platform`] it came from.
#[derive(Debug, Clone, PartialEq)]
pub struct TreePlatform {
    workers: Vec<Worker>,
    parents: Vec<Option<WorkerId>>,
}

impl TreePlatform {
    /// Builds a tree from per-node costs and parent links (`None` = child
    /// of the master). Costs are validated exactly like [`Platform::new`];
    /// every `Some(parent)` must point at a *smaller* node index, which
    /// both rules out cycles and fixes the topological numbering.
    pub fn new(
        workers: Vec<Worker>,
        parents: Vec<Option<WorkerId>>,
    ) -> Result<Self, PlatformError> {
        // Reuse the star validation for the cost triples.
        let star = Platform::new(workers)?;
        let workers = star.workers().to_vec();
        if parents.len() != workers.len() {
            return Err(PlatformError::InvalidParent {
                node: parents.len().min(workers.len()),
            });
        }
        for (i, parent) in parents.iter().enumerate() {
            if let Some(p) = parent {
                if p.index() >= i {
                    return Err(PlatformError::InvalidParent { node: i });
                }
            }
        }
        Ok(TreePlatform { workers, parents })
    }

    /// The depth-1 tree equivalent to `platform`: every worker a child of
    /// the master, same ids and costs.
    pub fn star(platform: &Platform) -> Self {
        TreePlatform {
            workers: platform.workers().to_vec(),
            parents: vec![None; platform.num_workers()],
        }
    }

    /// Arranges `platform`'s workers (in declaration order) into a balanced
    /// `fanout`-ary tree: the first `fanout` workers are children of the
    /// master, node `i ≥ fanout` hangs under node `i/fanout - 1` (the heap
    /// layout). `fanout = 1` yields a chain; `fanout ≥ p` yields the star.
    ///
    /// # Panics
    /// Panics when `fanout == 0`.
    pub fn balanced(platform: &Platform, fanout: usize) -> Self {
        assert!(fanout > 0, "a tree needs fanout >= 1");
        let parents = (0..platform.num_workers())
            .map(|i| {
                if i < fanout {
                    None
                } else {
                    Some(WorkerId(i / fanout - 1))
                }
            })
            .collect();
        TreePlatform {
            workers: platform.workers().to_vec(),
            parents,
        }
    }

    /// The linear daisy chain over `platform`'s workers (declaration
    /// order): master → P1 → P2 → …
    pub fn chain(platform: &Platform) -> Self {
        Self::balanced(platform, 1)
    }

    /// A random tree over `platform`'s workers: node `i`'s parent is drawn
    /// uniformly from the master and all earlier nodes (the "random
    /// recursive tree" model), so every topology from chain to star is
    /// reachable. Seeded `rng` ⇒ deterministic.
    pub fn random(platform: &Platform, rng: &mut impl Rng) -> Self {
        let parents = (0..platform.num_workers())
            .map(|i| {
                let pick = rng.gen_range(0..i + 1);
                if pick == 0 {
                    None
                } else {
                    Some(WorkerId(pick - 1))
                }
            })
            .collect();
        TreePlatform {
            workers: platform.workers().to_vec(),
            parents,
        }
    }

    /// Number of (non-master) nodes.
    pub fn num_nodes(&self) -> usize {
        self.workers.len()
    }

    /// Node ids in topological (declaration) order.
    pub fn ids(&self) -> impl Iterator<Item = WorkerId> + '_ {
        (0..self.workers.len()).map(WorkerId)
    }

    /// The cost triple of one node (`c`/`d` price its parent link).
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn node(&self, id: WorkerId) -> &Worker {
        &self.workers[id.index()]
    }

    /// All node cost triples in declaration order.
    pub fn nodes(&self) -> &[Worker] {
        &self.workers
    }

    /// A node's parent (`None` = the master).
    pub fn parent(&self, id: WorkerId) -> Option<WorkerId> {
        self.parents[id.index()]
    }

    /// Children of a node, in declaration order.
    pub fn children(&self, id: WorkerId) -> Vec<WorkerId> {
        self.ids()
            .filter(|&c| self.parents[c.index()] == Some(id))
            .collect()
    }

    /// `true` when the node has no children.
    pub fn is_leaf(&self, id: WorkerId) -> bool {
        !self.parents.contains(&Some(id))
    }

    /// Number of relay nodes (nodes with at least one child).
    pub fn num_relays(&self) -> usize {
        self.ids().filter(|id| !self.is_leaf(*id)).count()
    }

    /// Depth of a node: 1 for children of the master.
    pub fn node_depth(&self, id: WorkerId) -> usize {
        1 + self.parent(id).map_or(0, |p| self.node_depth(p))
    }

    /// Depth of the tree (max node depth; a star has depth 1).
    pub fn depth(&self) -> usize {
        self.ids().map(|id| self.node_depth(id)).max().unwrap_or(0)
    }

    /// The root-to-node path, from the master's child down to (and
    /// including) `id`.
    pub fn path(&self, id: WorkerId) -> Vec<WorkerId> {
        let mut path = vec![id];
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }

    /// Summed link costs `(Σc, Σd)` along the root-to-node path — the
    /// serialized cost of moving one load unit to/from the node.
    pub fn path_costs(&self, id: WorkerId) -> (f64, f64) {
        self.path(id)
            .iter()
            .map(|n| {
                let w = self.node(*n);
                (w.c, w.d)
            })
            .fold((0.0, 0.0), |(c, d), (ec, ed)| (c + ec, d + ed))
    }

    /// `true` when every node is a child of the master (depth 1).
    pub fn is_star(&self) -> bool {
        self.parents.iter().all(|p| p.is_none())
    }

    /// The equivalent [`Platform`] when the tree is depth-1 (`None`
    /// otherwise).
    pub fn to_star(&self) -> Option<Platform> {
        if self.is_star() {
            Some(Platform::new(self.workers.clone()).expect("validated at construction"))
        } else {
            None
        }
    }

    /// Returns the application constant `z = d/c` when it is common to all
    /// nodes, `None` otherwise. A `z`-tied tree collapses into a `z`-tied
    /// star (path sums preserve the ratio), so the Theorem 1 machinery
    /// applies to the collapsed platform.
    pub fn common_z(&self) -> Option<f64> {
        Platform::new(self.workers.clone())
            .expect("validated at construction")
            .common_z()
    }
}

impl fmt::Display for TreePlatform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "tree platform, {} nodes, depth {}, {} relays:",
            self.num_nodes(),
            self.depth(),
            self.num_relays()
        )?;
        for id in self.ids() {
            let w = self.node(id);
            let parent = match self.parent(id) {
                Some(p) => p.to_string(),
                None => "master".into(),
            };
            writeln!(
                f,
                "  {:<4} parent = {:<7} c = {:>10.6}  w = {:>10.6}  d = {:>10.6}",
                id.to_string(),
                parent,
                w.c,
                w.w,
                w.d
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn star4() -> Platform {
        Platform::star_with_z(&[(1.0, 2.0), (2.0, 3.0), (1.5, 4.0), (0.5, 5.0)], 0.5).unwrap()
    }

    #[test]
    fn balanced_layouts() {
        let p = star4();
        let chain = TreePlatform::chain(&p);
        assert_eq!(chain.depth(), 4);
        assert_eq!(chain.parent(WorkerId(3)), Some(WorkerId(2)));
        assert_eq!(chain.num_relays(), 3);

        let binary = TreePlatform::balanced(&p, 2);
        assert_eq!(binary.depth(), 2);
        assert_eq!(binary.parent(WorkerId(0)), None);
        assert_eq!(binary.parent(WorkerId(2)), Some(WorkerId(0)));
        assert_eq!(binary.parent(WorkerId(3)), Some(WorkerId(0)));
        assert_eq!(binary.children(WorkerId(0)), vec![WorkerId(2), WorkerId(3)]);

        let flat = TreePlatform::balanced(&p, 10);
        assert!(flat.is_star());
        assert_eq!(flat.depth(), 1);
        assert_eq!(flat.to_star().unwrap(), p);
        assert_eq!(TreePlatform::star(&p), flat);
    }

    #[test]
    fn paths_and_costs() {
        let p = star4();
        let chain = TreePlatform::chain(&p);
        assert_eq!(
            chain.path(WorkerId(2)),
            vec![WorkerId(0), WorkerId(1), WorkerId(2)]
        );
        let (c, d) = chain.path_costs(WorkerId(2));
        assert!((c - 4.5).abs() < 1e-12);
        assert!((d - 2.25).abs() < 1e-12);
        assert_eq!(chain.node_depth(WorkerId(2)), 3);
        assert!((chain.common_z().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn construction_rejects_bad_parents_and_costs() {
        let w = vec![Worker::new(1.0, 2.0, 0.5), Worker::new(1.0, 2.0, 0.5)];
        // Forward (or self) parent reference breaks the topological order.
        assert_eq!(
            TreePlatform::new(w.clone(), vec![Some(WorkerId(1)), None]),
            Err(PlatformError::InvalidParent { node: 0 })
        );
        assert_eq!(
            TreePlatform::new(w.clone(), vec![None]),
            Err(PlatformError::InvalidParent { node: 1 })
        );
        assert!(matches!(
            TreePlatform::new(vec![Worker::new(0.0, 1.0, 0.5)], vec![None]),
            Err(PlatformError::InvalidCost { param: "c", .. })
        ));
        // A valid explicit two-level tree.
        let t = TreePlatform::new(w, vec![None, Some(WorkerId(0))]).unwrap();
        assert_eq!(t.depth(), 2);
        assert!(!t.is_star());
        assert!(t.to_star().is_none());
    }

    #[test]
    fn random_trees_are_valid_and_deterministic() {
        let p = star4();
        let a = TreePlatform::random(&p, &mut StdRng::seed_from_u64(9));
        let b = TreePlatform::random(&p, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        for id in a.ids() {
            if let Some(parent) = a.parent(id) {
                assert!(parent.index() < id.index());
            }
        }
        assert!(a.depth() >= 1 && a.depth() <= 4);
    }

    #[test]
    fn leaves_and_relays_partition_the_nodes() {
        let p = star4();
        let t = TreePlatform::balanced(&p, 2);
        let leaves = t.ids().filter(|id| t.is_leaf(*id)).count();
        assert_eq!(leaves + t.num_relays(), t.num_nodes());
        assert!(t.is_leaf(WorkerId(3)));
        assert!(!t.is_leaf(WorkerId(0)));
    }

    #[test]
    fn display_mentions_topology() {
        let p = star4();
        let s = TreePlatform::balanced(&p, 2).to_string();
        assert!(s.contains("depth 2"));
        assert!(s.contains("master"));
    }
}
