//! Application cost models.
//!
//! The paper's MPI experiments (Section 5) use **matrix multiplication** as
//! the divisible application: one load unit = one product of two dense
//! `n × n` matrices of `f64`. The master ships both operands (so the input
//! message is twice the size of the output) and receives the product back:
//! `z = d/c = 1/2` exactly.
//!
//! [`ClusterModel`] captures the testbed: the paper's `gdsdmi` cluster at
//! LIP/ENS Lyon (P4 2.4 GHz nodes on commodity Ethernet, MPICH). We model
//! it as a bandwidth and an effective flop rate; the calibration constants
//! are documented on [`ClusterModel::gdsdmi`]. Absolute seconds are not
//! expected to match the 2005 hardware — only the *cost structure* matters
//! for reproducing the paper's comparisons, as argued in `DESIGN.md`.

use crate::platform::{Platform, PlatformError};
use crate::worker::Worker;

/// The matrix-product divisible application of Section 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatrixApp {
    /// Matrix dimension `n` (each product multiplies two `n × n` matrices).
    pub n: usize,
}

impl MatrixApp {
    /// New application instance for `n × n` matrices.
    pub fn new(n: usize) -> Self {
        MatrixApp { n }
    }

    /// Bytes shipped from master to worker per load unit: two `n × n`
    /// matrices of 8-byte floats.
    pub fn input_bytes(&self) -> f64 {
        2.0 * 8.0 * (self.n * self.n) as f64
    }

    /// Bytes returned per load unit: one `n × n` matrix.
    pub fn output_bytes(&self) -> f64 {
        8.0 * (self.n * self.n) as f64
    }

    /// Floating-point operations per product (`2n³`: an add and a multiply
    /// per inner-loop step).
    pub fn flops(&self) -> f64 {
        2.0 * (self.n as f64).powi(3)
    }

    /// Return-to-forward message ratio: exactly `1/2` for this application.
    pub fn z(&self) -> f64 {
        self.output_bytes() / self.input_bytes()
    }
}

/// A homogeneous cluster node/network model from which per-worker costs are
/// derived by speed factors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterModel {
    /// Sustained point-to-point bandwidth of a master-worker link, bytes/s.
    pub bandwidth: f64,
    /// Effective sustained flop rate of one worker, flop/s.
    pub flops: f64,
}

impl ClusterModel {
    /// Model of the paper's `gdsdmi` cluster (12 × P4 2.4 GHz, commodity
    /// Ethernet, MPICH):
    ///
    /// * 100 Mbit/s switched Ethernet ≈ **11.9 MB/s** sustained;
    /// * a straightforward triple-loop matrix product on a P4 2.4 GHz with
    ///   out-of-cache operands sustains on the order of **60 Mflop/s**
    ///   (the paper's programs are plain MPI + C, not tuned BLAS; for
    ///   n ≳ 130 the three `n × n` double matrices exceed the P4's 512 KB
    ///   L2 and the naive loop is memory-bound).
    ///
    /// This calibration puts the random platforms of Figures 10-12 in the
    /// mixed comm/compute regime where the paper's observed heuristic
    /// ranking (`LIFO ≲ INC_C < INC_W`) is reproduced; see
    /// `EXPERIMENTS.md` for the regime-sensitivity analysis.
    pub fn gdsdmi() -> Self {
        ClusterModel {
            bandwidth: 11.9e6,
            flops: 60.0e6,
        }
    }

    /// Forward communication cost (s per load unit) at speed factor `k`
    /// (`k` times faster than the base cluster; the paper simulates
    /// heterogeneity exactly this way, by shrinking message sizes).
    pub fn comm_cost(&self, app: &MatrixApp, factor: f64) -> f64 {
        app.input_bytes() / (self.bandwidth * factor)
    }

    /// Computation cost (s per load unit) at speed factor `k`.
    pub fn comp_cost(&self, app: &MatrixApp, factor: f64) -> f64 {
        app.flops() / (self.flops * factor)
    }

    /// Builds the star platform for `app` given per-worker speed factors.
    ///
    /// `comm_factors[i]` and `comp_factors[i]` are the paper's "1 to 10"
    /// speed multipliers (1 = original node speed, 10 = ten times faster).
    /// Both slices must have the same length.
    pub fn platform(
        &self,
        app: &MatrixApp,
        comm_factors: &[f64],
        comp_factors: &[f64],
    ) -> Result<Platform, PlatformError> {
        assert_eq!(
            comm_factors.len(),
            comp_factors.len(),
            "factor slices must have equal length"
        );
        let z = app.z();
        Platform::new(
            comm_factors
                .iter()
                .zip(comp_factors)
                .map(|(&cf, &wf)| {
                    let c = self.comm_cost(app, cf);
                    Worker::new(c, self.comp_cost(app, wf), z * c)
                })
                .collect(),
        )
    }
}

#[cfg(test)]
// Unit tests assert exact outcomes of exact arithmetic.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn matrix_sizes_scale_correctly() {
        let app = MatrixApp::new(100);
        assert_eq!(app.input_bytes(), 160_000.0);
        assert_eq!(app.output_bytes(), 80_000.0);
        assert_eq!(app.flops(), 2.0e6);
        assert_eq!(app.z(), 0.5);
    }

    #[test]
    fn z_is_half_for_all_sizes() {
        for n in [1, 40, 200, 400] {
            assert_eq!(MatrixApp::new(n).z(), 0.5);
        }
    }

    #[test]
    fn faster_factor_means_smaller_cost() {
        let app = MatrixApp::new(200);
        let cl = ClusterModel::gdsdmi();
        assert!(cl.comm_cost(&app, 10.0) < cl.comm_cost(&app, 1.0));
        assert!((cl.comm_cost(&app, 2.0) * 2.0 - cl.comm_cost(&app, 1.0)).abs() < 1e-12);
        assert!(cl.comp_cost(&app, 5.0) < cl.comp_cost(&app, 1.0));
    }

    #[test]
    fn derived_platform_has_tied_z() {
        let app = MatrixApp::new(100);
        let cl = ClusterModel::gdsdmi();
        let p = cl
            .platform(&app, &[1.0, 2.0, 4.0], &[1.0, 1.0, 8.0])
            .unwrap();
        assert_eq!(p.num_workers(), 3);
        let z = p.common_z().unwrap();
        assert!((z - 0.5).abs() < 1e-12);
        // Twice the comm factor halves c.
        let w = p.workers();
        assert!((w[0].c / w[1].c - 2.0).abs() < 1e-9);
    }

    #[test]
    fn gdsdmi_magnitudes_are_sane() {
        // For n = 400 on the base node: sending ~2.56 MB at ~11.9 MB/s takes
        // a few tenths of a second; computing 1.28e8 flops at 6e7 flop/s
        // takes ~2.1 s. Sanity-check orders of magnitude only.
        let app = MatrixApp::new(400);
        let cl = ClusterModel::gdsdmi();
        let c = cl.comm_cost(&app, 1.0);
        let w = cl.comp_cost(&app, 1.0);
        assert!(c > 0.05 && c < 1.0, "comm cost {c}");
        assert!(w > 0.5 && w < 5.0, "comp cost {w}");
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_factor_slices_panic() {
        let app = MatrixApp::new(10);
        let _ = ClusterModel::gdsdmi().platform(&app, &[1.0], &[1.0, 2.0]);
    }
}
