//! # dls-platform — master-worker star platforms for divisible-load scheduling
//!
//! Platform and application models for the reproduction of Beaumont,
//! Marchal, Rehn & Robert, *"FIFO scheduling of divisible loads with return
//! messages under the one-port model"* (RR-5738, 2005).
//!
//! * [`Worker`] / [`Platform`] — the star network of Figure 1 with linear
//!   per-worker costs `(c, w, d)`;
//! * [`MatrixApp`] / [`ClusterModel`] — the matrix-product application and
//!   the `gdsdmi`-cluster cost model used in Section 5 (`z = 1/2`);
//! * [`TreePlatform`] — multi-level master → relay → worker topologies
//!   (chains, balanced k-ary trees, random trees) behind the same
//!   per-node cost triple, consumed by the `dls-tree` collapse reduction;
//! * [`PlatformSampler`] — seeded random-platform families of Figures 10-12;
//! * [`scenario`] — named platforms lifted verbatim from the paper
//!   (Figure 14's four-worker table, the Figure 9 trace platform).
//!
//! ```
//! use dls_platform::{Platform, WorkerId};
//!
//! let p = Platform::star_with_z(&[(2.0, 5.0), (1.0, 3.0)], 0.5).unwrap();
//! assert_eq!(p.order_by_c(), vec![WorkerId(1), WorkerId(0)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod app;
mod generator;
mod platform;
pub mod scenario;
mod tree;
mod worker;

pub use app::{ClusterModel, MatrixApp};
pub use generator::{Heterogeneity, PlatformSampler};
pub use platform::{Platform, PlatformError};
pub use tree::TreePlatform;
pub use worker::{Worker, WorkerId};
