//! Worker identity and per-worker cost parameters.

use core::fmt;

/// Index of a worker within a [`crate::Platform`].
///
/// Identifies `P_{i+1}` in the paper's numbering (the master is `P0` and
/// owns no id — it has no processing capability, per Section 2.1).
// The derived PartialOrd forwards to usize::partial_cmp, which the
// workspace-wide disallowed-methods ban would otherwise flag.
#[allow(clippy::disallowed_methods)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WorkerId(pub usize);

impl WorkerId {
    /// Zero-based index.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // One-based in displays to match the paper's P1..Pp.
        write!(f, "P{}", self.0 + 1)
    }
}

/// Linear cost parameters of one worker (Section 2.1 of RR-5738).
///
/// Executing `X` load units on this worker costs `X·w` time units; shipping
/// the input for `X` units from the master costs `X·c`; returning the
/// results costs `X·d`. All three are *costs* (inverse speeds): smaller is
/// faster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Worker {
    /// Communication cost per load unit for the initial (forward) message.
    pub c: f64,
    /// Computation cost per load unit.
    pub w: f64,
    /// Communication cost per load unit for the return message.
    pub d: f64,
}

impl Worker {
    /// Builds a worker from explicit `(c, w, d)` costs.
    pub fn new(c: f64, w: f64, d: f64) -> Self {
        Worker { c, w, d }
    }

    /// Builds a worker whose return cost is tied to the forward cost by the
    /// application constant `z` (`d = z·c`), the regime analyzed by
    /// Theorem 1.
    pub fn with_z(c: f64, w: f64, z: f64) -> Self {
        Worker { c, w, d: z * c }
    }

    /// The ratio `d/c` for this worker (`z` when costs are tied).
    pub fn ratio(&self) -> f64 {
        self.d / self.c
    }

    /// Mirror image: forward and return costs swapped. Used by the `z > 1`
    /// reduction (Section 3): a schedule for the mirrored platform read
    /// backwards in time is a schedule for the original.
    pub fn mirrored(&self) -> Self {
        Worker {
            c: self.d,
            w: self.w,
            d: self.c,
        }
    }

    /// Round-trip communication cost per load unit (`c + d`).
    pub fn comm_total(&self) -> f64 {
        self.c + self.d
    }
}

#[cfg(test)]
// Unit tests assert exact outcomes of exact arithmetic.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn display_is_one_based() {
        assert_eq!(WorkerId(0).to_string(), "P1");
        assert_eq!(WorkerId(4).to_string(), "P5");
        assert_eq!(WorkerId(2).index(), 2);
    }

    #[test]
    fn with_z_ties_return_cost() {
        let w = Worker::with_z(2.0, 5.0, 0.5);
        assert_eq!(w.d, 1.0);
        assert_eq!(w.ratio(), 0.5);
        assert_eq!(w.comm_total(), 3.0);
    }

    #[test]
    fn mirror_is_involutive() {
        let w = Worker::new(2.0, 5.0, 0.75);
        let m = w.mirrored();
        assert_eq!(m.c, 0.75);
        assert_eq!(m.d, 2.0);
        assert_eq!(m.w, 5.0);
        assert_eq!(m.mirrored(), w);
    }
}
