//! Shared harness for the `--smoke` CI regression gates.
//!
//! Each gated bench (`benches/solver.rs`, `benches/multiround.rs`) times
//! one hot-path operation and compares it against a checked-in baseline
//! JSON through [`run_gate`]: the measurement is normalized by a
//! machine-speed probe (a fixed matrix product timed on both the baseline
//! machine and the runner) so the gate compares solver work, not runner
//! hardware. A wildly off calibration is clamped so it cannot mask a real
//! regression.

use std::hint::black_box;

/// Reads the `"key": <number>` field out of a flat baseline JSON document.
///
/// A real (tiny) scanner rather than a substring search: it walks the
/// document string-by-string, so a key name quoted inside the `comment`
/// field can never be mistaken for the key itself, and string *values* are
/// consumed whole. Accepts `+` exponents.
pub fn json_number(doc: &str, key: &str) -> Option<f64> {
    // Returns (string contents, index just past the closing quote).
    fn read_string(bytes: &[u8], open: usize) -> (usize, usize) {
        let mut j = open + 1;
        while j < bytes.len() && bytes[j] != b'"' {
            if bytes[j] == b'\\' {
                j += 1;
            }
            j += 1;
        }
        (open + 1, j)
    }
    let bytes = doc.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'"' {
            i += 1;
            continue;
        }
        let (start, end) = read_string(bytes, i);
        let name = &doc[start..end.min(doc.len())];
        i = end + 1;
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= bytes.len() || bytes[i] != b':' {
            continue; // a string value or malformed input; keep scanning
        }
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i < bytes.len() && bytes[i] == b'"' {
            // String value (the comment): consume it so its contents are
            // never scanned for keys.
            let (_, vend) = read_string(bytes, i);
            i = vend + 1;
            continue;
        }
        let vstart = i;
        while i < bytes.len() && matches!(bytes[i], b'0'..=b'9' | b'.' | b'-' | b'+' | b'e' | b'E')
        {
            i += 1;
        }
        if name == key {
            return doc[vstart..i].parse().ok();
        }
    }
    None
}

/// Machine-speed probe: a fixed 160x160 f64 matrix product, solver-free,
/// so gates normalize for the runner's speed relative to the machine that
/// recorded the baseline instead of comparing absolute wall clocks.
pub fn time_calibration_ns(runs: usize) -> f64 {
    const N: usize = 160;
    let a: Vec<f64> = (0..N * N).map(|i| (i % 97) as f64 * 0.013).collect();
    let b: Vec<f64> = (0..N * N).map(|i| (i % 89) as f64 * 0.011).collect();
    let matmul = |a: &[f64], b: &[f64]| -> f64 {
        let mut c = vec![0.0f64; N * N];
        for i in 0..N {
            for k in 0..N {
                let aik = a[i * N + k];
                for j in 0..N {
                    c[i * N + j] += aik * b[k * N + j];
                }
            }
        }
        c[N + 1]
    };
    black_box(matmul(&a, &b)); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let t = std::time::Instant::now();
        black_box(matmul(&a, &b));
        best = best.min(t.elapsed().as_nanos() as f64);
    }
    best
}

/// Runs one smoke gate: reads `baseline_key` (and `calibration_ns` /
/// `max_regression`, default 2.0) from the JSON at `baseline_path`, calls
/// `measure(runs)` for the best-of-`runs` wall time in nanoseconds,
/// normalizes by machine speed and exits nonzero past the gate.
///
/// `label` names the measured operation in the printed report.
pub fn run_gate(
    baseline_path: &str,
    baseline_key: &str,
    label: &str,
    measure: impl FnOnce(usize) -> f64,
) {
    let doc = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("cannot read {baseline_path}: {e}"));
    let baseline_ns = json_number(&doc, baseline_key)
        .unwrap_or_else(|| panic!("baseline JSON missing {baseline_key}"));
    let baseline_cal_ns =
        json_number(&doc, "calibration_ns").expect("baseline JSON missing calibration_ns");
    let max_ratio = json_number(&doc, "max_regression").unwrap_or(2.0);

    // Speed factor of this machine vs the baseline machine, clamped so a
    // wildly off calibration cannot mask a real regression.
    let calibration_ns = time_calibration_ns(5);
    let speed = (calibration_ns / baseline_cal_ns).clamp(0.25, 4.0);
    let measured_ns = measure(5);
    let ratio = measured_ns / (baseline_ns * speed);
    append_history(label, baseline_key, ratio, calibration_ns, measured_ns);
    println!(
        "smoke: {label} {:.2} ms (baseline {:.2} ms, machine speed {speed:.2}x, \
         normalized ratio {ratio:.2}, gate {max_ratio:.1}x)",
        measured_ns / 1e6,
        baseline_ns / 1e6
    );
    if ratio > max_ratio {
        eprintln!(
            "smoke: FAIL — {label} regressed {ratio:.2}x over the checked-in baseline \
             after machine-speed normalization \
             (update the baseline JSON only with an explanation)"
        );
        std::process::exit(1);
    }
    println!("smoke: OK");

    // Opt-in per-gate snapshot artifact: with `DLS_TRACE` set, every gate
    // emits the metrics accumulated by the measured operation (labelled by
    // gate), so a regression investigation starts from iteration and
    // refactorization histograms instead of a bare wall-clock ratio. Gauges
    // record the gate's own numbers alongside.
    if !matches!(dls_obs::mode(), dls_obs::Mode::Disabled) {
        dls_obs::gauge!("smoke.measured_ns").set(measured_ns);
        dls_obs::gauge!("smoke.normalized_ratio").set(ratio);
        dls_obs::emit(&format!("smoke:{label}"));
    }
}

/// Runs one *ratio* smoke gate: measures two operations on this machine
/// and asserts `measure(runs) / measure_ref(runs) <= baseline_key` (the
/// baseline value is the maximum allowed ratio, not a time). Both sides
/// run on the same machine in the same process, so no speed normalization
/// applies — the history record carries `calibration_ns = 0` to mark the
/// ratio as same-machine.
///
/// This is how the solver gate pins *relative* wins (e.g. "cold revised
/// beats the tableau": ratio ≤ 1.0) that an absolute-time gate with a 2x
/// regression allowance could never express.
pub fn run_ratio_gate(
    baseline_path: &str,
    baseline_key: &str,
    label: &str,
    measure: impl FnOnce(usize) -> f64,
    measure_ref: impl FnOnce(usize) -> f64,
) {
    let doc = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("cannot read {baseline_path}: {e}"));
    let max_ratio = json_number(&doc, baseline_key)
        .unwrap_or_else(|| panic!("baseline JSON missing {baseline_key}"));
    let measured_ns = measure(5);
    let reference_ns = measure_ref(5);
    let ratio = measured_ns / reference_ns;
    append_history(label, baseline_key, ratio, 0.0, measured_ns);
    println!(
        "smoke: {label} {:.2} ms vs reference {:.2} ms (ratio {ratio:.3}, gate {max_ratio:.2})",
        measured_ns / 1e6,
        reference_ns / 1e6
    );
    if ratio > max_ratio {
        eprintln!(
            "smoke: FAIL — {label} is {ratio:.3}x the reference on this machine, \
             above the {max_ratio:.2} gate"
        );
        std::process::exit(1);
    }
    println!("smoke: OK");
    if !matches!(dls_obs::mode(), dls_obs::Mode::Disabled) {
        dls_obs::gauge!("smoke.measured_ns").set(measured_ns);
        dls_obs::gauge!("smoke.normalized_ratio").set(ratio);
        dls_obs::emit(&format!("smoke:{label}"));
    }
}

/// Appends one machine-normalized measurement record to the bench history
/// log, one JSON object per line, so CI runs archived across commits give
/// a per-gate trend that is comparable between machines (the ratio is
/// already speed-normalized and the raw calibration probe rides along for
/// auditing the normalization itself).
///
/// Path: `DLS_BENCH_HISTORY` env override, default the workspace
/// `target/BENCH_history.jsonl` (resolved from this crate's manifest dir —
/// cargo runs benches with the *package* dir as cwd, so a cwd-relative
/// default would scatter per-package files); set it to `0` to disable.
/// Failures and passes are both recorded (the record is written before the
/// gate decides), and I/O errors only warn — history must never fail a
/// gate.
fn append_history(label: &str, key: &str, ratio: f64, calibration_ns: f64, measured_ns: f64) {
    let path = std::env::var("DLS_BENCH_HISTORY").unwrap_or_else(|_| {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH_history.jsonl"
        )
        .to_string()
    });
    if path == "0" || path.is_empty() {
        return;
    }
    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let line = format!(
        "{{\"gate\":\"{label}\",\"key\":\"{key}\",\"ratio\":{ratio:.6},\
         \"calibration_ns\":{calibration_ns:.0},\"measured_ns\":{measured_ns:.0},\
         \"unix_time\":{unix_time}}}\n"
    );
    if let Some(dir) = std::path::Path::new(&path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, line.as_bytes()));
    if let Err(e) = written {
        eprintln!("smoke: could not append bench history to {path}: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_number_scans_keys_not_comment_contents() {
        let doc = r#"{
          "comment": "mentions \"p128_revised_ns\": 1 inside a string",
          "p128_revised_ns": 950000,
          "exp": 1.5e+3
        }"#;
        assert_eq!(json_number(doc, "p128_revised_ns"), Some(950000.0));
        assert_eq!(json_number(doc, "exp"), Some(1500.0));
        assert_eq!(json_number(doc, "missing"), None);
    }

    #[test]
    fn calibration_probe_is_positive() {
        assert!(time_calibration_ns(1) > 0.0);
    }

    #[test]
    fn history_lines_append_and_round_trip() {
        let path = std::env::temp_dir().join(format!("bench_history_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        std::env::set_var("DLS_BENCH_HISTORY", &path);
        append_history("unit_test_gate", "p128_revised_ns", 1.25, 1.5e6, 2.5e6);
        append_history("unit_test_gate", "p128_revised_ns", 0.75, 1.5e6, 1.5e6);
        std::env::remove_var("DLS_BENCH_HISTORY");
        let doc = std::fs::read_to_string(&path).expect("history file written");
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = doc.lines().collect();
        assert_eq!(lines.len(), 2, "one record per gate run");
        // Every line round-trips through the same scanner the gates use to
        // read baselines.
        assert_eq!(json_number(lines[0], "ratio"), Some(1.25));
        assert_eq!(json_number(lines[1], "calibration_ns"), Some(1_500_000.0));
        assert!(lines[0].contains("\"gate\":\"unit_test_gate\""));
        assert!(lines[0].contains("\"key\":\"p128_revised_ns\""));
    }
}
