//! Regenerates Figure 9 (execution trace / Gantt). Usage:
//! `fig09 [n] [M]` (defaults: n = 400, M = 1000).

use dls_bench::figures::fig09;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(200);
    let m: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1000);
    let fig = fig09::run(n, m, 0xF1609);
    println!("{}", fig.report());
}
