//! Runs the extension experiments (DESIGN.md §8): jitter robustness,
//! bus scaling, z-sweep, affine-latency selection.
//!
//! Usage: `extensions [robustness|scaling|zsweep|affine]...` (all when no
//! selector is given).

use dls_bench::figures::extensions;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty();
    let want = |name: &str| all || args.iter().any(|a| a == name);

    if want("robustness") {
        println!(
            "Extension — jitter sensitivity of INC_C vs LIFO (n = 200, M = 1000, 20 platforms)\n"
        );
        println!("{}", extensions::robustness(20, 0xE17).render());
    }
    if want("scaling") {
        println!("Extension — bus scaling: Theorem 2 saturation at the port bound (c = 1, d = 0.5, w = 8)\n");
        println!("{}", extensions::scaling().render());
    }
    if want("zsweep") {
        println!("Extension — z-sweep on a fixed 4-worker star (mirror symmetry + order flip)\n");
        println!("{}", extensions::z_sweep().render());
    }
    if want("affine") {
        println!("Extension — affine latencies drive resource selection (8-worker star)\n");
        println!("{}", extensions::affine_sweep().render());
    }
}
