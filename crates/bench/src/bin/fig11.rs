//! Regenerates Figure 11 (homogeneous communication, heterogeneous
//! computation). Usage: `fig11 [--quick]`.

use dls_bench::figures::fig10_13;
use dls_bench::SweepConfig;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        SweepConfig::quick()
    } else {
        SweepConfig::paper()
    };
    let res = fig10_13::run(&fig10_13::fig11_variant(), &cfg);
    println!("{}\n", res.label);
    println!("{}", res.table().render());
}
