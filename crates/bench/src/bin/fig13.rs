//! Regenerates Figure 13 (communication/computation ratio studies).
//! Usage: `fig13 [a|b] [--quick] [--explain]` — `a` = computation ×10,
//! `b` = communication ×10; both when omitted. `--explain` prints the
//! baseline schedule on one sampled platform as a Gantt with idle-cause
//! attribution instead of running the sweep.

use dls_bench::figures::fig10_13;
use dls_bench::SweepConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let cfg = if quick {
        SweepConfig::quick()
    } else {
        SweepConfig::paper()
    };
    let which: Vec<&str> = match args.iter().find(|a| *a == "a" || *a == "b") {
        Some(sel) => vec![sel.as_str()],
        None => vec!["a", "b"],
    };
    for sel in which {
        let variant = if sel == "a" {
            fig10_13::fig13a_variant()
        } else {
            fig10_13::fig13b_variant()
        };
        if args.iter().any(|a| a == "--explain") {
            println!("{}", fig10_13::explain(&variant, &cfg));
            continue;
        }
        let res = fig10_13::run(&variant, &cfg);
        println!("{}\n", res.label);
        println!("{}", res.table().render());
    }
}
