//! Regenerates every figure of the paper's evaluation section and writes
//! tables, series files and traces under `results/`.
//!
//! Usage: `repro_all [--quick] [--out <dir>]` (default out dir: `results`).

use dls_bench::figures::interleaved::run_interleaved_gap;
use dls_bench::figures::sweep::{
    depth_sweep_variant, r_sweep_variant, run_depth_sweep, run_r_sweep,
};
use dls_bench::figures::{fig08, fig09, fig10_13, fig14};
use dls_bench::SweepConfig;
use dls_platform::{ClusterModel, MatrixApp, PlatformSampler};
use dls_report::{multiround_table, tree_table, write_dat, write_text, Series};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    let cfg = if quick {
        SweepConfig::quick()
    } else {
        SweepConfig::paper()
    };

    println!(
        "Reproducing RR-5738 evaluation ({} mode) into {}/\n",
        if quick { "quick" } else { "paper-scale" },
        out.display()
    );
    let t0 = Instant::now();

    // --- Figure 8. Each figure section opens a root trace span, so one
    // logical request (= one pid in a chrome: export) per figure.
    let f8 = {
        let _fig = dls_obs::trace_span!("repro.figure.seconds", "figure" => "fig08");
        fig08::run(0xF1608)
    };
    println!("{}", f8.report());
    f8.write_dat(&out.join("fig08_linearity.dat")).expect("dat");
    write_text(&out.join("fig08_linearity.txt"), &f8.report()).expect("txt");

    // --- Figure 9.
    let f9 = {
        let _fig = dls_obs::trace_span!("repro.figure.seconds", "figure" => "fig09");
        fig09::run(200, if quick { 200 } else { 1000 }, 0xF1609)
    };
    println!("{}", f9.report());
    write_text(&out.join("fig09_trace.txt"), &f9.report()).expect("txt");
    write_text(&out.join("fig09_trace.csv"), &f9.trace_csv).expect("csv");

    // --- Figures 10-13.
    dls_core::lp_model::reset_warm_start_stats();
    for variant in [
        ("fig10", fig10_13::fig10_variant()),
        ("fig11", fig10_13::fig11_variant()),
        ("fig12", fig10_13::fig12_variant()),
        ("fig13a", fig10_13::fig13a_variant()),
        ("fig13b", fig10_13::fig13b_variant()),
    ] {
        let (stem, v) = variant;
        let _fig = dls_obs::trace_span!("repro.figure.seconds", "figure" => stem);
        let started = Instant::now();
        let res = fig10_13::run(&v, &cfg);
        println!("{}\n", res.label);
        let table = res.table();
        println!("{}", table.render());
        for row in &res.rows {
            for skip in &row.skipped {
                println!(
                    "  note: n = {}: {} ({}) skipped on {} platform(s): {}",
                    row.size, skip.id, skip.legend, skip.platforms, skip.reason
                );
            }
        }
        println!("({} in {:.1?})\n", stem, started.elapsed());
        let (xs, series) = res.series();
        write_dat(
            &out.join(format!("{stem}.dat")),
            "matrix_size",
            &xs,
            &series,
        )
        .expect("dat");
        write_text(
            &out.join(format!("{stem}.txt")),
            &format!("{}\n\n{}", res.label, table.render()),
        )
        .expect("txt");
        write_text(&out.join(format!("{stem}.csv")), &table.to_csv()).expect("csv");
    }

    // --- Multi-round installment trade-off (beyond the paper; ROADMAP's
    // multi-round item). Averaged R-sweep over the heterogeneous-star
    // family at the paper-scale size, plus the trade-off table on one
    // concrete paper-scale platform.
    dls_rounds::install();
    {
        let _fig = dls_obs::trace_span!("repro.figure.seconds", "figure" => "multiround_rsweep");
        let started = Instant::now();
        let r_res = run_r_sweep(&cfg, &r_sweep_variant());
        println!(
            "{} — n = {}, {} platforms, makespans normalized by {} (mean {:.3} s)\n",
            r_res.label, r_res.n, cfg.platforms, r_res.baseline, r_res.baseline_makespan
        );
        let r_table = r_res.table();
        println!("{}", r_table.render());
        for row in &r_res.rows {
            for skip in &row.skipped {
                println!(
                    "  note: R = {}: {} ({}) skipped on {} platform(s): {}",
                    row.rounds, skip.id, skip.legend, skip.platforms, skip.reason
                );
            }
        }
        println!("(multiround R-sweep in {:.1?})\n", started.elapsed());
        let xs: Vec<f64> = r_res.rows.iter().map(|r| r.rounds as f64).collect();
        let series: Vec<Series> = r_res
            .rows
            .first()
            .map(|first| {
                first
                    .ratios
                    .iter()
                    .enumerate()
                    .map(|(k, (name, _))| {
                        Series::new(
                            name.clone(),
                            r_res.rows.iter().map(|r| r.ratios[k].1).collect(),
                        )
                    })
                    .collect()
            })
            .unwrap_or_default();
        write_dat(&out.join("multiround_rsweep.dat"), "rounds", &xs, &series).expect("dat");
        write_text(
            &out.join("multiround_rsweep.txt"),
            &format!("{}\n\n{}", r_res.label, r_table.render()),
        )
        .expect("txt");
        write_text(&out.join("multiround_rsweep.csv"), &r_table.to_csv()).expect("csv");

        // One concrete paper-scale platform (gdsdmi cluster, n = 200,
        // heterogeneous star, fixed seed) for the absolute-makespan table.
        let mut rng = StdRng::seed_from_u64(0xF16A0);
        let platform = PlatformSampler::hetero_star().sample(
            &MatrixApp::new(200),
            &ClusterModel::gdsdmi(),
            &mut rng,
        );
        let mr_table = multiround_table(&platform, &[1, 2, 4, 8]);
        println!("makespan vs R on one paper-scale platform (n = 200, unit load):\n");
        println!("{}", mr_table.render());
        write_text(
            &out.join("multiround_platform.txt"),
            &format!(
                "makespan vs R, gdsdmi n = 200 sample platform\n\n{}",
                mr_table.render()
            ),
        )
        .expect("txt");
    }

    // --- Tree-platform trade-off (beyond the paper; ROADMAP's tree item).
    // Averaged depth sweep over the heterogeneous-star family at the
    // paper-scale size, plus the trade-off table on one concrete platform.
    dls_tree::install();
    {
        let _fig = dls_obs::trace_span!("repro.figure.seconds", "figure" => "tree_depth_sweep");
        let started = Instant::now();
        let d_res = run_depth_sweep(&cfg, &depth_sweep_variant());
        println!(
            "{} — n = {}, {} platforms, makespans normalized by flat-star {} (mean {:.3} s)\n",
            d_res.label, d_res.n, cfg.platforms, d_res.baseline, d_res.baseline_makespan
        );
        let d_table = d_res.table();
        println!("{}", d_table.render());
        for row in &d_res.rows {
            for skip in &row.skipped {
                println!(
                    "  note: fanout = {}: {} ({}) skipped on {} platform(s): {}",
                    row.fanout, skip.id, skip.legend, skip.platforms, skip.reason
                );
            }
        }
        println!("(tree depth sweep in {:.1?})\n", started.elapsed());
        let xs: Vec<f64> = d_res.rows.iter().map(|r| r.depth as f64).collect();
        let series: Vec<Series> = d_res
            .rows
            .first()
            .map(|first| {
                first
                    .ratios
                    .iter()
                    .enumerate()
                    .map(|(k, (name, _))| {
                        Series::new(
                            name.clone(),
                            d_res.rows.iter().map(|r| r.ratios[k].1).collect(),
                        )
                    })
                    .collect()
            })
            .unwrap_or_default();
        write_dat(&out.join("tree_depth_sweep.dat"), "depth", &xs, &series).expect("dat");
        write_text(
            &out.join("tree_depth_sweep.txt"),
            &format!("{}\n\n{}", d_res.label, d_table.render()),
        )
        .expect("txt");
        write_text(&out.join("tree_depth_sweep.csv"), &d_table.to_csv()).expect("csv");

        // One concrete paper-scale platform for the absolute table.
        let mut rng = StdRng::seed_from_u64(0xF16B0);
        let platform = PlatformSampler::hetero_star().sample(
            &MatrixApp::new(200),
            &ClusterModel::gdsdmi(),
            &mut rng,
        );
        let t_table = tree_table(&platform, &[platform.num_workers(), 3, 2, 1]);
        println!("makespan vs depth on one paper-scale platform (n = 200, unit load):\n");
        println!("{}", t_table.render());
        write_text(
            &out.join("tree_platform.txt"),
            &format!(
                "makespan vs balanced-tree depth, gdsdmi n = 200 sample platform\n\n{}",
                t_table.render()
            ),
        )
        .expect("txt");
    }

    // --- Interleaved-master gap (beyond the paper; the interleaved
    // ROADMAP item): per-lead LP optima of the merge family vs the
    // canonical shape vs simulator replay under both master policies.
    dls_core::interleaved::install();
    {
        let _fig = dls_obs::trace_span!("repro.figure.seconds", "figure" => "interleaved_gap");
        let started = Instant::now();
        let g_res = run_interleaved_gap(&cfg);
        println!(
            "{} — n = {}, {} platforms, makespans normalized by OPT_FIFO (mean {:.3} s)\n",
            g_res.label, g_res.n, g_res.platforms, g_res.baseline_makespan
        );
        let g_table = g_res.table();
        println!("{}", g_table.render());
        println!("(interleaved gap in {:.1?})\n", started.elapsed());
        let (xs, series) = g_res.series();
        write_dat(&out.join("interleaved_gap.dat"), "lead", &xs, &series).expect("dat");
        write_text(
            &out.join("interleaved_gap.txt"),
            &format!("{}\n\n{}", g_res.label, g_table.render()),
        )
        .expect("txt");
        write_text(&out.join("interleaved_gap.csv"), &g_table.to_csv()).expect("csv");
    }

    // --- Figure 14 (both subfigures plus the header/text discrepancy run).
    let mut f14_all = String::new();
    for x in [1.0, 2.0, 3.0] {
        let _fig = dls_obs::trace_span!("repro.figure.seconds", "figure" => "fig14");
        let fig = fig14::run(x, 400, if quick { 200 } else { 1000 }, 0xF1614);
        println!("{}\n", fig.report());
        f14_all.push_str(&fig.report());
        f14_all.push_str("\n\n");
    }
    write_text(&out.join("fig14_participation.txt"), &f14_all).expect("txt");

    // One end-of-run metrics snapshot. With `DLS_TRACE` set the full
    // registry goes through the selected sink (summary table / JSONL);
    // otherwise keep the one-line hit-rate provenance note, now read from
    // the same registry instead of bespoke counters.
    match dls_obs::mode() {
        dls_obs::Mode::Disabled => {
            let snap = dls_obs::snapshot();
            let warm_hits = snap.counter("basis_cache.hit").unwrap_or(0);
            let lp_solves = warm_hits + snap.counter("basis_cache.miss").unwrap_or(0);
            if lp_solves > 0 {
                println!(
                    "LP engine: {lp_solves} scenario LPs solved, {warm_hits} warm-started \
                     ({:.1}% basis-cache hit rate)",
                    100.0 * warm_hits as f64 / lp_solves as f64
                );
            }
        }
        _ => dls_obs::emit("repro_all"),
    }
    println!(
        "All artefacts regenerated in {:.1?}; outputs under {}/",
        t0.elapsed(),
        out.display()
    );
}
