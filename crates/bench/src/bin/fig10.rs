//! Regenerates Figure 10 (50 homogeneous random platforms). Usage:
//! `fig10 [--quick]`.

use dls_bench::figures::fig10_13;
use dls_bench::SweepConfig;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        SweepConfig::quick()
    } else {
        SweepConfig::paper()
    };
    let res = fig10_13::run(&fig10_13::fig10_variant(), &cfg);
    println!("{}\n", res.label);
    println!("{}", res.table().render());
}
