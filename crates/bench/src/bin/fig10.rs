//! Regenerates Figure 10 (50 homogeneous random platforms). Usage:
//! `fig10 [--quick] [--explain]` — `--explain` prints the baseline
//! schedule on one sampled platform as a Gantt with idle-cause
//! attribution instead of running the sweep.

use dls_bench::figures::fig10_13;
use dls_bench::SweepConfig;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        SweepConfig::quick()
    } else {
        SweepConfig::paper()
    };
    if std::env::args().any(|a| a == "--explain") {
        println!("{}", fig10_13::explain(&fig10_13::fig10_variant(), &cfg));
        return;
    }
    let res = fig10_13::run(&fig10_13::fig10_variant(), &cfg);
    println!("{}\n", res.label);
    println!("{}", res.table().render());
}
