//! Regenerates Figure 8 (linearity test). Usage: `fig08 [--dat <path>]`.

use dls_bench::figures::fig08;
use std::path::PathBuf;

fn main() {
    let fig = fig08::run(0xF1608);
    println!("{}", fig.report());
    if let Some(path) = dat_path() {
        fig.write_dat(&path).expect("write dat file");
        println!("series written to {}", path.display());
    }
}

fn dat_path() -> Option<PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--dat" {
            return args.next().map(PathBuf::from);
        }
    }
    None
}
