//! Regenerates Figure 14 (participating workers). Usage:
//! `fig14 [x ...]` — slow-worker speed factors (defaults: 1 2 3, covering
//! both subfigures and the paper's header/text discrepancy).

use dls_bench::figures::fig14;

fn main() {
    let xs: Vec<f64> = {
        let parsed: Vec<f64> = std::env::args()
            .skip(1)
            .filter_map(|a| a.parse().ok())
            .collect();
        if parsed.is_empty() {
            vec![1.0, 2.0, 3.0]
        } else {
            parsed
        }
    };
    for x in xs {
        let fig = fig14::run(x, 400, 1000, 0xF1614);
        println!("{}\n", fig.report());
    }
}
