//! # dls-bench — figure harnesses and benchmarks for the RR-5738 reproduction
//!
//! Regenerates every evaluation artefact of Beaumont, Marchal, Rehn &
//! Robert (RR-5738 / IPDPS 2006), Section 5:
//!
//! | Artefact | Entry point | Binary |
//! |---|---|---|
//! | Fig. 8 (linearity) | [`figures::fig08::run`] | `fig08` |
//! | Fig. 9 (trace) | [`figures::fig09::run`] | `fig09` |
//! | Fig. 10 (homogeneous) | [`figures::fig10_13`] | `fig10` |
//! | Fig. 11 (hetero compute) | [`figures::fig10_13`] | `fig11` |
//! | Fig. 12 (hetero star) | [`figures::fig10_13`] | `fig12` |
//! | Fig. 13(a)/(b) (ratio studies) | [`figures::fig10_13`] | `fig13` |
//! | Fig. 14 + worker table (selection) | [`figures::fig14::run`] | `fig14` |
//! | everything, written to `results/` | — | `repro_all` |
//!
//! Criterion benches (`cargo bench`) cover solver/scheduler/simulator
//! performance and smoke-scale versions of each figure pipeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod scenarios;
pub mod smoke;

pub use scenarios::{Heuristic, SweepConfig};
