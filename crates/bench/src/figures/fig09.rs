//! Figure 9 — trace visualisation of one execution.
//!
//! The paper shows a Gantt view of an optimal FIFO execution on a
//! heterogeneous five-worker platform where "only the first three workers
//! are actually performing some computation" — resource selection in
//! action. We solve the optimal FIFO schedule on an analogous platform,
//! execute it in the simulator, and render the trace.

use dls_core::prelude::*;
use dls_platform::{scenario, Platform};
use dls_sim::{gantt, simulate, SimConfig};

/// Figure 9 output.
#[derive(Debug, Clone)]
pub struct Fig09 {
    /// The platform used.
    pub platform: Platform,
    /// Number of workers actually enrolled by the LP.
    pub participants: usize,
    /// Simulated makespan (seconds) of the integer schedule.
    pub makespan: f64,
    /// Rendered Gantt chart.
    pub gantt: String,
    /// Raw trace CSV.
    pub trace_csv: String,
}

/// Runs the trace experiment (matrix size `n`, `m` products).
pub fn run(n: usize, m: u64, seed: u64) -> Fig09 {
    let platform = scenario::fig9_platform(n);
    let sol = optimal_fifo(&platform).expect("z-tied platform");
    let participants = sol.schedule.participants().len();
    let int_sched = integer_schedule(&sol.schedule, m);
    let report = simulate(&platform, &int_sched, &SimConfig::jittered(seed));
    let chart = gantt::render(
        &report.trace,
        &gantt::GanttConfig {
            width: 100,
            unicode: true,
        },
    );
    Fig09 {
        platform,
        participants,
        makespan: report.makespan,
        gantt: chart,
        trace_csv: report.trace.to_csv(),
    }
}

impl Fig09 {
    /// Full printable report.
    pub fn report(&self) -> String {
        format!(
            "Figure 9 — execution trace on a heterogeneous platform (FIFO ordering)\n\n{}\n{} of {} workers are enrolled by the optimal FIFO schedule.\nSimulated makespan: {:.3} s\n\n{}",
            self.platform,
            self.participants,
            self.platform.num_workers(),
            self.makespan,
            self.gantt
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_fast_workers_participate() {
        let fig = run(200, 1000, 9);
        assert_eq!(
            fig.participants, 3,
            "expected exactly the three fast workers enrolled"
        );
    }

    #[test]
    fn gantt_shows_enrolled_workers_only() {
        let fig = run(200, 1000, 9);
        assert!(fig.gantt.contains("master"));
        assert!(fig.gantt.contains("P1"));
        // Idle workers exchange no messages and do not appear as rows.
        let rows = fig.gantt.lines().count();
        // master + 3 workers + axis + legend = 6.
        assert_eq!(rows, 6, "unexpected gantt layout:\n{}", fig.gantt);
    }

    #[test]
    fn report_mentions_selection_and_makespan() {
        let fig = run(200, 500, 3);
        let rep = fig.report();
        assert!(rep.contains("3 of 5 workers"));
        assert!(rep.contains("makespan"));
        assert!(!fig.trace_csv.is_empty());
    }
}
