//! Shared engine for the Figures 10-13 heuristic-comparison sweeps.
//!
//! For each matrix size the paper averages, over 50 random platforms, the
//! theoretical (LP) and measured execution times of each heuristic for
//! `M = 1000` matrix products, normalized by the theoretical time of
//! `INC_C`. This module reproduces that pipeline with the simulator in the
//! testbed's role:
//!
//! 1. draw a platform (speed factors 1..10, family per figure);
//! 2. per strategy: solve through the [`Scheduler`] engine
//!    (`T_lp = M / ρ`), round the loads to integers with the paper's
//!    policy, simulate the integer schedule under seeded jitter
//!    (`T_real`);
//! 3. average `T_lp`/`T_real` ratios across platforms.
//!
//! The strategies compared are *data*, not code: a [`SweepVariant`] names
//! registry ids (see [`dls_core::registry`]) and the first one is the
//! normalization baseline. Adding a strategy to a figure is a one-string
//! change.

use dls_core::engine::Scheduler;
use dls_core::prelude::*;
use dls_platform::{ClusterModel, MatrixApp, Platform, PlatformSampler};
use dls_report::{mean, num, par_map, ExplainReport, Series, Table};
use dls_sim::{simulate, RealismModel, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::scenarios::SweepConfig;

/// Figure-specific variations on the shared sweep.
#[derive(Debug, Clone)]
pub struct SweepVariant {
    /// Figure label (used in headers and file names).
    pub label: String,
    /// Random platform family.
    pub sampler: PlatformSampler,
    /// Multiplier on all computation costs (Fig. 13(a) uses `0.1` =
    /// "calculation power ×10").
    pub comp_scale: f64,
    /// Multiplier on all communication costs (Fig. 13(b) uses `0.1`).
    pub comm_scale: f64,
    /// Apply the cache-degradation compute model in the simulated runs
    /// (Fig. 13(b) regime; see `RealismModel::cluster_with_cache_effects`).
    pub cache_effects: bool,
    /// Registry ids of the strategies to compare (see
    /// [`dls_core::registry`]); the first entry is the normalization
    /// baseline (the paper normalizes by `INC_C`'s theoretical time).
    pub schedulers: Vec<String>,
}

impl SweepVariant {
    /// Resolves the configured ids against the scheduler registry
    /// (installing the multi-round, tree, affine and interleaved
    /// providers first, so `multiround_*`, `tree_*`, `affine_*` and
    /// `interleaved_*` ids — including parameterized ones like
    /// `multiround_lp@8`, `tree_lp@3` or `interleaved_fifo@1` — are
    /// always resolvable from sweep configuration).
    ///
    /// # Panics
    /// Panics on an id absent from [`dls_core::registry`] — a sweep over a
    /// nonexistent strategy is a configuration bug, not a runtime
    /// condition.
    pub fn resolve_schedulers(&self) -> Vec<Box<dyn Scheduler>> {
        dls_rounds::install();
        dls_tree::install();
        dls_core::affine::install();
        dls_core::interleaved::install();
        assert!(
            !self.schedulers.is_empty(),
            "sweep variant '{}' names no schedulers",
            self.label
        );
        self.schedulers
            .iter()
            .map(|id| {
                dls_core::lookup(id)
                    .unwrap_or_else(|| panic!("unknown scheduler '{id}' in sweep variant"))
            })
            .collect()
    }
}

/// A strategy that could not solve one or more platforms at a given size.
#[derive(Debug, Clone, PartialEq)]
pub struct SkippedStrategy {
    /// Registry id of the skipped strategy — the exact string the sweep
    /// was configured with, so parameterized ids (`multiround_lp@8`) and
    /// any future provider ids report unambiguously (legends need not be
    /// unique across configurations).
    pub id: String,
    /// Legend of the skipped strategy.
    pub legend: String,
    /// Number of platforms it failed on (out of the sweep's platform
    /// count).
    pub platforms: usize,
    /// The strategy's own error on the first platform it failed on.
    pub reason: String,
}

/// One averaged output row (one matrix size).
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Matrix size `n`.
    pub size: usize,
    /// Average theoretical baseline time in seconds (the paper's absolute
    /// reference curve "INC_C lp").
    pub baseline_lp: f64,
    /// `(series name, averaged ratio vs the baseline lp time)` in a fixed
    /// order. Ratios average only the platforms the strategy solved; a
    /// strategy that solved none is `NaN` here and recorded in `skipped`.
    pub ratios: Vec<(String, f64)>,
    /// Non-baseline strategies that failed on some platforms at this size,
    /// with the failure reason (e.g. a closed form inapplicable to a scaled
    /// variant of the family). The baseline failing is a configuration bug
    /// and aborts the sweep instead.
    pub skipped: Vec<SkippedStrategy>,
}

/// Complete sweep result.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Figure label.
    pub label: String,
    /// Legend of the normalization baseline (first configured scheduler).
    pub baseline: String,
    /// One row per matrix size.
    pub rows: Vec<SweepRow>,
}

impl SweepResult {
    /// Renders the rows as an aligned table (the paper's plotted series).
    pub fn table(&self) -> Table {
        let mut headers: Vec<String> = vec!["n".into(), format!("{} lp (s)", self.baseline)];
        if let Some(row) = self.rows.first() {
            headers.extend(row.ratios.iter().map(|(name, _)| name.clone()));
        }
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut t = Table::new(&header_refs);
        for row in &self.rows {
            let mut cells = vec![row.size.to_string(), num(row.baseline_lp, 3)];
            cells.extend(row.ratios.iter().map(|(_, v)| num(*v, 4)));
            t.row(&cells);
        }
        t
    }

    /// Exports the x vector and one series per ratio column (plus the
    /// absolute baseline curve) for `.dat` output.
    pub fn series(&self) -> (Vec<f64>, Vec<Series>) {
        let xs: Vec<f64> = self.rows.iter().map(|r| r.size as f64).collect();
        let mut out = vec![Series::new(
            format!("{} lp seconds", self.baseline),
            self.rows.iter().map(|r| r.baseline_lp).collect(),
        )];
        if let Some(first) = self.rows.first() {
            for (k, (name, _)) in first.ratios.iter().enumerate() {
                out.push(Series::new(
                    name.clone(),
                    self.rows.iter().map(|r| r.ratios[k].1).collect(),
                ));
            }
        }
        (xs, out)
    }
}

/// Strategy outcome on one platform at one size.
struct Outcome {
    lp_time: f64,
    real_time: f64,
}

/// Outcome including mid-batch failures of partial strategies.
enum StrategyOutcome {
    Done(Outcome),
    Skipped(String),
}

/// One `(matrix size, platform)` cell of the cross-size work list.
struct WorkItem {
    size_idx: usize,
    n: usize,
    platform_idx: usize,
}

fn run_scheduler(
    platform: &Platform,
    scheduler: &dyn Scheduler,
    total_units: u64,
    realism: RealismModel,
    seed: u64,
) -> Result<Outcome, dls_core::CoreError> {
    let sol = scheduler.solve(platform)?;
    // Theoretical time for M units: linearity gives T = M / rho.
    let lp_time = total_units as f64 / sol.throughput;
    let int_sched = integer_schedule(&sol.schedule, total_units);
    // Multi-round solutions live on their expanded virtual platform; the
    // simulator replays them there (one-round solutions execute directly).
    let report = simulate(
        sol.execution_platform(platform),
        &int_sched,
        &SimConfig {
            realism,
            seed,
            ..SimConfig::ideal()
        },
    );
    Ok(Outcome {
        lp_time,
        real_time: report.makespan,
    })
}

/// Runs the full sweep for a figure variant.
///
/// The whole `(matrix size × platform)` grid is built up front and fed
/// through one [`par_map`] call, so worker threads stay saturated across
/// size boundaries (the per-size barrier of the original pipeline idled the
/// pool at every size change) and each worker's thread-local LP basis cache
/// warm-starts the strategies solved on the same platform.
///
/// # Panics
/// The *baseline* strategy (first configured id) must solve every platform:
/// it is probed up front against the first sampled platform and any
/// mid-batch baseline failure aborts the sweep. Non-baseline strategies
/// whose error is an *applicability* one (not a bus, not z-tied, too many
/// workers for exhaustive search) are recorded per row in
/// [`SweepRow::skipped`] with the strategy's own error instead of aborting
/// the batch; anything else (an LP solver failure, a malformed order) is a
/// bug, not a platform mismatch, and still aborts loudly.
pub fn run_sweep(cfg: &SweepConfig, variant: &SweepVariant) -> SweepResult {
    // Root of this sweep's trace tree: the par_map item spans (and the
    // solve trees under them) nest here via the TraceContext handoff.
    let _sweep_span = dls_obs::trace_span!(
        "sweep.run.seconds",
        "label" => variant.label,
        "platforms" => cfg.platforms,
    );
    let cluster = ClusterModel::gdsdmi();
    let schedulers = variant.resolve_schedulers();

    // Draw each platform's speed factors once (independent of matrix size),
    // exactly like reusing the same physical cluster across sizes.
    let factor_sets: Vec<(Vec<f64>, Vec<f64>)> = (0..cfg.platforms)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(cfg.base_seed.wrapping_add(i as u64));
            variant.sampler.sample_factors(&mut rng)
        })
        .collect();

    // Fail fast when the *baseline* does not apply to this platform family:
    // every ratio normalizes by its lp time, so nothing can be salvaged.
    if let (Some((comm, comp)), Some(&n)) = (factor_sets.first(), cfg.sizes.first()) {
        let probe = cluster
            .platform(&MatrixApp::new(n), comm, comp)
            .expect("sampled factors valid")
            .scale_comp(variant.comp_scale)
            .scale_comm(variant.comm_scale);
        if let Err(e) = schedulers[0].solve(&probe) {
            panic!(
                "sweep '{}': baseline strategy '{}' cannot solve this platform family: {e}",
                variant.label,
                schedulers[0].name()
            );
        }
    }

    // The full cross-size work list, one entry per (size, platform) cell.
    let items: Vec<WorkItem> = cfg
        .sizes
        .iter()
        .enumerate()
        .flat_map(|(size_idx, &n)| {
            (0..factor_sets.len()).map(move |platform_idx| WorkItem {
                size_idx,
                n,
                platform_idx,
            })
        })
        .collect();

    // The LP-engine override is a thread-local; capture the caller's choice
    // and re-apply it inside each par_map worker thread (whose locals reset
    // to the default), so `with_engine(Tableau, || run_sweep(..))` behaves
    // identically whether the map runs inline or on the pool.
    let engine = dls_core::lp_model::current_engine();
    let evaluated: Vec<Vec<StrategyOutcome>> = par_map(&items, |item| {
        dls_core::lp_model::with_engine(engine, || {
            dls_obs::counter!("sweep.instances").incr();
            let (comm, comp) = &factor_sets[item.platform_idx];
            let n = item.n;
            let app = MatrixApp::new(n);
            let realism = if variant.cache_effects {
                RealismModel::cluster_with_cache_effects(n)
            } else {
                RealismModel::cluster_jitter()
            };
            let platform = cluster
                .platform(&app, comm, comp)
                .expect("sampled factors valid")
                .scale_comp(variant.comp_scale)
                .scale_comm(variant.comm_scale);
            schedulers
                .iter()
                .enumerate()
                .map(|(si, s)| {
                    // Seed mixes platform identity, size and strategy so
                    // jitter streams are independent but reproducible.
                    let seed = cfg
                        .base_seed
                        .wrapping_mul(31)
                        .wrapping_add(n as u64)
                        .wrapping_mul(1009)
                        .wrapping_add(si as u64)
                        .wrapping_add(comm.iter().sum::<f64>().to_bits());
                    match run_scheduler(&platform, s.as_ref(), cfg.total_units, realism, seed) {
                        Ok(o) => StrategyOutcome::Done(o),
                        Err(e) if si == 0 => panic!(
                            "sweep '{}': baseline strategy '{}' failed on platform {} at n = {n}: {e}",
                            variant.label,
                            s.name(),
                            item.platform_idx
                        ),
                        Err(e) if e.is_applicability() => StrategyOutcome::Skipped(e.to_string()),
                        Err(e) => panic!(
                            "sweep '{}': strategy '{}' hit a non-applicability error on platform \
                             {} at n = {n} (a solver bug, not a platform mismatch): {e}",
                            variant.label,
                            s.name(),
                            item.platform_idx
                        ),
                    }
                })
                .collect()
        })
    });

    // Regroup the flat results by size and aggregate each row.
    let mut rows = Vec::with_capacity(cfg.sizes.len());
    for (size_idx, &n) in cfg.sizes.iter().enumerate() {
        let per_platform: Vec<&Vec<StrategyOutcome>> = items
            .iter()
            .zip(&evaluated)
            .filter(|(item, _)| item.size_idx == size_idx)
            .map(|(_, outcomes)| outcomes)
            .collect();

        fn outcome(p: &[StrategyOutcome], si: usize) -> Option<&Outcome> {
            match &p[si] {
                StrategyOutcome::Done(o) => Some(o),
                StrategyOutcome::Skipped(_) => None,
            }
        }

        // Normalize by each platform's own baseline lp time, then average —
        // matching the paper's "normalized by FIFO theoretical performance"
        // plots. Only platforms the strategy solved contribute to its mean.
        let baseline_lp = mean(
            &per_platform
                .iter()
                .map(|p| outcome(p, 0).expect("baseline cannot be skipped").lp_time)
                .collect::<Vec<_>>(),
        );
        let baseline_legend = schedulers[0].legend();
        let mut ratios: Vec<(String, f64)> = Vec::new();
        let mut skipped: Vec<SkippedStrategy> = Vec::new();
        for (si, s) in schedulers.iter().enumerate() {
            let solved: Vec<(&Outcome, &Outcome)> = per_platform
                .iter()
                .filter_map(|p| outcome(p, si).map(|o| (o, outcome(p, 0).unwrap())))
                .collect();
            let failures = per_platform.len() - solved.len();
            if failures > 0 {
                let reason = per_platform
                    .iter()
                    .find_map(|p| match &p[si] {
                        StrategyOutcome::Skipped(r) => Some(r.clone()),
                        StrategyOutcome::Done(_) => None,
                    })
                    .expect("failures counted above");
                dls_obs::counter!("sweep.skips").add(failures as u64);
                // The aggregate counter loses *which* strategy was skipped;
                // the trace event carries the attribution.
                dls_obs::trace_event!(
                    "sweep.skips",
                    "strategy" => variant.schedulers[si],
                    "platforms" => failures,
                    "reason" => reason,
                );
                skipped.push(SkippedStrategy {
                    id: variant.schedulers[si].clone(),
                    legend: s.legend().to_string(),
                    platforms: failures,
                    reason,
                });
            }
            let ratio_of = |f: &dyn Fn(&Outcome) -> f64| -> f64 {
                if solved.is_empty() {
                    f64::NAN
                } else {
                    mean(
                        &solved
                            .iter()
                            .map(|(o, base)| f(o) / base.lp_time)
                            .collect::<Vec<_>>(),
                    )
                }
            };
            let lp_ratio = ratio_of(&|o: &Outcome| o.lp_time);
            let real_ratio = ratio_of(&|o: &Outcome| o.real_time);
            if si != 0 {
                ratios.push((format!("{} lp/{baseline_legend} lp", s.legend()), lp_ratio));
            }
            ratios.push((
                format!("{} real/{baseline_legend} lp", s.legend()),
                real_ratio,
            ));
        }
        rows.push(SweepRow {
            size: n,
            baseline_lp,
            ratios,
            skipped,
        });
    }

    SweepResult {
        label: variant.label.clone(),
        baseline: schedulers[0].legend().to_string(),
        rows,
    }
}

/// Explains the variant's baseline schedule on one sampled platform — the
/// `--explain` mode of the figure binaries.
///
/// Draws the sweep's first platform (same seed, family, and scales as
/// `run_sweep`), solves the baseline strategy at the first configured
/// matrix size, replays the integer schedule under the ideal simulator
/// (ideal, so the Gantt and idle attribution explain the *schedule*, not
/// the jitter), and returns the header line plus the rendered
/// [`dls_report::ExplainReport`].
///
/// # Panics
/// Panics when the baseline strategy cannot solve its own platform family
/// (a configuration bug, exactly as in [`run_sweep`]).
pub fn explain_baseline(cfg: &SweepConfig, variant: &SweepVariant) -> (String, ExplainReport) {
    let cluster = ClusterModel::gdsdmi();
    let schedulers = variant.resolve_schedulers();
    let n = cfg.sizes.first().copied().unwrap_or(200);
    let mut rng = StdRng::seed_from_u64(cfg.base_seed);
    let (comm, comp) = variant.sampler.sample_factors(&mut rng);
    let platform = cluster
        .platform(&MatrixApp::new(n), &comm, &comp)
        .expect("sampled factors valid")
        .scale_comp(variant.comp_scale)
        .scale_comm(variant.comm_scale);
    let sol = schedulers[0]
        .solve(&platform)
        .unwrap_or_else(|e| panic!("baseline '{}' cannot solve: {e}", schedulers[0].name()));
    let int_sched = integer_schedule(&sol.schedule, cfg.total_units);
    let report = simulate(
        sol.execution_platform(&platform),
        &int_sched,
        &SimConfig::ideal(),
    );
    let header = format!(
        "{} — explain: {} on platform #0 (n = {}, M = {} units, ideal replay)",
        variant.label,
        schedulers[0].legend(),
        n,
        cfg.total_units
    );
    (header, dls_report::explain(&report.trace))
}

// ---------------------------------------------------------------------------
// Multi-round R-sweep: the latency/throughput trade-off axis.
// ---------------------------------------------------------------------------

/// One row of a parameterized-axis sweep: the axis value plus each
/// strategy's mean makespan ratio and skip records.
struct AxisRow {
    axis: usize,
    ratios: Vec<(String, f64)>,
    skipped: Vec<SkippedStrategy>,
}

/// Result of the shared axis-sweep core.
struct AxisSweep {
    n: usize,
    baseline_legend: String,
    baseline_makespan: f64,
    rows: Vec<AxisRow>,
}

/// Shared core of [`run_r_sweep`] and [`run_depth_sweep`]: both sweep a
/// family of `<id>@<axis>` parameterized strategies over `cfg.platforms`
/// sampled platforms at the paper-scale matrix size (the last entry of
/// `cfg.sizes`) and normalize each cell's predicted makespan by a
/// reference strategy's, per platform — only the meaning of the axis
/// (installment count vs balanced-tree fanout) differs. `axis_name`
/// labels the axis in panic messages.
///
/// # Panics
/// Like [`run_sweep`]: the baseline must solve every platform, and
/// non-applicability strategy errors abort loudly; applicability errors
/// are recorded per row.
fn run_axis_sweep(
    cfg: &SweepConfig,
    label: &str,
    axis_name: &str,
    sampler: &PlatformSampler,
    axis: &[usize],
    base_ids: &[String],
    baseline_id: &str,
) -> AxisSweep {
    let _sweep_span = dls_obs::trace_span!(
        "sweep.run.seconds",
        "label" => label,
        "platforms" => cfg.platforms,
    );
    let cluster = ClusterModel::gdsdmi();
    let n = *cfg.sizes.last().expect("sweep config has sizes");
    let app = MatrixApp::new(n);
    let baseline = dls_core::lookup(baseline_id)
        .unwrap_or_else(|| panic!("unknown baseline id '{baseline_id}' in '{label}'"));

    // Stable column legends come from the strategies' *default* instances
    // (the per-row instances carry `@<axis>` suffixes).
    let columns: Vec<String> = base_ids
        .iter()
        .map(|id| {
            dls_core::lookup(id)
                .unwrap_or_else(|| panic!("unknown strategy '{id}' in '{label}'"))
                .legend()
                .to_string()
        })
        .collect();

    // Full parameterized id per (axis value, strategy) cell, resolved once.
    let cells: Vec<(usize, String, Box<dyn Scheduler>)> = axis
        .iter()
        .flat_map(|&a| {
            base_ids.iter().map(move |id| {
                let full = format!("{id}@{a}");
                let s = dls_core::lookup(&full)
                    .unwrap_or_else(|| panic!("unknown strategy '{full}' in '{label}'"));
                (a, full, s)
            })
        })
        .collect();

    let factor_sets: Vec<(Vec<f64>, Vec<f64>)> = (0..cfg.platforms)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(cfg.base_seed.wrapping_add(i as u64));
            sampler.sample_factors(&mut rng)
        })
        .collect();

    let engine = dls_core::lp_model::current_engine();
    let evaluated: Vec<(f64, Vec<Result<f64, String>>)> = par_map(&factor_sets, |(comm, comp)| {
        dls_core::lp_model::with_engine(engine, || {
            dls_obs::counter!("sweep.instances").incr();
            let platform = cluster
                .platform(&app, comm, comp)
                .expect("sampled factors valid");
            let base = baseline
                .solve(&platform)
                .unwrap_or_else(|e| panic!("'{label}': baseline '{baseline_id}' failed: {e}"));
            let base_makespan = 1.0 / base.throughput;
            let outcomes = cells
                .iter()
                .map(|(a, full, s)| match s.solve(&platform) {
                    Ok(sol) => Ok((1.0 / sol.throughput) / base_makespan),
                    Err(e) if e.is_applicability() => Err(e.to_string()),
                    Err(e) => panic!(
                        "'{label}': strategy '{full}' hit a non-applicability error at \
                         {axis_name} = {a} (a solver bug, not a platform mismatch): {e}"
                    ),
                })
                .collect();
            (base_makespan, outcomes)
        })
    });

    let baseline_makespan =
        mean(&evaluated.iter().map(|(m, _)| *m).collect::<Vec<_>>()) * cfg.total_units as f64;

    let mut rows = Vec::with_capacity(axis.len());
    for &a in axis {
        let mut ratios = Vec::new();
        let mut skipped = Vec::new();
        let mut col = 0;
        for (ci, (ca, full, s)) in cells.iter().enumerate() {
            if *ca != a {
                continue;
            }
            let solved: Vec<f64> = evaluated
                .iter()
                .filter_map(|(_, o)| o[ci].as_ref().ok().copied())
                .collect();
            let failures = evaluated.len() - solved.len();
            if failures > 0 {
                let reason = evaluated
                    .iter()
                    .find_map(|(_, o)| o[ci].as_ref().err().cloned())
                    .expect("failures counted above");
                dls_obs::counter!("sweep.skips").add(failures as u64);
                dls_obs::trace_event!(
                    "sweep.skips",
                    "strategy" => full,
                    "platforms" => failures,
                    "reason" => reason,
                );
                skipped.push(SkippedStrategy {
                    id: full.clone(),
                    legend: s.legend().to_string(),
                    platforms: failures,
                    reason,
                });
            }
            let value = if solved.is_empty() {
                f64::NAN
            } else {
                mean(&solved)
            };
            ratios.push((
                format!("{} mk/{} mk", columns[col], baseline.legend()),
                value,
            ));
            col += 1;
        }
        rows.push(AxisRow {
            axis: a,
            ratios,
            skipped,
        });
    }

    AxisSweep {
        n,
        baseline_legend: baseline.legend().to_string(),
        baseline_makespan,
        rows,
    }
}

/// Configuration of the multi-round R-sweep: which installment counts and
/// planner families to compare, against which one-round baseline.
#[derive(Debug, Clone)]
pub struct RSweepVariant {
    /// Label for headers and file names.
    pub label: String,
    /// Random platform family (the paper-scale default samples the
    /// fully heterogeneous star family).
    pub sampler: PlatformSampler,
    /// Installment counts on the table's R axis.
    pub rounds: Vec<usize>,
    /// Base registry ids of the planners (`@R` is appended per row);
    /// resolved through the provider, so `dls-rounds` ids work out of the
    /// box.
    pub planners: Vec<String>,
    /// One-round reference id whose makespan normalizes every cell
    /// (canonically `optimal_fifo`).
    pub baseline: String,
}

/// The default R-sweep: `R ∈ {1, 2, 4, 8}` for all three `multiround_*`
/// planners on the paper's heterogeneous-star family, normalized by
/// `optimal_fifo`.
pub fn r_sweep_variant() -> RSweepVariant {
    RSweepVariant {
        label: "multi-round installment trade-off (makespan vs R)".into(),
        sampler: PlatformSampler::hetero_star(),
        rounds: vec![1, 2, 4, 8],
        planners: vec![
            "multiround_uniform".into(),
            "multiround_geometric".into(),
            "multiround_lp".into(),
        ],
        baseline: "optimal_fifo".into(),
    }
}

/// One R-sweep row: an installment count plus each planner's mean
/// makespan ratio against the baseline's one-round makespan.
#[derive(Debug, Clone)]
pub struct RSweepRow {
    /// Installment count `R`.
    pub rounds: usize,
    /// `(column name, mean makespan / baseline makespan)` per planner;
    /// ratios below 1 mean the multi-round plan beats one-round
    /// `optimal_fifo`. A planner that solved no platform is `NaN`.
    pub ratios: Vec<(String, f64)>,
    /// Planner configurations that failed on some platforms at this R,
    /// keyed by their full parameterized registry id.
    pub skipped: Vec<SkippedStrategy>,
}

/// Complete R-sweep result.
#[derive(Debug, Clone)]
pub struct RSweepResult {
    /// Label of the variant.
    pub label: String,
    /// Matrix size the platforms were built for.
    pub n: usize,
    /// Legend of the normalizing baseline.
    pub baseline: String,
    /// Mean one-round baseline makespan in seconds (absolute reference).
    pub baseline_makespan: f64,
    /// One row per installment count.
    pub rows: Vec<RSweepRow>,
}

impl RSweepResult {
    /// Renders the trade-off table (one row per R).
    pub fn table(&self) -> Table {
        let mut headers: Vec<String> = vec!["R".into()];
        if let Some(row) = self.rows.first() {
            headers.extend(row.ratios.iter().map(|(name, _)| name.clone()));
        }
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut t = Table::new(&header_refs);
        for row in &self.rows {
            let mut cells = vec![row.rounds.to_string()];
            cells.extend(row.ratios.iter().map(|(_, v)| num(*v, 4)));
            t.row(&cells);
        }
        t
    }
}

/// Runs the multi-round R-sweep at the paper-scale matrix size (the last
/// entry of `cfg.sizes`), averaging each planner's predicted makespan over
/// `cfg.platforms` sampled platforms and normalizing by the baseline's
/// one-round makespan per platform.
///
/// # Panics
/// Like [`run_sweep`]: the baseline must solve every platform, and
/// non-applicability planner errors abort loudly; applicability errors are
/// recorded in [`RSweepRow::skipped`].
pub fn run_r_sweep(cfg: &SweepConfig, variant: &RSweepVariant) -> RSweepResult {
    dls_rounds::install();
    let core = run_axis_sweep(
        cfg,
        &variant.label,
        "R",
        &variant.sampler,
        &variant.rounds,
        &variant.planners,
        &variant.baseline,
    );
    RSweepResult {
        label: variant.label.clone(),
        n: core.n,
        baseline: core.baseline_legend,
        baseline_makespan: core.baseline_makespan,
        rows: core
            .rows
            .into_iter()
            .map(|r| RSweepRow {
                rounds: r.axis,
                ratios: r.ratios,
                skipped: r.skipped,
            })
            .collect(),
    }
}

// ---------------------------------------------------------------------------
// Tree depth sweep: the topology/makespan trade-off axis.
// ---------------------------------------------------------------------------

/// Configuration of the tree depth sweep: which balanced-tree fanouts to
/// compare (each fanout fixes a depth for the sampled platform size),
/// against which flat-star baseline.
#[derive(Debug, Clone)]
pub struct DepthSweepVariant {
    /// Label for headers and file names.
    pub label: String,
    /// Random platform family (the flat stars the workers come from).
    pub sampler: PlatformSampler,
    /// Balanced-tree fanouts on the table's axis (`fanout ≥ p` is the
    /// flat star, `1` the chain).
    pub fanouts: Vec<usize>,
    /// Base registry ids of the tree strategies (`@fanout` is appended per
    /// row); resolved through the `dls-tree` provider.
    pub schedulers: Vec<String>,
    /// Flat-star reference id whose makespan normalizes every cell
    /// (canonically `optimal_fifo`).
    pub baseline: String,
}

/// The default depth sweep: fanouts `{p, 3, 2, 1}` (star → chain) for
/// `tree_fifo`/`tree_lifo`/`tree_lp` on the paper's heterogeneous-star
/// family, normalized by `optimal_fifo` on the flat star. `tree_lp`'s
/// column quantifies how much of star-collapse's serialization cost the
/// per-link LP claws back at each depth.
pub fn depth_sweep_variant() -> DepthSweepVariant {
    let sampler = PlatformSampler::hetero_star();
    DepthSweepVariant {
        label: "tree-platform trade-off (makespan vs depth)".into(),
        fanouts: vec![sampler.workers, 3, 2, 1],
        sampler,
        schedulers: vec!["tree_fifo".into(), "tree_lifo".into(), "tree_lp".into()],
        baseline: "optimal_fifo".into(),
    }
}

/// One depth-sweep row: a fanout, its balanced-tree depth, and each tree
/// strategy's mean makespan ratio against the flat-star baseline.
#[derive(Debug, Clone)]
pub struct DepthSweepRow {
    /// Balanced-tree fanout.
    pub fanout: usize,
    /// Depth of the balanced tree at this fanout (for the sampled worker
    /// count).
    pub depth: usize,
    /// `(column name, mean makespan / baseline makespan)` per strategy;
    /// ratios above 1 quantify what the extra relay hops cost. A strategy
    /// that solved no platform is `NaN`.
    pub ratios: Vec<(String, f64)>,
    /// Strategy configurations that failed on some platforms at this
    /// fanout, keyed by their full parameterized registry id.
    pub skipped: Vec<SkippedStrategy>,
}

/// Complete depth-sweep result.
#[derive(Debug, Clone)]
pub struct DepthSweepResult {
    /// Label of the variant.
    pub label: String,
    /// Matrix size the platforms were built for.
    pub n: usize,
    /// Legend of the normalizing baseline.
    pub baseline: String,
    /// Mean flat-star baseline makespan in seconds (absolute reference).
    pub baseline_makespan: f64,
    /// One row per fanout.
    pub rows: Vec<DepthSweepRow>,
}

impl DepthSweepResult {
    /// Renders the trade-off table (one row per fanout).
    pub fn table(&self) -> Table {
        let mut headers: Vec<String> = vec!["fanout".into(), "depth".into()];
        if let Some(row) = self.rows.first() {
            headers.extend(row.ratios.iter().map(|(name, _)| name.clone()));
        }
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut t = Table::new(&header_refs);
        for row in &self.rows {
            let mut cells = vec![row.fanout.to_string(), row.depth.to_string()];
            cells.extend(row.ratios.iter().map(|(_, v)| num(*v, 4)));
            t.row(&cells);
        }
        t
    }
}

/// Runs the tree depth sweep at the paper-scale matrix size (the last
/// entry of `cfg.sizes`), averaging each tree strategy's predicted
/// makespan over `cfg.platforms` sampled flat stars — rearranged into a
/// balanced tree per fanout — and normalizing by the baseline's flat-star
/// makespan per platform.
///
/// # Panics
/// Like [`run_r_sweep`]: the baseline must solve every platform, and
/// non-applicability strategy errors abort loudly; applicability errors
/// are recorded in [`DepthSweepRow::skipped`].
pub fn run_depth_sweep(cfg: &SweepConfig, variant: &DepthSweepVariant) -> DepthSweepResult {
    dls_tree::install();
    let core = run_axis_sweep(
        cfg,
        &variant.label,
        "fanout",
        &variant.sampler,
        &variant.fanouts,
        &variant.schedulers,
        &variant.baseline,
    );
    // The depth of each fanout's balanced layout only depends on the
    // worker count, not the sampled costs: probe once with unit costs.
    let probe =
        Platform::bus(1.0, 0.5, &vec![1.0; variant.sampler.workers]).expect("probe platform valid");
    let depth_of = |k: usize| dls_platform::TreePlatform::balanced(&probe, k).depth();
    DepthSweepResult {
        label: variant.label.clone(),
        n: core.n,
        baseline: core.baseline_legend,
        baseline_makespan: core.baseline_makespan,
        rows: core
            .rows
            .into_iter()
            .map(|r| DepthSweepRow {
                fanout: r.axis,
                depth: depth_of(r.axis),
                ratios: r.ratios,
                skipped: r.skipped,
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::Heuristic;

    fn quick_variant() -> SweepVariant {
        SweepVariant {
            label: "test".into(),
            sampler: PlatformSampler::hetero_star(),
            comp_scale: 1.0,
            comm_scale: 1.0,
            cache_effects: false,
            schedulers: [Heuristic::IncC, Heuristic::IncW, Heuristic::Lifo]
                .iter()
                .map(|h| h.registry_id().to_string())
                .collect(),
        }
    }

    #[test]
    fn sweep_produces_row_per_size() {
        let cfg = SweepConfig {
            sizes: vec![40, 80],
            platforms: 3,
            total_units: 100,
            base_seed: 1,
        };
        let res = run_sweep(&cfg, &quick_variant());
        assert_eq!(res.rows.len(), 2);
        assert_eq!(res.rows[0].size, 40);
        // Five ratio columns: INC_C real, INC_W lp, INC_W real, LIFO lp,
        // LIFO real.
        assert_eq!(res.rows[0].ratios.len(), 5);
        assert!(res.rows[0].baseline_lp > 0.0);
        assert_eq!(res.baseline, "INC_C");
    }

    #[test]
    fn lifo_lp_beats_inc_c_on_compute_bound_sizes() {
        // No theorem orders LIFO vs FIFO, but on the paper's compute-bound
        // sizes LIFO's full enrollment wins on average — the shape of
        // Figures 10-12 (LIFO lp curve below 1). Regression-pinned on these
        // seeds at a compute-bound size.
        let cfg = SweepConfig {
            sizes: vec![200],
            platforms: 10,
            total_units: 100,
            base_seed: 2,
        };
        let res = run_sweep(&cfg, &quick_variant());
        let lifo_lp = res.rows[0]
            .ratios
            .iter()
            .find(|(n, _)| n == "LIFO lp/INC_C lp")
            .unwrap()
            .1;
        assert!(
            lifo_lp <= 1.0 + 1e-6,
            "LIFO lp ratio should be <= 1 at n = 200, got {lifo_lp}"
        );
    }

    #[test]
    fn inc_w_lp_never_beats_inc_c_lp() {
        // Theorem 1: INC_C is the optimal FIFO order, so INC_W lp >= 1.
        let cfg = SweepConfig {
            sizes: vec![80],
            platforms: 5,
            total_units: 100,
            base_seed: 3,
        };
        let res = run_sweep(&cfg, &quick_variant());
        let inc_w_lp = res.rows[0]
            .ratios
            .iter()
            .find(|(n, _)| n == "INC_W lp/INC_C lp")
            .unwrap()
            .1;
        assert!(
            inc_w_lp >= 1.0 - 1e-6,
            "INC_W lp ratio should be >= 1, got {inc_w_lp}"
        );
    }

    #[test]
    fn table_and_series_are_consistent() {
        let cfg = SweepConfig {
            sizes: vec![40],
            platforms: 2,
            total_units: 50,
            base_seed: 4,
        };
        let res = run_sweep(&cfg, &quick_variant());
        let t = res.table();
        assert_eq!(t.num_rows(), 1);
        let (xs, series) = res.series();
        assert_eq!(xs, vec![40.0]);
        assert_eq!(series.len(), 6); // absolute + 5 ratios
    }

    #[test]
    fn sweep_is_deterministic() {
        let cfg = SweepConfig {
            sizes: vec![60],
            platforms: 3,
            total_units: 100,
            base_seed: 5,
        };
        let a = run_sweep(&cfg, &quick_variant());
        let b = run_sweep(&cfg, &quick_variant());
        assert_eq!(a.rows[0].baseline_lp, b.rows[0].baseline_lp);
        assert_eq!(a.rows[0].ratios, b.rows[0].ratios);
    }

    #[test]
    fn any_registry_strategy_can_join_a_sweep() {
        // The engine makes strategy selection pure data: sweep the chain
        // solver (LP-free) next to INC_C without touching sweep code.
        let cfg = SweepConfig {
            sizes: vec![80],
            platforms: 2,
            total_units: 50,
            base_seed: 6,
        };
        let mut v = quick_variant();
        v.schedulers = vec!["inc_c".into(), "chain".into()];
        let res = run_sweep(&cfg, &v);
        // CHAIN lp, CHAIN real + INC_C real = 3 ratio columns.
        assert_eq!(res.rows[0].ratios.len(), 3);
        let chain_lp = res.rows[0]
            .ratios
            .iter()
            .find(|(n, _)| n == "CHAIN lp/INC_C lp")
            .unwrap()
            .1;
        // The prefix chain heuristic cannot beat the optimal FIFO's LP
        // time, and INC_C == optimal FIFO for the z = 1/2 cluster model,
        // so its lp ratio is >= 1.
        assert!(chain_lp >= 1.0 - 1e-6, "chain lp ratio {chain_lp}");
    }

    #[test]
    fn partial_strategy_is_skipped_with_reason() {
        // bus_fifo does not apply to the hetero-star family: instead of
        // aborting the whole batch mid-sweep, the row records the skip with
        // the strategy's own error and the other series stay intact.
        let cfg = SweepConfig {
            sizes: vec![40],
            platforms: 2,
            total_units: 50,
            base_seed: 7,
        };
        let mut v = quick_variant();
        v.schedulers = vec!["inc_c".into(), "bus_fifo".into()];
        let res = run_sweep(&cfg, &v);
        let row = &res.rows[0];
        assert_eq!(row.skipped.len(), 1);
        assert_eq!(row.skipped[0].legend, "BUS_FIFO");
        assert_eq!(row.skipped[0].platforms, cfg.platforms);
        assert!(
            row.skipped[0].reason.contains("bus"),
            "reason should carry the strategy error, got: {}",
            row.skipped[0].reason
        );
        // The skipped strategy's ratios are NaN; the baseline's are not.
        let bus_lp = row
            .ratios
            .iter()
            .find(|(name, _)| name == "BUS_FIFO lp/INC_C lp")
            .unwrap()
            .1;
        assert!(bus_lp.is_nan());
        assert!(row.baseline_lp > 0.0);
        let inc_c_real = row
            .ratios
            .iter()
            .find(|(name, _)| name == "INC_C real/INC_C lp")
            .unwrap()
            .1;
        assert!(inc_c_real.is_finite());
    }

    #[test]
    fn engine_override_propagates_to_worker_threads() {
        // `with_engine` is thread-local; run_sweep must re-apply the
        // caller's override inside its par_map workers, so a tableau-forced
        // sweep runs (and agrees) regardless of how the map is scheduled.
        let cfg = SweepConfig {
            sizes: vec![40, 80],
            platforms: 3,
            total_units: 100,
            base_seed: 21,
        };
        let revised = run_sweep(&cfg, &quick_variant());
        let tableau =
            dls_core::lp_model::with_engine(dls_core::lp_model::LpEngine::Tableau, || {
                run_sweep(&cfg, &quick_variant())
            });
        for (ra, rb) in revised.rows.iter().zip(&tableau.rows) {
            assert_eq!(ra.size, rb.size);
            assert!(
                (ra.baseline_lp - rb.baseline_lp).abs() <= 1e-6 * ra.baseline_lp,
                "baselines diverge: {} vs {}",
                ra.baseline_lp,
                rb.baseline_lp
            );
            for ((na, va), (nb, vb)) in ra.ratios.iter().zip(&rb.ratios) {
                assert_eq!(na, nb);
                assert!((va - vb).abs() <= 1e-6, "{na}: {va} vs {vb}");
            }
        }
    }

    #[test]
    fn fully_applicable_sweep_has_no_skips() {
        let cfg = SweepConfig {
            sizes: vec![40],
            platforms: 2,
            total_units: 50,
            base_seed: 8,
        };
        let res = run_sweep(&cfg, &quick_variant());
        assert!(res.rows.iter().all(|r| r.skipped.is_empty()));
    }

    #[test]
    #[should_panic(expected = "baseline strategy 'bus_fifo' cannot solve this platform family")]
    fn partial_baseline_still_fails_fast() {
        // The baseline normalizes every ratio: if *it* cannot solve the
        // family, nothing can be salvaged and the sweep must abort before
        // spawning worker threads.
        let cfg = SweepConfig {
            sizes: vec![40],
            platforms: 2,
            total_units: 50,
            base_seed: 7,
        };
        let mut v = quick_variant();
        v.schedulers = vec!["bus_fifo".into(), "inc_c".into()];
        run_sweep(&cfg, &v);
    }

    #[test]
    #[should_panic(expected = "unknown scheduler")]
    fn unknown_scheduler_id_panics_loudly() {
        let mut v = quick_variant();
        v.schedulers = vec!["definitely_not_registered".into()];
        v.resolve_schedulers();
    }

    #[test]
    fn parameterized_multiround_ids_join_an_ordinary_sweep() {
        // The provider story end-to-end: a multi-round id configured like
        // any other registry string, its expanded solution simulated on the
        // execution platform, no skips.
        let cfg = SweepConfig {
            sizes: vec![80],
            platforms: 2,
            total_units: 50,
            base_seed: 9,
        };
        let mut v = quick_variant();
        v.schedulers = vec!["inc_c".into(), "multiround_lp@2".into()];
        let res = run_sweep(&cfg, &v);
        let row = &res.rows[0];
        assert!(
            row.skipped.is_empty(),
            "unexpected skips: {:?}",
            row.skipped
        );
        let mr_lp = row
            .ratios
            .iter()
            .find(|(n, _)| n == "MR_LP@2 lp/INC_C lp")
            .unwrap()
            .1;
        // The 2-round LP plan embeds every 1-round plan, and INC_C is the
        // optimal FIFO on this z = 1/2 family: ratio <= 1.
        assert!(mr_lp <= 1.0 + 1e-6, "MR_LP@2 lp ratio {mr_lp}");
        let mr_real = row
            .ratios
            .iter()
            .find(|(n, _)| n == "MR_LP@2 real/INC_C lp")
            .unwrap()
            .1;
        assert!(mr_real.is_finite(), "expanded schedule failed to simulate");
    }

    #[test]
    fn r_sweep_r1_matches_the_baseline_and_r4_improves() {
        // The acceptance shape of the trade-off table: R = 1 reduces to
        // optimal_fifo exactly (ratio 1) and the LP planner strictly
        // improves for some R > 1 at the paper-scale size.
        let cfg = SweepConfig {
            sizes: vec![200],
            platforms: 4,
            total_units: 1000,
            base_seed: 11,
        };
        let res = run_r_sweep(&cfg, &r_sweep_variant());
        assert_eq!(res.n, 200);
        assert_eq!(res.baseline, "OPT_FIFO");
        assert!(res.baseline_makespan > 0.0);
        assert_eq!(res.rows.len(), 4);
        let r1 = &res.rows[0];
        assert_eq!(r1.rounds, 1);
        for (name, ratio) in &r1.ratios {
            assert!(
                (ratio - 1.0).abs() < 1e-9,
                "{name} at R = 1 should be exactly the baseline, got {ratio}"
            );
        }
        let lp_at = |row: &RSweepRow| {
            row.ratios
                .iter()
                .find(|(n, _)| n.starts_with("MR_LP"))
                .unwrap()
                .1
        };
        // Monotone along R for the LP planner (zero rounds are feasible)…
        let mut prev = f64::INFINITY;
        for row in &res.rows {
            let v = lp_at(row);
            assert!(v <= prev + 1e-9, "LP ratio increased at R = {}", row.rounds);
            prev = v;
        }
        // …and strictly better than one round by R = 4.
        let r4 = res.rows.iter().find(|r| r.rounds == 4).unwrap();
        assert!(
            lp_at(r4) < 1.0 - 1e-6,
            "R = 4 LP plan should strictly beat one-round optimal FIFO, got {}",
            lp_at(r4)
        );
        assert!(res.rows.iter().all(|r| r.skipped.is_empty()));
    }

    #[test]
    fn tree_and_affine_ids_join_an_ordinary_sweep() {
        // The provider story end-to-end for the two new families: a tree
        // id simulated on its collapsed execution platform, the affine
        // prefix heuristic next to it, no skips.
        let cfg = SweepConfig {
            sizes: vec![80],
            platforms: 2,
            total_units: 50,
            base_seed: 10,
        };
        let mut v = quick_variant();
        v.schedulers = vec!["inc_c".into(), "tree_fifo@3".into(), "affine_fifo".into()];
        let res = run_sweep(&cfg, &v);
        let row = &res.rows[0];
        assert!(
            row.skipped.is_empty(),
            "unexpected skips: {:?}",
            row.skipped
        );
        let tree_lp = row
            .ratios
            .iter()
            .find(|(n, _)| n == "TREE_FIFO@3 lp/INC_C lp")
            .unwrap()
            .1;
        // Serializing relay hops cannot beat the flat-star optimum, and
        // INC_C is that optimum on this z = 1/2 family.
        assert!(tree_lp >= 1.0 - 1e-6, "TREE_FIFO@3 lp ratio {tree_lp}");
        let tree_real = row
            .ratios
            .iter()
            .find(|(n, _)| n == "TREE_FIFO@3 real/INC_C lp")
            .unwrap()
            .1;
        assert!(
            tree_real.is_finite(),
            "collapsed schedule failed to simulate"
        );
        let aff_lp = row
            .ratios
            .iter()
            .find(|(n, _)| n == "AFF_FIFO lp/INC_C lp")
            .unwrap()
            .1;
        // Charging per-message latencies cannot beat the linear optimum.
        assert!(aff_lp >= 1.0 - 1e-6, "AFF_FIFO lp ratio {aff_lp}");
    }

    #[test]
    fn depth_sweep_flat_fanout_matches_the_baseline_and_depth_costs() {
        // The acceptance shape of the trade-off table: fanout >= p is the
        // flat star (TREE_FIFO ratio exactly 1) and deeper trees only get
        // slower for the FIFO discipline.
        let cfg = SweepConfig {
            sizes: vec![200],
            platforms: 4,
            total_units: 1000,
            base_seed: 14,
        };
        let res = run_depth_sweep(&cfg, &depth_sweep_variant());
        assert_eq!(res.n, 200);
        assert_eq!(res.baseline, "OPT_FIFO");
        assert!(res.baseline_makespan > 0.0);
        assert_eq!(res.rows.len(), 4);
        let flat = &res.rows[0];
        assert_eq!(flat.fanout, 11);
        assert_eq!(flat.depth, 1);
        let fifo_at = |row: &DepthSweepRow| {
            row.ratios
                .iter()
                .find(|(n, _)| n.starts_with("TREE_FIFO"))
                .unwrap()
                .1
        };
        assert!(
            (fifo_at(flat) - 1.0).abs() < 1e-9,
            "flat fanout should be exactly the baseline, got {}",
            fifo_at(flat)
        );
        // Depth is monotone along the fanout axis {11, 3, 2, 1}...
        let depths: Vec<usize> = res.rows.iter().map(|r| r.depth).collect();
        assert_eq!(depths, vec![1, 2, 3, 11]);
        // ...and the serialized FIFO ratio only degrades with depth.
        let mut prev = 0.0;
        for row in &res.rows {
            let v = fifo_at(row);
            assert!(
                v >= prev - 1e-9,
                "FIFO ratio improved with depth at fanout {}",
                row.fanout
            );
            prev = v;
        }
        // The tree-native LP rides the same axis and never loses to the
        // star-collapse FIFO at any depth — its whole point.
        let lp_at = |row: &DepthSweepRow| {
            row.ratios
                .iter()
                .find(|(n, _)| n.starts_with("TREE_LP"))
                .unwrap()
                .1
        };
        for row in &res.rows {
            assert!(
                lp_at(row) <= fifo_at(row) + 1e-7,
                "tree_lp lost to tree_fifo at fanout {}: {} vs {}",
                row.fanout,
                lp_at(row),
                fifo_at(row)
            );
        }
        // At depth >= 2 the per-link LP must claw back part of the
        // serialization cost on average (strict improvement somewhere).
        let improved = res
            .rows
            .iter()
            .filter(|r| r.depth >= 2)
            .any(|r| lp_at(r) < fifo_at(r) - 1e-6);
        assert!(
            improved,
            "tree_lp never improved on star-collapse at depth >= 2"
        );
        assert!(res.rows.iter().all(|r| r.skipped.is_empty()));
    }

    #[test]
    fn interleaved_fifo_joins_an_ordinary_sweep() {
        // The interleaved-master solver as plain sweep configuration: its
        // lp column can never lose to the one-round FIFO optimum (INC_C on
        // this z = 1/2 family) because the canonical lead is in its family.
        let cfg = SweepConfig {
            sizes: vec![80],
            platforms: 2,
            total_units: 50,
            base_seed: 17,
        };
        let mut v = quick_variant();
        v.schedulers = vec!["inc_c".into(), "interleaved_fifo".into()];
        let res = run_sweep(&cfg, &v);
        let row = &res.rows[0];
        assert!(
            row.skipped.is_empty(),
            "unexpected skips: {:?}",
            row.skipped
        );
        let int_lp = row
            .ratios
            .iter()
            .find(|(n, _)| n == "INT_FIFO lp/INC_C lp")
            .unwrap()
            .1;
        assert!(
            (0.999..=1.001).contains(&int_lp),
            "INT_FIFO lp ratio {int_lp} should match the canonical optimum"
        );
        let int_real = row
            .ratios
            .iter()
            .find(|(n, _)| n == "INT_FIFO real/INC_C lp")
            .unwrap()
            .1;
        assert!(
            int_real.is_finite(),
            "interleaved schedule failed to simulate"
        );
    }

    #[test]
    fn depth_sweep_table_has_one_row_per_fanout() {
        let cfg = SweepConfig {
            sizes: vec![120],
            platforms: 2,
            total_units: 100,
            base_seed: 15,
        };
        let mut v = depth_sweep_variant();
        v.fanouts = vec![11, 1];
        let res = run_depth_sweep(&cfg, &v);
        let t = res.table();
        assert_eq!(t.num_rows(), 2);
        let rendered = t.render();
        assert!(rendered.contains("TREE_FIFO mk/OPT_FIFO mk"), "{rendered}");
        assert!(rendered.contains("depth"), "{rendered}");
    }

    #[test]
    fn depth_sweep_is_deterministic() {
        let cfg = SweepConfig {
            sizes: vec![120],
            platforms: 3,
            total_units: 100,
            base_seed: 16,
        };
        let a = run_depth_sweep(&cfg, &depth_sweep_variant());
        let b = run_depth_sweep(&cfg, &depth_sweep_variant());
        for (ra, rb) in a.rows.iter().zip(&b.rows) {
            assert_eq!(ra.ratios, rb.ratios);
        }
    }

    #[test]
    fn r_sweep_table_has_one_row_per_round_count() {
        let cfg = SweepConfig {
            sizes: vec![120],
            platforms: 2,
            total_units: 100,
            base_seed: 12,
        };
        let mut v = r_sweep_variant();
        v.rounds = vec![1, 2];
        let res = run_r_sweep(&cfg, &v);
        let t = res.table();
        assert_eq!(t.num_rows(), 2);
        let rendered = t.render();
        assert!(rendered.contains("MR_LP mk/OPT_FIFO mk"), "{rendered}");
    }

    #[test]
    fn r_sweep_is_deterministic() {
        let cfg = SweepConfig {
            sizes: vec![120],
            platforms: 3,
            total_units: 100,
            base_seed: 13,
        };
        let a = run_r_sweep(&cfg, &r_sweep_variant());
        let b = run_r_sweep(&cfg, &r_sweep_variant());
        for (ra, rb) in a.rows.iter().zip(&b.rows) {
            assert_eq!(ra.ratios, rb.ratios);
        }
    }
}
