//! Shared engine for the Figures 10-13 heuristic-comparison sweeps.
//!
//! For each matrix size the paper averages, over 50 random platforms, the
//! theoretical (LP) and measured execution times of each heuristic for
//! `M = 1000` matrix products, normalized by the theoretical time of
//! `INC_C`. This module reproduces that pipeline with the simulator in the
//! testbed's role:
//!
//! 1. draw a platform (speed factors 1..10, family per figure);
//! 2. per strategy: solve through the [`Scheduler`] engine
//!    (`T_lp = M / ρ`), round the loads to integers with the paper's
//!    policy, simulate the integer schedule under seeded jitter
//!    (`T_real`);
//! 3. average `T_lp`/`T_real` ratios across platforms.
//!
//! The strategies compared are *data*, not code: a [`SweepVariant`] names
//! registry ids (see [`dls_core::registry`]) and the first one is the
//! normalization baseline. Adding a strategy to a figure is a one-string
//! change.

use dls_core::engine::Scheduler;
use dls_core::prelude::*;
use dls_platform::{ClusterModel, MatrixApp, Platform, PlatformSampler};
use dls_report::{mean, num, par_map, Series, Table};
use dls_sim::{simulate, RealismModel, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::scenarios::SweepConfig;

/// Figure-specific variations on the shared sweep.
#[derive(Debug, Clone)]
pub struct SweepVariant {
    /// Figure label (used in headers and file names).
    pub label: String,
    /// Random platform family.
    pub sampler: PlatformSampler,
    /// Multiplier on all computation costs (Fig. 13(a) uses `0.1` =
    /// "calculation power ×10").
    pub comp_scale: f64,
    /// Multiplier on all communication costs (Fig. 13(b) uses `0.1`).
    pub comm_scale: f64,
    /// Apply the cache-degradation compute model in the simulated runs
    /// (Fig. 13(b) regime; see `RealismModel::cluster_with_cache_effects`).
    pub cache_effects: bool,
    /// Registry ids of the strategies to compare (see
    /// [`dls_core::registry`]); the first entry is the normalization
    /// baseline (the paper normalizes by `INC_C`'s theoretical time).
    pub schedulers: Vec<String>,
}

impl SweepVariant {
    /// Resolves the configured ids against the scheduler registry.
    ///
    /// # Panics
    /// Panics on an id absent from [`dls_core::registry`] — a sweep over a
    /// nonexistent strategy is a configuration bug, not a runtime
    /// condition.
    pub fn resolve_schedulers(&self) -> Vec<Box<dyn Scheduler>> {
        assert!(
            !self.schedulers.is_empty(),
            "sweep variant '{}' names no schedulers",
            self.label
        );
        self.schedulers
            .iter()
            .map(|id| {
                dls_core::lookup(id)
                    .unwrap_or_else(|| panic!("unknown scheduler '{id}' in sweep variant"))
            })
            .collect()
    }
}

/// One averaged output row (one matrix size).
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Matrix size `n`.
    pub size: usize,
    /// Average theoretical baseline time in seconds (the paper's absolute
    /// reference curve "INC_C lp").
    pub baseline_lp: f64,
    /// `(series name, averaged ratio vs the baseline lp time)` in a fixed
    /// order.
    pub ratios: Vec<(String, f64)>,
}

/// Complete sweep result.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Figure label.
    pub label: String,
    /// Legend of the normalization baseline (first configured scheduler).
    pub baseline: String,
    /// One row per matrix size.
    pub rows: Vec<SweepRow>,
}

impl SweepResult {
    /// Renders the rows as an aligned table (the paper's plotted series).
    pub fn table(&self) -> Table {
        let mut headers: Vec<String> = vec!["n".into(), format!("{} lp (s)", self.baseline)];
        if let Some(row) = self.rows.first() {
            headers.extend(row.ratios.iter().map(|(name, _)| name.clone()));
        }
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut t = Table::new(&header_refs);
        for row in &self.rows {
            let mut cells = vec![row.size.to_string(), num(row.baseline_lp, 3)];
            cells.extend(row.ratios.iter().map(|(_, v)| num(*v, 4)));
            t.row(&cells);
        }
        t
    }

    /// Exports the x vector and one series per ratio column (plus the
    /// absolute baseline curve) for `.dat` output.
    pub fn series(&self) -> (Vec<f64>, Vec<Series>) {
        let xs: Vec<f64> = self.rows.iter().map(|r| r.size as f64).collect();
        let mut out = vec![Series::new(
            format!("{} lp seconds", self.baseline),
            self.rows.iter().map(|r| r.baseline_lp).collect(),
        )];
        if let Some(first) = self.rows.first() {
            for (k, (name, _)) in first.ratios.iter().enumerate() {
                out.push(Series::new(
                    name.clone(),
                    self.rows.iter().map(|r| r.ratios[k].1).collect(),
                ));
            }
        }
        (xs, out)
    }
}

/// Strategy outcome on one platform at one size.
struct Outcome {
    lp_time: f64,
    real_time: f64,
}

fn run_scheduler(
    platform: &Platform,
    scheduler: &dyn Scheduler,
    total_units: u64,
    realism: RealismModel,
    seed: u64,
) -> Outcome {
    let sol = scheduler
        .solve(platform)
        .unwrap_or_else(|e| panic!("{} failed in sweep: {e}", scheduler.name()));
    // Theoretical time for M units: linearity gives T = M / rho.
    let lp_time = total_units as f64 / sol.throughput;
    let int_sched = integer_schedule(&sol.schedule, total_units);
    let report = simulate(
        platform,
        &int_sched,
        &SimConfig {
            realism,
            seed,
            ..SimConfig::ideal()
        },
    );
    Outcome {
        lp_time,
        real_time: report.makespan,
    }
}

/// Runs the full sweep for a figure variant.
///
/// # Panics
/// Every configured strategy must solve every platform the variant's
/// sampler can draw (partial strategies like `bus_fifo` or the
/// size-guarded exhaustive searches do not belong in sweeps). This is
/// checked up front against the first sampled platform so a
/// misconfiguration fails immediately with the strategy's own error,
/// rather than aborting a worker thread mid-sweep.
pub fn run_sweep(cfg: &SweepConfig, variant: &SweepVariant) -> SweepResult {
    let cluster = ClusterModel::gdsdmi();
    let schedulers = variant.resolve_schedulers();

    // Draw each platform's speed factors once (independent of matrix size),
    // exactly like reusing the same physical cluster across sizes.
    let factor_sets: Vec<(Vec<f64>, Vec<f64>)> = (0..cfg.platforms)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(cfg.base_seed.wrapping_add(i as u64));
            variant.sampler.sample_factors(&mut rng)
        })
        .collect();

    // Fail fast on strategies that do not apply to this platform family.
    if let (Some((comm, comp)), Some(&n)) = (factor_sets.first(), cfg.sizes.first()) {
        let probe = cluster
            .platform(&MatrixApp::new(n), comm, comp)
            .expect("sampled factors valid")
            .scale_comp(variant.comp_scale)
            .scale_comm(variant.comm_scale);
        for s in &schedulers {
            if let Err(e) = s.solve(&probe) {
                panic!(
                    "sweep '{}': strategy '{}' cannot solve this platform family: {e}",
                    variant.label,
                    s.name()
                );
            }
        }
    }

    let mut rows = Vec::with_capacity(cfg.sizes.len());
    for &n in &cfg.sizes {
        let app = MatrixApp::new(n);
        let realism = if variant.cache_effects {
            RealismModel::cluster_with_cache_effects(n)
        } else {
            RealismModel::cluster_jitter()
        };

        // Evaluate all platforms in parallel.
        let per_platform: Vec<Vec<Outcome>> = par_map(&factor_sets, |(comm, comp)| {
            let platform = cluster
                .platform(&app, comm, comp)
                .expect("sampled factors valid")
                .scale_comp(variant.comp_scale)
                .scale_comm(variant.comm_scale);
            schedulers
                .iter()
                .enumerate()
                .map(|(si, s)| {
                    // Seed mixes platform identity, size and strategy so
                    // jitter streams are independent but reproducible.
                    let seed = cfg
                        .base_seed
                        .wrapping_mul(31)
                        .wrapping_add(n as u64)
                        .wrapping_mul(1009)
                        .wrapping_add(si as u64)
                        .wrapping_add(comm.iter().sum::<f64>().to_bits());
                    run_scheduler(&platform, s.as_ref(), cfg.total_units, realism, seed)
                })
                .collect()
        });

        // Normalize by each platform's own baseline lp time, then average —
        // matching the paper's "normalized by FIFO theoretical performance"
        // plots.
        let baseline_lp = mean(
            &per_platform
                .iter()
                .map(|o| o[0].lp_time)
                .collect::<Vec<_>>(),
        );
        let baseline_legend = schedulers[0].legend();
        let mut ratios: Vec<(String, f64)> = Vec::new();
        for (si, s) in schedulers.iter().enumerate() {
            let lp_ratio = mean(
                &per_platform
                    .iter()
                    .map(|o| o[si].lp_time / o[0].lp_time)
                    .collect::<Vec<_>>(),
            );
            let real_ratio = mean(
                &per_platform
                    .iter()
                    .map(|o| o[si].real_time / o[0].lp_time)
                    .collect::<Vec<_>>(),
            );
            if si != 0 {
                ratios.push((format!("{} lp/{baseline_legend} lp", s.legend()), lp_ratio));
            }
            ratios.push((
                format!("{} real/{baseline_legend} lp", s.legend()),
                real_ratio,
            ));
        }
        rows.push(SweepRow {
            size: n,
            baseline_lp,
            ratios,
        });
    }

    SweepResult {
        label: variant.label.clone(),
        baseline: schedulers[0].legend().to_string(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::Heuristic;

    fn quick_variant() -> SweepVariant {
        SweepVariant {
            label: "test".into(),
            sampler: PlatformSampler::hetero_star(),
            comp_scale: 1.0,
            comm_scale: 1.0,
            cache_effects: false,
            schedulers: [Heuristic::IncC, Heuristic::IncW, Heuristic::Lifo]
                .iter()
                .map(|h| h.registry_id().to_string())
                .collect(),
        }
    }

    #[test]
    fn sweep_produces_row_per_size() {
        let cfg = SweepConfig {
            sizes: vec![40, 80],
            platforms: 3,
            total_units: 100,
            base_seed: 1,
        };
        let res = run_sweep(&cfg, &quick_variant());
        assert_eq!(res.rows.len(), 2);
        assert_eq!(res.rows[0].size, 40);
        // Five ratio columns: INC_C real, INC_W lp, INC_W real, LIFO lp,
        // LIFO real.
        assert_eq!(res.rows[0].ratios.len(), 5);
        assert!(res.rows[0].baseline_lp > 0.0);
        assert_eq!(res.baseline, "INC_C");
    }

    #[test]
    fn lifo_lp_beats_inc_c_on_compute_bound_sizes() {
        // No theorem orders LIFO vs FIFO, but on the paper's compute-bound
        // sizes LIFO's full enrollment wins on average — the shape of
        // Figures 10-12 (LIFO lp curve below 1). Regression-pinned on these
        // seeds at a compute-bound size.
        let cfg = SweepConfig {
            sizes: vec![200],
            platforms: 10,
            total_units: 100,
            base_seed: 2,
        };
        let res = run_sweep(&cfg, &quick_variant());
        let lifo_lp = res.rows[0]
            .ratios
            .iter()
            .find(|(n, _)| n == "LIFO lp/INC_C lp")
            .unwrap()
            .1;
        assert!(
            lifo_lp <= 1.0 + 1e-6,
            "LIFO lp ratio should be <= 1 at n = 200, got {lifo_lp}"
        );
    }

    #[test]
    fn inc_w_lp_never_beats_inc_c_lp() {
        // Theorem 1: INC_C is the optimal FIFO order, so INC_W lp >= 1.
        let cfg = SweepConfig {
            sizes: vec![80],
            platforms: 5,
            total_units: 100,
            base_seed: 3,
        };
        let res = run_sweep(&cfg, &quick_variant());
        let inc_w_lp = res.rows[0]
            .ratios
            .iter()
            .find(|(n, _)| n == "INC_W lp/INC_C lp")
            .unwrap()
            .1;
        assert!(
            inc_w_lp >= 1.0 - 1e-6,
            "INC_W lp ratio should be >= 1, got {inc_w_lp}"
        );
    }

    #[test]
    fn table_and_series_are_consistent() {
        let cfg = SweepConfig {
            sizes: vec![40],
            platforms: 2,
            total_units: 50,
            base_seed: 4,
        };
        let res = run_sweep(&cfg, &quick_variant());
        let t = res.table();
        assert_eq!(t.num_rows(), 1);
        let (xs, series) = res.series();
        assert_eq!(xs, vec![40.0]);
        assert_eq!(series.len(), 6); // absolute + 5 ratios
    }

    #[test]
    fn sweep_is_deterministic() {
        let cfg = SweepConfig {
            sizes: vec![60],
            platforms: 3,
            total_units: 100,
            base_seed: 5,
        };
        let a = run_sweep(&cfg, &quick_variant());
        let b = run_sweep(&cfg, &quick_variant());
        assert_eq!(a.rows[0].baseline_lp, b.rows[0].baseline_lp);
        assert_eq!(a.rows[0].ratios, b.rows[0].ratios);
    }

    #[test]
    fn any_registry_strategy_can_join_a_sweep() {
        // The engine makes strategy selection pure data: sweep the chain
        // solver (LP-free) next to INC_C without touching sweep code.
        let cfg = SweepConfig {
            sizes: vec![80],
            platforms: 2,
            total_units: 50,
            base_seed: 6,
        };
        let mut v = quick_variant();
        v.schedulers = vec!["inc_c".into(), "chain".into()];
        let res = run_sweep(&cfg, &v);
        // CHAIN lp, CHAIN real + INC_C real = 3 ratio columns.
        assert_eq!(res.rows[0].ratios.len(), 3);
        let chain_lp = res.rows[0]
            .ratios
            .iter()
            .find(|(n, _)| n == "CHAIN lp/INC_C lp")
            .unwrap()
            .1;
        // The prefix chain heuristic cannot beat the optimal FIFO's LP
        // time, and INC_C == optimal FIFO for the z = 1/2 cluster model,
        // so its lp ratio is >= 1.
        assert!(chain_lp >= 1.0 - 1e-6, "chain lp ratio {chain_lp}");
    }

    #[test]
    #[should_panic(expected = "cannot solve this platform family")]
    fn partial_strategy_in_a_sweep_fails_fast() {
        // bus_fifo does not apply to the hetero-star family: the sweep must
        // reject the configuration before spawning worker threads.
        let cfg = SweepConfig {
            sizes: vec![40],
            platforms: 2,
            total_units: 50,
            base_seed: 7,
        };
        let mut v = quick_variant();
        v.schedulers = vec!["inc_c".into(), "bus_fifo".into()];
        run_sweep(&cfg, &v);
    }

    #[test]
    #[should_panic(expected = "unknown scheduler")]
    fn unknown_scheduler_id_panics_loudly() {
        let mut v = quick_variant();
        v.schedulers = vec!["definitely_not_registered".into()];
        v.resolve_schedulers();
    }
}
