//! Figure 8 — linearity test.
//!
//! The paper sends messages of 0.5..5 MB to five workers with different
//! (simulated) communication speeds and checks that transfer time is linear
//! in message size with negligible latency ("our assumption on linearity
//! holds true, and no latency needs to be taken into account"). We replay
//! the test against the simulator's transfer model with cluster jitter and
//! report a least-squares fit per worker: the slope must match
//! `1/(bandwidth × speed factor)` and the intercept must be ~0.

use dls_platform::{scenario, ClusterModel};
use dls_report::{linear_fit, mean, num, write_dat, LinearFit, Series, Table};
use dls_sim::RealismModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;

/// Measured series for one worker.
#[derive(Debug, Clone)]
pub struct WorkerSeries {
    /// Speed factor of the worker's link.
    pub factor: f64,
    /// Mean transfer time per message size (aligned with the size grid).
    pub times: Vec<f64>,
    /// Least-squares fit of time against megabytes.
    pub fit: LinearFit,
}

/// Full Figure 8 output.
#[derive(Debug, Clone)]
pub struct Fig08 {
    /// Message sizes in megabytes.
    pub sizes_mb: Vec<f64>,
    /// One series per worker.
    pub workers: Vec<WorkerSeries>,
}

/// Repetitions averaged per point (jitter smoothing).
const REPS: u32 = 20;

/// Runs the linearity test.
pub fn run(seed: u64) -> Fig08 {
    let cluster = ClusterModel::gdsdmi();
    let realism = RealismModel::cluster_jitter();
    let sizes_mb: Vec<f64> = (1..=10).map(|k| k as f64 * 0.5).collect();

    let workers = scenario::fig8_comm_factors()
        .into_iter()
        .enumerate()
        .map(|(wi, factor)| {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(wi as u64));
            let times: Vec<f64> = sizes_mb
                .iter()
                .map(|mb| {
                    let nominal = mb * 1e6 / (cluster.bandwidth * factor);
                    let samples: Vec<f64> = (0..REPS)
                        .map(|_| realism.transfer_duration(nominal, &mut rng))
                        .collect();
                    mean(&samples)
                })
                .collect();
            let fit = linear_fit(&sizes_mb, &times).expect("grid has distinct sizes");
            WorkerSeries { factor, times, fit }
        })
        .collect();

    Fig08 { sizes_mb, workers }
}

impl Fig08 {
    /// Renders the measured times table plus the per-worker fit summary.
    pub fn report(&self) -> String {
        let mut headers: Vec<String> = vec!["MB".into()];
        headers.extend(
            self.workers
                .iter()
                .enumerate()
                .map(|(i, w)| format!("worker {} (x{})", i + 1, w.factor)),
        );
        let refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut t = Table::new(&refs);
        for (k, mb) in self.sizes_mb.iter().enumerate() {
            let mut cells = vec![num(*mb, 1)];
            cells.extend(self.workers.iter().map(|w| num(w.times[k], 4)));
            t.row(&cells);
        }

        let mut fit = Table::new(&["worker", "slope s/MB", "expected", "intercept s", "R^2"]);
        let cluster = ClusterModel::gdsdmi();
        for (i, w) in self.workers.iter().enumerate() {
            fit.row(&[
                format!("worker {} (x{})", i + 1, w.factor),
                num(w.fit.slope, 5),
                num(1e6 / (cluster.bandwidth * w.factor), 5),
                num(w.fit.intercept, 5),
                num(w.fit.r_squared, 5),
            ]);
        }

        format!(
            "Figure 8 — linearity test (transfer time vs message size)\n\n{}\nLeast-squares fits (linear model holds when slope matches and intercept ~ 0):\n{}",
            t.render(),
            fit.render()
        )
    }

    /// Writes the `.dat` series for plotting.
    pub fn write_dat(&self, path: &Path) -> std::io::Result<()> {
        let series: Vec<Series> = self
            .workers
            .iter()
            .enumerate()
            .map(|(i, w)| Series::new(format!("worker{}", i + 1), w.times.clone()))
            .collect();
        write_dat(path, "megabytes", &self.sizes_mb, &series)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linearity_holds_in_the_simulator() {
        let fig = run(42);
        assert_eq!(fig.workers.len(), 5);
        for (i, w) in fig.workers.iter().enumerate() {
            assert!(
                w.fit.r_squared > 0.995,
                "worker {i}: poor linear fit r2 = {}",
                w.fit.r_squared
            );
            // Intercept negligible relative to the largest transfer.
            let max_t = w.times.last().copied().unwrap();
            assert!(
                w.fit.intercept.abs() < 0.05 * max_t,
                "worker {i}: latency leaked into intercept: {}",
                w.fit.intercept
            );
        }
    }

    #[test]
    fn faster_workers_have_smaller_slopes() {
        let fig = run(7);
        for pair in fig.workers.windows(2) {
            assert!(
                pair[1].fit.slope < pair[0].fit.slope,
                "slopes not decreasing with speed factor"
            );
        }
    }

    #[test]
    fn report_contains_all_workers() {
        let fig = run(1);
        let rep = fig.report();
        for i in 1..=5 {
            assert!(rep.contains(&format!("worker {i}")), "missing worker {i}");
        }
        assert!(rep.contains("R^2"));
    }
}
