//! One module per reproduced figure of the paper's evaluation section.
//!
//! Every module exposes `run(..)` returning a structured result plus a
//! `report()` printable as "the rows the paper plots". The binaries in
//! `src/bin/` are thin wrappers; integration tests and `cargo bench` call
//! the same entry points at reduced scale.

pub mod extensions;
pub mod fig08;
pub mod fig09;
pub mod fig10_13;
pub mod fig14;
pub mod interleaved;
pub mod sweep;
