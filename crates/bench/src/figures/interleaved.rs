//! The `interleaved_gap` artifact: what interleaving the master's port
//! actually costs (beyond the paper; the interleaved-master ROADMAP item).
//!
//! For the paper-scale heterogeneous-star family, each row pins one merge
//! **lead** `L` of the interleaved-master LP family (`L = p` is the
//! canonical sends-then-returns shape; `L = 1` fully alternates sends and
//! returns) and reports, averaged over sampled platforms and normalized
//! by `optimal_fifo`'s LP makespan:
//!
//! * `lp` — the lead's own LP-optimal makespan ratio (≥ 1; exactly 1 at
//!   the canonical lead — the canonical-shape theorem observed from the
//!   optimization side);
//! * `replay STR` — the lead's loads replayed by the simulator under the
//!   canonical `SendsThenReceives` master;
//! * `replay INT` — the same loads under the greedy
//!   `MasterPolicy::Interleaved` master.
//!
//! Together the three columns chart the full gap story: the LP family
//! says interleaving cannot *gain* throughput, and the replay columns
//! show what each interleaving costs when executed under either policy.

use dls_core::interleaved::{interleaved_order, interleaved_profile};
use dls_core::prelude::*;
use dls_platform::{ClusterModel, MatrixApp, PlatformSampler};
use dls_report::{mean, num, par_map, Series, Table};
use dls_sim::{simulate, MasterPolicy, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::scenarios::SweepConfig;

/// One lead's averaged row.
#[derive(Debug, Clone)]
pub struct GapRow {
    /// The merge lead (`p` = canonical).
    pub lead: usize,
    /// Mean LP makespan ratio vs `optimal_fifo` (≥ 1).
    pub lp_ratio: f64,
    /// Mean sends-then-receives replay makespan ratio.
    pub replay_str_ratio: f64,
    /// Mean interleaved-policy replay makespan ratio.
    pub replay_int_ratio: f64,
}

/// Complete interleaved-gap result.
#[derive(Debug, Clone)]
pub struct InterleavedGapResult {
    /// Display label.
    pub label: String,
    /// Matrix size the platforms were built for.
    pub n: usize,
    /// Platforms averaged.
    pub platforms: usize,
    /// Mean `optimal_fifo` makespan in seconds (absolute reference for
    /// `cfg.total_units` units).
    pub baseline_makespan: f64,
    /// One row per lead, canonical first.
    pub rows: Vec<GapRow>,
}

impl InterleavedGapResult {
    /// Renders the gap table (one row per lead).
    pub fn table(&self) -> Table {
        let mut t = Table::new(&[
            "lead",
            "INT lp/OPT lp",
            "INT replay-STR/OPT lp",
            "INT replay-INT/OPT lp",
        ]);
        for row in &self.rows {
            t.row(&[
                if row.lead == self.rows[0].lead {
                    format!("{} (canonical)", row.lead)
                } else {
                    row.lead.to_string()
                },
                num(row.lp_ratio, 4),
                num(row.replay_str_ratio, 4),
                num(row.replay_int_ratio, 4),
            ]);
        }
        t
    }

    /// Exports the lead axis and the three ratio series for `.dat` output.
    pub fn series(&self) -> (Vec<f64>, Vec<Series>) {
        let xs: Vec<f64> = self.rows.iter().map(|r| r.lead as f64).collect();
        let series = vec![
            Series::new(
                "INT lp/OPT lp".to_string(),
                self.rows.iter().map(|r| r.lp_ratio).collect(),
            ),
            Series::new(
                "INT replay-STR/OPT lp".to_string(),
                self.rows.iter().map(|r| r.replay_str_ratio).collect(),
            ),
            Series::new(
                "INT replay-INT/OPT lp".to_string(),
                self.rows.iter().map(|r| r.replay_int_ratio).collect(),
            ),
        ];
        (xs, series)
    }
}

/// Runs the interleaved-gap study at the paper-scale matrix size (the last
/// entry of `cfg.sizes`) over `cfg.platforms` sampled heterogeneous stars.
/// Leads swept: `{p, p/2, 4, 2, 1}` (deduplicated, clamped to `1..=p`).
pub fn run_interleaved_gap(cfg: &SweepConfig) -> InterleavedGapResult {
    let cluster = ClusterModel::gdsdmi();
    let sampler = PlatformSampler::hetero_star();
    let n = *cfg.sizes.last().expect("sweep config has sizes");
    let app = MatrixApp::new(n);
    let p = sampler.workers;
    let mut seen_leads = std::collections::HashSet::new();
    let leads: Vec<usize> = [p, p / 2, 4, 2, 1]
        .into_iter()
        .filter(|&l| (1..=p).contains(&l) && seen_leads.insert(l))
        .collect();

    let factor_sets: Vec<(Vec<f64>, Vec<f64>)> = (0..cfg.platforms)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(cfg.base_seed.wrapping_add(i as u64));
            sampler.sample_factors(&mut rng)
        })
        .collect();

    /// One lead's `(lp, replay_str, replay_int)` makespan ratios on one
    /// platform.
    type LeadRatios = (f64, f64, f64);

    let engine = dls_core::lp_model::current_engine();
    // Per platform: (opt makespan, per-lead ratios).
    let evaluated: Vec<(f64, Vec<LeadRatios>)> = par_map(&factor_sets, |(comm, comp)| {
        dls_core::lp_model::with_engine(engine, || {
            let platform = cluster
                .platform(&app, comm, comp)
                .expect("sampled factors valid");
            let opt = optimal_fifo(&platform).expect("z-tied cluster family");
            let opt_makespan = 1.0 / opt.throughput;
            let order = interleaved_order(&platform);
            let profile = interleaved_profile(&platform, &order)
                .expect("interleaved profile on a valid platform");
            let rows = leads
                .iter()
                .map(|&lead| {
                    let outcome = profile
                        .iter()
                        .find(|o| o.lead == lead)
                        .expect("lead in 1..=p");
                    let lp_ratio = (1.0 / outcome.throughput) / opt_makespan;
                    // Replay a unit total load of this lead's proportions
                    // under both master policies.
                    let schedule = dls_core::Schedule::fifo(
                        &platform,
                        order.clone(),
                        outcome
                            .loads
                            .iter()
                            .map(|l| l / outcome.throughput)
                            .collect(),
                    )
                    .expect("profile loads are valid");
                    let replay = |policy| {
                        simulate(
                            &platform,
                            &schedule,
                            &SimConfig {
                                policy,
                                ..SimConfig::ideal()
                            },
                        )
                        .makespan
                    };
                    let str_ratio = replay(MasterPolicy::SendsThenReceives) / opt_makespan;
                    let int_ratio = replay(MasterPolicy::Interleaved) / opt_makespan;
                    (lp_ratio, str_ratio, int_ratio)
                })
                .collect();
            (opt_makespan, rows)
        })
    });

    let baseline_makespan =
        mean(&evaluated.iter().map(|(m, _)| *m).collect::<Vec<_>>()) * cfg.total_units as f64;
    let rows = leads
        .iter()
        .enumerate()
        .map(|(k, &lead)| GapRow {
            lead,
            lp_ratio: mean(&evaluated.iter().map(|(_, r)| r[k].0).collect::<Vec<_>>()),
            replay_str_ratio: mean(&evaluated.iter().map(|(_, r)| r[k].1).collect::<Vec<_>>()),
            replay_int_ratio: mean(&evaluated.iter().map(|(_, r)| r[k].2).collect::<Vec<_>>()),
        })
        .collect();

    InterleavedGapResult {
        label: "interleaved-master gap (per-lead LP vs canonical vs simulator replay)".into(),
        n,
        platforms: cfg.platforms,
        baseline_makespan,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_rows_tell_the_canonical_story() {
        let cfg = SweepConfig {
            sizes: vec![120],
            platforms: 2,
            total_units: 100,
            base_seed: 19,
        };
        let res = run_interleaved_gap(&cfg);
        assert_eq!(res.n, 120);
        assert!(res.baseline_makespan > 0.0);
        // Canonical row first: lead = p, every ratio exactly ~1 (the LP is
        // optimal_fifo and its replay fills the horizon under both
        // policies — an already-finished canonical schedule leaves the
        // greedy master nothing to preempt).
        let canon = &res.rows[0];
        assert_eq!(canon.lead, 11);
        assert!((canon.lp_ratio - 1.0).abs() < 1e-6, "{}", canon.lp_ratio);
        assert!((canon.replay_str_ratio - 1.0).abs() < 1e-6);
        // Every interleaving costs (lp ratio >= 1), and no replay of any
        // lead's loads beats the one-round optimum (ratio >= 1). The
        // canonical replay may well *beat* a lead's own LP prediction —
        // re-serializing an interleaved plan recovers part of its cost —
        // which is exactly the story the three columns chart.
        for row in &res.rows {
            assert!(
                row.lp_ratio >= 1.0 - 1e-9,
                "lead {}: {}",
                row.lead,
                row.lp_ratio
            );
            assert!(row.replay_str_ratio >= 1.0 - 1e-6);
            assert!(row.replay_int_ratio >= 1.0 - 1e-6);
        }
        let t = res.table();
        assert_eq!(t.num_rows(), res.rows.len());
        assert!(t.render().contains("(canonical)"));
        let (xs, series) = res.series();
        assert_eq!(xs.len(), res.rows.len());
        assert_eq!(series.len(), 3);
    }
}
