//! Extension experiments beyond the paper's evaluation section
//! (design-choice ablations and future-work probes listed in
//! `DESIGN.md` §8; measured outputs in `EXPERIMENTS.md`).
//!
//! * [`robustness`] — FIFO/LIFO sensitivity to jitter amplitude,
//!   explaining the paper's Figure 13(a) observation that "the LIFO
//!   heuristic might be very sensitive to small performance variations";
//! * [`scaling`] — throughput vs worker count on a bus: Theorem 2's `U`
//!   saturates at the port bound `1/(c+d)` while the no-return baseline
//!   keeps climbing;
//! * [`z_sweep`] — optimal FIFO/LIFO throughput as the return-message
//!   ratio `z` sweeps through 1, demonstrating the mirror symmetry and
//!   the send-order flip of Section 3;
//! * [`affine_sweep`] — latency-driven resource selection in the affine
//!   model (Section 6 / \[20\]): as per-message start-up cost grows, the
//!   optimal enrolled set shrinks.

use dls_core::prelude::*;
use dls_platform::{ClusterModel, MatrixApp, Platform, PlatformSampler};
use dls_report::{mean, num, Table};
use dls_sim::{simulate, Noise, RealismModel, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Jitter-sensitivity table: mean simulated/lp time per heuristic per
/// noise level.
pub fn robustness(platforms: usize, seed: u64) -> Table {
    let app = MatrixApp::new(200);
    let cluster = ClusterModel::gdsdmi();
    let sampler = PlatformSampler::hetero_star();
    let sigmas = [0.0, 0.01, 0.03, 0.05, 0.10];

    let mut table = Table::new(&[
        "sigma",
        "INC_C real/lp",
        "LIFO real/lp",
        "LIFO excess vs INC_C",
    ]);
    for &sigma in &sigmas {
        let mut fifo_ratios = Vec::new();
        let mut lifo_ratios = Vec::new();
        for i in 0..platforms {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(i as u64));
            let platform = sampler.sample(&app, &cluster, &mut rng);
            let realism = RealismModel {
                comm_noise: Noise::Gaussian { sigma },
                comp_noise: Noise::Gaussian { sigma },
                comm_latency: 0.0,
                comp_inflation: 1.0,
            };
            for (sol, ratios) in [
                (inc_c_fifo(&platform).unwrap(), &mut fifo_ratios),
                (optimal_lifo(&platform).unwrap(), &mut lifo_ratios),
            ] {
                let lp_time = 1000.0 / sol.throughput;
                let int_sched = integer_schedule(&sol.schedule, 1000);
                let ms = simulate(
                    &platform,
                    &int_sched,
                    &SimConfig {
                        realism,
                        seed: seed.wrapping_add(7 * i as u64),
                        ..SimConfig::ideal()
                    },
                )
                .makespan;
                ratios.push(ms / lp_time);
            }
        }
        let f = mean(&fifo_ratios);
        let l = mean(&lifo_ratios);
        table.row(&[
            num(sigma, 2),
            num(f, 4),
            num(l, 4),
            format!("{:+.2}%", (l / f - 1.0) * 100.0),
        ]);
    }
    table
}

/// Bus scaling: throughput vs number of identical workers, versus the
/// port bound `1/(c+d)` and the no-return baseline.
pub fn scaling() -> Table {
    let (c, d, w) = (1.0, 0.5, 8.0);
    let mut table = Table::new(&[
        "workers",
        "FIFO rho (Thm 2)",
        "LIFO rho",
        "no-return rho",
        "port bound 1/(c+d)",
        "regime",
    ]);
    for p in [1usize, 2, 4, 8, 16, 32, 64] {
        let bus = Platform::bus(c, d, &vec![w; p]).unwrap();
        let fifo = bus_fifo(&bus).unwrap();
        let lifo = star_lifo(&bus);
        let zero_d = no_return_platform(&bus);
        let nr = optimal_no_return(&zero_d).unwrap();
        table.row(&[
            p.to_string(),
            num(fifo.throughput, 4),
            num(lifo.throughput, 4),
            num(nr.throughput, 4),
            num(1.0 / (c + d), 4),
            format!("{:?}", fifo.regime),
        ]);
    }
    table
}

/// `z`-sweep on a fixed star: optimal FIFO / LIFO throughput and the
/// prescribed FIFO send order direction.
pub fn z_sweep() -> Table {
    let cw = [(1.0, 4.0), (2.0, 3.0), (1.5, 5.0), (3.0, 2.0)];
    let mut table = Table::new(&[
        "z",
        "FIFO rho",
        "LIFO rho",
        "FIFO send order",
        "mirror check |rho(z) - rho(1/z)|",
    ]);
    for &z in &[0.1, 0.25, 0.5, 0.8, 1.0, 1.25, 2.0, 4.0, 10.0] {
        let p = Platform::star_with_z(&cw, z).unwrap();
        let fifo = optimal_fifo(&p).unwrap();
        let lifo = optimal_lifo(&p).unwrap();
        let order: Vec<String> = fifo
            .schedule
            .send_order()
            .iter()
            .map(|id| id.to_string())
            .collect();
        // Mirror symmetry: rho on the mirrored platform (which has ratio
        // 1/z and swapped c/d) equals rho here.
        let mirrored = optimal_fifo(&p.mirror()).unwrap();
        table.row(&[
            num(z, 2),
            num(fifo.throughput, 5),
            num(lifo.throughput, 5),
            order.join(">"),
            format!("{:.2e}", (fifo.throughput - mirrored.throughput).abs()),
        ]);
    }
    table
}

/// Affine-latency sweep: optimal enrollment and throughput vs per-message
/// start-up cost on an 8-worker star.
pub fn affine_sweep() -> Table {
    let cw: Vec<(f64, f64)> = (0..8)
        .map(|i| (0.05 + 0.01 * i as f64, 0.4 + 0.05 * ((i * 3) % 5) as f64))
        .collect();
    let p = Platform::star_with_z(&cw, 0.5).unwrap();
    let mut table = Table::new(&[
        "latency/msg",
        "enrolled (exact)",
        "rho (exact subset)",
        "rho (prefix heuristic)",
        "prefix gap",
    ]);
    for &lat in &[0.0, 0.005, 0.01, 0.02, 0.04, 0.08, 0.15] {
        let l = AffineLatencies::uniform(8, lat, lat);
        let exact = affine_fifo_best_subset(&p, &l, 16).unwrap();
        let prefix = affine_fifo_best_prefix(&p, &l).unwrap();
        table.row(&[
            num(lat, 3),
            exact.enrolled.len().to_string(),
            num(exact.throughput, 4),
            num(prefix.throughput, 4),
            format!(
                "{:.3}%",
                (1.0 - prefix.throughput / exact.throughput) * 100.0
            ),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn robustness_table_has_all_sigma_rows() {
        let t = robustness(3, 42);
        assert_eq!(t.num_rows(), 5);
        let rendered = t.render();
        assert!(rendered.contains("0.10"));
    }

    #[test]
    fn scaling_saturates_at_port_bound() {
        let t = scaling();
        let rendered = t.render();
        // At 64 workers the FIFO throughput equals the port bound and the
        // regime column says CommBound.
        assert!(rendered.contains("CommBound"));
        assert!(rendered.contains("ComputeBound"));
        assert_eq!(t.num_rows(), 7);
    }

    #[test]
    fn z_sweep_flips_order_at_one() {
        let rendered = z_sweep().render();
        // For z < 1 the fastest link (P1, c = 1.0) is served first; for
        // z > 1 the slowest (P4, c = 3.0) goes first.
        let lines: Vec<&str> = rendered.lines().collect();
        let row_small_z = lines.iter().find(|l| l.starts_with("0.10")).unwrap();
        assert!(row_small_z.contains("P1>P3>P2>P4"));
        let row_big_z = lines.iter().find(|l| l.starts_with("4.00")).unwrap();
        assert!(row_big_z.contains("P4>P2>P3>P1"));
    }

    #[test]
    fn z_sweep_mirror_residuals_are_tiny() {
        let rendered = z_sweep().render();
        for line in rendered.lines().skip(2) {
            let residual = line.split_whitespace().last().unwrap();
            let v: f64 = residual.parse().unwrap();
            assert!(v < 1e-6, "mirror residual {v} in line: {line}");
        }
    }

    #[test]
    fn affine_sweep_enrollment_is_monotone_decreasing() {
        let t = affine_sweep();
        let rendered = t.to_csv();
        let enrolled: Vec<usize> = rendered
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(1).unwrap().parse().unwrap())
            .collect();
        for pair in enrolled.windows(2) {
            assert!(
                pair[1] <= pair[0],
                "enrollment grew with latency: {enrolled:?}"
            );
        }
        assert_eq!(*enrolled.first().unwrap(), 8, "zero latency enrolls all");
        assert!(
            *enrolled.last().unwrap() < 8,
            "heavy latency must drop workers"
        );
    }
}
