//! Figures 10-13 — heuristic comparisons on random platforms.
//!
//! Thin figure-specific configurations over the shared
//! [`crate::figures::sweep`] engine:
//!
//! * **Figure 10** — 50 homogeneous random platforms (a bus with uniform
//!   compute): only `INC_C` and `LIFO` are plotted since every FIFO
//!   ordering coincides;
//! * **Figure 11** — homogeneous communication + heterogeneous computation
//!   (the Theorem 2 regime);
//! * **Figure 12** — fully heterogeneous stars;
//! * **Figure 13(a)** — Figure 12 platforms with computation 10× faster;
//! * **Figure 13(b)** — Figure 12 platforms with communication 10× faster,
//!   where the linear cost model starts to break (modeled by the
//!   cache-degradation compute inflation).

use dls_platform::PlatformSampler;

use crate::figures::sweep::{explain_baseline, run_sweep, SweepResult, SweepVariant};
use crate::scenarios::{Heuristic, SweepConfig};

fn ids(heuristics: &[Heuristic]) -> Vec<String> {
    heuristics
        .iter()
        .map(|h| h.registry_id().to_string())
        .collect()
}

/// Figure 10 variant.
pub fn fig10_variant() -> SweepVariant {
    SweepVariant {
        label: "Figure 10 — 50 homogeneous random platforms".into(),
        sampler: PlatformSampler::homogeneous(),
        comp_scale: 1.0,
        comm_scale: 1.0,
        cache_effects: false,
        // All FIFO orderings coincide on a bus, so INC_W is dropped.
        schedulers: ids(&[Heuristic::IncC, Heuristic::Lifo]),
    }
}

/// Figure 11 variant.
pub fn fig11_variant() -> SweepVariant {
    SweepVariant {
        label: "Figure 11 — homogeneous communication, heterogeneous computation".into(),
        sampler: PlatformSampler::hetero_compute_bus(),
        comp_scale: 1.0,
        comm_scale: 1.0,
        cache_effects: false,
        schedulers: ids(&[Heuristic::IncC, Heuristic::IncW, Heuristic::Lifo]),
    }
}

/// Figure 12 variant.
pub fn fig12_variant() -> SweepVariant {
    SweepVariant {
        label: "Figure 12 — 50 heterogeneous random platforms".into(),
        sampler: PlatformSampler::hetero_star(),
        comp_scale: 1.0,
        comm_scale: 1.0,
        cache_effects: false,
        schedulers: ids(&[Heuristic::IncC, Heuristic::IncW, Heuristic::Lifo]),
    }
}

/// Figure 13(a) variant: calculation power ×10.
pub fn fig13a_variant() -> SweepVariant {
    SweepVariant {
        label: "Figure 13(a) — heterogeneous platforms, calculation power x10".into(),
        comp_scale: 0.1,
        ..fig12_variant()
    }
}

/// Figure 13(b) variant: communication power ×10 (linear-model limits).
pub fn fig13b_variant() -> SweepVariant {
    SweepVariant {
        label: "Figure 13(b) — heterogeneous platforms, communication power x10".into(),
        comm_scale: 0.1,
        cache_effects: true,
        ..fig12_variant()
    }
}

/// Runs one of the sweep figures.
pub fn run(variant: &SweepVariant, cfg: &SweepConfig) -> SweepResult {
    run_sweep(cfg, variant)
}

/// Renders the `--explain` report for one of the sweep figures: the
/// baseline schedule on one sampled platform as a Gantt with every idle
/// interval attributed to a cause and per-worker utilization/port shares.
pub fn explain(variant: &SweepVariant, cfg: &SweepConfig) -> String {
    let (header, report) = explain_baseline(cfg, variant);
    format!("{header}\n\n{}", report.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SweepConfig {
        SweepConfig {
            sizes: vec![80],
            platforms: 3,
            total_units: 100,
            base_seed: 11,
        }
    }

    #[test]
    fn fig10_has_no_inc_w_series() {
        let res = run(&fig10_variant(), &tiny());
        assert!(res.rows[0]
            .ratios
            .iter()
            .all(|(name, _)| !name.contains("INC_W")));
        // INC_C real and LIFO lp/real = 3 columns.
        assert_eq!(res.rows[0].ratios.len(), 3);
    }

    #[test]
    fn fig11_and_12_have_all_series() {
        for v in [fig11_variant(), fig12_variant()] {
            let res = run(&v, &tiny());
            assert_eq!(res.rows[0].ratios.len(), 5, "{}", v.label);
        }
    }

    #[test]
    fn explain_attribution_covers_all_idle_time() {
        let (header, rep) = explain_baseline(&tiny(), &fig12_variant());
        assert!(header.contains("explain"));
        assert!(!rep.workers.is_empty());
        for w in &rep.workers {
            let expect = rep.makespan - w.busy;
            assert!(
                (w.idle_total() - expect).abs() < 1e-9,
                "{}: attributed idle {} vs makespan - busy {}",
                w.worker,
                w.idle_total(),
                expect
            );
        }
        let rendered = explain(&fig12_variant(), &tiny());
        assert!(rendered.contains("legend"), "Gantt legend missing");
        assert!(rendered.contains("idle attribution:"));
    }

    #[test]
    fn fig13a_is_comm_dominated() {
        // With compute 10x faster, the theoretical INC_C time drops well
        // below the unscaled variant's.
        let base = run(&fig12_variant(), &tiny());
        let fast = run(&fig13a_variant(), &tiny());
        assert!(fast.rows[0].baseline_lp < base.rows[0].baseline_lp);
    }

    #[test]
    fn fig13b_real_ratio_grows_with_size() {
        // The cache model makes real/lp grow with n when communication is
        // fast — the paper's "limits of the linear cost model".
        let cfg = SweepConfig {
            sizes: vec![40, 200],
            platforms: 3,
            total_units: 100,
            base_seed: 12,
        };
        let res = run(&fig13b_variant(), &cfg);
        let ratio = |row: usize| {
            res.rows[row]
                .ratios
                .iter()
                .find(|(n, _)| n == "INC_C real/INC_C lp")
                .unwrap()
                .1
        };
        assert!(
            ratio(1) > ratio(0) + 0.1,
            "expected growing real/lp: {} then {}",
            ratio(0),
            ratio(1)
        );
    }
}
