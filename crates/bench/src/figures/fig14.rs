//! Figure 14 — resource selection on the four-worker platform of §5.3.4.
//!
//! Three fast workers plus one slow one (communication speed factor `x`).
//! Increasing the number of *available* workers from 1 to 4, the framework
//! must decide how many to actually *use*: with `x = 1` the fourth worker
//! is never enrolled; with `x = 3` it is, with a slight makespan gain.
//! (The paper's 14(b) plot header says `x = 2` while its text says `x = 3`;
//! both values are runnable here.)

use dls_core::prelude::*;
use dls_platform::{scenario, Platform, WorkerId};
use dls_report::{num, Table};
use dls_sim::{simulate, SimConfig};

/// One measurement: `k` workers made available.
#[derive(Debug, Clone)]
pub struct Fig14Row {
    /// Workers offered to the scheduler (prefix of the paper's table).
    pub available: usize,
    /// Workers the optimal FIFO schedule actually enrolled.
    pub used: usize,
    /// Theoretical time for `M` units (seconds).
    pub lp_time: f64,
    /// Simulated time of the rounded schedule (seconds).
    pub real_time: f64,
}

/// Full Figure 14 output for one `x`.
#[derive(Debug, Clone)]
pub struct Fig14 {
    /// The slow worker's communication speed factor.
    pub x: f64,
    /// Matrix size.
    pub n: usize,
    /// Rows for 1..=4 available workers.
    pub rows: Vec<Fig14Row>,
}

/// Runs the experiment for slow-worker speed `x`, matrix size `n` and `m`
/// products.
pub fn run(x: f64, n: usize, m: u64, seed: u64) -> Fig14 {
    let full = scenario::fig14_platform(x, n);
    let rows = (1..=full.num_workers())
        .map(|k| {
            let ids: Vec<WorkerId> = (0..k).map(WorkerId).collect();
            let platform: Platform = full.restrict(&ids).expect("prefix restriction valid");
            let sol = optimal_fifo(&platform).expect("z-tied platform");
            let lp_time = m as f64 / sol.throughput;
            let int_sched = integer_schedule(&sol.schedule, m);
            let report = simulate(
                &platform,
                &int_sched,
                &SimConfig::jittered(seed.wrapping_add(k as u64)),
            );
            Fig14Row {
                available: k,
                used: sol.schedule.participants().len(),
                lp_time,
                real_time: report.makespan,
            }
        })
        .collect();
    Fig14 { x, n, rows }
}

impl Fig14 {
    /// Printable report (the paper's bar-plot data as a table).
    pub fn report(&self) -> String {
        let mut t = Table::new(&["available", "used", "lp time (s)", "real time (s)"]);
        for r in &self.rows {
            t.row(&[
                r.available.to_string(),
                r.used.to_string(),
                num(r.lp_time, 3),
                num(r.real_time, 3),
            ]);
        }
        format!(
            "Figure 14 — participating workers, INC_C, matrix size {}, x = {}\n\nworker table (speed factors):  comm = 10, 8, 8, {} | comp = 9, 9, 10, 1\n\n{}",
            self.n,
            self.x,
            self.x,
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_worker_never_used_when_x_is_1() {
        let fig = run(1.0, 400, 1000, 21);
        // Paper, Fig 14(a): "the last worker is never used (even when we
        // authorize four workers to be used)".
        assert_eq!(fig.rows[3].available, 4);
        assert_eq!(
            fig.rows[3].used, 3,
            "slow worker was enrolled: {:?}",
            fig.rows[3]
        );
    }

    #[test]
    fn slow_worker_used_when_x_is_3() {
        let fig = run(3.0, 400, 1000, 21);
        assert_eq!(
            fig.rows[3].used, 4,
            "x = 3 should enroll the fourth worker: {:?}",
            fig.rows[3]
        );
        // "the performance is slightly better when using all four workers".
        assert!(
            fig.rows[3].lp_time <= fig.rows[2].lp_time + 1e-9,
            "4 workers should not be slower than 3 in theory"
        );
    }

    #[test]
    fn more_workers_never_hurt_in_theory() {
        for x in [1.0, 2.0, 3.0] {
            let fig = run(x, 400, 1000, 5);
            for pair in fig.rows.windows(2) {
                assert!(
                    pair[1].lp_time <= pair[0].lp_time + 1e-6,
                    "x={x}: lp time increased from {} to {}",
                    pair[0].lp_time,
                    pair[1].lp_time
                );
            }
        }
    }

    #[test]
    fn report_contains_table() {
        let rep = run(1.0, 400, 200, 1).report();
        assert!(rep.contains("available"));
        assert!(rep.contains("x = 1"));
    }
}
