//! Shared experiment configuration for the Section 5 reproduction.

use dls_core::engine::{Scheduler, Solution};
use dls_core::CoreError;
use dls_platform::Platform;

/// The heuristics compared throughout Section 5.3, as thin handles into
/// [`dls_core::registry`] (the engine owns the solver logic; this enum only
/// fixes the paper's canonical selection and legend names).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Heuristic {
    /// FIFO over all workers, fastest links first (optimal FIFO for
    /// `z < 1` by Theorem 1).
    IncC,
    /// FIFO over all workers, fastest computers first.
    IncW,
    /// Optimal one-port LIFO (all workers, fastest links first).
    Lifo,
}

impl Heuristic {
    /// The identifier of this heuristic in [`dls_core::registry`].
    pub fn registry_id(&self) -> &'static str {
        match self {
            Heuristic::IncC => "inc_c",
            Heuristic::IncW => "inc_w",
            Heuristic::Lifo => "optimal_lifo",
        }
    }

    /// The registered [`Scheduler`] backing this heuristic.
    pub fn scheduler(&self) -> Box<dyn Scheduler> {
        dls_core::lookup(self.registry_id()).expect("built-in heuristics are registered")
    }

    /// Display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            Heuristic::IncC => "INC_C",
            Heuristic::IncW => "INC_W",
            Heuristic::Lifo => "LIFO",
        }
    }

    /// Solves the heuristic on `platform` through the scheduler engine.
    pub fn solve(&self, platform: &Platform) -> Result<Solution, CoreError> {
        self.scheduler().solve(platform)
    }
}

/// Parameters of a Figures 10-13 style sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Matrix sizes on the x-axis (the paper sweeps 40..200).
    pub sizes: Vec<usize>,
    /// Random platforms averaged per size (the paper uses 50).
    pub platforms: usize,
    /// Total number of matrix products `M` (the paper fixes 1000).
    pub total_units: u64,
    /// Base RNG seed; platform `i` uses `base_seed + i`.
    pub base_seed: u64,
}

impl SweepConfig {
    /// The paper's full parameters: sizes 40,60,..,200; 50 platforms;
    /// M = 1000.
    pub fn paper() -> Self {
        SweepConfig {
            sizes: (40..=200).step_by(20).collect(),
            platforms: 50,
            total_units: 1000,
            base_seed: 0xD15C0,
        }
    }

    /// Reduced parameters for tests and smoke benches.
    pub fn quick() -> Self {
        SweepConfig {
            sizes: vec![40, 120, 200],
            platforms: 6,
            total_units: 200,
            base_seed: 0xD15C0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heuristic_names() {
        assert_eq!(Heuristic::IncC.name(), "INC_C");
        assert_eq!(Heuristic::IncW.name(), "INC_W");
        assert_eq!(Heuristic::Lifo.name(), "LIFO");
    }

    #[test]
    fn heuristics_solve_on_a_small_star() {
        let p = Platform::star_with_z(&[(1.0, 2.0), (2.0, 1.0)], 0.5).unwrap();
        for h in [Heuristic::IncC, Heuristic::IncW, Heuristic::Lifo] {
            let sol = h.solve(&p).unwrap();
            assert!(sol.throughput > 0.0, "{} failed", h.name());
        }
        // INC_C is the optimal FIFO: it cannot lose to INC_W.
        let c = Heuristic::IncC.solve(&p).unwrap().throughput;
        let w = Heuristic::IncW.solve(&p).unwrap().throughput;
        assert!(c >= w - 1e-9);
    }

    #[test]
    fn heuristic_legends_match_registry() {
        for h in [Heuristic::IncC, Heuristic::IncW, Heuristic::Lifo] {
            assert_eq!(h.scheduler().legend(), h.name());
            assert_eq!(h.scheduler().name(), h.registry_id());
        }
    }

    #[test]
    fn paper_config_shape() {
        let cfg = SweepConfig::paper();
        assert_eq!(cfg.sizes, vec![40, 60, 80, 100, 120, 140, 160, 180, 200]);
        assert_eq!(cfg.platforms, 50);
        assert_eq!(cfg.total_units, 1000);
    }

    #[test]
    fn quick_config_is_smaller() {
        let q = SweepConfig::quick();
        let p = SweepConfig::paper();
        assert!(q.sizes.len() < p.sizes.len());
        assert!(q.platforms < p.platforms);
    }
}
