//! Criterion benchmarks of the LP substrate: tableau vs revised simplex
//! scaling on the paper's scheduling LPs (2p variables, 3p+1 constraints),
//! pivot-rule sensitivity, and warm-start effectiveness.
//!
//! Running with `--smoke` skips the benchmark groups and instead times the
//! p = 128 revised solve against the checked-in baseline
//! (`benches/solver_baseline.json`), exiting nonzero on a >2x regression —
//! the CI gate for the sweep hot path.

use criterion::{criterion_group, BenchmarkId, Criterion};
use dls_core::lp_model::build_problem;
use dls_core::PortModel;
use dls_lp::{solve_revised_with, solve_with, BasisCache, Problem, SolverOptions};
use dls_platform::{Heterogeneity, Platform, PlatformSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn sampler(workers: usize) -> PlatformSampler {
    PlatformSampler {
        workers,
        comm: Heterogeneity::PerWorker,
        comp: Heterogeneity::PerWorker,
        factor_range: (1.0, 10.0),
    }
}

/// The FIFO scheduling LP for a seeded random star with `p` workers.
fn fifo_lp(p: usize, seed: u64) -> (Platform, Problem) {
    let mut rng = StdRng::seed_from_u64(seed);
    let platform = sampler(p).sample_abstract(5.0, 0.5, &mut rng);
    let order = platform.order_by_c();
    let (lp, _) = build_problem(&platform, &order, &order, PortModel::OnePort).unwrap();
    (platform, lp)
}

/// Worker counts for the scaling curves. The revised solver's advantage
/// grows with p; 256 is far beyond the paper's 11-worker platforms.
const SCALING: [usize; 7] = [4, 8, 16, 32, 64, 128, 256];

fn bench_fifo_lp_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex/fifo_lp");
    for p in SCALING {
        if p > 128 {
            // The dense tableau at p = 256 is too slow for the default
            // sample budget; the revised group covers the full curve.
            continue;
        }
        let (_, lp) = fifo_lp(p, 7);
        group.bench_with_input(BenchmarkId::from_parameter(p), &lp, |b, lp| {
            b.iter(|| {
                let opts = SolverOptions::for_size(lp.num_vars(), lp.num_constraints());
                black_box(solve_with::<f64>(lp, &opts).unwrap().objective)
            })
        });
    }
    group.finish();
}

fn bench_revised_lp_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("revised/fifo_lp");
    for p in SCALING {
        let (_, lp) = fifo_lp(p, 7);
        group.bench_with_input(BenchmarkId::from_parameter(p), &lp, |b, lp| {
            b.iter(|| {
                let opts = SolverOptions::for_size(lp.num_vars(), lp.num_constraints());
                black_box(
                    solve_revised_with::<f64>(lp, &opts, None)
                        .unwrap()
                        .solution
                        .objective,
                )
            })
        });
    }
    group.finish();
}

fn bench_warm_start(c: &mut Criterion) {
    // The sweep access pattern: FIFO then LIFO then a re-solve on the same
    // platform, sharing one basis cache — vs the same three solves cold.
    let mut rng = StdRng::seed_from_u64(13);
    let platform = sampler(32).sample_abstract(5.0, 0.5, &mut rng);
    let order = platform.order_by_c();
    let rev: Vec<_> = order.iter().rev().copied().collect();
    let (fifo, _) = build_problem(&platform, &order, &order, PortModel::OnePort).unwrap();
    let (lifo, _) = build_problem(&platform, &order, &rev, PortModel::OnePort).unwrap();
    let opts = SolverOptions::for_size(fifo.num_vars(), fifo.num_constraints());

    let mut group = c.benchmark_group("revised/warm_start");
    group.bench_function("cold_triple", |b| {
        b.iter(|| {
            let a = solve_revised_with::<f64>(&fifo, &opts, None).unwrap();
            let b2 = solve_revised_with::<f64>(&lifo, &opts, None).unwrap();
            let c2 = solve_revised_with::<f64>(&fifo, &opts, None).unwrap();
            black_box((
                a.solution.objective,
                b2.solution.objective,
                c2.solution.objective,
            ))
        })
    });
    group.bench_function("cached_triple", |b| {
        b.iter(|| {
            // One key per scenario shape, as `dls_core::lp_model` does: the
            // FIFO re-solve warm-starts from the first solve's basis.
            let mut cache = BasisCache::new();
            let a = cache.solve::<f64>(1, &fifo, &opts).unwrap();
            let b2 = cache.solve::<f64>(2, &lifo, &opts).unwrap();
            let c2 = cache.solve::<f64>(1, &fifo, &opts).unwrap();
            black_box((
                a.solution.objective,
                b2.solution.objective,
                c2.solution.objective,
            ))
        })
    });
    group.finish();
}

fn bench_pivot_rules(c: &mut Criterion) {
    // Dantzig (default until bland_after) vs pure Bland on the same LP.
    let (_, lp) = fifo_lp(32, 11);

    let mut group = c.benchmark_group("simplex/pivot_rule");
    group.bench_function("dantzig_then_bland", |b| {
        b.iter(|| {
            let opts = SolverOptions::for_size(lp.num_vars(), lp.num_constraints());
            black_box(solve_with::<f64>(&lp, &opts).unwrap().iterations)
        })
    });
    group.bench_function("pure_bland", |b| {
        b.iter(|| {
            let opts = SolverOptions {
                max_iterations: 1_000_000,
                bland_after: 0,
                ..SolverOptions::for_size(lp.num_vars(), lp.num_constraints())
            };
            black_box(solve_with::<f64>(&lp, &opts).unwrap().iterations)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fifo_lp_scaling,
    bench_revised_lp_scaling,
    bench_warm_start,
    bench_pivot_rules
);

// ---------------------------------------------------------------------------
// `--smoke`: the CI regression gate on the p = 128 sweep hot path (shared
// harness: `dls_bench::smoke`).
// ---------------------------------------------------------------------------

/// Times one cold revised solve at worker count `p` (best of `runs`, in
/// nanoseconds).
fn time_cold_ns(p: usize, runs: usize) -> f64 {
    let (_, lp) = fifo_lp(p, 7);
    let opts = SolverOptions::for_size(lp.num_vars(), lp.num_constraints());
    // Warm-up.
    black_box(solve_revised_with::<f64>(&lp, &opts, None).unwrap());
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let t = std::time::Instant::now();
        black_box(solve_revised_with::<f64>(&lp, &opts, None).unwrap());
        best = best.min(t.elapsed().as_nanos() as f64);
    }
    best
}

/// Times one cold *tableau* solve at worker count `p` — the reference side
/// of the cold revised/tableau ratio gates.
fn time_cold_tableau_ns(p: usize, runs: usize) -> f64 {
    let (_, lp) = fifo_lp(p, 7);
    let opts = SolverOptions::for_size(lp.num_vars(), lp.num_constraints());
    black_box(solve_with::<f64>(&lp, &opts).unwrap());
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let t = std::time::Instant::now();
        black_box(solve_with::<f64>(&lp, &opts).unwrap());
        best = best.min(t.elapsed().as_nanos() as f64);
    }
    best
}

/// Times a refactorization-heavy cold revised solve (`refactor_every = 1`
/// rebuilds the sparse LU on every pivot) — the dedicated measurement of
/// factorization cost behind the `p128_sparse_lu_ns` gate, insulated from
/// pricing/ratio-test noise dominating the default-cadence solve.
fn time_sparse_lu_ns(p: usize, runs: usize) -> f64 {
    let (_, lp) = fifo_lp(p, 7);
    let opts = SolverOptions {
        refactor_every: 1,
        ..SolverOptions::for_size(lp.num_vars(), lp.num_constraints())
    };
    black_box(solve_revised_with::<f64>(&lp, &opts, None).unwrap());
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let t = std::time::Instant::now();
        black_box(solve_revised_with::<f64>(&lp, &opts, None).unwrap());
        best = best.min(t.elapsed().as_nanos() as f64);
    }
    best
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        let baseline = concat!(env!("CARGO_MANIFEST_DIR"), "/benches/solver_baseline.json");
        dls_bench::smoke::run_gate(baseline, "p128_revised_ns", "p=128 revised solve", |runs| {
            time_cold_ns(128, runs)
        });
        // The candidate-list pricing target: the cold p=256 solve (ROADMAP
        // follow-up from the revised-simplex PR).
        dls_bench::smoke::run_gate(
            baseline,
            "p256_revised_ns",
            "p=256 revised cold solve",
            |runs| time_cold_ns(256, runs),
        );
        // Factorization-heavy solve: times the sparse LU itself by
        // refactorizing on every pivot.
        dls_bench::smoke::run_gate(
            baseline,
            "p128_sparse_lu_ns",
            "p=128 sparse LU refactor-heavy solve",
            |runs| time_sparse_lu_ns(128, runs),
        );
        // The sparse-LU tentpole win, pinned as same-machine ratios: a
        // cold revised solve must beat the cold tableau at p >= 128
        // (ratio gates read the max allowed ratio from the baseline).
        dls_bench::smoke::run_ratio_gate(
            baseline,
            "p128_cold_ratio",
            "p=128 cold revised vs tableau",
            |runs| time_cold_ns(128, runs),
            |runs| time_cold_tableau_ns(128, runs),
        );
        dls_bench::smoke::run_ratio_gate(
            baseline,
            "p256_cold_ratio",
            "p=256 cold revised vs tableau",
            |runs| time_cold_ns(256, runs),
            |runs| time_cold_tableau_ns(256, runs),
        );
        return;
    }
    benches();
}
