//! Criterion benchmarks of the LP substrate: simplex scaling on the
//! paper's scheduling LPs (2p variables, 3p+1 constraints) and pivot-rule
//! sensitivity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dls_core::lp_model::build_problem;
use dls_core::PortModel;
use dls_lp::{solve_with, SolverOptions};
use dls_platform::{Heterogeneity, PlatformSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn sampler(workers: usize) -> PlatformSampler {
    PlatformSampler {
        workers,
        comm: Heterogeneity::PerWorker,
        comp: Heterogeneity::PerWorker,
        factor_range: (1.0, 10.0),
    }
}

fn bench_fifo_lp_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex/fifo_lp");
    for p in [4usize, 8, 16, 32, 64, 128] {
        let mut rng = StdRng::seed_from_u64(7);
        let platform = sampler(p).sample_abstract(5.0, 0.5, &mut rng);
        let order = platform.order_by_c();
        let (lp, _) = build_problem(&platform, &order, &order, PortModel::OnePort).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(p), &lp, |b, lp| {
            b.iter(|| {
                let opts = SolverOptions::for_size(lp.num_vars(), lp.num_constraints());
                black_box(solve_with::<f64>(lp, &opts).unwrap().objective)
            })
        });
    }
    group.finish();
}

fn bench_pivot_rules(c: &mut Criterion) {
    // Dantzig (default until bland_after) vs pure Bland on the same LP.
    let mut rng = StdRng::seed_from_u64(11);
    let platform = sampler(32).sample_abstract(5.0, 0.5, &mut rng);
    let order = platform.order_by_c();
    let (lp, _) = build_problem(&platform, &order, &order, PortModel::OnePort).unwrap();

    let mut group = c.benchmark_group("simplex/pivot_rule");
    group.bench_function("dantzig_then_bland", |b| {
        b.iter(|| {
            let opts = SolverOptions::for_size(lp.num_vars(), lp.num_constraints());
            black_box(solve_with::<f64>(&lp, &opts).unwrap().iterations)
        })
    });
    group.bench_function("pure_bland", |b| {
        b.iter(|| {
            let opts = SolverOptions {
                max_iterations: 1_000_000,
                bland_after: 0,
            };
            black_box(solve_with::<f64>(&lp, &opts).unwrap().iterations)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fifo_lp_scaling, bench_pivot_rules);
criterion_main!(benches);
