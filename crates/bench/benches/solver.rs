//! Criterion benchmarks of the LP substrate: tableau vs revised simplex
//! scaling on the paper's scheduling LPs (2p variables, 3p+1 constraints),
//! pivot-rule sensitivity, and warm-start effectiveness.
//!
//! Running with `--smoke` skips the benchmark groups and instead times the
//! p = 128 revised solve against the checked-in baseline
//! (`benches/solver_baseline.json`), exiting nonzero on a >2x regression —
//! the CI gate for the sweep hot path.

use criterion::{criterion_group, BenchmarkId, Criterion};
use dls_core::lp_model::build_problem;
use dls_core::PortModel;
use dls_lp::{solve_revised_with, solve_with, BasisCache, Problem, SolverOptions};
use dls_platform::{Heterogeneity, Platform, PlatformSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn sampler(workers: usize) -> PlatformSampler {
    PlatformSampler {
        workers,
        comm: Heterogeneity::PerWorker,
        comp: Heterogeneity::PerWorker,
        factor_range: (1.0, 10.0),
    }
}

/// The FIFO scheduling LP for a seeded random star with `p` workers.
fn fifo_lp(p: usize, seed: u64) -> (Platform, Problem) {
    let mut rng = StdRng::seed_from_u64(seed);
    let platform = sampler(p).sample_abstract(5.0, 0.5, &mut rng);
    let order = platform.order_by_c();
    let (lp, _) = build_problem(&platform, &order, &order, PortModel::OnePort).unwrap();
    (platform, lp)
}

/// Worker counts for the scaling curves. The revised solver's advantage
/// grows with p; 256 is far beyond the paper's 11-worker platforms.
const SCALING: [usize; 7] = [4, 8, 16, 32, 64, 128, 256];

fn bench_fifo_lp_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex/fifo_lp");
    for p in SCALING {
        if p > 128 {
            // The dense tableau at p = 256 is too slow for the default
            // sample budget; the revised group covers the full curve.
            continue;
        }
        let (_, lp) = fifo_lp(p, 7);
        group.bench_with_input(BenchmarkId::from_parameter(p), &lp, |b, lp| {
            b.iter(|| {
                let opts = SolverOptions::for_size(lp.num_vars(), lp.num_constraints());
                black_box(solve_with::<f64>(lp, &opts).unwrap().objective)
            })
        });
    }
    group.finish();
}

fn bench_revised_lp_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("revised/fifo_lp");
    for p in SCALING {
        let (_, lp) = fifo_lp(p, 7);
        group.bench_with_input(BenchmarkId::from_parameter(p), &lp, |b, lp| {
            b.iter(|| {
                let opts = SolverOptions::for_size(lp.num_vars(), lp.num_constraints());
                black_box(
                    solve_revised_with::<f64>(lp, &opts, None)
                        .unwrap()
                        .solution
                        .objective,
                )
            })
        });
    }
    group.finish();
}

fn bench_warm_start(c: &mut Criterion) {
    // The sweep access pattern: FIFO then LIFO then a re-solve on the same
    // platform, sharing one basis cache — vs the same three solves cold.
    let mut rng = StdRng::seed_from_u64(13);
    let platform = sampler(32).sample_abstract(5.0, 0.5, &mut rng);
    let order = platform.order_by_c();
    let rev: Vec<_> = order.iter().rev().copied().collect();
    let (fifo, _) = build_problem(&platform, &order, &order, PortModel::OnePort).unwrap();
    let (lifo, _) = build_problem(&platform, &order, &rev, PortModel::OnePort).unwrap();
    let opts = SolverOptions::for_size(fifo.num_vars(), fifo.num_constraints());

    let mut group = c.benchmark_group("revised/warm_start");
    group.bench_function("cold_triple", |b| {
        b.iter(|| {
            let a = solve_revised_with::<f64>(&fifo, &opts, None).unwrap();
            let b2 = solve_revised_with::<f64>(&lifo, &opts, None).unwrap();
            let c2 = solve_revised_with::<f64>(&fifo, &opts, None).unwrap();
            black_box((
                a.solution.objective,
                b2.solution.objective,
                c2.solution.objective,
            ))
        })
    });
    group.bench_function("cached_triple", |b| {
        b.iter(|| {
            // One key per scenario shape, as `dls_core::lp_model` does: the
            // FIFO re-solve warm-starts from the first solve's basis.
            let mut cache = BasisCache::new();
            let a = cache.solve::<f64>(1, &fifo, &opts).unwrap();
            let b2 = cache.solve::<f64>(2, &lifo, &opts).unwrap();
            let c2 = cache.solve::<f64>(1, &fifo, &opts).unwrap();
            black_box((
                a.solution.objective,
                b2.solution.objective,
                c2.solution.objective,
            ))
        })
    });
    group.finish();
}

fn bench_pivot_rules(c: &mut Criterion) {
    // Dantzig (default until bland_after) vs pure Bland on the same LP.
    let (_, lp) = fifo_lp(32, 11);

    let mut group = c.benchmark_group("simplex/pivot_rule");
    group.bench_function("dantzig_then_bland", |b| {
        b.iter(|| {
            let opts = SolverOptions::for_size(lp.num_vars(), lp.num_constraints());
            black_box(solve_with::<f64>(&lp, &opts).unwrap().iterations)
        })
    });
    group.bench_function("pure_bland", |b| {
        b.iter(|| {
            let opts = SolverOptions {
                max_iterations: 1_000_000,
                bland_after: 0,
                refactor_every: 48,
            };
            black_box(solve_with::<f64>(&lp, &opts).unwrap().iterations)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fifo_lp_scaling,
    bench_revised_lp_scaling,
    bench_warm_start,
    bench_pivot_rules
);

// ---------------------------------------------------------------------------
// `--smoke`: the CI regression gate on the p = 128 sweep hot path.
// ---------------------------------------------------------------------------

/// Reads the `"key": <number>` field out of the (flat) baseline JSON.
///
/// A real (tiny) scanner rather than a substring search: it walks the
/// document string-by-string, so a key name quoted inside the `comment`
/// field can never be mistaken for the key itself, and string *values* are
/// consumed whole. Accepts `+` exponents.
fn json_number(doc: &str, key: &str) -> Option<f64> {
    // Returns (string contents, index just past the closing quote).
    fn read_string(bytes: &[u8], open: usize) -> (usize, usize) {
        let mut j = open + 1;
        while j < bytes.len() && bytes[j] != b'"' {
            if bytes[j] == b'\\' {
                j += 1;
            }
            j += 1;
        }
        (open + 1, j)
    }
    let bytes = doc.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'"' {
            i += 1;
            continue;
        }
        let (start, end) = read_string(bytes, i);
        let name = &doc[start..end.min(doc.len())];
        i = end + 1;
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= bytes.len() || bytes[i] != b':' {
            continue; // a string value or malformed input; keep scanning
        }
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i < bytes.len() && bytes[i] == b'"' {
            // String value (the comment): consume it so its contents are
            // never scanned for keys.
            let (_, vend) = read_string(bytes, i);
            i = vend + 1;
            continue;
        }
        let vstart = i;
        while i < bytes.len() && matches!(bytes[i], b'0'..=b'9' | b'.' | b'-' | b'+' | b'e' | b'E')
        {
            i += 1;
        }
        if name == key {
            return doc[vstart..i].parse().ok();
        }
    }
    None
}

/// Times one p = 128 revised solve (best of `runs`, in nanoseconds).
fn time_p128_ns(runs: usize) -> f64 {
    let (_, lp) = fifo_lp(128, 7);
    let opts = SolverOptions::for_size(lp.num_vars(), lp.num_constraints());
    // Warm-up.
    black_box(solve_revised_with::<f64>(&lp, &opts, None).unwrap());
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let t = std::time::Instant::now();
        black_box(solve_revised_with::<f64>(&lp, &opts, None).unwrap());
        best = best.min(t.elapsed().as_nanos() as f64);
    }
    best
}

/// Machine-speed probe: a fixed 160x160 f64 matrix product, solver-free,
/// so the gate normalizes for the runner's speed relative to the machine
/// that recorded the baseline instead of comparing absolute wall clocks.
fn time_calibration_ns(runs: usize) -> f64 {
    const N: usize = 160;
    let a: Vec<f64> = (0..N * N).map(|i| (i % 97) as f64 * 0.013).collect();
    let b: Vec<f64> = (0..N * N).map(|i| (i % 89) as f64 * 0.011).collect();
    let matmul = |a: &[f64], b: &[f64]| -> f64 {
        let mut c = vec![0.0f64; N * N];
        for i in 0..N {
            for k in 0..N {
                let aik = a[i * N + k];
                for j in 0..N {
                    c[i * N + j] += aik * b[k * N + j];
                }
            }
        }
        c[N + 1]
    };
    black_box(matmul(&a, &b)); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let t = std::time::Instant::now();
        black_box(matmul(&a, &b));
        best = best.min(t.elapsed().as_nanos() as f64);
    }
    best
}

fn smoke() {
    let baseline_path = concat!(env!("CARGO_MANIFEST_DIR"), "/benches/solver_baseline.json");
    let doc = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("cannot read {baseline_path}: {e}"));
    let baseline_ns =
        json_number(&doc, "p128_revised_ns").expect("baseline JSON missing p128_revised_ns");
    let baseline_cal_ns =
        json_number(&doc, "calibration_ns").expect("baseline JSON missing calibration_ns");
    let max_ratio = json_number(&doc, "max_regression").unwrap_or(2.0);

    // Speed factor of this machine vs the baseline machine, clamped so a
    // wildly off calibration cannot mask a real solver regression.
    let speed = (time_calibration_ns(5) / baseline_cal_ns).clamp(0.25, 4.0);
    let measured_ns = time_p128_ns(5);
    let ratio = measured_ns / (baseline_ns * speed);
    println!(
        "smoke: p=128 revised solve {:.2} ms (baseline {:.2} ms, machine speed {speed:.2}x, \
         normalized ratio {ratio:.2}, gate {max_ratio:.1}x)",
        measured_ns / 1e6,
        baseline_ns / 1e6
    );
    if ratio > max_ratio {
        eprintln!(
            "smoke: FAIL — p=128 solve regressed {ratio:.2}x over the checked-in baseline \
             after machine-speed normalization \
             (update benches/solver_baseline.json only with an explanation)"
        );
        std::process::exit(1);
    }
    println!("smoke: OK");
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    benches();
}
