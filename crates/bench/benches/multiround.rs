//! Criterion benchmarks of the multi-round planners: LP-planner scaling in
//! the round count, the heuristic planners, and warm-start effectiveness
//! on the expanded scenario LPs.
//!
//! Running with `--smoke` skips the benchmark groups and instead times the
//! (R = 4, p = 64) multi-round LP plan against the checked-in baseline
//! (`benches/multiround_baseline.json`) through the shared
//! `dls_bench::smoke` harness, exiting nonzero on a regression past the
//! gate — the CI guard for the multi-round planning hot path.

use criterion::{criterion_group, BenchmarkId, Criterion};
use dls_platform::{Heterogeneity, Platform, PlatformSampler};
use dls_rounds::{plan_geometric, plan_lp, plan_uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn sampler(workers: usize) -> PlatformSampler {
    PlatformSampler {
        workers,
        comm: Heterogeneity::PerWorker,
        comp: Heterogeneity::PerWorker,
        factor_range: (1.0, 10.0),
    }
}

/// A seeded random compute-bound star with `p` workers.
fn star(p: usize, seed: u64) -> Platform {
    let mut rng = StdRng::seed_from_u64(seed);
    sampler(p).sample_abstract(5.0, 0.5, &mut rng)
}

fn bench_lp_planner_round_scaling(c: &mut Criterion) {
    // The expanded scenario LP grows with p·R: the curve CI watches.
    let platform = star(16, 7);
    let mut group = c.benchmark_group("multiround/lp_plan_p16");
    for r in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(r), &r, |b, &r| {
            b.iter(|| black_box(plan_lp(&platform, r).unwrap().plan.predicted_makespan()))
        });
    }
    group.finish();
}

fn bench_heuristic_planners(c: &mut Criterion) {
    let platform = star(16, 7);
    let mut group = c.benchmark_group("multiround/heuristics_p16_r4");
    group.bench_function("uniform", |b| {
        b.iter(|| {
            black_box(
                plan_uniform(&platform, 4)
                    .unwrap()
                    .plan
                    .predicted_makespan(),
            )
        })
    });
    group.bench_function("geometric", |b| {
        b.iter(|| {
            black_box(
                plan_geometric(&platform, 4)
                    .unwrap()
                    .plan
                    .predicted_makespan(),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_lp_planner_round_scaling,
    bench_heuristic_planners
);

// ---------------------------------------------------------------------------
// `--smoke`: the CI regression gate on the (R = 4, p = 64) planning path.
// ---------------------------------------------------------------------------

/// Times one (R = 4, p = 64) LP plan — a 512-variable expanded scenario LP
/// plus lowering — best of `runs`, in nanoseconds. The basis cache makes
/// repeat solves warm; timing the *cold* path requires a fresh scenario,
/// so each run perturbs the platform seed (fresh costs, no cache hit).
fn time_plan_ns(runs: usize) -> f64 {
    black_box(plan_lp(&star(64, 100), 4).unwrap()); // warm-up
    let mut best = f64::INFINITY;
    for k in 0..runs {
        let platform = star(64, 200 + k as u64);
        let t = std::time::Instant::now();
        black_box(plan_lp(&platform, 4).unwrap());
        best = best.min(t.elapsed().as_nanos() as f64);
    }
    best
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        dls_bench::smoke::run_gate(
            concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/benches/multiround_baseline.json"
            ),
            "r4_p64_plan_ns",
            "R=4 p=64 multiround LP plan",
            time_plan_ns,
        );
        return;
    }
    benches();
}
