//! Criterion benchmarks of the tree-platform pipeline: collapse + solve +
//! expand across depths, and topology shaping.
//!
//! Running with `--smoke` skips the benchmark groups and instead times the
//! (depth-3, p = 64) collapse+solve+expand pipeline against the checked-in
//! baseline (`benches/tree_baseline.json`) through the shared
//! `dls_bench::smoke` harness, exiting nonzero on a regression past the
//! gate — the CI guard for the tree scheduling hot path.

use criterion::{criterion_group, BenchmarkId, Criterion};
use dls_core::Scheduler;
use dls_platform::{Heterogeneity, Platform, PlatformSampler};
use dls_tree::{collapse, expand, TreeScheduler};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn sampler(workers: usize) -> PlatformSampler {
    PlatformSampler {
        workers,
        comm: Heterogeneity::PerWorker,
        comp: Heterogeneity::PerWorker,
        factor_range: (1.0, 10.0),
    }
}

/// A seeded random compute-bound star with `p` workers.
fn star(p: usize, seed: u64) -> Platform {
    let mut rng = StdRng::seed_from_u64(seed);
    sampler(p).sample_abstract(5.0, 0.5, &mut rng)
}

/// One full tree pipeline: shape the star into a balanced tree, collapse,
/// solve the collapsed star, expand into per-edge hop timings. The solve
/// records the shaped tree in `Execution::Tree`, so the expansion reuses
/// it instead of reshaping.
fn pipeline(platform: &Platform, fanout: usize) -> usize {
    let sol = TreeScheduler::fifo(fanout).solve(platform).expect("z-tied");
    let tree = sol.tree().expect("tree execution");
    expand(tree, &sol.schedule).expect("consistent").len()
}

fn bench_pipeline_depth_scaling(c: &mut Criterion) {
    // Fanout sweeps the depth axis at fixed p: the curve CI watches.
    let platform = star(16, 7);
    let mut group = c.benchmark_group("tree/pipeline_p16");
    for fanout in [16usize, 4, 2, 1] {
        group.bench_with_input(BenchmarkId::from_parameter(fanout), &fanout, |b, &k| {
            b.iter(|| black_box(pipeline(&platform, k)))
        });
    }
    group.finish();
}

fn bench_collapse_only(c: &mut Criterion) {
    let platform = star(64, 7);
    let sched = TreeScheduler::fifo(4);
    let (tree, _) = sched.shape(&platform);
    let mut group = c.benchmark_group("tree/collapse_p64");
    group.bench_function("collapse", |b| {
        b.iter(|| black_box(collapse(&tree).num_workers()))
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline_depth_scaling, bench_collapse_only);

// ---------------------------------------------------------------------------
// `--smoke`: the CI regression gate on the (depth-3, p = 64) pipeline.
// ---------------------------------------------------------------------------

/// Times one (depth-3, p = 64) collapse+solve+expand — fanout 4 arranges
/// 64 workers at depth 3 — best of `runs`, in nanoseconds. Each run
/// perturbs the platform seed so the LP basis cache cannot warm-start the
/// measured solve (the gate times the cold path).
fn time_pipeline_ns(runs: usize) -> f64 {
    black_box(pipeline(&star(64, 100), 4)); // warm-up
    let mut best = f64::INFINITY;
    for k in 0..runs {
        let platform = star(64, 200 + k as u64);
        let t = std::time::Instant::now();
        black_box(pipeline(&platform, 4));
        best = best.min(t.elapsed().as_nanos() as f64);
    }
    best
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        dls_bench::smoke::run_gate(
            concat!(env!("CARGO_MANIFEST_DIR"), "/benches/tree_baseline.json"),
            "d3_p64_tree_ns",
            "depth=3 p=64 tree collapse+solve+expand",
            time_pipeline_ns,
        );
        return;
    }
    benches();
}
