//! Smoke-scale Criterion coverage of every figure pipeline, so that
//! `cargo bench` exercises each table/figure harness end to end (the
//! full-scale series are produced by the `fig*` and `repro_all` binaries).

use criterion::{criterion_group, criterion_main, Criterion};
use dls_bench::figures::{fig08, fig09, fig10_13, fig14};
use dls_bench::SweepConfig;
use std::hint::black_box;

fn smoke_cfg() -> SweepConfig {
    SweepConfig {
        sizes: vec![80],
        platforms: 3,
        total_units: 100,
        base_seed: 0xBEEF,
    }
}

fn bench_fig08(c: &mut Criterion) {
    c.bench_function("figures/fig08_linearity", |b| {
        b.iter(|| black_box(fig08::run(1).workers.len()))
    });
}

fn bench_fig09(c: &mut Criterion) {
    c.bench_function("figures/fig09_trace", |b| {
        b.iter(|| black_box(fig09::run(200, 100, 1).participants))
    });
}

fn bench_sweeps(c: &mut Criterion) {
    let cfg = smoke_cfg();
    let mut group = c.benchmark_group("figures/sweeps");
    group.sample_size(10);
    for (name, variant) in [
        ("fig10_homogeneous", fig10_13::fig10_variant()),
        ("fig11_hetero_compute", fig10_13::fig11_variant()),
        ("fig12_hetero_star", fig10_13::fig12_variant()),
        ("fig13a_fast_compute", fig10_13::fig13a_variant()),
        ("fig13b_fast_comm", fig10_13::fig13b_variant()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(fig10_13::run(&variant, &cfg).rows.len()))
        });
    }
    group.finish();
}

fn bench_fig14(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures/fig14");
    group.sample_size(10);
    for x in [1.0, 3.0] {
        group.bench_function(format!("x{x}"), |b| {
            b.iter(|| black_box(fig14::run(x, 400, 100, 1).rows.len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig08, bench_fig09, bench_sweeps, bench_fig14);
criterion_main!(benches);
