//! Criterion benchmarks of the discrete-event executor: events/second and
//! the cost of noise models, plus the sends-then-receives vs interleaved
//! master-policy ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dls_core::prelude::*;
use dls_platform::{Heterogeneity, Platform, PlatformSampler};
use dls_sim::{simulate, MasterPolicy, RealismModel, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn star(workers: usize, seed: u64) -> Platform {
    let sampler = PlatformSampler {
        workers,
        comm: Heterogeneity::PerWorker,
        comp: Heterogeneity::PerWorker,
        factor_range: (1.0, 10.0),
    };
    let mut rng = StdRng::seed_from_u64(seed);
    sampler.sample_abstract(5.0, 0.5, &mut rng)
}

fn bench_executor_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/executor");
    for p in [8usize, 32, 128, 512] {
        let platform = star(p, 1);
        let order = platform.order_by_c();
        let sched = solve_fifo(&platform, &order, PortModel::OnePort)
            .unwrap()
            .schedule;
        group.bench_with_input(
            BenchmarkId::from_parameter(p),
            &(platform, sched),
            |b, (pf, s)| b.iter(|| black_box(simulate(pf, s, &SimConfig::ideal()).makespan)),
        );
    }
    group.finish();
}

fn bench_noise_models(c: &mut Criterion) {
    let platform = star(32, 2);
    let order = platform.order_by_c();
    let sched = solve_fifo(&platform, &order, PortModel::OnePort)
        .unwrap()
        .schedule;
    let mut group = c.benchmark_group("simulator/noise");
    for (name, realism) in [
        ("ideal", RealismModel::ideal()),
        ("gaussian3pct", RealismModel::cluster_jitter()),
        ("cache200", RealismModel::cluster_with_cache_effects(200)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    simulate(
                        &platform,
                        &sched,
                        &SimConfig {
                            realism,
                            seed: 3,
                            ..SimConfig::ideal()
                        },
                    )
                    .makespan,
                )
            })
        });
    }
    group.finish();
}

fn bench_master_policies(c: &mut Criterion) {
    let platform = star(32, 4);
    let order = platform.order_by_c();
    let sched = solve_fifo(&platform, &order, PortModel::OnePort)
        .unwrap()
        .schedule;
    let mut group = c.benchmark_group("simulator/master_policy");
    for (name, policy) in [
        ("sends_then_receives", MasterPolicy::SendsThenReceives),
        ("interleaved", MasterPolicy::Interleaved),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    simulate(
                        &platform,
                        &sched,
                        &SimConfig {
                            policy,
                            ..SimConfig::ideal()
                        },
                    )
                    .makespan,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_executor_scaling,
    bench_noise_models,
    bench_master_policies
);
criterion_main!(benches);
