//! Criterion benchmarks of the scheduling algorithms: Proposition 1's LP
//! scheduler vs the analytical chain solver (ablation from DESIGN.md §8),
//! plus the bus closed form and the LIFO optimum.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dls_core::prelude::*;
use dls_platform::{Heterogeneity, Platform, PlatformSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn star(workers: usize, seed: u64) -> Platform {
    let sampler = PlatformSampler {
        workers,
        comm: Heterogeneity::PerWorker,
        comp: Heterogeneity::PerWorker,
        factor_range: (1.0, 10.0),
    };
    let mut rng = StdRng::seed_from_u64(seed);
    sampler.sample_abstract(5.0, 0.5, &mut rng)
}

fn bench_optimal_fifo(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler/optimal_fifo_lp");
    for p in [4usize, 11, 32, 64] {
        let platform = star(p, 3);
        group.bench_with_input(BenchmarkId::from_parameter(p), &platform, |b, pf| {
            b.iter(|| black_box(optimal_fifo(pf).unwrap().throughput))
        });
    }
    group.finish();
}

fn bench_chain_vs_lp(c: &mut Criterion) {
    // The chain solver avoids the LP entirely; measure the gap.
    let platform = star(11, 5);
    let order = platform.order_by_c();
    let mut group = c.benchmark_group("scheduler/chain_vs_lp_11workers");
    group.bench_function("lp", |b| {
        b.iter(|| {
            black_box(
                solve_fifo(&platform, &order, PortModel::OnePort)
                    .unwrap()
                    .throughput,
            )
        })
    });
    group.bench_function("chain_prefix", |b| {
        b.iter(|| black_box(chain_best_prefix(&platform).unwrap().1.throughput))
    });
    group.finish();
}

fn bench_closed_forms(c: &mut Criterion) {
    let bus = Platform::bus(1.0, 0.5, &vec![5.0; 64]).unwrap();
    let mut group = c.benchmark_group("scheduler/closed_form");
    group.bench_function("bus_theorem2_64workers", |b| {
        b.iter(|| black_box(bus_fifo(&bus).unwrap().throughput))
    });
    let star64 = star(64, 9);
    group.bench_function("lifo_lp_64workers", |b| {
        b.iter(|| black_box(optimal_lifo(&star64).unwrap().throughput))
    });
    group.finish();
}

fn bench_brute_force(c: &mut Criterion) {
    let platform = star(5, 13);
    let mut group = c.benchmark_group("scheduler/brute_force_5workers");
    group.sample_size(10);
    group.bench_function("all_fifo_orders", |b| {
        b.iter(|| {
            black_box(
                best_fifo(&platform, PortModel::OnePort)
                    .unwrap()
                    .best
                    .throughput,
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_optimal_fifo,
    bench_chain_vs_lp,
    bench_closed_forms,
    bench_brute_force
);
criterion_main!(benches);
