//! Benchmarks of the schedule-model IR hot path: building the scenario
//! model, lowering it to a raw `Problem`, and solving through the engine
//! router — the exact pipeline every LP-backed strategy now runs per
//! scenario.
//!
//! Running with `--smoke` skips the benchmark groups and instead times
//! one **warm** (steady-state, basis-cache-hitting — the sweeps' access
//! pattern) p = 128 IR build+lower+solve against the checked-in baseline
//! (`benches/ir_baseline.json`), exiting nonzero on a regression past the
//! gate — the CI guard for the IR refactor's promise that the model layer
//! adds no measurable cost over the old hand-rolled builder. (For the
//! genuinely cold solver path, see `benches/solver.rs --smoke`.)

use criterion::{criterion_group, BenchmarkId, Criterion};
use dls_core::lp_model::{scenario_model, solve_model};
use dls_core::PortModel;
use dls_platform::{Heterogeneity, Platform, PlatformSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn sampler(workers: usize) -> PlatformSampler {
    PlatformSampler {
        workers,
        comm: Heterogeneity::PerWorker,
        comp: Heterogeneity::PerWorker,
        factor_range: (1.0, 10.0),
    }
}

fn platform(p: usize, seed: u64) -> Platform {
    let mut rng = StdRng::seed_from_u64(seed);
    sampler(p).sample_abstract(5.0, 0.5, &mut rng)
}

/// One full IR pipeline pass: build the scenario model, lower, solve cold
/// through the router (fresh structural cache key per call would still
/// hit the thread cache on repeats, so the bench clears nothing — the
/// steady-state warm path is what the sweeps run).
fn ir_solve(platform: &Platform) -> f64 {
    let order = platform.order_by_c();
    let (ir, _) = scenario_model(platform, &order, &order, PortModel::OnePort).unwrap();
    solve_model(&ir, None).unwrap().objective
}

fn bench_ir_build_and_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("ir/build_lower_solve");
    for p in [8usize, 32, 128] {
        let platform = platform(p, 7);
        group.bench_with_input(BenchmarkId::from_parameter(p), &platform, |b, pf| {
            b.iter(|| black_box(ir_solve(pf)))
        });
    }
    group.finish();
}

fn bench_ir_build_only(c: &mut Criterion) {
    // Model construction + lowering without the solve: the pure IR
    // overhead (should be negligible next to any pivot).
    let platform = platform(128, 7);
    let order = platform.order_by_c();
    let mut group = c.benchmark_group("ir/build_lower");
    group.bench_function("p128", |b| {
        b.iter(|| {
            let (ir, _) = scenario_model(&platform, &order, &order, PortModel::OnePort).unwrap();
            black_box(ir.lower().num_constraints())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ir_build_and_solve, bench_ir_build_only);

/// Times the p = 128 IR pipeline (best of `runs`, nanoseconds), with the
/// per-thread basis cache genuinely cold on the first call of each run —
/// the measurement includes one warm-up so steady-state (warm) solves are
/// what the gate tracks, matching the sweeps' access pattern.
fn time_ir_ns(runs: usize) -> f64 {
    let platform = platform(128, 7);
    black_box(ir_solve(&platform)); // warm-up (populates the basis cache)
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let t = std::time::Instant::now();
        black_box(ir_solve(&platform));
        best = best.min(t.elapsed().as_nanos() as f64);
    }
    best
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        dls_bench::smoke::run_gate(
            concat!(env!("CARGO_MANIFEST_DIR"), "/benches/ir_baseline.json"),
            "p128_ir_ns",
            "p=128 IR build+lower+solve",
            time_ir_ns,
        );
        return;
    }
    benches();
}
