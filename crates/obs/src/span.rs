//! RAII span timers and the lower-level [`Timer`] building block.

use std::time::Instant;

use crate::registry::Histogram;

/// An in-flight timed section; records its elapsed seconds into a histogram
/// when dropped. When tracing is disabled ([`crate::timing_enabled`] is
/// false) the clock is never read and drop is a no-op.
#[derive(Debug)]
pub struct Span {
    hist: Histogram,
    start: Option<Instant>,
}

impl Span {
    /// Starts a span feeding `hist`.
    pub fn start(hist: Histogram) -> Span {
        Span {
            hist,
            start: crate::timing_enabled().then(Instant::now),
        }
    }

    /// Ends the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            self.hist.record(start.elapsed().as_secs_f64());
        }
    }
}

/// Starts a span recording into the histogram `name` on drop. Call sites
/// with a literal name should prefer the [`crate::span!`] macro, which
/// caches the name lookup in a static.
pub fn span(name: &str) -> Span {
    Span::start(crate::histogram(name))
}

/// A bare stopwatch gated on [`crate::timing_enabled`], for call sites that
/// need the elapsed value itself (e.g. to feed several histograms).
#[derive(Debug)]
pub struct Timer(Option<Instant>);

/// Starts a [`Timer`] (inert when tracing is disabled).
pub fn timer() -> Timer {
    Timer(crate::timing_enabled().then(Instant::now))
}

impl Timer {
    /// Elapsed seconds, or `None` when tracing was disabled at start.
    pub fn stop(self) -> Option<f64> {
        self.0.map(|t| t.elapsed().as_secs_f64())
    }
}
