//! Causal trace trees: completed spans and instant events with trace id /
//! parent id / key=value attributes, recorded into bounded lock-free
//! per-thread event buffers.
//!
//! Every [`TraceSpan`] *also* records its elapsed seconds into the
//! histogram of the same name, so the `trace_span!` macro is a strict
//! superset of `span!` and the metric inventory is unchanged by switching
//! a call site over.
//!
//! ## Causality model
//!
//! Each thread keeps a stack of active spans. A span started while another
//! is active becomes its child (same trace id, `parent_id` set); a span
//! started on an empty stack roots a fresh trace (one *trace* per logical
//! request — e.g. one figure sweep). Crossing a thread boundary is always
//! explicit: capture [`current_context`] on the submitting thread, move the
//! returned [`TraceContext`] into the worker, and [`TraceContext::attach`]
//! it there for the duration (RAII guard). `dls_report::par_map` does this
//! for its worker threads, which is how per-item spans nest under the
//! caller's span in a `repro_all` trace.
//!
//! ## Storage
//!
//! Events land in a per-thread buffer of chunked `OnceLock` slots: the
//! owning thread claims a slot with one relaxed `fetch_add` and writes it
//! with `OnceLock::set` — no locks on the record path, and a concurrent
//! reader ([`trace_events`]) simply skips slots that are claimed but not
//! yet written. Buffers are bounded ([`MAX_EVENTS_PER_THREAD`]); overflow
//! increments the `trace.events.dropped` counter instead of growing.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::registry::Histogram;

/// Capacity of one thread's event buffer; events past this are dropped
/// (counted in `trace.events.dropped`).
pub const MAX_EVENTS_PER_THREAD: usize = CHUNK * NUM_CHUNKS;

const CHUNK: usize = 4096;
const NUM_CHUNKS: usize = 16;

/// One completed span (or instant event) in a trace tree.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Span name (also the name of the histogram the duration fed).
    pub name: &'static str,
    /// Trace this event belongs to (one trace per logical request).
    pub trace_id: u64,
    /// Unique id of this span within the process.
    pub span_id: u64,
    /// Enclosing span, or `None` for a trace root.
    pub parent_id: Option<u64>,
    /// Small dense index of the recording OS thread.
    pub thread: u64,
    /// Start time in nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for instant events).
    pub dur_ns: u64,
    /// `true` for point events recorded via [`trace_instant`].
    pub instant: bool,
    /// Key=value attributes attached at the call site.
    pub attrs: Vec<(&'static str, String)>,
}

/// A handle to a span's identity, for explicit cross-thread propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    trace_id: u64,
    span_id: u64,
}

impl TraceContext {
    /// Installs this context as the current parent on *this* thread until
    /// the returned guard drops. Spans started while the guard is live
    /// become children of the captured span.
    pub fn attach(self) -> ContextGuard {
        STACK.with(|s| s.borrow_mut().push((self.trace_id, self.span_id)));
        ContextGuard {
            span_id: self.span_id,
        }
    }
}

/// RAII guard for [`TraceContext::attach`]; detaches on drop.
#[derive(Debug)]
pub struct ContextGuard {
    span_id: u64,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        pop_frame(self.span_id);
    }
}

/// The innermost active span on this thread (from a local `trace_span!` or
/// an attached [`TraceContext`]), if any. Capture this before handing work
/// to another thread, then [`TraceContext::attach`] it there.
pub fn current_context() -> Option<TraceContext> {
    STACK.with(|s| {
        s.borrow()
            .last()
            .map(|&(trace_id, span_id)| TraceContext { trace_id, span_id })
    })
}

thread_local! {
    /// Active span stack: `(trace_id, span_id)` frames, innermost last.
    static STACK: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
}

fn pop_frame(span_id: u64) {
    STACK.with(|s| {
        let mut stack = s.borrow_mut();
        // Pop through any frames a panicking child failed to unwind; the
        // frame we own is the deepest one carrying our span id.
        if let Some(pos) = stack.iter().rposition(|&(_, id)| id == span_id) {
            stack.truncate(pos);
        }
    });
}

/// Process-wide span/trace id allocators (0 is never issued).
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_INDEX: u64 = NEXT_THREAD.fetch_add(1, Relaxed);
}

fn thread_index() -> u64 {
    THREAD_INDEX.with(|t| *t)
}

/// Monotonic epoch all event timestamps are relative to.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// One lazily allocated chunk of event slots; each slot stores the event
/// alongside the generation it was recorded under.
type EventChunk = Box<[OnceLock<(u64, TraceEvent)>]>;

/// Per-thread event buffer: chunks of `OnceLock` slots allocated lazily by
/// the owning thread; `len` counts claimed slots (may exceed capacity, the
/// excess is the drop count).
struct EventBuffer {
    len: AtomicUsize,
    /// Trace generation this buffer's *reader* filter compares against is
    /// global; each event stores the generation it was recorded under.
    chunks: [OnceLock<EventChunk>; NUM_CHUNKS],
}

impl EventBuffer {
    fn new() -> Self {
        EventBuffer {
            len: AtomicUsize::new(0),
            chunks: [const { OnceLock::new() }; NUM_CHUNKS],
        }
    }

    fn push(&self, generation: u64, ev: TraceEvent) -> bool {
        let idx = self.len.fetch_add(1, Relaxed);
        if idx >= MAX_EVENTS_PER_THREAD {
            return false;
        }
        let chunk = self.chunks[idx / CHUNK].get_or_init(|| {
            std::iter::repeat_with(OnceLock::new)
                .take(CHUNK)
                .collect::<Vec<_>>()
                .into_boxed_slice()
        });
        // The slot index was claimed exclusively by the fetch_add above.
        let _ = chunk[idx % CHUNK].set((generation, ev));
        true
    }

    fn read_into(&self, generation: u64, out: &mut Vec<TraceEvent>) {
        let claimed = self.len.load(Relaxed).min(MAX_EVENTS_PER_THREAD);
        for idx in 0..claimed {
            let Some(chunk) = self.chunks[idx / CHUNK].get() else {
                break;
            };
            // A claimed slot may still be mid-write on its owner thread;
            // skip it rather than block.
            if let Some((gen, ev)) = chunk[idx % CHUNK].get() {
                if *gen == generation {
                    out.push(ev.clone());
                }
            }
        }
    }
}

/// Global list of every thread's buffer (same lifetime rule as metric
/// shards: the `Arc` keeps events of exited worker threads readable).
fn buffers() -> &'static Mutex<Vec<Arc<EventBuffer>>> {
    static BUFFERS: OnceLock<Mutex<Vec<Arc<EventBuffer>>>> = OnceLock::new();
    BUFFERS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Generation counter: bumped by [`reset_events`]; readers only surface
/// events recorded under the current generation.
static GENERATION: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static BUFFER: OnceLock<Arc<EventBuffer>> = const { OnceLock::new() };
}

fn with_buffer<R>(f: impl FnOnce(&EventBuffer) -> R) -> R {
    BUFFER.with(|cell| {
        let buf = cell.get_or_init(|| {
            let buf = Arc::new(EventBuffer::new());
            buffers()
                .lock()
                .expect("obs trace buffers")
                .push(buf.clone());
            buf
        });
        f(buf)
    })
}

fn record_event(ev: TraceEvent) {
    let generation = GENERATION.load(Relaxed);
    if !with_buffer(|b| b.push(generation, ev)) {
        crate::counter!("trace.events.dropped").incr();
    }
}

/// All trace events recorded since the last [`reset_events`], across every
/// thread, sorted by start time (ties broken by span id).
pub fn trace_events() -> Vec<TraceEvent> {
    let generation = GENERATION.load(Relaxed);
    let bufs: Vec<Arc<EventBuffer>> = buffers().lock().expect("obs trace buffers").clone();
    let mut out = Vec::new();
    for b in &bufs {
        b.read_into(generation, &mut out);
    }
    out.sort_by_key(|e| (e.start_ns, e.span_id));
    out
}

/// Discards all buffered trace events (by bumping the generation — slots
/// already written stay allocated but become invisible). Called by
/// [`crate::reset_all`].
pub fn reset_events() {
    GENERATION.fetch_add(1, Relaxed);
}

/// Records a zero-duration instant event under the current span (attribute
/// carrier for things like per-strategy skip marks). Call sites with a
/// literal name should prefer the [`crate::trace_event!`] macro, which
/// short-circuits when tracing is disabled.
pub fn trace_instant(name: &'static str, attrs: Vec<(&'static str, String)>) {
    if !crate::timing_enabled() {
        return;
    }
    let (trace_id, parent_id) = match current_context() {
        Some(ctx) => (ctx.trace_id, Some(ctx.span_id)),
        None => (NEXT_TRACE_ID.fetch_add(1, Relaxed), None),
    };
    record_event(TraceEvent {
        name,
        trace_id,
        span_id: NEXT_SPAN_ID.fetch_add(1, Relaxed),
        parent_id,
        thread: thread_index(),
        start_ns: epoch().elapsed().as_nanos() as u64,
        dur_ns: 0,
        instant: true,
        attrs,
    });
}

/// An in-flight causal span: child of the innermost active span on this
/// thread (or a fresh trace root), recorded as a [`TraceEvent`] *and* into
/// the same-named histogram when dropped. Obtain via [`crate::trace_span!`];
/// inert (no clock, no event) when tracing is disabled.
#[derive(Debug)]
pub struct TraceSpan {
    hist: Histogram,
    state: Option<SpanState>,
}

#[derive(Debug)]
struct SpanState {
    name: &'static str,
    trace_id: u64,
    span_id: u64,
    parent_id: Option<u64>,
    start: Instant,
    attrs: Vec<(&'static str, String)>,
}

impl TraceSpan {
    /// Starts an enabled span: allocates ids, pushes the thread-local
    /// stack frame, reads the clock. Callers must have checked
    /// [`crate::timing_enabled`] (the macro does).
    pub fn start_enabled(
        hist: Histogram,
        name: &'static str,
        attrs: Vec<(&'static str, String)>,
    ) -> TraceSpan {
        let (trace_id, parent_id) = match current_context() {
            Some(ctx) => (ctx.trace_id, Some(ctx.span_id)),
            None => (NEXT_TRACE_ID.fetch_add(1, Relaxed), None),
        };
        let span_id = NEXT_SPAN_ID.fetch_add(1, Relaxed);
        // Touch the epoch before reading the start time so start >= epoch.
        let _ = epoch();
        STACK.with(|s| s.borrow_mut().push((trace_id, span_id)));
        TraceSpan {
            hist,
            state: Some(SpanState {
                name,
                trace_id,
                span_id,
                parent_id,
                start: Instant::now(),
                attrs,
            }),
        }
    }

    /// An inert span (tracing disabled): drop is a no-op.
    pub fn inert(hist: Histogram) -> TraceSpan {
        TraceSpan { hist, state: None }
    }

    /// This span's context, for explicit handoff to other threads.
    pub fn context(&self) -> Option<TraceContext> {
        self.state.as_ref().map(|st| TraceContext {
            trace_id: st.trace_id,
            span_id: st.span_id,
        })
    }

    /// Ends the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        let Some(st) = self.state.take() else {
            return;
        };
        pop_frame(st.span_id);
        let elapsed = st.start.elapsed();
        self.hist.record(elapsed.as_secs_f64());
        record_event(TraceEvent {
            name: st.name,
            trace_id: st.trace_id,
            span_id: st.span_id,
            parent_id: st.parent_id,
            thread: thread_index(),
            start_ns: st.start.duration_since(epoch()).as_nanos() as u64,
            dur_ns: elapsed.as_nanos() as u64,
            instant: false,
            attrs: st.attrs,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mode;

    fn enable() {
        crate::set_mode(Some(Mode::Summary));
        crate::reset_all();
    }

    #[test]
    fn spans_nest_and_share_a_trace() {
        enable();
        {
            let _root = crate::trace_span!("trace.test.root.seconds");
            let _child = crate::trace_span!("trace.test.child.seconds", "k" => 7);
        }
        let events = trace_events();
        let root = events
            .iter()
            .find(|e| e.name == "trace.test.root.seconds")
            .expect("root recorded");
        let child = events
            .iter()
            .find(|e| e.name == "trace.test.child.seconds")
            .expect("child recorded");
        assert_eq!(root.parent_id, None);
        assert_eq!(child.parent_id, Some(root.span_id));
        assert_eq!(child.trace_id, root.trace_id);
        assert_eq!(child.attrs, vec![("k", "7".to_string())]);
        // The histogram feed is intact.
        let snap = crate::snapshot();
        assert!(snap.histogram("trace.test.root.seconds").is_some());
    }

    #[test]
    fn context_propagates_across_threads() {
        enable();
        let handoff;
        {
            let root = crate::trace_span!("trace.test.handoff.seconds");
            handoff = root.context().expect("enabled span has a context");
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    let _g = handoff.attach();
                    let _leaf = crate::trace_span!("trace.test.remote.seconds");
                });
            });
        }
        let events = trace_events();
        let root = events
            .iter()
            .find(|e| e.name == "trace.test.handoff.seconds")
            .unwrap();
        let leaf = events
            .iter()
            .find(|e| e.name == "trace.test.remote.seconds")
            .unwrap();
        assert_eq!(leaf.parent_id, Some(root.span_id));
        assert_eq!(leaf.trace_id, root.trace_id);
        assert_ne!(leaf.thread, root.thread);
    }

    #[test]
    fn disabled_mode_records_nothing() {
        crate::set_mode(Some(Mode::Disabled));
        crate::reset_all();
        {
            let _s = crate::trace_span!("trace.test.disabled.seconds");
        }
        assert!(trace_events().is_empty());
        crate::set_mode(Some(Mode::Summary));
    }

    #[test]
    fn instants_attach_to_the_current_span() {
        enable();
        {
            let _root = crate::trace_span!("trace.test.mark_root.seconds");
            crate::trace_event!("trace.test.mark", "strategy" => "lp");
        }
        let events = trace_events();
        let mark = events
            .iter()
            .find(|e| e.name == "trace.test.mark")
            .expect("instant recorded");
        assert!(mark.instant);
        assert_eq!(mark.dur_ns, 0);
        assert!(mark.parent_id.is_some());
        assert_eq!(mark.attrs[0], ("strategy", "lp".to_string()));
    }

    #[test]
    fn reset_hides_old_events() {
        enable();
        {
            let _s = crate::trace_span!("trace.test.reset.seconds");
        }
        assert!(!trace_events().is_empty());
        reset_events();
        assert!(trace_events().is_empty());
    }
}
