//! Handle-caching macros. Each expansion interns the metric name once per
//! call site (in a function-local static) so the steady-state hot path is a
//! static load plus one sharded atomic op.

/// A [`crate::Counter`] handle for a literal name, interned once per call
/// site.
///
/// ```
/// dls_obs::counter!("doc.macro.events").add(2);
/// ```
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::Counter> = ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::counter($name))
    }};
}

/// A [`crate::Gauge`] handle for a literal name, interned once per call
/// site.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::Gauge> = ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::gauge($name))
    }};
}

/// A [`crate::Histogram`] handle for a literal name, interned once per call
/// site.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::Histogram> = ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::histogram($name))
    }};
}

/// Starts a [`crate::Span`] feeding the histogram named by a literal,
/// interned once per call site. Bind it (`let _span = ...`) so it drops at
/// scope exit.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::start($crate::histogram!($name))
    };
}
