//! Handle-caching macros. Each expansion interns the metric name once per
//! call site (in a function-local static) so the steady-state hot path is a
//! static load plus one sharded atomic op.

/// A [`crate::Counter`] handle for a literal name, interned once per call
/// site.
///
/// ```
/// dls_obs::counter!("doc.macro.events").add(2);
/// ```
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::Counter> = ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::counter($name))
    }};
}

/// A [`crate::Gauge`] handle for a literal name, interned once per call
/// site.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::Gauge> = ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::gauge($name))
    }};
}

/// A [`crate::Histogram`] handle for a literal name, interned once per call
/// site.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::Histogram> = ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::histogram($name))
    }};
}

/// Starts a [`crate::Span`] feeding the histogram named by a literal,
/// interned once per call site. Bind it (`let _span = ...`) so it drops at
/// scope exit.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::start($crate::histogram!($name))
    };
}

/// Starts a [`crate::TraceSpan`]: a causal trace-tree span that *also*
/// records its elapsed seconds into the histogram of the same name (so
/// swapping `span!` for `trace_span!` changes no metric). Optional
/// `"key" => value` attributes are formatted with `Display` — and only
/// when tracing is enabled, so disabled call sites pay one atomic load.
/// Bind it (`let _span = ...`) so it drops at scope exit.
///
/// ```
/// dls_obs::set_mode(Some(dls_obs::Mode::Summary));
/// let _outer = dls_obs::trace_span!("doc.outer.seconds");
/// let _inner = dls_obs::trace_span!("doc.inner.seconds", "n" => 42);
/// ```
#[macro_export]
macro_rules! trace_span {
    ($name:expr $(, $k:expr => $v:expr)* $(,)?) => {{
        let __hist = $crate::histogram!($name);
        if $crate::timing_enabled() {
            $crate::TraceSpan::start_enabled(
                __hist,
                $name,
                ::std::vec![$(($k, ::std::format!("{}", $v))),*],
            )
        } else {
            $crate::TraceSpan::inert(__hist)
        }
    }};
}

/// Records a zero-duration instant event under the current trace span —
/// an attribute carrier (e.g. which strategy was skipped and why). A no-op
/// when tracing is disabled; attributes are only formatted when enabled.
#[macro_export]
macro_rules! trace_event {
    ($name:expr $(, $k:expr => $v:expr)* $(,)?) => {
        if $crate::timing_enabled() {
            $crate::trace_instant(
                $name,
                ::std::vec![$(($k, ::std::format!("{}", $v))),*],
            );
        }
    };
}
