//! Fixed-bucket log-scale histogram geometry and the merged summary type.
//!
//! Buckets are exponential with 4 sub-buckets per octave (bucket width
//! ~19 % relative), spanning 2^-30 ≈ 1 ns (as seconds) up to 2^40 ≈ 10^12
//! (covers iteration counts as well as durations). Percentile estimates are
//! the geometric midpoint of the crossing bucket, clamped to the exact
//! min/max recorded alongside, so single-valued histograms report exact
//! percentiles.

/// Sub-buckets per factor-of-two range.
const BUCKETS_PER_OCTAVE: usize = 4;
/// log2 of the lower bound of bucket 0.
const MIN_EXP: i32 = -30;
/// log2 of the upper bound of the last bucket.
const MAX_EXP: i32 = 40;
/// Total bucket count of every histogram.
pub(crate) const NUM_BUCKETS: usize = ((MAX_EXP - MIN_EXP) as usize) * BUCKETS_PER_OCTAVE;

/// Bucket index for a finite value (`v <= 0` folds into bucket 0).
pub(crate) fn bucket_index(v: f64) -> usize {
    if v <= 0.0 {
        return 0;
    }
    let idx = ((v.log2() - MIN_EXP as f64) * BUCKETS_PER_OCTAVE as f64).floor();
    if idx < 0.0 {
        0
    } else if idx >= (NUM_BUCKETS - 1) as f64 {
        NUM_BUCKETS - 1
    } else {
        idx as usize
    }
}

/// Geometric midpoint of bucket `idx`, the representative value used for
/// percentile estimates.
pub(crate) fn bucket_midpoint(idx: usize) -> f64 {
    2f64.powf((idx as f64 + 0.5) / BUCKETS_PER_OCTAVE as f64 + MIN_EXP as f64)
}

/// Merged view of one histogram across all thread shards.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values (exact, not bucketed).
    pub sum: f64,
    /// Smallest recorded value (exact).
    pub min: f64,
    /// Largest recorded value (exact).
    pub max: f64,
    /// Median estimate (bucket midpoint clamped to `[min, max]`).
    pub p50: f64,
    /// 90th-percentile estimate.
    pub p90: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
}

impl HistogramSummary {
    /// Exact mean of the recorded values.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Builds a summary from merged bucket counts plus exact aggregates.
pub(crate) fn summarize(
    buckets: &[u64],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
) -> HistogramSummary {
    let pct = |q: f64| -> f64 {
        if count == 0 {
            return 0.0;
        }
        // 1-based rank of the q-quantile observation.
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (idx, &c) in buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_midpoint(idx).clamp(min, max);
            }
        }
        max
    };
    HistogramSummary {
        count,
        sum,
        min: if count == 0 { 0.0 } else { min },
        max: if count == 0 { 0.0 } else { max },
        p50: pct(0.50),
        p90: pct(0.90),
        p99: pct(0.99),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_clamped() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-3.0), 0);
        assert_eq!(bucket_index(1e-300), 0);
        assert_eq!(bucket_index(1e300), NUM_BUCKETS - 1);
        let mut prev = 0;
        for i in 0..200 {
            let v = 1e-9 * 1.3f64.powi(i);
            let b = bucket_index(v);
            assert!(b >= prev, "bucket index must be monotone in the value");
            prev = b;
        }
    }

    #[test]
    fn midpoint_lands_in_its_own_bucket() {
        for idx in [0usize, 1, 17, 120, NUM_BUCKETS - 1] {
            assert_eq!(bucket_index(bucket_midpoint(idx)), idx);
        }
    }
}
