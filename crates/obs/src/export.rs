//! Trace-event exporters: Chrome Trace Event Format JSON (for
//! `chrome://tracing` / Perfetto) and collapsed flamegraph stacks (for
//! `flamegraph.pl` / speedscope).

use std::collections::HashMap;

use crate::sink::{json_num, json_str};
use crate::trace::TraceEvent;

/// Renders events in Chrome Trace Event Format: one complete (`ph:"X"`)
/// event per span with microsecond `ts`/`dur`, `pid` = trace id (one
/// logical request per process track), `tid` = recording OS thread, and
/// the span/parent ids plus call-site attributes under `args`. Instant
/// events render as `ph:"i"` with thread scope.
pub fn render_chrome(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut push = |line: String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        out.push('\n');
        out.push_str(&line);
        *first = false;
    };

    // Metadata: name each pid track after its trace id.
    let mut traces: Vec<u64> = events.iter().map(|e| e.trace_id).collect();
    traces.sort_unstable();
    traces.dedup();
    for t in &traces {
        push(
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{t},\"tid\":0,\
                 \"args\":{{\"name\":{}}}}}",
                json_str(&format!("trace {t}"))
            ),
            &mut first,
        );
    }

    for e in events {
        let mut args = String::new();
        args.push_str(&format!("\"span_id\":{}", e.span_id));
        if let Some(p) = e.parent_id {
            args.push_str(&format!(",\"parent_id\":{p}"));
        }
        for (k, v) in &e.attrs {
            args.push_str(&format!(",{}:{}", json_str(k), json_str(v)));
        }
        let ts = json_num(e.start_ns as f64 / 1e3);
        let line = if e.instant {
            format!(
                "{{\"name\":{},\"cat\":\"dls\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\
                 \"pid\":{},\"tid\":{},\"args\":{{{args}}}}}",
                json_str(e.name),
                e.trace_id,
                e.thread,
            )
        } else {
            format!(
                "{{\"name\":{},\"cat\":\"dls\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{},\
                 \"pid\":{},\"tid\":{},\"args\":{{{args}}}}}",
                json_str(e.name),
                json_num(e.dur_ns as f64 / 1e3),
                e.trace_id,
                e.thread,
            )
        };
        push(line, &mut first);
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Renders events as collapsed flamegraph stacks: one line per distinct
/// root→leaf path, `name;name;... <microseconds>`, where the count is the
/// path's summed *self* time (span duration minus its children's), so the
/// lines feed `flamegraph.pl` directly. Instant events are skipped.
pub fn render_folded(events: &[TraceEvent]) -> String {
    let by_id: HashMap<u64, &TraceEvent> = events
        .iter()
        .filter(|e| !e.instant)
        .map(|e| (e.span_id, e))
        .collect();

    // Children's total time per parent, to derive self time.
    let mut child_ns: HashMap<u64, u64> = HashMap::new();
    for e in events.iter().filter(|e| !e.instant) {
        if let Some(p) = e.parent_id {
            if by_id.contains_key(&p) {
                *child_ns.entry(p).or_insert(0) += e.dur_ns;
            }
        }
    }

    let mut folded: HashMap<String, u64> = HashMap::new();
    for e in events.iter().filter(|e| !e.instant) {
        let mut path: Vec<&'static str> = vec![e.name];
        let mut cur = e.parent_id;
        // Parent chains are acyclic by construction (ids are allocated in
        // order); the depth cap guards against a corrupted buffer.
        let mut depth = 0;
        while let (Some(p), true) = (cur, depth < 128) {
            let Some(parent) = by_id.get(&p) else {
                break;
            };
            path.push(parent.name);
            cur = parent.parent_id;
            depth += 1;
        }
        path.reverse();
        let self_ns = e
            .dur_ns
            .saturating_sub(child_ns.get(&e.span_id).copied().unwrap_or(0));
        let self_us = self_ns / 1_000;
        if self_us > 0 {
            *folded.entry(path.join(";")).or_insert(0) += self_us;
        }
    }

    let mut lines: Vec<(String, u64)> = folded.into_iter().collect();
    lines.sort();
    let mut out = String::new();
    for (path, us) in lines {
        out.push_str(&format!("{path} {us}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(
        name: &'static str,
        trace_id: u64,
        span_id: u64,
        parent_id: Option<u64>,
        start_ns: u64,
        dur_ns: u64,
    ) -> TraceEvent {
        TraceEvent {
            name,
            trace_id,
            span_id,
            parent_id,
            thread: 0,
            start_ns,
            dur_ns,
            instant: false,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn chrome_has_complete_events_with_parent_args() {
        let events = vec![
            ev("root", 1, 1, None, 0, 5_000_000),
            ev("leaf", 1, 2, Some(1), 1_000_000, 2_000_000),
        ];
        let json = render_chrome(&events);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"parent_id\":1"));
        assert!(json.contains("\"pid\":1"));
        assert!(json.contains("\"dur\":2000"));
    }

    #[test]
    fn folded_sums_self_time_along_paths() {
        let events = vec![
            ev("root", 1, 1, None, 0, 10_000_000),
            ev("leaf", 1, 2, Some(1), 0, 4_000_000),
            ev("leaf", 1, 3, Some(1), 5_000_000, 2_000_000),
        ];
        let folded = render_folded(&events);
        // root self = 10ms - 6ms = 4ms = 4000us; leaf = 4ms + 2ms = 6000us.
        assert!(folded.contains("root 4000\n"), "got: {folded}");
        assert!(folded.contains("root;leaf 6000\n"), "got: {folded}");
    }

    #[test]
    fn folded_skips_instants_and_orphans_become_roots() {
        let mut mark = ev("mark", 1, 5, Some(999), 0, 0);
        mark.instant = true;
        let events = vec![ev("lost-parent-child", 1, 4, Some(999), 0, 3_000_000), mark];
        let folded = render_folded(&events);
        assert_eq!(folded, "lost-parent-child 3000\n");
    }
}
