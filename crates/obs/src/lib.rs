//! # dls-obs — workspace-wide metrics and tracing
//!
//! A process-global, thread-sharded metrics registry for the RR-5738
//! reproduction: named [counters](counter), [gauges](gauge) and fixed-bucket
//! [histograms](histogram) with p50/p90/p99 readout, plus a lightweight
//! [span](span()) API (RAII timers feeding histograms) and two pluggable
//! sinks — a human-readable summary table and a JSON-lines snapshot writer —
//! selected by the `DLS_TRACE` environment variable:
//!
//! | `DLS_TRACE` | effect |
//! |---|---|
//! | unset / `0` / `off` | tracing disabled: spans skip the clock entirely |
//! | `summary` | [`emit`] prints an aligned metrics table to stderr |
//! | `jsonl` | [`emit`] writes one JSON object per metric to stderr |
//! | `jsonl:PATH` | same, appended to `PATH` instead of stderr |
//! | `chrome:PATH` | [`emit`] writes collected trace-tree events to `PATH` in Chrome Trace Event Format |
//! | `folded:PATH` | [`emit`] writes collapsed flamegraph stacks to `PATH` |
//!
//! On top of the aggregate layer sits a causal **trace tree**: the
//! [`trace_span!`] macro opens a span carrying a trace id, a parent id (the
//! innermost active span on the thread) and key=value attributes, recorded
//! into bounded lock-free per-thread event buffers *and* into the
//! histogram of the same name. Thread boundaries are crossed explicitly
//! with [`current_context`] / [`TraceContext::attach`].
//!
//! ## Cost model
//!
//! Counter / gauge / histogram *value* recording is always on: the hot path
//! is one thread-local lookup plus a relaxed atomic add into a per-thread
//! shard (no locks, no allocation after first touch), which is how
//! `lp_model::warm_start_stats` keeps working with tracing disabled.
//! *Timing* (spans and [`Timer`]) is gated on [`timing_enabled`]: with
//! `DLS_TRACE` unset a span never calls `Instant::now`, so instrumented hot
//! loops pay a single relaxed atomic load. Sinks only run when a mode is
//! selected.
//!
//! ## Shape
//!
//! Metric names are interned once (capacity-bounded; see
//! [`Snapshot::dropped`]) and call sites cache the handle in a static via
//! the [`counter!`]/[`gauge!`]/[`histogram!`]/[`span!`] macros. Each thread
//! writes to its own shard; [`snapshot`] merges all shards. Handles are
//! `Copy` and remain valid for the life of the process.
//!
//! ```
//! let solves = dls_obs::counter!("doc.solves");
//! solves.incr();
//! {
//!     let _timer = dls_obs::span!("doc.solve.seconds"); // records on drop
//! }
//! let snap = dls_obs::snapshot();
//! assert_eq!(snap.counter("doc.solves"), Some(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod export;
mod hist;
mod macros;
mod registry;
mod sink;
mod span;
mod trace;

pub use config::{mode, set_mode, timing_enabled, Mode};
pub use export::{render_chrome, render_folded};
pub use hist::HistogramSummary;
pub use registry::{
    counter, gauge, histogram, reset_all, snapshot, Counter, Gauge, Histogram, Snapshot,
};
pub use sink::{emit, render_jsonl, render_summary};
pub use span::{span, timer, Span, Timer};
pub use trace::{
    current_context, reset_events, trace_events, trace_instant, ContextGuard, TraceContext,
    TraceEvent, TraceSpan, MAX_EVENTS_PER_THREAD,
};
