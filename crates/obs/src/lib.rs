//! # dls-obs — workspace-wide metrics and tracing
//!
//! A process-global, thread-sharded metrics registry for the RR-5738
//! reproduction: named [counters](counter), [gauges](gauge) and fixed-bucket
//! [histograms](histogram) with p50/p90/p99 readout, plus a lightweight
//! [span](span()) API (RAII timers feeding histograms) and two pluggable
//! sinks — a human-readable summary table and a JSON-lines snapshot writer —
//! selected by the `DLS_TRACE` environment variable:
//!
//! | `DLS_TRACE` | effect |
//! |---|---|
//! | unset / `0` / `off` | tracing disabled: spans skip the clock entirely |
//! | `summary` | [`emit`] prints an aligned metrics table to stderr |
//! | `jsonl` | [`emit`] writes one JSON object per metric to stderr |
//! | `jsonl:PATH` | same, appended to `PATH` instead of stderr |
//!
//! ## Cost model
//!
//! Counter / gauge / histogram *value* recording is always on: the hot path
//! is one thread-local lookup plus a relaxed atomic add into a per-thread
//! shard (no locks, no allocation after first touch), which is how
//! `lp_model::warm_start_stats` keeps working with tracing disabled.
//! *Timing* (spans and [`Timer`]) is gated on [`timing_enabled`]: with
//! `DLS_TRACE` unset a span never calls `Instant::now`, so instrumented hot
//! loops pay a single relaxed atomic load. Sinks only run when a mode is
//! selected.
//!
//! ## Shape
//!
//! Metric names are interned once (capacity-bounded; see
//! [`Snapshot::dropped`]) and call sites cache the handle in a static via
//! the [`counter!`]/[`gauge!`]/[`histogram!`]/[`span!`] macros. Each thread
//! writes to its own shard; [`snapshot`] merges all shards. Handles are
//! `Copy` and remain valid for the life of the process.
//!
//! ```
//! let solves = dls_obs::counter!("doc.solves");
//! solves.incr();
//! {
//!     let _timer = dls_obs::span!("doc.solve.seconds"); // records on drop
//! }
//! let snap = dls_obs::snapshot();
//! assert_eq!(snap.counter("doc.solves"), Some(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod hist;
mod macros;
mod registry;
mod sink;
mod span;

pub use config::{mode, set_mode, timing_enabled, Mode};
pub use hist::HistogramSummary;
pub use registry::{
    counter, gauge, histogram, reset_all, snapshot, Counter, Gauge, Histogram, Snapshot,
};
pub use sink::{emit, render_jsonl, render_summary};
pub use span::{span, timer, Span, Timer};
