//! Tracing mode selection: `DLS_TRACE` parsing plus a programmatic override
//! used by tests and benches (environment variables are process-global and
//! racy to mutate from a multi-threaded test harness).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{OnceLock, RwLock};

/// What the observability layer does with recorded metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mode {
    /// No sink and no timing; value recording (counters etc.) stays active.
    Disabled,
    /// [`crate::emit`] prints a human-readable table to stderr.
    Summary,
    /// [`crate::emit`] writes JSON lines to the given path (append) or to
    /// stderr when no path is given.
    Jsonl(Option<PathBuf>),
    /// [`crate::emit`] writes the collected trace-tree events to the given
    /// path in Chrome Trace Event Format (open in `chrome://tracing` or
    /// Perfetto).
    Chrome(PathBuf),
    /// [`crate::emit`] writes the collected trace-tree events to the given
    /// path as collapsed flamegraph stacks (`a;b;c <microseconds>`).
    Folded(PathBuf),
}

const CODE_UNSET: u8 = u8::MAX;
const CODE_DISABLED: u8 = 0;
const CODE_SUMMARY: u8 = 1;
const CODE_JSONL: u8 = 2;
const CODE_CHROME: u8 = 3;
const CODE_FOLDED: u8 = 4;

/// Current mode as a small code, so `timing_enabled` is one atomic load.
static MODE_CODE: AtomicU8 = AtomicU8::new(CODE_UNSET);
/// Sink path from the environment (parsed once; shared by the jsonl,
/// chrome and folded modes — only one mode is ever active).
static ENV_SINK_PATH: OnceLock<Option<PathBuf>> = OnceLock::new();
/// Sink path from a programmatic override, if any.
static OVERRIDE_SINK_PATH: RwLock<Option<Option<PathBuf>>> = RwLock::new(None);

fn parse_env() -> (u8, Option<PathBuf>) {
    let Ok(raw) = std::env::var("DLS_TRACE") else {
        return (CODE_DISABLED, None);
    };
    let v = raw.trim();
    if v.is_empty() || v == "0" || v.eq_ignore_ascii_case("off") {
        (CODE_DISABLED, None)
    } else if v.eq_ignore_ascii_case("summary") {
        (CODE_SUMMARY, None)
    } else if let Some(rest) = v.strip_prefix("jsonl") {
        (CODE_JSONL, rest.strip_prefix(':').map(PathBuf::from))
    } else if let Some(path) = v.strip_prefix("chrome:").filter(|p| !p.is_empty()) {
        (CODE_CHROME, Some(PathBuf::from(path)))
    } else if let Some(path) = v.strip_prefix("folded:").filter(|p| !p.is_empty()) {
        (CODE_FOLDED, Some(PathBuf::from(path)))
    } else {
        eprintln!(
            "dls-obs: unrecognized DLS_TRACE={v:?} \
             (expected summary|jsonl[:path]|chrome:path|folded:path); disabled"
        );
        (CODE_DISABLED, None)
    }
}

fn code() -> u8 {
    let c = MODE_CODE.load(Ordering::Relaxed);
    if c != CODE_UNSET {
        return c;
    }
    // First touch: parse the environment. A concurrent first touch parses
    // the same stable environment, so the race is benign.
    let (parsed, path) = parse_env();
    let _ = ENV_SINK_PATH.set(path);
    // Don't clobber an override installed between the load above and here.
    let _ = MODE_CODE.compare_exchange(CODE_UNSET, parsed, Ordering::Relaxed, Ordering::Relaxed);
    MODE_CODE.load(Ordering::Relaxed)
}

fn env_sink_path() -> Option<PathBuf> {
    ENV_SINK_PATH.get_or_init(|| parse_env().1).clone()
}

fn sink_path() -> Option<PathBuf> {
    let over = OVERRIDE_SINK_PATH.read().expect("obs config lock").clone();
    over.unwrap_or_else(env_sink_path)
}

/// The active tracing [`Mode`] (override if set, else `DLS_TRACE`).
pub fn mode() -> Mode {
    match code() {
        CODE_SUMMARY => Mode::Summary,
        CODE_JSONL => Mode::Jsonl(sink_path()),
        CODE_CHROME => sink_path().map(Mode::Chrome).unwrap_or(Mode::Disabled),
        CODE_FOLDED => sink_path().map(Mode::Folded).unwrap_or(Mode::Disabled),
        _ => Mode::Disabled,
    }
}

/// Overrides the mode (pass `None` to fall back to `DLS_TRACE`). Meant for
/// tests and benches; takes effect process-wide.
pub fn set_mode(mode: Option<Mode>) {
    let (code, path_override) = match mode {
        None => {
            let (c, _) = parse_env();
            (c, None)
        }
        Some(Mode::Disabled) => (CODE_DISABLED, None),
        Some(Mode::Summary) => (CODE_SUMMARY, None),
        Some(Mode::Jsonl(path)) => (CODE_JSONL, Some(path)),
        Some(Mode::Chrome(path)) => (CODE_CHROME, Some(Some(path))),
        Some(Mode::Folded(path)) => (CODE_FOLDED, Some(Some(path))),
    };
    *OVERRIDE_SINK_PATH.write().expect("obs config lock") = path_override;
    MODE_CODE.store(code, Ordering::Relaxed);
}

/// Whether span / timer instrumentation should read the clock. One relaxed
/// atomic load — cheap enough for per-pivot call sites.
pub fn timing_enabled() -> bool {
    code() != CODE_DISABLED
}
