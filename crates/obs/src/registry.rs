//! The process-global registry: interned metric names, per-thread shards
//! for counters and histograms, global slots for gauges, and the merged
//! [`Snapshot`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use crate::hist::{self, HistogramSummary, NUM_BUCKETS};

/// Interned names per metric kind (counters, gauges and histograms each
/// have an independent id space).
pub(crate) const MAX_COUNTERS: usize = 256;
pub(crate) const MAX_GAUGES: usize = 64;
pub(crate) const MAX_HISTS: usize = 256;

/// Sentinel id for names registered past capacity: all operations no-op.
const DROPPED: u16 = u16::MAX;

/// Per-thread storage. Only the owning thread writes (relaxed stores /
/// fetch-adds); the snapshot reader observes whatever has landed.
struct Shard {
    counters: Vec<AtomicU64>,
    hists: Vec<OnceLock<HistSlot>>,
}

/// One histogram's per-thread state, allocated on first record.
struct HistSlot {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// `f64::to_bits` of the running sum, updated by CAS.
    sum_bits: AtomicU64,
    /// `f64::to_bits` of the running min (starts at +inf).
    min_bits: AtomicU64,
    /// `f64::to_bits` of the running max (starts at -inf).
    max_bits: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            counters: std::iter::repeat_with(|| AtomicU64::new(0))
                .take(MAX_COUNTERS)
                .collect(),
            hists: std::iter::repeat_with(OnceLock::new)
                .take(MAX_HISTS)
                .collect(),
        }
    }
}

impl HistSlot {
    fn new() -> Self {
        HistSlot {
            buckets: std::iter::repeat_with(|| AtomicU64::new(0))
                .take(NUM_BUCKETS)
                .collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    fn record(&self, v: f64) {
        self.buckets[hist::bucket_index(v)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        fetch_update_f64(&self.sum_bits, |cur| Some(cur + v));
        fetch_update_f64(&self.min_bits, |cur| (v < cur).then_some(v));
        fetch_update_f64(&self.max_bits, |cur| (v > cur).then_some(v));
    }
}

/// CAS loop over an `AtomicU64` holding `f64` bits. `f` returns `None` to
/// leave the value unchanged.
fn fetch_update_f64(bits: &AtomicU64, f: impl Fn(f64) -> Option<f64>) {
    let mut cur = bits.load(Relaxed);
    loop {
        let Some(next) = f(f64::from_bits(cur)) else {
            return;
        };
        match bits.compare_exchange_weak(cur, next.to_bits(), Relaxed, Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

#[derive(Default)]
struct Names {
    ids: HashMap<String, u16>,
    list: Vec<String>,
}

struct Registry {
    counters: RwLock<Names>,
    gauges: RwLock<Names>,
    hists: RwLock<Names>,
    /// Global gauge slots (`f64` bits; NaN bits mean "never set").
    gauge_bits: Vec<AtomicU64>,
    shards: Mutex<Vec<Arc<Shard>>>,
    /// Registrations refused because a name table was full.
    dropped: AtomicU64,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: RwLock::new(Names::default()),
        gauges: RwLock::new(Names::default()),
        hists: RwLock::new(Names::default()),
        gauge_bits: std::iter::repeat_with(|| AtomicU64::new(f64::NAN.to_bits()))
            .take(MAX_GAUGES)
            .collect(),
        shards: Mutex::new(Vec::new()),
        dropped: AtomicU64::new(0),
    })
}

thread_local! {
    static SHARD: OnceLock<Arc<Shard>> = const { OnceLock::new() };
}

/// This thread's shard, registering it globally on first use. The `Arc`
/// outlives the thread, so metrics survive worker-thread exit.
fn with_shard<R>(f: impl FnOnce(&Shard) -> R) -> R {
    SHARD.with(|cell| {
        let shard = cell.get_or_init(|| {
            let shard = Arc::new(Shard::new());
            registry()
                .shards
                .lock()
                .expect("obs shard list")
                .push(shard.clone());
            shard
        });
        f(shard)
    })
}

fn all_shards() -> Vec<Arc<Shard>> {
    registry().shards.lock().expect("obs shard list").clone()
}

fn intern(table: &RwLock<Names>, max: usize, name: &str) -> u16 {
    if let Some(&id) = table.read().expect("obs name table").ids.get(name) {
        return id;
    }
    let mut names = table.write().expect("obs name table");
    if let Some(&id) = names.ids.get(name) {
        return id;
    }
    if names.list.len() >= max {
        registry().dropped.fetch_add(1, Relaxed);
        return DROPPED;
    }
    let id = names.list.len() as u16;
    names.list.push(name.to_string());
    names.ids.insert(name.to_string(), id);
    id
}

fn names_of(table: &RwLock<Names>) -> Vec<String> {
    table.read().expect("obs name table").list.clone()
}

/// A named monotone counter. `Copy`; obtain via [`counter`] or the
/// [`crate::counter!`] macro (which caches the lookup in a static).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Counter(u16);

/// A named last-write-wins gauge holding one `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gauge(u16);

/// A named fixed-bucket histogram (see [`HistogramSummary`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram(u16);

/// Interns (or looks up) a counter by name.
pub fn counter(name: &str) -> Counter {
    Counter(intern(&registry().counters, MAX_COUNTERS, name))
}

/// Interns (or looks up) a gauge by name.
pub fn gauge(name: &str) -> Gauge {
    Gauge(intern(&registry().gauges, MAX_GAUGES, name))
}

/// Interns (or looks up) a histogram by name.
pub fn histogram(name: &str) -> Histogram {
    Histogram(intern(&registry().hists, MAX_HISTS, name))
}

impl Counter {
    /// Adds `n` to the counter (relaxed add into this thread's shard).
    pub fn add(self, n: u64) {
        if self.0 != DROPPED {
            with_shard(|s| s.counters[self.0 as usize].fetch_add(n, Relaxed));
        }
    }

    /// Adds one.
    pub fn incr(self) {
        self.add(1);
    }

    /// Current process-wide value (sum over all shards).
    pub fn value(self) -> u64 {
        if self.0 == DROPPED {
            return 0;
        }
        all_shards()
            .iter()
            .map(|s| s.counters[self.0 as usize].load(Relaxed))
            .sum()
    }

    /// Zeroes this counter in every shard.
    pub fn reset(self) {
        if self.0 != DROPPED {
            for s in all_shards() {
                s.counters[self.0 as usize].store(0, Relaxed);
            }
        }
    }
}

impl Gauge {
    /// Stores `v` (non-finite values are ignored).
    pub fn set(self, v: f64) {
        if self.0 != DROPPED && v.is_finite() {
            registry().gauge_bits[self.0 as usize].store(v.to_bits(), Relaxed);
        }
    }

    /// Last stored value, or `None` if never set.
    pub fn value(self) -> Option<f64> {
        if self.0 == DROPPED {
            return None;
        }
        let v = f64::from_bits(registry().gauge_bits[self.0 as usize].load(Relaxed));
        v.is_finite().then_some(v)
    }
}

impl Histogram {
    /// Records one observation (non-finite values are ignored).
    pub fn record(self, v: f64) {
        if self.0 != DROPPED && v.is_finite() {
            with_shard(|s| {
                s.hists[self.0 as usize]
                    .get_or_init(HistSlot::new)
                    .record(v);
            });
        }
    }
}

/// Point-in-time merged view of every metric, sorted by name.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// `(name, summed value)` for every registered counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge that has been set.
    pub gauges: Vec<(String, f64)>,
    /// `(name, summary)` for every histogram with at least one observation.
    pub histograms: Vec<(String, HistogramSummary)>,
    /// Metric registrations refused because a name table was full.
    pub dropped: u64,
}

impl Snapshot {
    /// Counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Histogram summary by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

/// Merges every thread shard into a [`Snapshot`].
pub fn snapshot() -> Snapshot {
    let reg = registry();
    let shards = all_shards();

    let mut counters: Vec<(String, u64)> = names_of(&reg.counters)
        .into_iter()
        .enumerate()
        .map(|(i, name)| {
            let total = shards.iter().map(|s| s.counters[i].load(Relaxed)).sum();
            (name, total)
        })
        .collect();
    counters.sort_by(|a, b| a.0.cmp(&b.0));

    let mut gauges: Vec<(String, f64)> = names_of(&reg.gauges)
        .into_iter()
        .enumerate()
        .filter_map(|(i, name)| {
            let v = f64::from_bits(reg.gauge_bits[i].load(Relaxed));
            v.is_finite().then_some((name, v))
        })
        .collect();
    gauges.sort_by(|a, b| a.0.cmp(&b.0));

    let mut histograms: Vec<(String, HistogramSummary)> = names_of(&reg.hists)
        .into_iter()
        .enumerate()
        .filter_map(|(i, name)| {
            let mut buckets = vec![0u64; NUM_BUCKETS];
            let mut count = 0u64;
            let mut sum = 0.0f64;
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            for s in &shards {
                let Some(slot) = s.hists[i].get() else {
                    continue;
                };
                for (b, src) in buckets.iter_mut().zip(&slot.buckets) {
                    *b += src.load(Relaxed);
                }
                count += slot.count.load(Relaxed);
                sum += f64::from_bits(slot.sum_bits.load(Relaxed));
                min = min.min(f64::from_bits(slot.min_bits.load(Relaxed)));
                max = max.max(f64::from_bits(slot.max_bits.load(Relaxed)));
            }
            (count > 0).then(|| (name, hist::summarize(&buckets, count, sum, min, max)))
        })
        .collect();
    histograms.sort_by(|a, b| a.0.cmp(&b.0));

    Snapshot {
        counters,
        gauges,
        histograms,
        dropped: reg.dropped.load(Relaxed),
    }
}

/// Zeroes every counter, gauge and histogram in every shard and discards
/// buffered trace events (names stay interned, so cached handles remain
/// valid). Meant for tests and for delimiting measurement windows in
/// harnesses.
pub fn reset_all() {
    crate::trace::reset_events();
    let reg = registry();
    for s in all_shards() {
        for c in &s.counters {
            c.store(0, Relaxed);
        }
        for slot in s.hists.iter().filter_map(|h| h.get()) {
            for b in &slot.buckets {
                b.store(0, Relaxed);
            }
            slot.count.store(0, Relaxed);
            slot.sum_bits.store(0f64.to_bits(), Relaxed);
            slot.min_bits.store(f64::INFINITY.to_bits(), Relaxed);
            slot.max_bits.store(f64::NEG_INFINITY.to_bits(), Relaxed);
        }
    }
    for g in &reg.gauge_bits {
        g.store(f64::NAN.to_bits(), Relaxed);
    }
    reg.dropped.store(0, Relaxed);
}
