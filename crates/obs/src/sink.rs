//! Snapshot sinks: the human-readable summary table and the JSON-lines
//! writer. Both render a merged [`Snapshot`]; [`emit`] picks one (or
//! neither) from the active [`Mode`].

use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::config::Mode;
use crate::registry::Snapshot;

/// Monotone sequence number shared by all emits in this process, so JSONL
/// consumers can group lines belonging to one snapshot.
static EMIT_SEQ: AtomicU64 = AtomicU64::new(0);

/// Takes a snapshot and writes it to the sink selected by
/// [`crate::mode`]; a no-op when tracing is disabled. `label` names the
/// emitting phase (e.g. `"repro_all"` or `"smoke:solver"`).
pub fn emit(label: &str) {
    match crate::mode() {
        Mode::Disabled => {}
        Mode::Summary => {
            let text = render_summary(&crate::snapshot(), label);
            eprint!("{text}");
        }
        Mode::Jsonl(path) => {
            let seq = EMIT_SEQ.fetch_add(1, Ordering::Relaxed);
            let text = render_jsonl(&crate::snapshot(), label, seq);
            match path {
                Some(path) => append_file(&path, &text),
                None => eprint!("{text}"),
            }
        }
        Mode::Chrome(path) => {
            // Whole-file format: rewrite with every event collected so
            // far, so the file is a valid JSON document after each emit.
            let text = crate::export::render_chrome(&crate::trace_events());
            write_file(&path, &text);
        }
        Mode::Folded(path) => {
            let text = crate::export::render_folded(&crate::trace_events());
            write_file(&path, &text);
        }
    }
}

fn append_file(path: &std::path::Path, text: &str) {
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| f.write_all(text.as_bytes()));
    if let Err(err) = written {
        eprintln!("dls-obs: cannot write {}: {err}", path.display());
    }
}

fn write_file(path: &std::path::Path, text: &str) {
    if let Err(err) = std::fs::write(path, text) {
        eprintln!("dls-obs: cannot write {}: {err}", path.display());
    }
}

/// Renders the aligned summary table (one block per metric kind).
pub fn render_summary(snap: &Snapshot, label: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("== dls-obs summary [{label}] ==\n"));
    if !snap.counters.is_empty() {
        out.push_str("counters\n");
        for (name, v) in &snap.counters {
            out.push_str(&format!("  {name:<44} {v:>12}\n"));
        }
    }
    if !snap.gauges.is_empty() {
        out.push_str("gauges\n");
        for (name, v) in &snap.gauges {
            out.push_str(&format!("  {name:<44} {:>12}\n", fmt_num(*v)));
        }
    }
    if !snap.histograms.is_empty() {
        out.push_str(&format!(
            "histograms{:<36}{:>9}{:>11}{:>11}{:>11}{:>11}{:>11}\n",
            "", "count", "mean", "p50", "p90", "p99", "max"
        ));
        for (name, h) in &snap.histograms {
            out.push_str(&format!(
                "  {name:<44}{:>9}{:>11}{:>11}{:>11}{:>11}{:>11}\n",
                h.count,
                fmt_num(h.mean()),
                fmt_num(h.p50),
                fmt_num(h.p90),
                fmt_num(h.p99),
                fmt_num(h.max),
            ));
        }
    }
    // Always-visible overflow footer: a nonzero count means metric names
    // were silently refused (name-table capacity) and the tables above are
    // incomplete — `tests/obs_registry.rs` fails on it.
    if snap.dropped > 0 {
        out.push_str(&format!(
            "dropped registrations: {} (name-table capacity reached; data above is incomplete)\n",
            snap.dropped
        ));
    } else {
        out.push_str("dropped registrations: 0\n");
    }
    out
}

/// Renders the snapshot as JSON lines (see the README "Observability"
/// section for the schema). `seq` groups the lines of one emit.
pub fn render_jsonl(snap: &Snapshot, label: &str, seq: u64) -> String {
    let ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0);
    let label = json_str(label);
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"type\":\"snapshot\",\"seq\":{seq},\"label\":{label},\"unix_time\":{},\"dropped\":{}}}\n",
        json_num(ts),
        snap.dropped
    ));
    for (name, v) in &snap.counters {
        out.push_str(&format!(
            "{{\"type\":\"counter\",\"seq\":{seq},\"label\":{label},\"name\":{},\"value\":{v}}}\n",
            json_str(name)
        ));
    }
    for (name, v) in &snap.gauges {
        out.push_str(&format!(
            "{{\"type\":\"gauge\",\"seq\":{seq},\"label\":{label},\"name\":{},\"value\":{}}}\n",
            json_str(name),
            json_num(*v)
        ));
    }
    for (name, h) in &snap.histograms {
        out.push_str(&format!(
            "{{\"type\":\"histogram\",\"seq\":{seq},\"label\":{label},\"name\":{},\"count\":{},\
             \"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}\n",
            json_str(name),
            h.count,
            json_num(h.sum),
            json_num(h.min),
            json_num(h.max),
            json_num(h.p50),
            json_num(h.p90),
            json_num(h.p99),
        ));
    }
    out
}

/// Compact human formatting: plain decimals in a readable range,
/// scientific elsewhere.
fn fmt_num(v: f64) -> String {
    let a = v.abs();
    if a < 1e-300 {
        "0".to_string()
    } else if (1e-3..1e6).contains(&a) {
        let s = format!("{v:.4}");
        // Trim trailing zeros but keep at least one decimal digit.
        let trimmed = s.trim_end_matches('0');
        let trimmed = if trimmed.ends_with('.') {
            &s[..trimmed.len() + 1]
        } else {
            trimmed
        };
        trimmed.to_string()
    } else {
        format!("{v:.3e}")
    }
}

/// JSON string literal (quotes + minimal escaping; metric names are ASCII
/// identifiers but labels are caller-supplied).
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number (finite `f64`; Rust's `Display` never emits `inf`/`NaN`
/// here because the registry refuses non-finite observations).
pub(crate) fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}
