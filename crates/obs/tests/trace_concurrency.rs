//! Concurrency contract of the trace exporters: threads recording spans
//! *while* `emit()` renders must never produce torn or interleaved output.
//! Every chrome export written mid-run must be a complete, parseable JSON
//! document (the reader skips claimed-but-unwritten buffer slots), and
//! every JSONL line must parse on its own.
//!
//! Runs as its own test binary so flipping the process-global mode cannot
//! race the `registry.rs` suite.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Minimal recursive-descent JSON parser — validation only (no DOM): it
/// either consumes a well-formed value or reports the byte offset of the
/// first error. Enough to prove the exporters never tear.
mod json {
    pub fn validate(doc: &str) -> Result<(), usize> {
        let b = doc.as_bytes();
        let mut i = skip_ws(b, 0);
        i = value(b, i)?;
        i = skip_ws(b, i);
        if i == b.len() {
            Ok(())
        } else {
            Err(i)
        }
    }

    fn skip_ws(b: &[u8], mut i: usize) -> usize {
        while i < b.len() && b[i].is_ascii_whitespace() {
            i += 1;
        }
        i
    }

    fn value(b: &[u8], i: usize) -> Result<usize, usize> {
        match b.get(i) {
            Some(b'{') => object(b, i),
            Some(b'[') => array(b, i),
            Some(b'"') => string(b, i),
            Some(b't') => literal(b, i, b"true"),
            Some(b'f') => literal(b, i, b"false"),
            Some(b'n') => literal(b, i, b"null"),
            Some(b'-' | b'0'..=b'9') => number(b, i),
            _ => Err(i),
        }
    }

    fn literal(b: &[u8], i: usize, lit: &[u8]) -> Result<usize, usize> {
        if b.len() >= i + lit.len() && &b[i..i + lit.len()] == lit {
            Ok(i + lit.len())
        } else {
            Err(i)
        }
    }

    fn number(b: &[u8], mut i: usize) -> Result<usize, usize> {
        let start = i;
        while i < b.len() && matches!(b[i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            i += 1;
        }
        if i > start {
            Ok(i)
        } else {
            Err(start)
        }
    }

    fn string(b: &[u8], mut i: usize) -> Result<usize, usize> {
        i += 1; // opening quote
        while i < b.len() {
            match b[i] {
                b'"' => return Ok(i + 1),
                b'\\' => i += 2,
                _ => i += 1,
            }
        }
        Err(i)
    }

    fn object(b: &[u8], mut i: usize) -> Result<usize, usize> {
        i = skip_ws(b, i + 1);
        if b.get(i) == Some(&b'}') {
            return Ok(i + 1);
        }
        loop {
            i = string(b, skip_ws(b, i))?;
            i = skip_ws(b, i);
            if b.get(i) != Some(&b':') {
                return Err(i);
            }
            i = value(b, skip_ws(b, i + 1))?;
            i = skip_ws(b, i);
            match b.get(i) {
                Some(b',') => i = skip_ws(b, i + 1),
                Some(b'}') => return Ok(i + 1),
                _ => return Err(i),
            }
        }
    }

    fn array(b: &[u8], mut i: usize) -> Result<usize, usize> {
        i = skip_ws(b, i + 1);
        if b.get(i) == Some(&b']') {
            return Ok(i + 1);
        }
        loop {
            i = value(b, skip_ws(b, i))?;
            i = skip_ws(b, i);
            match b.get(i) {
                Some(b',') => i = skip_ws(b, i + 1),
                Some(b']') => return Ok(i + 1),
                _ => return Err(i),
            }
        }
    }

    #[test]
    fn parser_accepts_and_rejects() {
        assert!(validate(r#"{"a":[1,2.5e-3,"x\"y"],"b":{"c":null,"d":true}}"#).is_ok());
        assert!(validate("[]").is_ok());
        assert!(validate(r#"{"a":1"#).is_err());
        assert!(validate(r#"{"a":1} trailing"#).is_err());
        assert!(validate(r#"{"truncated":"st"#).is_err());
    }
}

fn assert_valid_json(body: &str, what: &str) {
    if let Err(at) = json::validate(body) {
        let lo = at.saturating_sub(40);
        let hi = (at + 40).min(body.len());
        panic!("{what}: invalid JSON at byte {at}: ...{}...", &body[lo..hi]);
    }
}

/// Two threads emit nested spans and instants in a tight loop while the
/// main thread repeatedly renders the chrome export; every snapshot of
/// the file — including mid-recording ones — must parse whole.
#[test]
fn chrome_export_parses_while_spans_are_recorded() {
    let path = std::env::temp_dir().join(format!("dls-trace-conc-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    dls_obs::set_mode(Some(dls_obs::Mode::Chrome(path.clone())));
    dls_obs::reset_all();

    let done = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for t in 0u64..2 {
            let done = &done;
            scope.spawn(move || {
                for k in 0..1500u64 {
                    let outer =
                        dls_obs::trace_span!("test.conc.outer.seconds", "thread" => t, "k" => k);
                    {
                        let _inner = dls_obs::trace_span!("test.conc.inner.seconds");
                        dls_obs::trace_event!("test.conc.instant", "k" => k);
                    }
                    drop(outer);
                }
                done.fetch_add(1, Ordering::Release);
            });
        }
        // Render concurrently with the recording threads; each write is a
        // whole-file overwrite of a fully rendered document.
        while done.load(Ordering::Acquire) < 2 {
            dls_obs::emit("concurrency-mid");
            let body = std::fs::read_to_string(&path).expect("export written");
            assert_valid_json(&body, "mid-run chrome export");
        }
    });

    dls_obs::emit("concurrency-final");
    let body = std::fs::read_to_string(&path).expect("final export written");
    assert_valid_json(&body, "final chrome export");
    // The final document carries both threads' spans and the instants.
    assert!(body.contains("test.conc.outer.seconds"));
    assert!(body.contains("test.conc.inner.seconds"));
    assert!(body.contains("test.conc.instant"));

    let events = dls_obs::trace_events();
    let outer = events
        .iter()
        .filter(|e| e.name == "test.conc.outer.seconds")
        .count();
    let cap_note = events.len() >= dls_obs::MAX_EVENTS_PER_THREAD;
    assert!(
        outer >= 1000 || cap_note,
        "both threads' spans recorded (got {outer})"
    );

    dls_obs::set_mode(Some(dls_obs::Mode::Disabled));
    let _ = std::fs::remove_file(&path);
}

/// Same contract for the line-oriented sink: every line of the JSONL file
/// must parse as its own JSON object even when snapshots were appended
/// while worker threads were recording.
#[test]
fn jsonl_lines_parse_while_spans_are_recorded() {
    let path = std::env::temp_dir().join(format!("dls-trace-conc-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    dls_obs::set_mode(Some(dls_obs::Mode::Jsonl(Some(path.clone()))));
    dls_obs::reset_all();

    let done = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for t in 0u64..2 {
            let done = &done;
            scope.spawn(move || {
                for _ in 0..1500u64 {
                    let _span = dls_obs::trace_span!("test.conc.jsonl.seconds", "thread" => t);
                    dls_obs::counter!("test.conc.jsonl.count").incr();
                }
                done.fetch_add(1, Ordering::Release);
            });
        }
        while done.load(Ordering::Acquire) < 2 {
            dls_obs::emit("jsonl-mid");
        }
    });
    dls_obs::emit("jsonl-final");

    let body = std::fs::read_to_string(&path).expect("jsonl written");
    let mut lines = 0;
    for (n, line) in body.lines().enumerate() {
        assert_valid_json(line, &format!("jsonl line {}", n + 1));
        lines += 1;
    }
    assert!(lines > 0, "emit appended snapshot lines");
    assert!(body.contains("test.conc.jsonl.count"));

    dls_obs::set_mode(Some(dls_obs::Mode::Disabled));
    let _ = std::fs::remove_file(&path);
}
