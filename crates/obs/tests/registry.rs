//! Deterministic registry tests: multi-thread merge, percentile edges,
//! disabled-mode no-op, sink rendering.
//!
//! The registry and the tracing mode are process-global, so every test that
//! flips the mode runs under one lock and restores `Mode::Disabled` before
//! releasing it; metric names are unique per test so value assertions never
//! interfere.

use std::sync::Mutex;

use dls_obs::{set_mode, Mode};

/// Serializes tests that touch the global mode.
static MODE_LOCK: Mutex<()> = Mutex::new(());

fn with_mode<R>(mode: Mode, f: impl FnOnce() -> R) -> R {
    let _guard = MODE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    set_mode(Some(mode));
    let out = f();
    set_mode(Some(Mode::Disabled));
    out
}

#[test]
fn counters_merge_across_threads() {
    let c = dls_obs::counter!("test.merge.counter");
    std::thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(|| {
                for _ in 0..1000 {
                    c.incr();
                }
            });
        }
    });
    assert_eq!(c.value(), 8000);
    assert_eq!(
        dls_obs::snapshot().counter("test.merge.counter"),
        Some(8000)
    );
}

#[test]
fn histograms_merge_across_threads() {
    let h = dls_obs::histogram!("test.merge.hist");
    std::thread::scope(|scope| {
        for t in 0..4 {
            scope.spawn(move || {
                for i in 0..250 {
                    h.record((t * 250 + i) as f64 + 1.0);
                }
            });
        }
    });
    let snap = dls_obs::snapshot();
    let s = snap.histogram("test.merge.hist").expect("recorded");
    assert_eq!(s.count, 1000);
    assert!((s.sum - 500_500.0).abs() < 1e-6, "sum was {}", s.sum);
    assert!((s.min - 1.0).abs() < 1e-12);
    assert!((s.max - 1000.0).abs() < 1e-12);
    // Log-bucket estimates are within one bucket width (~19 %).
    assert!(
        (s.p50 / 500.0) > 0.8 && (s.p50 / 500.0) < 1.25,
        "p50 = {}",
        s.p50
    );
    assert!(
        (s.p99 / 990.0) > 0.8 && (s.p99 / 990.0) <= 1.02,
        "p99 = {}",
        s.p99
    );
}

#[test]
fn single_valued_histogram_reports_exact_percentiles() {
    let h = dls_obs::histogram!("test.hist.single");
    for _ in 0..32 {
        h.record(0.125);
    }
    let snap = dls_obs::snapshot();
    let s = snap.histogram("test.hist.single").expect("recorded");
    // min == max == v, and percentile estimates clamp to [min, max].
    assert!((s.p50 - 0.125).abs() < 1e-15);
    assert!((s.p90 - 0.125).abs() < 1e-15);
    assert!((s.p99 - 0.125).abs() < 1e-15);
    assert!((s.mean() - 0.125).abs() < 1e-15);
}

#[test]
fn two_point_histogram_percentile_edges() {
    let h = dls_obs::histogram!("test.hist.twopoint");
    // 90 fast observations and 10 slow outliers: p50/p90 sit on the fast
    // mode, p99 reaches the outliers' bucket.
    for _ in 0..90 {
        h.record(1.0e-3);
    }
    for _ in 0..10 {
        h.record(10.0);
    }
    let snap = dls_obs::snapshot();
    let s = snap.histogram("test.hist.twopoint").expect("recorded");
    assert_eq!(s.count, 100);
    assert!(s.p50 < 1.3e-3, "p50 = {}", s.p50);
    assert!(s.p90 < 1.3e-3, "p90 = {}", s.p90);
    assert!(s.p99 > 5.0, "p99 = {}", s.p99);
    assert!((s.max - 10.0).abs() < 1e-12);
}

#[test]
fn empty_and_nonfinite_observations_are_ignored() {
    let h = dls_obs::histogram!("test.hist.empty");
    h.record(f64::NAN);
    h.record(f64::INFINITY);
    assert!(dls_obs::snapshot().histogram("test.hist.empty").is_none());
}

#[test]
fn gauges_are_last_write_wins() {
    let g = dls_obs::gauge!("test.gauge.basic");
    assert_eq!(g.value(), None);
    g.set(2.5);
    g.set(7.25);
    assert!((g.value().expect("set") - 7.25).abs() < 1e-15);
    let snap = dls_obs::snapshot();
    assert!((snap.gauge("test.gauge.basic").expect("in snapshot") - 7.25).abs() < 1e-15);
}

#[test]
fn disabled_mode_spans_are_noops() {
    with_mode(Mode::Disabled, || {
        assert!(!dls_obs::timing_enabled());
        {
            let _span = dls_obs::span!("test.span.disabled");
        }
        assert!(dls_obs::timer().stop().is_none());
        assert!(dls_obs::snapshot()
            .histogram("test.span.disabled")
            .is_none());
    });
}

#[test]
fn enabled_spans_feed_their_histogram() {
    with_mode(Mode::Summary, || {
        assert!(dls_obs::timing_enabled());
        for _ in 0..3 {
            let _span = dls_obs::span!("test.span.enabled");
        }
        dls_obs::span("test.span.enabled").finish();
        let snap = dls_obs::snapshot();
        let s = snap.histogram("test.span.enabled").expect("spans recorded");
        assert_eq!(s.count, 4);
        assert!(s.min >= 0.0 && s.max < 10.0, "implausible span time");
    });
}

#[test]
fn counters_record_even_when_disabled() {
    // Value recording is deliberately always-on (the warm-start shim and
    // deterministic tests rely on it); only timing and sinks are gated.
    with_mode(Mode::Disabled, || {
        let c = dls_obs::counter!("test.counter.disabled");
        c.add(3);
        assert_eq!(c.value(), 3);
    });
}

#[test]
fn reset_clears_values_but_keeps_handles() {
    let c = dls_obs::counter!("test.reset.counter");
    c.add(41);
    c.reset();
    assert_eq!(c.value(), 0);
    c.incr();
    assert_eq!(c.value(), 1);
}

#[test]
fn summary_rendering_includes_every_kind() {
    dls_obs::counter!("test.render.counter").add(5);
    dls_obs::gauge!("test.render.gauge").set(1.5);
    dls_obs::histogram!("test.render.hist").record(0.25);
    let text = dls_obs::render_summary(&dls_obs::snapshot(), "unit");
    assert!(text.contains("== dls-obs summary [unit] =="));
    assert!(text.contains("test.render.counter"));
    assert!(text.contains("test.render.gauge"));
    assert!(text.contains("test.render.hist"));
}

#[test]
fn jsonl_rendering_is_one_valid_object_per_line() {
    dls_obs::counter!("test.jsonl.counter").add(2);
    dls_obs::histogram!("test.jsonl.hist").record(3.0);
    let text = dls_obs::render_jsonl(&dls_obs::snapshot(), "unit \"quoted\"", 7);
    assert!(text.lines().count() >= 3);
    for line in text.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "not an object: {line}"
        );
        assert!(line.contains("\"seq\":7"));
        // Quotes in the label must be escaped.
        assert!(!line.contains(": \"unit \"quoted\"\""));
    }
    assert!(text.contains("\"name\":\"test.jsonl.counter\",\"value\":2"));
    assert!(text.contains("\"type\":\"histogram\""));
}

#[test]
fn emit_respects_jsonl_path() {
    let path = std::env::temp_dir().join(format!("dls-obs-test-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    with_mode(Mode::Jsonl(Some(path.clone())), || {
        dls_obs::counter!("test.emit.counter").incr();
        dls_obs::emit("emit-test");
    });
    let body = std::fs::read_to_string(&path).expect("emit wrote the file");
    assert!(body.contains("\"label\":\"emit-test\""));
    assert!(body.contains("test.emit.counter"));
    let _ = std::fs::remove_file(&path);
}
