//! Property tests of the installment planners on random star platforms:
//! the geometric planner's budget monotonicity, the unit-total invariant
//! of every `RoundPlan`, and feasibility of every lowered schedule.

use dls_platform::Platform;
use dls_rounds::{plan_geometric, plan_lp, plan_uniform, RoundPlan};
use proptest::prelude::*;

fn cost() -> impl Strategy<Value = f64> {
    (1u32..=40).prop_map(|v| v as f64 / 4.0)
}

/// Random `z`-tied stars of 2..=6 workers (z in {0.25, 0.5, 0.8}).
fn platform() -> impl Strategy<Value = Platform> {
    (2usize..=6).prop_flat_map(|n| {
        (
            prop::collection::vec((cost(), cost()), n..=n),
            prop_oneof![Just(0.25), Just(0.5), Just(0.8)],
        )
            .prop_map(|(cw, z)| Platform::star_with_z(&cw, z).expect("valid costs"))
    })
}

fn assert_unit_total(plan: &RoundPlan, label: &str) {
    let total: f64 = plan.fractions().iter().flatten().sum();
    assert!(
        (total - 1.0).abs() < 1e-9,
        "{label}: fractions sum to {total}, expected 1"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn geometric_makespan_is_monotone_non_increasing_in_rounds(p in platform()) {
        let mut prev = f64::INFINITY;
        for r in 1..=6 {
            let g = plan_geometric(&p, r).expect("geometric planner");
            let m = g.plan.predicted_makespan();
            prop_assert!(
                m <= prev + 1e-12,
                "makespan increased at R = {}: {} > {}", r, m, prev
            );
            prev = m;
        }
    }

    #[test]
    fn every_plan_sums_to_one_and_verifies((p, r) in (platform(), 1usize..=5)) {
        let uniform = plan_uniform(&p, r).expect("uniform planner").plan;
        assert_unit_total(&uniform, "uniform");
        prop_assert!(uniform.verify(&p, 1e-7).unwrap().is_empty());

        let geometric = plan_geometric(&p, r).expect("geometric planner").plan;
        assert_unit_total(&geometric, "geometric");
        prop_assert!(geometric.verify(&p, 1e-7).unwrap().is_empty());

        let lp = plan_lp(&p, r).expect("lp planner").plan;
        assert_unit_total(&lp, "lp");
        prop_assert!(lp.verify(&p, 1e-7).unwrap().is_empty());

        // The LP planner is the scenario optimum for its round pattern:
        // it cannot lose to the heuristic chunkings at the same budget.
        prop_assert!(
            lp.predicted_makespan() <= uniform.predicted_makespan() + 1e-7,
            "LP {} lost to uniform {}", lp.predicted_makespan(), uniform.predicted_makespan()
        );
    }

    #[test]
    fn uniform_spans_exactly_r_rounds((p, r) in (platform(), 1usize..=5)) {
        let plan = plan_uniform(&p, r).expect("uniform planner").plan;
        prop_assert_eq!(plan.rounds(), r);
        // Every round carries the same per-worker fraction.
        for id in p.ids() {
            let first = plan.fraction(0, id);
            for round in 1..r {
                prop_assert!((plan.fraction(round, id) - first).abs() < 1e-12);
            }
        }
    }
}
