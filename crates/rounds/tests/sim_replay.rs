//! Cross-check with the discrete-event simulator: a lowered [`RoundPlan`]
//! replayed by `dls_sim::simulate` must reproduce the planner's predicted
//! makespan.
//!
//! Under the paper's master policy (`SendsThenReceives` — exactly the
//! canonical shape the plans are timed with) the match is exact. The
//! `Interleaved` ablation may slot a ready result chunk ahead of pending
//! sends, which deviates from the canonical shape: early installments
//! finish computing quickly, so their returns preempt later sends and
//! postpone them. The deviation is bounded on the fixtures (pinned below);
//! what must hold universally is that interleaving never *invalidates* the
//! replay — the simulated one-port constraints stay satisfied.

// Bit-for-bit replay determinism is the property under test.
#![allow(clippy::float_cmp)]

use dls_core::prelude::optimal_fifo;
use dls_platform::Platform;
use dls_rounds::{plan_geometric, plan_lp, plan_uniform, RoundPlan};
use dls_sim::{simulate, MasterPolicy, SimConfig};

fn fixtures() -> Vec<Platform> {
    vec![
        // Compute-bound star (multi-round pays off).
        Platform::star_with_z(&[(1.0, 5.0), (2.0, 4.0), (1.5, 6.0), (0.8, 7.0)], 0.5).unwrap(),
        // Bus with heterogeneous compute.
        Platform::bus(1.0, 0.5, &[2.0, 4.0, 3.0, 6.0, 5.0]).unwrap(),
        // Communication-bound star (multi-round should NOT pay off much).
        Platform::star_with_z(&[(2.0, 1.0), (3.0, 0.5), (2.5, 0.8)], 0.5).unwrap(),
    ]
}

fn plans(p: &Platform, r: usize) -> Vec<(&'static str, RoundPlan)> {
    vec![
        ("uniform", plan_uniform(p, r).unwrap().plan),
        ("geometric", plan_geometric(p, r).unwrap().plan),
        ("lp", plan_lp(p, r).unwrap().plan),
    ]
}

#[test]
fn ideal_replay_matches_predicted_makespan_exactly() {
    for p in fixtures() {
        for r in [1, 2, 4] {
            for (name, plan) in plans(&p, r) {
                let (vplat, schedule) = plan.lower(&p).unwrap();
                let report = simulate(&vplat, &schedule, &SimConfig::ideal());
                assert!(
                    (report.makespan - plan.predicted_makespan()).abs() < 1e-9,
                    "{name} @ R = {r}: simulated {} vs predicted {}",
                    report.makespan,
                    plan.predicted_makespan()
                );
            }
        }
    }
}

#[test]
fn single_round_replay_agrees_exactly_with_optimal_fifo() {
    for p in fixtures() {
        let one_round = 1.0 / optimal_fifo(&p).unwrap().throughput;
        for (name, plan) in plans(&p, 1) {
            assert!(
                (plan.predicted_makespan() - one_round).abs() < 1e-9,
                "{name} @ R = 1 predicted {} vs optimal_fifo {one_round}",
                plan.predicted_makespan()
            );
            let (vplat, schedule) = plan.lower(&p).unwrap();
            let report = simulate(&vplat, &schedule, &SimConfig::ideal());
            assert!(
                (report.makespan - one_round).abs() < 1e-9,
                "{name} @ R = 1 simulated {} vs optimal_fifo {one_round}",
                report.makespan
            );
        }
    }
}

#[test]
fn interleaved_replay_stays_within_tolerance_of_the_prediction() {
    // The greedy master deviates from the canonical shape by returning
    // ready chunks early; on these fixtures the makespan stays within 25%
    // of the plan (pinned — a regression here means the lowering changed).
    for p in fixtures() {
        for r in [1, 2, 4] {
            for (name, plan) in plans(&p, r) {
                let (vplat, schedule) = plan.lower(&p).unwrap();
                let cfg = SimConfig {
                    policy: MasterPolicy::Interleaved,
                    ..SimConfig::ideal()
                };
                let report = simulate(&vplat, &schedule, &cfg);
                let predicted = plan.predicted_makespan();
                let deviation = (report.makespan - predicted).abs() / predicted;
                assert!(
                    deviation <= 0.25,
                    "{name} @ R = {r}: interleaved makespan {} deviates {:.1}% from predicted {}",
                    report.makespan,
                    100.0 * deviation,
                    predicted
                );
            }
        }
    }
}

#[test]
fn replay_is_deterministic_across_policies_and_seeds() {
    let p = &fixtures()[0];
    let plan = plan_lp(p, 4).unwrap().plan;
    let (vplat, schedule) = plan.lower(p).unwrap();
    for policy in [MasterPolicy::SendsThenReceives, MasterPolicy::Interleaved] {
        let cfg = SimConfig {
            policy,
            ..SimConfig::ideal()
        };
        let a = simulate(&vplat, &schedule, &cfg).makespan;
        let b = simulate(&vplat, &schedule, &cfg).makespan;
        assert_eq!(a, b, "ideal replay must be bit-for-bit reproducible");
    }
}
