//! The [`RoundPlan`] intermediate representation and its lowering.
//!
//! A multi-round plan splits a unit total load into `R` installments: round
//! `r` hands worker `i` the chunk fraction `f[r][i]`, the master sends the
//! chunks back-to-back round-major (`round 1: σ order, round 2: σ order,
//! …`) and collects the result chunks FIFO in the same round-major order —
//! the canonical sends-then-returns one-port shape, generalized to `p·R`
//! messages.
//!
//! Rather than grow a second timeline/simulator, a plan *lowers* onto an
//! **expanded virtual platform**: `R` round-major copies of the physical
//! worker set, virtual worker `r·p + j` standing for round `r`'s
//! installment on physical worker `j` (same `c`, `w`, `d`). The lowered
//! pair (expanded [`Platform`], one-round [`Schedule`]) replays unchanged
//! through [`dls_core::timeline`] and `dls_sim::simulate` — the plan's
//! [`predicted_makespan`](RoundPlan::predicted_makespan) is *defined* as
//! the earliest-feasible timeline makespan of the lowered schedule, so
//! planner prediction and simulator replay agree by construction.
//!
//! The expansion treats each installment as its own virtual task (the
//! standard multi-installment relaxation): a worker may in principle be
//! assigned overlapping computations of consecutive chunks.
//! [`RoundPlan::compute_overlap`] quantifies that optimism per plan — it is
//! `0` exactly when the plan is pipelined-feasible on the physical machine.

use dls_core::timeline::{Interval, Timeline};
use dls_core::{CoreError, PortModel, Schedule, LOAD_EPS};
use dls_platform::{Platform, WorkerId};

/// Hard cap on the expanded platform size (`p · R` virtual workers): keeps
/// the multi-round scenario LPs tractable and bounds timeline construction.
pub const MAX_VIRTUAL_WORKERS: usize = 4096;

/// Maps an expanded-platform worker id back to `(round, physical worker)`
/// for a physical platform of `p` workers.
pub fn virtual_to_physical(virtual_id: WorkerId, p: usize) -> (usize, WorkerId) {
    (virtual_id.index() / p, WorkerId(virtual_id.index() % p))
}

/// The expanded-platform id of physical worker `worker` in round `round`.
pub fn physical_to_virtual(round: usize, worker: WorkerId, p: usize) -> WorkerId {
    WorkerId(round * p + worker.index())
}

/// Builds the round-major expanded platform: `rounds` copies of
/// `platform`'s worker set (virtual id `r·p + j` has worker `j`'s costs).
pub fn expanded_platform(platform: &Platform, rounds: usize) -> Result<Platform, CoreError> {
    check_rounds(platform, rounds)?;
    let mut workers = Vec::with_capacity(platform.num_workers() * rounds);
    for _ in 0..rounds {
        workers.extend(platform.workers().iter().copied());
    }
    Ok(Platform::new(workers)?)
}

/// Validates a round count against the [`MAX_VIRTUAL_WORKERS`] cap.
pub fn check_rounds(platform: &Platform, rounds: usize) -> Result<(), CoreError> {
    if rounds == 0 {
        return Err(CoreError::MalformedOrder(
            "a multi-round plan needs at least one round".into(),
        ));
    }
    let limit = MAX_VIRTUAL_WORKERS / platform.num_workers();
    if rounds > limit {
        return Err(CoreError::TooManyRounds { rounds, limit });
    }
    Ok(())
}

/// Timing of one installment chunk, read off the lowered timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkTiming {
    /// Round index (`0..R`).
    pub round: usize,
    /// Physical worker this chunk runs on.
    pub worker: WorkerId,
    /// Fraction of the unit total load in this chunk.
    pub fraction: f64,
    /// Reception of the chunk from the master.
    pub send: Interval,
    /// Computation of the chunk.
    pub compute: Interval,
    /// Transfer of the chunk's results back to the master.
    pub ret: Interval,
}

/// An R-installment FIFO plan: per-round, per-worker chunk fractions of a
/// unit total load, plus the send order `σ` shared by every round.
///
/// Invariants enforced by [`RoundPlan::new`]: every round has one fraction
/// per physical worker, fractions are non-negative and finite, their grand
/// total is 1 (within `1e-6`, then renormalized exactly), and `σ` is a
/// permutation of the full worker set. The predicted makespan is computed
/// once, from the lowered timeline, at construction.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundPlan {
    order: Vec<WorkerId>,
    fractions: Vec<Vec<f64>>,
    predicted_makespan: f64,
}

impl RoundPlan {
    /// Builds and validates a plan for `platform`; `fractions[r][j]` is
    /// round `r`'s chunk for physical worker `j` (platform indexing), and
    /// `order` is the within-round send order over *all* workers (workers a
    /// plan leaves idle simply carry zero fractions).
    pub fn new(
        platform: &Platform,
        order: Vec<WorkerId>,
        fractions: Vec<Vec<f64>>,
    ) -> Result<Self, CoreError> {
        let p = platform.num_workers();
        check_rounds(platform, fractions.len())?;
        if order.len() != p {
            return Err(CoreError::MalformedOrder(format!(
                "round order has {} entries for {p} workers",
                order.len()
            )));
        }
        let mut total = 0.0;
        for (r, row) in fractions.iter().enumerate() {
            if row.len() != p {
                return Err(CoreError::MalformedOrder(format!(
                    "round {r} has {} fractions for {p} workers",
                    row.len()
                )));
            }
            for (j, &f) in row.iter().enumerate() {
                if !f.is_finite() || f < -LOAD_EPS {
                    return Err(CoreError::MalformedOrder(format!(
                        "round {r} has invalid fraction {f} for P{}",
                        j + 1
                    )));
                }
                total += f.max(0.0);
            }
        }
        if (total - 1.0).abs() > 1e-6 {
            return Err(CoreError::MalformedOrder(format!(
                "chunk fractions sum to {total}, expected 1"
            )));
        }
        // Renormalize exactly so downstream totals are 1 to fp accuracy.
        let fractions: Vec<Vec<f64>> = fractions
            .into_iter()
            .map(|row| row.into_iter().map(|f| f.max(0.0) / total).collect())
            .collect();
        let mut plan = RoundPlan {
            order,
            fractions,
            predicted_makespan: 0.0,
        };
        // Lowering re-validates `order` through `Schedule::new` and yields
        // the predicted makespan.
        let (vplat, schedule) = plan.lower(platform)?;
        plan.predicted_makespan = Timeline::build(&vplat, &schedule, PortModel::OnePort).makespan();
        Ok(plan)
    }

    /// Number of installment rounds `R`.
    pub fn rounds(&self) -> usize {
        self.fractions.len()
    }

    /// Number of physical workers the plan was built for.
    pub fn num_workers(&self) -> usize {
        self.order.len()
    }

    /// The within-round send order `σ`.
    pub fn order(&self) -> &[WorkerId] {
        &self.order
    }

    /// Chunk fractions, `[round][physical worker index]`; the grand total
    /// is 1.
    pub fn fractions(&self) -> &[Vec<f64>] {
        &self.fractions
    }

    /// One chunk fraction.
    pub fn fraction(&self, round: usize, worker: WorkerId) -> f64 {
        self.fractions[round][worker.index()]
    }

    /// Total fraction a physical worker processes across all rounds.
    pub fn worker_total(&self, worker: WorkerId) -> f64 {
        self.fractions.iter().map(|row| row[worker.index()]).sum()
    }

    /// Makespan of the lowered schedule for a unit total load — exactly
    /// what `Timeline::build` and an ideal `dls_sim::simulate` replay
    /// produce on the lowered pair.
    pub fn predicted_makespan(&self) -> f64 {
        self.predicted_makespan
    }

    /// Throughput equivalent (`1 / predicted_makespan`), comparable with
    /// the one-round solvers' `T = 1` objectives by linearity.
    pub fn throughput(&self) -> f64 {
        1.0 / self.predicted_makespan
    }

    /// Lowers the plan onto the expanded virtual platform: the returned
    /// [`Schedule`] sends round-major in `σ` order and returns FIFO, with
    /// virtual worker `r·p + j` carrying `fractions[r][j]`.
    pub fn lower(&self, platform: &Platform) -> Result<(Platform, Schedule), CoreError> {
        let p = platform.num_workers();
        let rounds = self.rounds();
        let vplat = expanded_platform(platform, rounds)?;
        let mut loads = vec![0.0; p * rounds];
        for (r, row) in self.fractions.iter().enumerate() {
            loads[r * p..(r + 1) * p].copy_from_slice(row);
        }
        let mut vorder = Vec::with_capacity(p * rounds);
        for r in 0..rounds {
            vorder.extend(self.order.iter().map(|&id| physical_to_virtual(r, id, p)));
        }
        let schedule = Schedule::fifo(&vplat, vorder, loads)?;
        Ok((vplat, schedule))
    }

    /// Per-chunk timings (participating chunks only, in send order), read
    /// off the lowered earliest-feasible timeline.
    pub fn chunk_timings(&self, platform: &Platform) -> Result<Vec<ChunkTiming>, CoreError> {
        let p = platform.num_workers();
        let (vplat, schedule) = self.lower(platform)?;
        let timeline = Timeline::build(&vplat, &schedule, PortModel::OnePort);
        Ok(timeline
            .entries()
            .iter()
            .map(|e| {
                let (round, worker) = virtual_to_physical(e.worker, p);
                ChunkTiming {
                    round,
                    worker,
                    fraction: self.fractions[round][worker.index()],
                    send: e.send,
                    compute: e.compute,
                    ret: e.ret,
                }
            })
            .collect())
    }

    /// Re-checks every model constraint of the lowered schedule through
    /// [`Timeline::verify`]; empty = feasible.
    pub fn verify(&self, platform: &Platform, tol: f64) -> Result<Vec<String>, CoreError> {
        let (vplat, schedule) = self.lower(platform)?;
        let timeline = Timeline::build(&vplat, &schedule, PortModel::OnePort);
        Ok(timeline.verify(&vplat, &schedule, tol))
    }

    /// Largest overlap between two compute intervals of the *same physical
    /// worker* in the lowered timeline — the optimism of the independent-
    /// installment relaxation. `0` means the plan is pipelined-feasible:
    /// every chunk's computation finishes before the next chunk's does not
    /// need the CPU, so the virtual-platform makespan is physically
    /// achievable as-is.
    pub fn compute_overlap(&self, platform: &Platform) -> Result<f64, CoreError> {
        let timings = self.chunk_timings(platform)?;
        let mut worst = 0.0_f64;
        for a in &timings {
            for b in &timings {
                if a.worker == b.worker && a.round < b.round {
                    let overlap = (a.compute.end - b.compute.start)
                        .min(a.compute.len())
                        .min(b.compute.len());
                    worst = worst.max(overlap);
                }
            }
        }
        Ok(worst)
    }
}

#[cfg(test)]
// Unit tests assert exact outcomes of exact arithmetic.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn platform() -> Platform {
        Platform::star_with_z(&[(1.0, 2.0), (2.0, 1.0), (1.5, 3.0)], 0.5).unwrap()
    }

    fn ids(v: &[usize]) -> Vec<WorkerId> {
        v.iter().map(|&i| WorkerId(i)).collect()
    }

    #[test]
    fn expansion_replicates_costs_round_major() {
        let p = platform();
        let v = expanded_platform(&p, 3).unwrap();
        assert_eq!(v.num_workers(), 9);
        for vid in v.ids() {
            let (round, phys) = virtual_to_physical(vid, p.num_workers());
            assert!(round < 3);
            assert_eq!(v.worker(vid), p.worker(phys));
            assert_eq!(physical_to_virtual(round, phys, p.num_workers()), vid);
        }
    }

    #[test]
    fn round_limits_enforced() {
        let p = platform();
        assert!(matches!(
            expanded_platform(&p, 0),
            Err(CoreError::MalformedOrder(_))
        ));
        assert!(matches!(
            expanded_platform(&p, MAX_VIRTUAL_WORKERS),
            Err(CoreError::TooManyRounds { .. })
        ));
    }

    #[test]
    fn plan_validates_fraction_shape_and_total() {
        let p = platform();
        let order = ids(&[0, 1, 2]);
        // Wrong row width.
        assert!(RoundPlan::new(&p, order.clone(), vec![vec![0.5, 0.5]]).is_err());
        // Total far from 1.
        assert!(RoundPlan::new(&p, order.clone(), vec![vec![0.5, 0.2, 0.1]]).is_err());
        // Negative fraction.
        assert!(RoundPlan::new(&p, order.clone(), vec![vec![1.3, -0.2, -0.1]]).is_err());
        // A valid two-round plan.
        let plan =
            RoundPlan::new(&p, order, vec![vec![0.2, 0.1, 0.1], vec![0.3, 0.2, 0.1]]).unwrap();
        assert_eq!(plan.rounds(), 2);
        let total: f64 = plan.fractions().iter().flatten().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((plan.worker_total(WorkerId(0)) - 0.5).abs() < 1e-12);
        assert!(plan.predicted_makespan() > 0.0);
    }

    #[test]
    fn lowering_matches_hand_computed_single_round() {
        // One round over the hand-checkable timeline platform: lowering
        // must reduce exactly to the one-round schedule.
        let p = Platform::new(vec![
            dls_platform::Worker::new(1.0, 2.0, 0.5),
            dls_platform::Worker::new(2.0, 1.0, 1.0),
        ])
        .unwrap();
        let plan = RoundPlan::new(&p, ids(&[0, 1]), vec![vec![0.5, 0.5]]).unwrap();
        let (vplat, schedule) = plan.lower(&p).unwrap();
        assert_eq!(vplat, p);
        // Same shape as the timeline.rs fixture at half scale: makespan 2.5.
        assert!((plan.predicted_makespan() - 2.5).abs() < 1e-12);
        assert_eq!(schedule.participants().len(), 2);
        assert!(plan.verify(&p, 1e-9).unwrap().is_empty());
    }

    #[test]
    fn chunk_timings_map_back_to_rounds_and_workers() {
        let p = platform();
        let plan = RoundPlan::new(
            &p,
            ids(&[0, 1, 2]),
            vec![vec![0.1, 0.1, 0.1], vec![0.3, 0.2, 0.2]],
        )
        .unwrap();
        let timings = plan.chunk_timings(&p).unwrap();
        assert_eq!(timings.len(), 6);
        // Round-major send order: all of round 0 before round 1.
        let r0_last = timings
            .iter()
            .filter(|t| t.round == 0)
            .map(|t| t.send.end)
            .fold(0.0, f64::max);
        let r1_first = timings
            .iter()
            .filter(|t| t.round == 1)
            .map(|t| t.send.start)
            .fold(f64::INFINITY, f64::min);
        assert!(r0_last <= r1_first + 1e-12);
        for t in &timings {
            assert!((t.fraction - plan.fraction(t.round, t.worker)).abs() < 1e-12);
        }
    }

    #[test]
    fn compute_overlap_zero_for_single_round() {
        let p = platform();
        let plan = RoundPlan::new(&p, ids(&[0, 1, 2]), vec![vec![0.4, 0.3, 0.3]]).unwrap();
        assert_eq!(plan.compute_overlap(&p).unwrap(), 0.0);
    }

    #[test]
    fn zero_fraction_chunks_are_skipped_in_the_lowering() {
        let p = platform();
        let plan = RoundPlan::new(
            &p,
            ids(&[0, 1, 2]),
            vec![vec![0.5, 0.0, 0.0], vec![0.5, 0.0, 0.0]],
        )
        .unwrap();
        let timings = plan.chunk_timings(&p).unwrap();
        assert_eq!(timings.len(), 2);
        assert!(timings.iter().all(|t| t.worker == WorkerId(0)));
    }
}
