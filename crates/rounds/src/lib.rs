//! # dls-rounds — multi-round (R-installment) scheduling subsystem
//!
//! The paper (RR-5738) distributes the load in a *single* round per
//! worker; this crate opens the multi-installment workload class for the
//! same star/one-port model with return messages (cf. Yang–Casanova
//! multi-round DLS and the multi-installment device of Gallet–Robert–
//! Vivien): the master splits the load into `R` rounds to overlap
//! communication with computation, trading a little scheduling latency for
//! throughput.
//!
//! * [`RoundPlan`] — the IR: per-round, per-worker chunk fractions of a
//!   unit load, with per-chunk send/compute/return intervals, *lowered*
//!   onto an expanded virtual platform (`R` round-major copies of the
//!   worker set) so `dls_core::timeline` and `dls_sim::simulate` replay it
//!   unchanged;
//! * [`plan_uniform`] / [`plan_geometric`] / [`plan_lp`] — the installment
//!   planners (equal rounds; budgeted geometric growth; the scenario LP on
//!   the expanded platform, warm-started through the existing
//!   `BasisCache`);
//! * [`MultiRound`] + [`install`] — constructor-configured [`Scheduler`]s
//!   (`multiround_uniform`, `multiround_geometric`, `multiround_lp`, plus
//!   parameterized ids like `multiround_lp@8`) registered into
//!   [`dls_core::registry`] through the engine's provider extension point.
//!
//! ```
//! use dls_core::Scheduler;
//! use dls_platform::Platform;
//!
//! dls_rounds::install(); // idempotent; adds multiround_* to the registry
//! let p = Platform::star_with_z(&[(1.0, 5.0), (2.0, 4.0), (1.5, 6.0)], 0.5).unwrap();
//! let one = dls_core::lookup("multiround_lp@1").unwrap().solve(&p).unwrap();
//! let four = dls_core::lookup("multiround_lp@4").unwrap().solve(&p).unwrap();
//! assert!(four.throughput >= one.throughput - 1e-12); // R is never harmful to the LP planner
//! ```
//!
//! [`Scheduler`]: dls_core::Scheduler

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod plan;
mod planners;
mod scheduler;

pub use plan::{
    check_rounds, expanded_platform, physical_to_virtual, virtual_to_physical, ChunkTiming,
    RoundPlan, MAX_VIRTUAL_WORKERS,
};
pub use planners::{
    plan_geometric, plan_lp, plan_uniform, planner_order, GeometricPlan, LpPlan, GEOMETRIC_RATIOS,
};
pub use scheduler::{MultiRound, MultiRoundProvider, PlannerKind, DEFAULT_ROUNDS};

/// Installs the multi-round provider into [`dls_core::registry`]
/// (idempotent: re-installing replaces the provider in place). After this,
/// `registry()` lists the three `multiround_*` defaults and
/// [`dls_core::lookup`] resolves parameterized ids such as
/// `multiround_lp@8`.
pub fn install() {
    dls_core::register_provider(std::sync::Arc::new(MultiRoundProvider));
}
