//! The installment planners: uniform, geometric, and LP-backed.
//!
//! All three share the same scaffolding: pick the FIFO send order `σ`
//! (Theorem 1's order when the platform is `z`-tied, the `INC_C` order
//! otherwise), then choose the chunk fractions `f[r][i]`:
//!
//! * [`plan_uniform`] — the naive R-installment baseline: each round is
//!   `1/R` of the one-round LP-optimal loads. Exactly `R` rounds; can
//!   *lose* to one round on communication-bound platforms (the honest
//!   latency/throughput trade-off the sweeps plot).
//! * [`plan_geometric`] — chunks grow geometrically (`f[r] ∝ q^r`) so
//!   early rounds are small (workers start computing almost immediately)
//!   and later rounds are large (amortizing the port). `R` is a *budget*:
//!   the planner grid-searches growth ratios `q` and round counts
//!   `1..=R` against the lowered timeline and keeps the best, so its
//!   makespan is monotone non-increasing in `R` by construction and the
//!   `R = 1` plan is exactly the one-round optimum.
//! * [`plan_lp`] — the optimal canonical-shape R-round plan: the scenario
//!   LP (2) on the [expanded platform](crate::plan::expanded_platform)
//!   with the round-major FIFO pattern — one scenario per round pattern,
//!   solved through [`dls_core::lp_model`] and therefore warm-started by
//!   the existing per-thread `BasisCache` on repeated solves. Because a
//!   zero round is feasible, its makespan is also monotone non-increasing
//!   in `R`, and `R = 1` *is* the one-round optimal FIFO LP.

use dls_core::fifo::theorem1_order;
use dls_core::lp_model::{self, solve_fifo};
use dls_core::{CoreError, PortModel};
use dls_platform::{Platform, WorkerId};

use crate::plan::{check_rounds, expanded_platform, physical_to_virtual, RoundPlan};

/// Growth-ratio candidates of the geometric grid search, bracketing 1:
/// `q > 1` grows later rounds (small first chunks start computation
/// early), `q < 1` shrinks them (small last chunks finish the return
/// chain early), and `q = 1` makes the uniform split a candidate, so
/// geometric never loses to uniform.
pub const GEOMETRIC_RATIOS: [f64; 6] = [0.5, 0.7, 1.0, 1.5, 2.0, 3.0];

/// The within-round send order every planner uses: Theorem 1's optimal
/// FIFO order when the platform is `z`-tied, `INC_C` (non-decreasing `c`)
/// otherwise.
pub fn planner_order(platform: &Platform) -> Vec<WorkerId> {
    theorem1_order(platform).unwrap_or_else(|_| platform.order_by_c())
}

/// One-round LP-optimal loads in `σ` order, normalized to fractions of a
/// unit total load (the base the uniform and geometric planners split),
/// plus the base LP's `(iterations, warm_start)` for provenance.
fn base_fractions(
    platform: &Platform,
    order: &[WorkerId],
) -> Result<(Vec<f64>, usize, bool), CoreError> {
    let sol = solve_fifo(platform, order, PortModel::OnePort)?;
    let rho = sol.throughput;
    Ok((
        sol.schedule.loads().iter().map(|l| l / rho).collect(),
        sol.iterations,
        sol.warm_start,
    ))
}

/// Splits `base` (platform-indexed fractions summing to 1) across `rounds`
/// rounds with per-round weights `w[r]` (any positive vector).
fn split_by_weights(base: &[f64], weights: &[f64]) -> Vec<Vec<f64>> {
    let total: f64 = weights.iter().sum();
    weights
        .iter()
        .map(|w| base.iter().map(|f| f * w / total).collect())
        .collect()
}

/// Exactly `R` equal installments of the one-round optimal loads. The
/// chunking itself is closed-form, but the per-worker totals come from the
/// one-round scenario LP, so the result carries that LP's provenance.
pub fn plan_uniform(platform: &Platform, rounds: usize) -> Result<LpPlan, CoreError> {
    check_rounds(platform, rounds)?;
    let order = planner_order(platform);
    let (base, iterations, warm_start) = base_fractions(platform, &order)?;
    Ok(LpPlan {
        plan: RoundPlan::new(platform, order, split_by_weights(&base, &vec![1.0; rounds]))?,
        iterations,
        warm_start,
    })
}

/// Result of the geometric grid search: the winning plan plus the number
/// of candidate plans evaluated (for `Provenance::Search`).
#[derive(Debug, Clone)]
pub struct GeometricPlan {
    /// The best plan found (at most `rounds` rounds).
    pub plan: RoundPlan,
    /// Candidate `(q, round-count)` plans timed during the search.
    pub evaluated: usize,
}

/// Best geometric plan within a budget of `rounds` rounds: grid search
/// over [`GEOMETRIC_RATIOS`] and round counts `1..=rounds`, scored by the
/// lowered-timeline makespan. Monotone non-increasing in `rounds` because
/// the candidate set only grows.
///
/// On a fully pipelined platform several `(r, q)` candidates tie to float
/// noise, so ties (relative `1e-9`) break toward *more* rounds: equal
/// predicted makespan with smaller installments means smaller per-worker
/// buffers — the multi-installment motivation — and the choice no longer
/// depends on last-ulp arithmetic of the base LP solve.
pub fn plan_geometric(platform: &Platform, rounds: usize) -> Result<GeometricPlan, CoreError> {
    check_rounds(platform, rounds)?;
    let order = planner_order(platform);
    let (base, _, _) = base_fractions(platform, &order)?;
    let mut best: Option<RoundPlan> = None;
    let mut evaluated = 0;
    for r in 1..=rounds {
        for &q in &GEOMETRIC_RATIOS {
            if r == 1 && q != GEOMETRIC_RATIOS[0] {
                continue; // all ratios coincide at one round
            }
            let weights: Vec<f64> = (0..r).map(|k| q.powi(k as i32)).collect();
            let candidate =
                RoundPlan::new(platform, order.clone(), split_by_weights(&base, &weights))?;
            evaluated += 1;
            let better = best.as_ref().is_none_or(|b| {
                let eps = 1e-9 * b.predicted_makespan().max(1.0);
                candidate.predicted_makespan() < b.predicted_makespan() - eps
                    || (candidate.predicted_makespan() <= b.predicted_makespan() + eps
                        && candidate.rounds() > b.rounds())
            });
            if better {
                best = Some(candidate);
            }
        }
    }
    Ok(GeometricPlan {
        plan: best.expect("at least one candidate evaluated"),
        evaluated,
    })
}

/// An LP-backed plan plus the provenance of the scenario LP behind it:
/// the expanded-platform LP for [`plan_lp`], the one-round base LP for
/// [`plan_uniform`].
#[derive(Debug, Clone)]
pub struct LpPlan {
    /// The planned rounds.
    pub plan: RoundPlan,
    /// Simplex pivots of the scenario LP.
    pub iterations: usize,
    /// `true` when the solve warm-started from a cached basis (repeated
    /// solves of the same round pattern on one platform hit the
    /// per-thread `BasisCache` of `dls_core::lp_model`).
    pub warm_start: bool,
}

/// LP-optimal chunk fractions for exactly `rounds` canonical-shape rounds:
/// the scenario LP on the expanded platform with the round-major FIFO
/// pattern, loads normalized to fractions of a unit total.
///
/// Built on the schedule-model IR: [`lp_model::scenario_model`] emits the
/// expanded round-major rows (the exact LP `solve_fifo` used to build
/// internally) and [`lp_model::solve_model`] routes the solve through the
/// per-thread basis cache under the model's structural key, so repeated
/// plans of the same `(platform, R)` still warm-start. Holding the model
/// before solving is the extension point for the pipelined-feasible
/// variant sketched in the ROADMAP: per-worker compute-chain rows are one
/// `precedence` combinator call away.
pub fn plan_lp(platform: &Platform, rounds: usize) -> Result<LpPlan, CoreError> {
    let p = platform.num_workers();
    let order = planner_order(platform);
    let vplat = expanded_platform(platform, rounds)?;
    let mut vorder = Vec::with_capacity(p * rounds);
    for r in 0..rounds {
        vorder.extend(order.iter().map(|&id| physical_to_virtual(r, id, p)));
    }
    let (ir, vars) = lp_model::scenario_model(&vplat, &vorder, &vorder, PortModel::OnePort)?;
    let sol = lp_model::solve_model(&ir, None)?;
    let rho = sol.objective;
    let mut fractions = vec![vec![0.0; p]; rounds];
    for (k, &alpha) in vars.alphas.iter().enumerate() {
        let id = order[k % p];
        fractions[k / p][id.index()] = sol.value(alpha).max(0.0) / rho;
    }
    Ok(LpPlan {
        plan: RoundPlan::new(platform, order, fractions)?,
        iterations: sol.iterations,
        warm_start: sol.warm_start,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls_core::prelude::optimal_fifo;

    fn star() -> Platform {
        Platform::star_with_z(&[(1.0, 5.0), (2.0, 4.0), (1.5, 6.0), (0.8, 7.0)], 0.5).unwrap()
    }

    #[test]
    fn uniform_splits_the_one_round_optimum_evenly() {
        let p = star();
        let plan = plan_uniform(&p, 4).unwrap().plan;
        assert_eq!(plan.rounds(), 4);
        let one_round = optimal_fifo(&p).unwrap();
        for id in p.ids() {
            let expect = one_round.schedule.load(id) / one_round.throughput / 4.0;
            for r in 0..4 {
                assert!((plan.fraction(r, id) - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn single_round_plans_match_the_one_round_optimum() {
        let p = star();
        let best = 1.0 / optimal_fifo(&p).unwrap().throughput;
        for makespan in [
            plan_uniform(&p, 1).unwrap().plan.predicted_makespan(),
            plan_geometric(&p, 1).unwrap().plan.predicted_makespan(),
            plan_lp(&p, 1).unwrap().plan.predicted_makespan(),
        ] {
            assert!(
                (makespan - best).abs() < 1e-9,
                "R = 1 must reduce to optimal_fifo: {makespan} vs {best}"
            );
        }
    }

    #[test]
    fn geometric_budget_is_monotone_in_rounds() {
        let p = star();
        let mut prev = f64::INFINITY;
        for r in 1..=8 {
            let g = plan_geometric(&p, r).unwrap();
            let m = g.plan.predicted_makespan();
            assert!(
                m <= prev + 1e-12,
                "geometric makespan increased at R = {r}: {m} > {prev}"
            );
            prev = m;
        }
    }

    #[test]
    fn lp_plan_is_monotone_and_dominates_the_other_planners() {
        let p = star();
        let mut prev = f64::INFINITY;
        for r in [1, 2, 4, 8] {
            let lp = plan_lp(&p, r).unwrap().plan.predicted_makespan();
            assert!(lp <= prev + 1e-9, "LP makespan increased at R = {r}");
            prev = lp;
            let uni = plan_uniform(&p, r).unwrap().plan.predicted_makespan();
            let geo = plan_geometric(&p, r).unwrap().plan.predicted_makespan();
            assert!(lp <= uni + 1e-9, "LP lost to uniform at R = {r}");
            assert!(lp <= geo + 1e-9, "LP lost to geometric at R = {r}");
        }
    }

    #[test]
    fn multi_round_strictly_beats_one_round_on_a_compute_bound_star() {
        // Compute-bound: pipelining the sends must pay off.
        let p = star();
        let one = plan_lp(&p, 1).unwrap().plan.predicted_makespan();
        let four = plan_lp(&p, 4).unwrap().plan.predicted_makespan();
        assert!(
            four < one - 1e-9,
            "R = 4 should strictly improve: {four} vs {one}"
        );
    }

    #[test]
    fn repeated_lp_plans_warm_start_from_the_basis_cache() {
        let p = star();
        let _first = plan_lp(&p, 4).unwrap();
        let again = plan_lp(&p, 4).unwrap();
        assert!(
            again.warm_start,
            "identical expanded scenario must hit the basis cache"
        );
    }

    #[test]
    fn planners_verify_clean() {
        let p = star();
        for r in [1, 2, 4] {
            for plan in [
                plan_uniform(&p, r).unwrap().plan,
                plan_geometric(&p, r).unwrap().plan,
                plan_lp(&p, r).unwrap().plan,
            ] {
                assert!(plan.verify(&p, 1e-7).unwrap().is_empty());
                let total: f64 = plan.fractions().iter().flatten().sum();
                assert!((total - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn zero_rounds_rejected() {
        let p = star();
        assert!(plan_uniform(&p, 0).is_err());
        assert!(plan_geometric(&p, 0).is_err());
        assert!(plan_lp(&p, 0).is_err());
    }
}
