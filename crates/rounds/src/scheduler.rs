//! Engine integration: constructor-configured [`MultiRound`] schedulers
//! and the [`SchedulerProvider`] that plugs them into
//! [`dls_core::registry`].
//!
//! After [`install`](crate::install) the registry lists the three default
//! instances (`multiround_uniform`, `multiround_geometric`, `multiround_lp`
//! — all at [`DEFAULT_ROUNDS`] rounds), and [`dls_core::lookup`] resolves
//! the parameterized spelling `<id>@<R>` (e.g. `multiround_lp@8`) to a
//! fresh instance with that round budget — the registry's
//! "constructor-configured scheduler" story, exercised by the `bench`
//! R-sweeps.

use dls_core::engine::{Execution, Provenance, Scheduler, SchedulerProvider, Solution};
use dls_core::CoreError;
use dls_platform::Platform;

use crate::planners::{plan_geometric, plan_lp, plan_uniform};
use crate::RoundPlan;

/// Round budget of the default registry instances.
pub const DEFAULT_ROUNDS: usize = 4;

/// Which chunking policy a [`MultiRound`] scheduler plans with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannerKind {
    /// Equal installments of the one-round optimum ([`plan_uniform`]).
    Uniform,
    /// Budgeted geometric grid search ([`plan_geometric`]).
    Geometric,
    /// LP-optimal canonical-shape rounds ([`plan_lp`]).
    Lp,
}

impl PlannerKind {
    fn id_stem(self) -> &'static str {
        match self {
            PlannerKind::Uniform => "multiround_uniform",
            PlannerKind::Geometric => "multiround_geometric",
            PlannerKind::Lp => "multiround_lp",
        }
    }

    fn legend_stem(self) -> &'static str {
        match self {
            PlannerKind::Uniform => "MR_UNI",
            PlannerKind::Geometric => "MR_GEO",
            PlannerKind::Lp => "MR_LP",
        }
    }
}

/// A constructor-configured multi-round strategy: a [`PlannerKind`] plus a
/// round count/budget, presentable to every registry consumer (sweeps,
/// tables, benches) like any built-in.
#[derive(Debug, Clone)]
pub struct MultiRound {
    kind: PlannerKind,
    rounds: usize,
    name: String,
    legend: String,
}

impl MultiRound {
    /// A strategy named `<stem>@<rounds>` (the parameterized spelling).
    pub fn new(kind: PlannerKind, rounds: usize) -> Self {
        MultiRound {
            kind,
            rounds,
            name: format!("{}@{rounds}", kind.id_stem()),
            legend: format!("{}@{rounds}", kind.legend_stem()),
        }
    }

    /// The default registry instance: plain `multiround_*` name,
    /// [`DEFAULT_ROUNDS`] rounds.
    pub fn registry_default(kind: PlannerKind) -> Self {
        MultiRound {
            kind,
            rounds: DEFAULT_ROUNDS,
            name: kind.id_stem().to_string(),
            legend: kind.legend_stem().to_string(),
        }
    }

    /// Shorthand for [`MultiRound::new`] with [`PlannerKind::Uniform`].
    pub fn uniform(rounds: usize) -> Self {
        Self::new(PlannerKind::Uniform, rounds)
    }

    /// Shorthand for [`MultiRound::new`] with [`PlannerKind::Geometric`].
    pub fn geometric(rounds: usize) -> Self {
        Self::new(PlannerKind::Geometric, rounds)
    }

    /// Shorthand for [`MultiRound::new`] with [`PlannerKind::Lp`].
    pub fn lp(rounds: usize) -> Self {
        Self::new(PlannerKind::Lp, rounds)
    }

    /// The configured round count (exact for uniform/LP, a budget for
    /// geometric).
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// The configured planner kind.
    pub fn kind(&self) -> PlannerKind {
        self.kind
    }

    /// Runs the configured planner, returning the raw [`RoundPlan`]
    /// (callers wanting the engine-shaped result use
    /// [`Scheduler::solve`]).
    pub fn plan(&self, platform: &Platform) -> Result<RoundPlan, CoreError> {
        Ok(match self.kind {
            PlannerKind::Uniform => plan_uniform(platform, self.rounds)?.plan,
            PlannerKind::Geometric => plan_geometric(platform, self.rounds)?.plan,
            PlannerKind::Lp => plan_lp(platform, self.rounds)?.plan,
        })
    }

    fn pack(
        &self,
        platform: &Platform,
        plan: RoundPlan,
        provenance: Provenance,
    ) -> Result<Solution, CoreError> {
        let rounds = plan.rounds();
        let throughput = plan.throughput();
        let (vplat, schedule) = plan.lower(platform)?;
        Ok(Solution {
            schedule,
            throughput,
            provenance,
            execution: Execution::Rounds {
                platform: vplat,
                rounds,
            },
        })
    }
}

impl Scheduler for MultiRound {
    fn name(&self) -> &str {
        &self.name
    }

    fn legend(&self) -> &str {
        &self.legend
    }

    fn solve(&self, platform: &Platform) -> Result<Solution, CoreError> {
        match self.kind {
            PlannerKind::Uniform => {
                // The chunking is closed-form, but the per-worker totals
                // come from the one-round scenario LP: report that LP.
                let lp = plan_uniform(platform, self.rounds)?;
                self.pack(
                    platform,
                    lp.plan,
                    Provenance::Lp {
                        iterations: lp.iterations,
                        warm_start: lp.warm_start,
                    },
                )
            }
            PlannerKind::Geometric => {
                let g = plan_geometric(platform, self.rounds)?;
                self.pack(
                    platform,
                    g.plan,
                    Provenance::Search {
                        evaluated: g.evaluated,
                    },
                )
            }
            PlannerKind::Lp => {
                let lp = plan_lp(platform, self.rounds)?;
                self.pack(
                    platform,
                    lp.plan,
                    Provenance::Lp {
                        iterations: lp.iterations,
                        warm_start: lp.warm_start,
                    },
                )
            }
        }
    }
}

/// The provider handing the three `multiround_*` families to the engine
/// registry; installed by [`crate::install`].
pub struct MultiRoundProvider;

impl MultiRoundProvider {
    fn parse(name: &str) -> Option<MultiRound> {
        for kind in [
            PlannerKind::Uniform,
            PlannerKind::Geometric,
            PlannerKind::Lp,
        ] {
            let Some(rest) = name.strip_prefix(kind.id_stem()) else {
                continue;
            };
            if rest.is_empty() {
                return Some(MultiRound::registry_default(kind));
            }
            if let Some(r) = rest.strip_prefix('@') {
                return match r.parse::<usize>() {
                    Ok(rounds) if rounds >= 1 => Some(MultiRound::new(kind, rounds)),
                    _ => None,
                };
            }
        }
        None
    }
}

impl SchedulerProvider for MultiRoundProvider {
    fn group(&self) -> &'static str {
        "multiround"
    }

    fn schedulers(&self) -> Vec<Box<dyn Scheduler>> {
        vec![
            Box::new(MultiRound::registry_default(PlannerKind::Uniform)),
            Box::new(MultiRound::registry_default(PlannerKind::Geometric)),
            Box::new(MultiRound::registry_default(PlannerKind::Lp)),
        ]
    }

    fn resolve(&self, name: &str) -> Option<Box<dyn Scheduler>> {
        Self::parse(name).map(|s| Box::new(s) as Box<dyn Scheduler>)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls_lp::Scalar;

    fn star() -> Platform {
        Platform::star_with_z(&[(1.0, 5.0), (2.0, 4.0), (1.5, 6.0)], 0.5).unwrap()
    }

    #[test]
    fn names_and_legends() {
        assert_eq!(MultiRound::lp(8).name(), "multiround_lp@8");
        assert_eq!(MultiRound::lp(8).legend(), "MR_LP@8");
        let d = MultiRound::registry_default(PlannerKind::Geometric);
        assert_eq!(d.name(), "multiround_geometric");
        assert_eq!(d.legend(), "MR_GEO");
        assert_eq!(d.rounds(), DEFAULT_ROUNDS);
    }

    #[test]
    fn parse_accepts_defaults_and_parameterized_ids_only() {
        assert!(MultiRoundProvider::parse("multiround_lp").is_some());
        let s = MultiRoundProvider::parse("multiround_uniform@2").unwrap();
        assert_eq!(s.rounds(), 2);
        assert_eq!(s.kind(), PlannerKind::Uniform);
        assert!(MultiRoundProvider::parse("multiround_lp@0").is_none());
        assert!(MultiRoundProvider::parse("multiround_lp@x").is_none());
        assert!(MultiRoundProvider::parse("multiround_lpx").is_none());
        assert!(MultiRoundProvider::parse("optimal_fifo").is_none());
    }

    #[test]
    fn solve_produces_rounds_execution_with_matching_throughput() {
        let p = star();
        for sched in [
            MultiRound::uniform(3),
            MultiRound::geometric(3),
            MultiRound::lp(3),
        ] {
            let sol = sched.solve(&p).unwrap();
            match &sol.execution {
                Execution::Rounds { platform, rounds } => {
                    assert_eq!(platform.num_workers(), p.num_workers() * rounds);
                }
                other => panic!("{} produced a non-rounds solution: {other:?}", sched.name()),
            }
            // Total load 1 by the fraction invariant.
            assert!((sol.schedule.total_load() - 1.0).abs() < 1e-9);
            let t = sol.verified_timeline(&p, 1e-7).expect("feasible");
            assert!((1.0 / sol.throughput - t.makespan()).abs() < 1e-9);
        }
    }

    #[test]
    fn provenance_reflects_the_planner_family() {
        let p = star();
        // Uniform chunking is closed-form but its per-worker totals come
        // from the one-round scenario LP — reported as that LP.
        assert!(matches!(
            MultiRound::uniform(2).solve(&p).unwrap().provenance,
            Provenance::Lp { .. }
        ));
        assert!(matches!(
            MultiRound::geometric(2).solve(&p).unwrap().provenance,
            Provenance::Search { evaluated } if evaluated > 1
        ));
        assert!(matches!(
            MultiRound::lp(2).solve(&p).unwrap().provenance,
            Provenance::Lp { iterations, .. } if iterations > 0
        ));
    }

    #[test]
    fn solve_exact_certifies_the_lp_planner() {
        // The default `Scheduler::solve_exact` re-solves the expanded
        // scenario exactly; for the LP planner the float objective is that
        // scenario's optimum, so they must agree.
        let p = star();
        let sched = MultiRound::lp(3);
        let sol = sched.solve(&p).unwrap();
        let exact = sched.solve_exact(&p).unwrap();
        // Solution throughput is for a unit load; the exact scenario LP
        // reports the T = 1 objective rho. They coincide by linearity.
        assert!((exact.throughput.to_f64() - sol.throughput).abs() < 1e-9);
        // Uniform chunking is not scenario-optimal: exact upper-bounds it.
        let uni = MultiRound::uniform(3);
        let uni_sol = uni.solve(&p).unwrap();
        let uni_exact = uni.solve_exact(&p).unwrap();
        assert!(uni_exact.throughput.to_f64() >= uni_sol.throughput - 1e-9);
    }
}
