//! Linear-program formulations for fixed scenarios (Section 2.3).
//!
//! Given a set of enrolled workers and a permutation pair `(σ1, σ2)`, the
//! optimal loads solve the LP (2) of the paper, generalized here to any
//! permutation pair and to both port models:
//!
//! ```text
//! maximize   ρ = Σ_i α_i
//! subject to, for every enrolled worker i at send position k and return
//! position m:
//!   Σ_{l ≤ k} α_{σ1(l)}·c_{σ1(l)}  +  α_i·w_i  +  x_i
//!        +  Σ_{l ≥ m} α_{σ2(l)}·d_{σ2(l)}  ≤  1          (2a)
//! one-port only:
//!   Σ_i α_i·(c_i + d_i)  ≤  1                             (2b)
//!   α_i ≥ 0,  x_i ≥ 0
//! ```
//!
//! Constraint (2a) says: the sends up to and including worker i, its
//! computation, its idle gap, and the block of returns from its own through
//! the last one must all fit before the deadline `T = 1`. (2b) forbids any
//! overlap of master communications. This encodes the canonical schedule
//! shape — sends back-to-back from time 0, returns back-to-back ending at
//! `T` — which the paper shows is without loss of generality.
//!
//! The formulation is built on the **schedule-model IR** of `dls-lp`
//! ([`scenario_model`] returns the [`ScheduleModel`]; [`build_problem`]
//! lowers it), so LP variants that keep the canonical shape — the
//! multi-round expanded scenarios, the affine-latency rows — share this
//! single source of the (2a)/(2b) rows, and variants that drop it (the
//! interleaved-master and tree-native families) reuse the same group and
//! combinator vocabulary plus the [`solve_model`] engine router.
//!
//! The builder is exposed ([`build_problem`]) so tests can solve the same
//! LP with the exact rational backend.

use std::cell::{Cell, RefCell};
use std::hash::{Hash, Hasher};
use std::sync::OnceLock;

use dls_lp::{BasisCache, LpError, Problem, Scalar, ScheduleModel, SolverOptions, VarId};
use dls_platform::{Platform, WorkerId};

use crate::error::CoreError;
use crate::schedule::{PortModel, Schedule};

/// Which LP backend solves the scenario LPs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpEngine {
    /// The dense two-phase tableau ([`dls_lp::solve_with`]).
    Tableau,
    /// The revised simplex with eta-file updates and per-thread
    /// [`BasisCache`] warm starts ([`dls_lp::solve_revised_with`]) — the
    /// default: same answers, and repeated solves on one platform (the
    /// FIFO/LIFO/INC_* strategies of a sweep) reuse the previous optimal
    /// basis instead of re-running from the slack basis.
    Revised,
}

thread_local! {
    static ENGINE: Cell<LpEngine> = const { Cell::new(LpEngine::Revised) };
    static BASIS_CACHE: RefCell<BasisCache> = RefCell::new(BasisCache::new());
}

/// Warm-start accounting lives in the `dls-obs` registry (counters
/// `basis_cache.hit` / `basis_cache.miss`, summed over every thread);
/// [`warm_start_stats`] is a thin shim over these handles.
fn hit_counter() -> dls_obs::Counter {
    dls_obs::counter!("basis_cache.hit")
}
fn miss_counter() -> dls_obs::Counter {
    dls_obs::counter!("basis_cache.miss")
}

/// The engine the current thread uses for scenario LPs.
pub fn current_engine() -> LpEngine {
    ENGINE.with(Cell::get)
}

/// Runs `f` with the scenario-LP engine overridden to `engine` on this
/// thread, restoring the previous engine afterwards — also on panic, so a
/// failing assertion inside `f` cannot leak the override into later tests
/// sharing the thread. Used by the cross-validation tests to force the
/// tableau path.
pub fn with_engine<R>(engine: LpEngine, f: impl FnOnce() -> R) -> R {
    struct Restore(LpEngine);
    impl Drop for Restore {
        fn drop(&mut self) {
            ENGINE.with(|e| e.set(self.0));
        }
    }
    let _restore = Restore(ENGINE.with(|e| e.replace(engine)));
    f()
}

/// `(warm-start hits, total scenario-LP solves)` since process start (or
/// the last [`reset_warm_start_stats`]), summed over every thread.
pub fn warm_start_stats() -> (usize, usize) {
    let hits = hit_counter().value() as usize;
    let misses = miss_counter().value() as usize;
    (hits, hits + misses)
}

/// Zeroes the [`warm_start_stats`] counters.
pub fn reset_warm_start_stats() {
    hit_counter().reset();
    miss_counter().reset();
}

/// `true` when the pre-solve static analyzer ([`dls_lp::analyze`]) runs on
/// every schedule model before lowering. Defaults to on in debug builds
/// (so the whole test suite doubles as analyzer coverage) and off in
/// release; the `DLS_ANALYZE` environment variable overrides either way
/// (`1`/`true` forces on — e.g. for a release sweep — and `0`/`false`
/// forces off). Read once per process.
pub fn analysis_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| match std::env::var("DLS_ANALYZE") {
        Ok(v) => {
            let v = v.trim();
            !(v.is_empty() || v == "0" || v.eq_ignore_ascii_case("false"))
        }
        Err(_) => cfg!(debug_assertions),
    })
}

/// The pre-solve gate: when [`analysis_enabled`], runs [`dls_lp::analyze`]
/// over `model` and rejects error-severity findings as
/// [`CoreError::InvalidModel`] (the rendered report names each offending
/// row label and `RowKind`). Warnings — redundant-but-legal rows,
/// conditioning hazards — are tolerated. Every IR entry point in the
/// workspace (`solve_model`, `solve_scenario`, the affine builder's direct
/// tableau path) calls this before lowering.
pub fn analyze_gate(model: &ScheduleModel) -> Result<(), CoreError> {
    if !analysis_enabled() {
        return Ok(());
    }
    let _span = dls_obs::trace_span!("core.analyze_gate.seconds", "rows" => model.num_rows());
    let report = dls_lp::analyze(model);
    if report.has_errors() {
        return Err(CoreError::InvalidModel(report.to_string()));
    }
    Ok(())
}

/// Cache key of a scenario family: platform identity (worker cost bits),
/// enrollment size, port model, and the scenario's *relative return
/// pattern* (each send position's return position). The pattern keeps
/// structurally different LPs apart — a LIFO optimum is rarely a feasible
/// basis for a FIFO LP, and letting them share a slot would evict each
/// other's bases — while the FIFO-family strategies (`optimal_fifo`,
/// `inc_c`, `inc_w`: identity pattern, different worker orders) share one
/// slot and warm-start each other.
fn scenario_cache_key(
    platform: &Platform,
    send_order: &[WorkerId],
    return_order: &[WorkerId],
    model: PortModel,
) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for id in platform.ids() {
        let w = platform.worker(id);
        w.c.to_bits().hash(&mut h);
        w.w.to_bits().hash(&mut h);
        w.d.to_bits().hash(&mut h);
    }
    send_order.len().hash(&mut h);
    matches!(model, PortModel::OnePort).hash(&mut h);
    let mut send_pos = vec![usize::MAX; platform.num_workers()];
    for (k, id) in send_order.iter().enumerate() {
        send_pos[id.index()] = k;
    }
    for id in return_order {
        send_pos[id.index()].hash(&mut h);
    }
    h.finish()
}

/// Result of solving a scenario LP.
#[derive(Debug, Clone)]
pub struct LpSchedule {
    /// The schedule with LP-optimal loads.
    pub schedule: Schedule,
    /// Optimal throughput `ρ = Σ α_i` for `T = 1`.
    pub throughput: f64,
    /// The LP's idle variables `x_i`, by platform worker index
    /// (non-participants carry 0). Note the LP may distribute slack
    /// differently from the earliest-feasible timeline; use
    /// [`crate::timeline::Timeline`] for physical idle times.
    pub lp_idles: Vec<f64>,
    /// Simplex pivots used.
    pub iterations: usize,
    /// `true` when the solve reused a cached basis from an earlier LP on
    /// the same platform (skipping the cold start entirely).
    pub warm_start: bool,
}

/// Variable handles of a built scenario LP, in enrolled (send-order)
/// indexing.
#[derive(Debug, Clone)]
pub struct LpVars {
    /// `α` variables, one per enrolled worker (send order).
    pub alphas: Vec<VarId>,
    /// `x` (idle) variables, one per enrolled worker (send order).
    pub idles: Vec<VarId>,
}

fn check_orders(
    platform: &Platform,
    send_order: &[WorkerId],
    return_order: &[WorkerId],
) -> Result<(), CoreError> {
    // Schedule::new performs full validation; reuse it with zero loads.
    Schedule::new(
        platform,
        send_order.to_vec(),
        return_order.to_vec(),
        vec![0.0; platform.num_workers()],
    )
    .map(|_| ())
}

/// Builds the scenario **schedule-model IR** for `(σ1, σ2)` under `model`
/// — the canonical sends-then-returns shape as [`ScheduleModel`] groups
/// (`alpha` loads, `idle` gaps) and tagged rows (per-worker
/// [deadlines](ScheduleModel::deadline), the
/// [one-port](ScheduleModel::one_port) capacity row).
///
/// This is the single source of the paper's LP (2): [`build_problem`]
/// lowers it to a raw [`Problem`], [`solve_scenario`] solves it through
/// the engine router, and the multi-round planner (`dls-rounds`) builds
/// its expanded round-major scenario on the same function — an LP variant
/// that keeps the canonical shape only has to append rows to the returned
/// model before solving it with [`solve_model`].
pub fn scenario_model(
    platform: &Platform,
    send_order: &[WorkerId],
    return_order: &[WorkerId],
    model: PortModel,
) -> Result<(ScheduleModel, LpVars), CoreError> {
    let deadline_rhs = vec![1.0; send_order.len()];
    scenario_model_with_rhs(
        platform,
        send_order,
        return_order,
        model,
        &deadline_rhs,
        1.0,
    )
}

/// [`scenario_model`] with caller-supplied right-hand sides: one horizon
/// budget per enrolled worker's deadline row (send order) plus the
/// one-port row's budget. The coefficient matrix is exactly the canonical
/// scenario's — this is the affine family's entry point, where fixed
/// per-message latencies only *shift the right-hand sides* — so the
/// (2a)/(2b) row emission has a single source.
///
/// # Panics
/// Panics when `deadline_rhs` does not have one entry per enrolled worker.
pub fn scenario_model_with_rhs(
    platform: &Platform,
    send_order: &[WorkerId],
    return_order: &[WorkerId],
    model: PortModel,
    deadline_rhs: &[f64],
    one_port_rhs: f64,
) -> Result<(ScheduleModel, LpVars), CoreError> {
    check_orders(platform, send_order, return_order)?;
    let q = send_order.len();
    assert_eq!(
        deadline_rhs.len(),
        q,
        "one deadline budget per enrolled worker"
    );
    let mut ir = ScheduleModel::maximize();

    let alpha_group = ir.group(
        "alpha",
        send_order.iter().map(|id| (format!("alpha_{id}"), 1.0)),
    );
    let idle_group = ir.group("idle", send_order.iter().map(|id| (format!("x_{id}"), 0.0)));

    // Enrolled position maps.
    let mut send_pos = vec![usize::MAX; platform.num_workers()];
    for (k, id) in send_order.iter().enumerate() {
        send_pos[id.index()] = k;
    }
    let mut return_pos = vec![usize::MAX; platform.num_workers()];
    for (m, id) in return_order.iter().enumerate() {
        return_pos[id.index()] = m;
    }

    // (2a) per enrolled worker.
    for (k, &id) in send_order.iter().enumerate() {
        let w_i = platform.worker(id);
        let m = return_pos[id.index()];
        let mut coeffs: Vec<(dls_lp::MVar, f64)> = Vec::with_capacity(q + 2);
        // Sends up to and including position k.
        for (l, &jd) in send_order.iter().enumerate().take(k + 1) {
            coeffs.push((alpha_group.var(l), platform.worker(jd).c));
        }
        // Own computation.
        coeffs.push((alpha_group.var(k), w_i.w));
        // Own idle gap.
        coeffs.push((idle_group.var(k), 1.0));
        // Returns from position m through the end.
        for &jd in return_order.iter().skip(m) {
            let enrolled = send_pos[jd.index()];
            coeffs.push((alpha_group.var(enrolled), platform.worker(jd).d));
        }
        ir.deadline(format!("deadline_{id}"), coeffs, deadline_rhs[k]);
    }

    // (2b) one-port: total master communication time within the budget.
    if model == PortModel::OnePort {
        let coeffs: Vec<(dls_lp::MVar, f64)> = send_order
            .iter()
            .enumerate()
            .map(|(k, &id)| {
                let w = platform.worker(id);
                (alpha_group.var(k), w.c + w.d)
            })
            .collect();
        ir.one_port("one_port", coeffs, one_port_rhs);
    }

    let vars = LpVars {
        alphas: alpha_group.var_ids(),
        idles: idle_group.var_ids(),
    };
    Ok((ir, vars))
}

/// Builds the scenario LP for `(σ1, σ2)` under `model` by lowering
/// [`scenario_model`] — byte-identical columns and rows to the historical
/// hand-rolled builder (pinned by the `ir_lowering_is_byte_identical`
/// test), so external consumers of the raw [`Problem`] see no change.
///
/// Returns the problem plus variable handles (enrolled indexing follows
/// `send_order`).
pub fn build_problem(
    platform: &Platform,
    send_order: &[WorkerId],
    return_order: &[WorkerId],
    model: PortModel,
) -> Result<(Problem, LpVars), CoreError> {
    let (ir, vars) = scenario_model(platform, send_order, return_order, model)?;
    Ok((ir.lower(), vars))
}

/// Result of solving a [`ScheduleModel`] through the engine router.
#[derive(Debug, Clone)]
pub struct ModelSolution {
    /// Optimal value per model variable, in declaration order (index with
    /// [`dls_lp::MVar::index`] or [`VarId::index`]).
    pub values: Vec<f64>,
    /// Optimal objective.
    pub objective: f64,
    /// Simplex pivots used.
    pub iterations: usize,
    /// `true` when the solve reused a cached basis (revised engine only).
    pub warm_start: bool,
}

impl ModelSolution {
    /// Value of one lowered variable.
    pub fn value(&self, v: VarId) -> f64 {
        self.values[v.index()]
    }
}

/// Solves a schedule-model IR through the thread's [`current_engine`] and
/// per-thread [`BasisCache`], exactly like the scenario LPs: the revised
/// engine warm-starts from the basis cached under `key` (defaulting to the
/// model's own [`ScheduleModel::cache_key`]) and numerical failures retry
/// once on the tableau. Counts toward [`warm_start_stats`]. When
/// [`analysis_enabled`] (debug builds, `DLS_ANALYZE=1`), the model first
/// passes the [`analyze_gate`] static checks.
///
/// This is the engine entry point for IR-built LP variants (the
/// interleaved-master and tree-native families); the canonical scenario
/// path keeps its platform-derived key so FIFO-family strategies continue
/// to share basis slots.
pub fn solve_model(model: &ScheduleModel, key: Option<u64>) -> Result<ModelSolution, CoreError> {
    analyze_gate(model)?;
    let lp = model.lower();
    let key = key.unwrap_or_else(|| model.cache_key());
    solve_lowered(&lp, key)
}

/// Shared engine router for a lowered problem under a caller-chosen cache
/// key.
fn solve_lowered(lp: &Problem, key: u64) -> Result<ModelSolution, CoreError> {
    let engine = current_engine();
    // The trace span feeds the same `lp_model.solve.seconds` histogram the
    // pre-trace timer did; the separate timer below only serves the
    // per-cache-key latency family.
    let solve_span = dls_obs::trace_span!(
        "lp_model.solve.seconds",
        "engine" => match engine {
            LpEngine::Tableau => "tableau",
            LpEngine::Revised => "revised",
        },
        "key" => format_args!("{key:016x}"),
    );
    let solve_time = dls_obs::timer();
    let opts = SolverOptions::for_size(lp.num_vars(), lp.num_constraints());
    let (sol, warm_start) = match engine {
        LpEngine::Tableau => (dls_lp::solve_with::<f64>(lp, &opts)?, false),
        LpEngine::Revised => {
            let res = BASIS_CACHE.with(|c| c.borrow_mut().solve::<f64>(key, lp, &opts));
            match res {
                Ok(r) => (r.solution, r.warm_started),
                // Infeasible/unbounded are real answers; numerical failures
                // (iteration limit, singular refactorization) get one shot
                // on the tableau before surfacing.
                Err(LpError::IterationLimit { .. }) | Err(LpError::SingularBasis) => {
                    dls_obs::counter!("lp_model.tableau_retry").incr();
                    dls_obs::trace_event!(
                        "lp_model.tableau_retry",
                        "key" => format_args!("{key:016x}"),
                    );
                    (dls_lp::solve_with::<f64>(lp, &opts)?, false)
                }
                Err(e) => return Err(e.into()),
            }
        }
    };
    if warm_start {
        hit_counter().incr();
    } else {
        miss_counter().incr();
    }
    solve_span.finish();
    if let Some(seconds) = solve_time.stop() {
        record_keyed_latency(key, seconds);
    }
    Ok(ModelSolution {
        values: sol.x,
        objective: sol.objective,
        iterations: sol.iterations,
        warm_start,
    })
}

/// Records a solve latency into a per-cache-key histogram
/// (`lp_model.solve.key_<hex>.seconds`). Only the first `MAX_TRACKED_KEYS`
/// distinct keys get their own histogram — serve-style workloads revisit a
/// handful of families, which is where per-key latency matters — while
/// paper-scale sweeps (thousands of one-shot platforms) fold the rest into
/// `lp_model.solve.key_other.seconds`. Called only when timing is enabled,
/// so the tracking set stays off the `DLS_TRACE`-unset hot path.
fn record_keyed_latency(key: u64, seconds: f64) {
    use std::collections::HashSet;
    use std::sync::Mutex;
    const MAX_TRACKED_KEYS: usize = 32;
    static TRACKED: OnceLock<Mutex<HashSet<u64>>> = OnceLock::new();
    let mut tracked = TRACKED
        .get_or_init(|| Mutex::new(HashSet::new()))
        .lock()
        .expect("keyed-latency tracking set");
    let own_slot =
        tracked.contains(&key) || tracked.len() < MAX_TRACKED_KEYS && tracked.insert(key);
    drop(tracked);
    let hist = if own_slot {
        dls_obs::histogram(&format!("lp_model.solve.key_{key:016x}.seconds"))
    } else {
        dls_obs::histogram("lp_model.solve.key_other.seconds")
    };
    hist.record(seconds);
}

/// Solves the scenario LP and packages the optimal schedule.
///
/// The LP backend is the thread's [`current_engine`] — by default the
/// revised simplex with a per-thread [`BasisCache`], so consecutive solves
/// on the same platform (different orders, different strategies) warm-start
/// from the previous optimal basis. On the rare numerical failure of the
/// revised path the tableau engine is retried before reporting an error.
pub fn solve_scenario(
    platform: &Platform,
    send_order: &[WorkerId],
    return_order: &[WorkerId],
    model: PortModel,
) -> Result<LpSchedule, CoreError> {
    let _span = dls_obs::trace_span!(
        "core.solve_scenario.seconds",
        "workers" => platform.num_workers(),
        "enrolled" => send_order.len(),
    );
    let (ir, vars) = scenario_model(platform, send_order, return_order, model)?;
    analyze_gate(&ir)?;
    // The platform-derived key (not the IR's structural key) so the
    // FIFO-family strategies keep sharing one basis slot per platform —
    // the pre-IR warm-start behavior, bit for bit.
    let key = scenario_cache_key(platform, send_order, return_order, model);
    let sol = solve_lowered(&ir.lower(), key)?;

    let mut loads = vec![0.0; platform.num_workers()];
    let mut lp_idles = vec![0.0; platform.num_workers()];
    for (k, &id) in send_order.iter().enumerate() {
        loads[id.index()] = sol.value(vars.alphas[k]).max(0.0);
        lp_idles[id.index()] = sol.value(vars.idles[k]).max(0.0);
    }
    let schedule = Schedule::new(platform, send_order.to_vec(), return_order.to_vec(), loads)?;
    Ok(LpSchedule {
        throughput: sol.objective,
        schedule,
        lp_idles,
        iterations: sol.iterations,
        warm_start: sol.warm_start,
    })
}

/// Solves the scenario LP with an exact scalar backend; returns
/// `(throughput, loads-by-platform-index)`.
pub fn solve_scenario_exact<S: Scalar>(
    platform: &Platform,
    send_order: &[WorkerId],
    return_order: &[WorkerId],
    model: PortModel,
) -> Result<(S, Vec<S>), CoreError> {
    let (lp, vars) = build_problem(platform, send_order, return_order, model)?;
    let sol = dls_lp::solve_exact::<S>(&lp)?;
    let mut loads = vec![S::zero(); platform.num_workers()];
    for (k, &id) in send_order.iter().enumerate() {
        loads[id.index()] = sol.value(vars.alphas[k]);
    }
    Ok((sol.objective, loads))
}

/// Convenience: FIFO scenario (`σ2 = σ1`).
pub fn solve_fifo(
    platform: &Platform,
    order: &[WorkerId],
    model: PortModel,
) -> Result<LpSchedule, CoreError> {
    solve_scenario(platform, order, order, model)
}

/// Convenience: LIFO scenario (`σ2 = σ1` reversed).
pub fn solve_lifo(
    platform: &Platform,
    order: &[WorkerId],
    model: PortModel,
) -> Result<LpSchedule, CoreError> {
    let rev: Vec<WorkerId> = order.iter().rev().copied().collect();
    solve_scenario(platform, order, &rev, model)
}

#[cfg(test)]
// Unit tests assert exact outcomes of exact arithmetic.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::timeline::{makespan, Timeline};
    use dls_platform::Platform;

    fn ids(v: &[usize]) -> Vec<WorkerId> {
        v.iter().map(|&i| WorkerId(i)).collect()
    }

    fn platform() -> Platform {
        Platform::star_with_z(&[(1.0, 2.0), (2.0, 1.0), (1.5, 3.0)], 0.5).unwrap()
    }

    #[test]
    fn single_worker_fifo_closed_form() {
        // One worker: alpha (c + w + d) = 1 exactly.
        let p = Platform::star_with_z(&[(2.0, 3.0)], 0.5).unwrap();
        let s = solve_fifo(&p, &ids(&[0]), PortModel::OnePort).unwrap();
        let expect = 1.0 / (2.0 + 3.0 + 1.0);
        assert!((s.throughput - expect).abs() < 1e-9);
        assert!((s.schedule.load(WorkerId(0)) - expect).abs() < 1e-9);
    }

    #[test]
    fn lp_schedule_fits_in_unit_time() {
        let p = platform();
        for model in [PortModel::OnePort, PortModel::TwoPort] {
            let s = solve_fifo(&p, &ids(&[0, 1, 2]), model).unwrap();
            let ms = makespan(&p, &s.schedule, model);
            assert!(
                ms <= 1.0 + 1e-7,
                "schedule overflows horizon: {ms} under {model:?}"
            );
            let t = Timeline::build(&p, &s.schedule, model);
            assert!(t.verify(&p, &s.schedule, 1e-7).is_empty());
        }
    }

    #[test]
    fn lp_optimum_saturates_horizon() {
        // At the optimum the schedule must use the full horizon (otherwise
        // scale up: contradiction with optimality).
        let p = platform();
        let s = solve_fifo(&p, &ids(&[0, 1, 2]), PortModel::OnePort).unwrap();
        let ms = makespan(&p, &s.schedule, PortModel::OnePort);
        assert!(
            (ms - 1.0).abs() < 1e-7,
            "optimal schedule wastes time: {ms}"
        );
    }

    #[test]
    fn two_port_dominates_one_port() {
        let p = platform();
        let one = solve_fifo(&p, &ids(&[0, 1, 2]), PortModel::OnePort).unwrap();
        let two = solve_fifo(&p, &ids(&[0, 1, 2]), PortModel::TwoPort).unwrap();
        assert!(two.throughput >= one.throughput - 1e-9);
    }

    #[test]
    fn lifo_reverses_return_order() {
        let p = platform();
        let s = solve_lifo(&p, &ids(&[0, 1, 2]), PortModel::OnePort).unwrap();
        assert!(s.schedule.is_lifo());
        let ms = makespan(&p, &s.schedule, PortModel::OnePort);
        assert!(ms <= 1.0 + 1e-7);
    }

    #[test]
    fn general_permutation_pair() {
        let p = platform();
        let s = solve_scenario(&p, &ids(&[0, 1, 2]), &ids(&[1, 0, 2]), PortModel::OnePort).unwrap();
        assert!(s.throughput > 0.0);
        let t = Timeline::build(&p, &s.schedule, PortModel::OnePort);
        assert!(t.verify(&p, &s.schedule, 1e-7).is_empty());
        assert!(t.makespan() <= 1.0 + 1e-7);
    }

    #[test]
    fn throughput_equals_total_load() {
        let p = platform();
        let s = solve_fifo(&p, &ids(&[2, 0, 1]), PortModel::OnePort).unwrap();
        assert!((s.throughput - s.schedule.total_load()).abs() < 1e-9);
    }

    #[test]
    fn exact_backend_agrees_with_float() {
        let p = platform();
        let f = solve_fifo(&p, &ids(&[0, 1, 2]), PortModel::OnePort).unwrap();
        let (rho, _) = solve_scenario_exact::<dls_lp::Rational>(
            &p,
            &ids(&[0, 1, 2]),
            &ids(&[0, 1, 2]),
            PortModel::OnePort,
        )
        .unwrap();
        assert!((f.throughput - rho.to_f64()).abs() < 1e-9);
    }

    #[test]
    fn tableau_and_revised_engines_agree() {
        let p = platform();
        let order = ids(&[0, 1, 2]);
        for model in [PortModel::OnePort, PortModel::TwoPort] {
            let revised = solve_fifo(&p, &order, model).unwrap();
            let tableau = with_engine(LpEngine::Tableau, || solve_fifo(&p, &order, model).unwrap());
            assert!(!tableau.warm_start);
            let rel =
                (revised.throughput - tableau.throughput).abs() / tableau.throughput.abs().max(1.0);
            assert!(
                rel <= 1e-9,
                "engines disagree under {model:?}: revised {} vs tableau {}",
                revised.throughput,
                tableau.throughput
            );
        }
    }

    #[test]
    fn repeated_solves_on_one_platform_warm_start() {
        let p = platform();
        let order = ids(&[0, 1, 2]);
        let first = solve_fifo(&p, &order, PortModel::OnePort).unwrap();
        // An identical re-solve is offered the previous optimal basis,
        // which stays optimal: guaranteed hit, zero pivots.
        let again = solve_fifo(&p, &order, PortModel::OnePort).unwrap();
        assert!(again.warm_start, "identical re-solve must hit the cache");
        assert!(again.iterations <= first.iterations);
        assert!((again.throughput - first.throughput).abs() < 1e-12);
        // Same platform, reversed return order (the LIFO LP): same shape,
        // so the cached basis is *offered*; whether or not it is accepted,
        // the answer must match a cold tableau solve.
        let lifo = solve_lifo(&p, &order, PortModel::OnePort).unwrap();
        let lifo_cold = with_engine(LpEngine::Tableau, || {
            solve_lifo(&p, &order, PortModel::OnePort).unwrap()
        });
        assert!((lifo.throughput - lifo_cold.throughput).abs() < 1e-9);
    }

    #[test]
    fn warm_start_stats_accumulate() {
        let p = platform();
        let order = ids(&[0, 1, 2]);
        let (h0, s0) = warm_start_stats();
        let _ = solve_fifo(&p, &order, PortModel::OnePort).unwrap();
        let _ = solve_fifo(&p, &order, PortModel::OnePort).unwrap();
        let (h1, s1) = warm_start_stats();
        assert!(s1 >= s0 + 2);
        assert!(h1 > h0, "second identical solve must count as a warm hit");
    }

    /// The pre-IR hand-rolled builder, kept verbatim as a golden: the IR
    /// lowering must reproduce its output *byte for byte* (names, labels,
    /// objective, row order, coefficient order), so warm-start keys and
    /// cached bases carry over across the refactor.
    fn golden_build_problem(
        platform: &Platform,
        send_order: &[WorkerId],
        return_order: &[WorkerId],
        model: PortModel,
    ) -> Problem {
        use dls_lp::Relation;
        let q = send_order.len();
        let mut lp = Problem::maximize();
        let alphas: Vec<VarId> = send_order
            .iter()
            .map(|id| lp.add_var(format!("alpha_{id}"), 1.0))
            .collect();
        let idles: Vec<VarId> = send_order
            .iter()
            .map(|id| lp.add_var(format!("x_{id}"), 0.0))
            .collect();
        let mut send_pos = vec![usize::MAX; platform.num_workers()];
        for (k, id) in send_order.iter().enumerate() {
            send_pos[id.index()] = k;
        }
        let mut return_pos = vec![usize::MAX; platform.num_workers()];
        for (m, id) in return_order.iter().enumerate() {
            return_pos[id.index()] = m;
        }
        for (k, &id) in send_order.iter().enumerate() {
            let w_i = platform.worker(id);
            let m = return_pos[id.index()];
            let mut coeffs: Vec<(VarId, f64)> = Vec::with_capacity(q + 2);
            for (l, &jd) in send_order.iter().enumerate().take(k + 1) {
                coeffs.push((alphas[l], platform.worker(jd).c));
            }
            coeffs.push((alphas[k], w_i.w));
            coeffs.push((idles[k], 1.0));
            for &jd in return_order.iter().skip(m) {
                let enrolled = send_pos[jd.index()];
                coeffs.push((alphas[enrolled], platform.worker(jd).d));
            }
            lp.add_constraint(format!("deadline_{id}"), coeffs, Relation::Le, 1.0);
        }
        if model == PortModel::OnePort {
            let coeffs: Vec<(VarId, f64)> = send_order
                .iter()
                .enumerate()
                .map(|(k, &id)| {
                    let w = platform.worker(id);
                    (alphas[k], w.c + w.d)
                })
                .collect();
            lp.add_constraint("one_port", coeffs, Relation::Le, 1.0);
        }
        lp
    }

    #[test]
    fn ir_lowering_is_byte_identical() {
        let p = platform();
        for (send, ret) in [
            (ids(&[0, 1, 2]), ids(&[0, 1, 2])),
            (ids(&[2, 0, 1]), ids(&[1, 0, 2])),
            (ids(&[1]), ids(&[1])),
        ] {
            for model in [PortModel::OnePort, PortModel::TwoPort] {
                let golden = golden_build_problem(&p, &send, &ret, model);
                let (built, vars) = build_problem(&p, &send, &ret, model).unwrap();
                assert_eq!(built.num_vars(), golden.num_vars());
                assert_eq!(built.num_constraints(), golden.num_constraints());
                assert_eq!(built.objective(), golden.objective());
                for (a, b) in built.constraints().iter().zip(golden.constraints()) {
                    assert_eq!(a.label, b.label);
                    assert_eq!(a.relation, b.relation);
                    assert_eq!(a.rhs, b.rhs);
                    assert_eq!(
                        a.coeffs, b.coeffs,
                        "coefficient lists diverge in {}",
                        a.label
                    );
                }
                // The rendered LP text (the strongest byte-level witness).
                assert_eq!(built.to_lp_format(), golden.to_lp_format());
                // Variable handles line up with the golden declaration order.
                assert_eq!(vars.alphas.len(), send.len());
                assert_eq!(vars.idles[0].index(), send.len());
            }
        }
    }

    #[test]
    fn scenario_model_exposes_structure() {
        let p = platform();
        let (ir, _) =
            scenario_model(&p, &ids(&[0, 1, 2]), &ids(&[0, 1, 2]), PortModel::OnePort).unwrap();
        assert_eq!(ir.num_vars(), 6);
        assert_eq!(ir.num_rows(), 4);
        let kinds: Vec<dls_lp::RowKind> = ir.row_kinds().collect();
        assert_eq!(
            kinds,
            vec![
                dls_lp::RowKind::Deadline,
                dls_lp::RowKind::Deadline,
                dls_lp::RowKind::Deadline,
                dls_lp::RowKind::OnePort,
            ]
        );
        // Same scenario -> same structural key; different port model ->
        // different key (the one-port row vanishes).
        let (again, _) =
            scenario_model(&p, &ids(&[0, 1, 2]), &ids(&[0, 1, 2]), PortModel::OnePort).unwrap();
        assert_eq!(ir.cache_key(), again.cache_key());
        let (two, _) =
            scenario_model(&p, &ids(&[0, 1, 2]), &ids(&[0, 1, 2]), PortModel::TwoPort).unwrap();
        assert_ne!(ir.cache_key(), two.cache_key());
    }

    #[test]
    fn solve_model_routes_through_cache_and_stats() {
        let p = platform();
        let (ir, vars) =
            scenario_model(&p, &ids(&[0, 1, 2]), &ids(&[0, 1, 2]), PortModel::OnePort).unwrap();
        let (h0, s0) = warm_start_stats();
        let first = solve_model(&ir, None).unwrap();
        let again = solve_model(&ir, None).unwrap();
        let (h1, s1) = warm_start_stats();
        assert!(s1 >= s0 + 2);
        assert!(h1 > h0, "identical IR re-solve must hit the basis cache");
        assert!(again.warm_start);
        assert!((first.objective - again.objective).abs() < 1e-12);
        // The router and the scenario path agree on the optimum.
        let scenario = solve_fifo(&p, &ids(&[0, 1, 2]), PortModel::OnePort).unwrap();
        assert!((first.objective - scenario.throughput).abs() < 1e-9);
        assert!((first.value(vars.alphas[0]) - scenario.schedule.load(WorkerId(0))).abs() < 1e-9);
    }

    #[test]
    fn analyzer_gate_rejects_corrupt_models_in_debug_builds() {
        // Tests run with debug_assertions, so the gate is on by default
        // (unless the environment explicitly disabled it).
        if !analysis_enabled() {
            return;
        }
        let mut ir = ScheduleModel::maximize();
        let alphas = ir.group("alpha", (1..=2).map(|i| (format!("alpha_P{i}"), 1.0)));
        ir.deadline("deadline_P1", [(alphas.var(0), 3.0)], 1.0);
        ir.deadline("deadline_P2", [(alphas.var(1), 4.0)], 1.0);
        // Sign-flipped one-port row: the class of builder bug the gate is
        // for. The error must name the row and its kind.
        ir.one_port(
            "one_port",
            [(alphas.var(0), -1.5), (alphas.var(1), 3.0)],
            1.0,
        );
        match solve_model(&ir, None) {
            Err(CoreError::InvalidModel(report)) => {
                assert!(report.contains("one_port"), "{report}");
                assert!(report.contains("OnePort"), "{report}");
            }
            other => panic!("expected InvalidModel, got {other:?}"),
        }
    }

    #[test]
    fn every_scenario_shape_passes_the_gate() {
        // The gate is active in debug test runs: these solves double as
        // analyzer acceptance coverage for the canonical builder.
        let p = platform();
        for (send, ret) in [
            (ids(&[0, 1, 2]), ids(&[0, 1, 2])),
            (ids(&[2, 0, 1]), ids(&[1, 0, 2])),
            (ids(&[0, 1, 2]), ids(&[2, 1, 0])),
        ] {
            for model in [PortModel::OnePort, PortModel::TwoPort] {
                solve_scenario(&p, &send, &ret, model).unwrap();
            }
        }
    }

    #[test]
    fn malformed_orders_rejected() {
        let p = platform();
        assert!(matches!(
            solve_scenario(&p, &ids(&[0, 1]), &ids(&[0, 2]), PortModel::OnePort),
            Err(CoreError::MalformedOrder(_))
        ));
    }

    #[test]
    fn one_port_constraint_binds_on_comm_bound_platform() {
        // Tiny compute costs: communication is the bottleneck and
        // rho = 1 / min-sum possible... specifically (2b) must bind:
        // rho * (c + d) == 1 on a homogeneous comm-bound bus.
        let p = Platform::star_with_z(&[(1.0, 1e-6), (1.0, 1e-6)], 0.5).unwrap();
        let s = solve_fifo(&p, &ids(&[0, 1]), PortModel::OnePort).unwrap();
        assert!((s.throughput - 1.0 / 1.5).abs() < 1e-4);
    }

    #[test]
    fn subset_enrollment_allowed() {
        let p = platform();
        let s = solve_fifo(&p, &ids(&[1]), PortModel::OnePort).unwrap();
        assert_eq!(s.schedule.load(WorkerId(0)), 0.0);
        assert!(s.schedule.load(WorkerId(1)) > 0.0);
    }
}
