//! Schedule description: orders, loads and derived quantities.
//!
//! Following Section 2.2 of the paper, a one-round divisible-load schedule
//! is fully described by
//!
//! * `σ1` — the order in which the master sends initial data,
//! * `σ2` — the order in which it receives result messages,
//! * `α_i` — the load assigned to each worker,
//!
//! plus idle times `x_i` which are *derived* here (by the timeline
//! construction in [`crate::timeline`]) rather than stored: for fixed
//! orders and loads the earliest-feasible timing is unique.

use dls_platform::{Platform, WorkerId};

use crate::error::CoreError;

/// Load tolerance: LP outputs below this are treated as "not enrolled".
pub const LOAD_EPS: f64 = 1e-9;

/// Communication model for the master's port(s) (Section 2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortModel {
    /// The master is engaged in at most one communication (send *or*
    /// receive) at any time — the model of this paper.
    OnePort,
    /// The master can send to one worker and simultaneously receive from
    /// another — the model of the companion paper \[7, 8\].
    TwoPort,
}

/// A complete one-round schedule on a platform.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Send order `σ1` (worker ids; a permutation of the considered set).
    send_order: Vec<WorkerId>,
    /// Return order `σ2` (same id set as `send_order`).
    return_order: Vec<WorkerId>,
    /// Load per worker, indexed by `WorkerId::index()` over the *platform*
    /// (workers absent from the orders, or with negligible load, carry 0).
    loads: Vec<f64>,
}

impl Schedule {
    /// Builds a schedule, validating that the orders are permutations of
    /// the same worker set, ids are in range, and loads are non-negative.
    pub fn new(
        platform: &Platform,
        send_order: Vec<WorkerId>,
        return_order: Vec<WorkerId>,
        loads: Vec<f64>,
    ) -> Result<Self, CoreError> {
        let p = platform.num_workers();
        if loads.len() != p {
            return Err(CoreError::MalformedOrder(format!(
                "loads has {} entries for {p} workers",
                loads.len()
            )));
        }
        for order in [&send_order, &return_order] {
            let mut seen = vec![false; p];
            for id in order {
                if id.index() >= p {
                    return Err(CoreError::MalformedOrder(format!(
                        "{id} out of range for {p} workers"
                    )));
                }
                if seen[id.index()] {
                    return Err(CoreError::MalformedOrder(format!("{id} appears twice")));
                }
                seen[id.index()] = true;
            }
        }
        {
            let mut a: Vec<usize> = send_order.iter().map(|w| w.index()).collect();
            let mut b: Vec<usize> = return_order.iter().map(|w| w.index()).collect();
            a.sort_unstable();
            b.sort_unstable();
            if a != b {
                return Err(CoreError::MalformedOrder(
                    "send and return orders enroll different worker sets".into(),
                ));
            }
        }
        for (i, &l) in loads.iter().enumerate() {
            if !l.is_finite() || l < -LOAD_EPS {
                return Err(CoreError::MalformedOrder(format!(
                    "negative or non-finite load {l} for P{}",
                    i + 1
                )));
            }
        }
        let loads = loads.into_iter().map(|l| l.max(0.0)).collect();
        Ok(Schedule {
            send_order,
            return_order,
            loads,
        })
    }

    /// FIFO schedule: results return in the order data was sent
    /// (`σ2 = σ1`).
    pub fn fifo(
        platform: &Platform,
        order: Vec<WorkerId>,
        loads: Vec<f64>,
    ) -> Result<Self, CoreError> {
        let ret = order.clone();
        Self::new(platform, order, ret, loads)
    }

    /// LIFO schedule: results return in the reverse of the send order
    /// (`σ2 = σ1^R`).
    pub fn lifo(
        platform: &Platform,
        order: Vec<WorkerId>,
        loads: Vec<f64>,
    ) -> Result<Self, CoreError> {
        let ret: Vec<WorkerId> = order.iter().rev().copied().collect();
        Self::new(platform, order, ret, loads)
    }

    /// The send order `σ1`.
    pub fn send_order(&self) -> &[WorkerId] {
        &self.send_order
    }

    /// The return order `σ2`.
    pub fn return_order(&self) -> &[WorkerId] {
        &self.return_order
    }

    /// Load per worker (platform indexing).
    pub fn loads(&self) -> &[f64] {
        &self.loads
    }

    /// Load of one worker.
    pub fn load(&self, id: WorkerId) -> f64 {
        self.loads[id.index()]
    }

    /// Total load `Σ α_i` — the throughput when the schedule fits in
    /// `T = 1`.
    pub fn total_load(&self) -> f64 {
        self.loads.iter().sum()
    }

    /// Ids of workers that actually process load (`α_i > LOAD_EPS`), in
    /// send order.
    pub fn participants(&self) -> Vec<WorkerId> {
        self.send_order
            .iter()
            .copied()
            .filter(|id| self.loads[id.index()] > LOAD_EPS)
            .collect()
    }

    /// `true` when `σ2 = σ1` after dropping non-participants.
    pub fn is_fifo(&self) -> bool {
        let s = self.participants();
        let r: Vec<WorkerId> = self
            .return_order
            .iter()
            .copied()
            .filter(|id| self.loads[id.index()] > LOAD_EPS)
            .collect();
        s == r
    }

    /// `true` when `σ2 = σ1^R` after dropping non-participants.
    pub fn is_lifo(&self) -> bool {
        let s = self.participants();
        let mut r: Vec<WorkerId> = self
            .return_order
            .iter()
            .copied()
            .filter(|id| self.loads[id.index()] > LOAD_EPS)
            .collect();
        r.reverse();
        s == r
    }

    /// Returns a copy with every load scaled by `k` (the linear cost model
    /// makes schedules scale-invariant: timing scales by the same factor).
    pub fn scaled(&self, k: f64) -> Schedule {
        Schedule {
            send_order: self.send_order.clone(),
            return_order: self.return_order.clone(),
            loads: self.loads.iter().map(|l| l * k).collect(),
        }
    }

    /// Returns a copy with the given integer loads (platform indexing),
    /// preserving the orders. Used after [`crate::rounding`].
    pub fn with_loads(&self, loads: Vec<f64>) -> Schedule {
        assert_eq!(loads.len(), self.loads.len());
        Schedule {
            send_order: self.send_order.clone(),
            return_order: self.return_order.clone(),
            loads,
        }
    }

    /// Mirror image (Section 3, `z > 1` reduction): time reversal swaps the
    /// roles of sends and returns, so `σ1' = reverse(σ2)`,
    /// `σ2' = reverse(σ1)`; loads are unchanged. A schedule feasible on `P`
    /// within `T` is mirrored into one feasible on `P.mirror()` within `T`.
    pub fn mirror(&self) -> Schedule {
        Schedule {
            send_order: self.return_order.iter().rev().copied().collect(),
            return_order: self.send_order.iter().rev().copied().collect(),
            loads: self.loads.clone(),
        }
    }
}

#[cfg(test)]
// Unit tests assert exact outcomes of exact arithmetic.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn platform() -> Platform {
        Platform::star_with_z(&[(1.0, 2.0), (2.0, 3.0), (3.0, 4.0)], 0.5).unwrap()
    }

    fn ids(v: &[usize]) -> Vec<WorkerId> {
        v.iter().map(|&i| WorkerId(i)).collect()
    }

    #[test]
    fn fifo_and_lifo_constructors() {
        let p = platform();
        let f = Schedule::fifo(&p, ids(&[0, 1, 2]), vec![1.0, 1.0, 1.0]).unwrap();
        assert!(f.is_fifo());
        assert!(!f.is_lifo());
        let l = Schedule::lifo(&p, ids(&[0, 1, 2]), vec![1.0, 1.0, 1.0]).unwrap();
        assert!(l.is_lifo());
        assert!(!l.is_fifo());
        assert_eq!(l.return_order(), &ids(&[2, 1, 0])[..]);
    }

    #[test]
    fn single_worker_is_both_fifo_and_lifo() {
        let p = platform();
        let s = Schedule::fifo(&p, ids(&[1]), vec![0.0, 2.0, 0.0]).unwrap();
        assert!(s.is_fifo());
        assert!(s.is_lifo());
    }

    #[test]
    fn validation_rejects_duplicates_and_out_of_range() {
        let p = platform();
        assert!(matches!(
            Schedule::fifo(&p, ids(&[0, 0]), vec![1.0, 1.0, 0.0]),
            Err(CoreError::MalformedOrder(_))
        ));
        assert!(matches!(
            Schedule::fifo(&p, ids(&[7]), vec![1.0, 0.0, 0.0]),
            Err(CoreError::MalformedOrder(_))
        ));
        assert!(matches!(
            Schedule::new(&p, ids(&[0]), ids(&[1]), vec![1.0, 0.0, 0.0]),
            Err(CoreError::MalformedOrder(_))
        ));
        assert!(matches!(
            Schedule::fifo(&p, ids(&[0]), vec![1.0]),
            Err(CoreError::MalformedOrder(_))
        ));
        assert!(matches!(
            Schedule::fifo(&p, ids(&[0, 1, 2]), vec![1.0, -3.0, 0.0]),
            Err(CoreError::MalformedOrder(_))
        ));
    }

    #[test]
    fn participants_filter_zero_loads() {
        let p = platform();
        let s = Schedule::fifo(&p, ids(&[2, 0, 1]), vec![1.0, 0.0, 2.0]).unwrap();
        assert_eq!(s.participants(), ids(&[2, 0]));
        assert_eq!(s.total_load(), 3.0);
        assert_eq!(s.load(WorkerId(2)), 2.0);
    }

    #[test]
    fn fifo_check_ignores_idle_workers() {
        // Return order differs only in a zero-load worker's position: still
        // FIFO in effect.
        let p = platform();
        let s = Schedule::new(&p, ids(&[0, 1, 2]), ids(&[1, 0, 2]), vec![1.0, 0.0, 1.0]).unwrap();
        assert!(s.is_fifo());
    }

    #[test]
    fn scaling_scales_loads() {
        let p = platform();
        let s = Schedule::fifo(&p, ids(&[0, 1, 2]), vec![1.0, 2.0, 3.0]).unwrap();
        let t = s.scaled(0.5);
        assert_eq!(t.total_load(), 3.0);
        assert_eq!(t.send_order(), s.send_order());
    }

    #[test]
    fn mirror_swaps_orders_and_is_involutive() {
        let p = platform();
        let s = Schedule::new(&p, ids(&[0, 1, 2]), ids(&[1, 2, 0]), vec![1.0, 2.0, 3.0]).unwrap();
        let m = s.mirror();
        assert_eq!(m.send_order(), &ids(&[0, 2, 1])[..]);
        assert_eq!(m.return_order(), &ids(&[2, 1, 0])[..]);
        assert_eq!(m.mirror(), s);
    }

    #[test]
    fn mirror_of_fifo_is_fifo() {
        let p = platform();
        let s = Schedule::fifo(&p, ids(&[2, 1, 0]), vec![1.0, 1.0, 1.0]).unwrap();
        assert!(s.mirror().is_fifo());
        let l = Schedule::lifo(&p, ids(&[0, 1, 2]), vec![1.0, 1.0, 1.0]).unwrap();
        assert!(l.mirror().is_lifo());
        // LIFO mirrors onto the *same* send order.
        assert_eq!(l.mirror().send_order(), l.send_order());
    }

    #[test]
    fn tiny_negative_loads_clamped() {
        let p = platform();
        let s = Schedule::fifo(&p, ids(&[0, 1, 2]), vec![1.0, -1e-12, 0.0]).unwrap();
        assert_eq!(s.load(WorkerId(1)), 0.0);
    }
}
