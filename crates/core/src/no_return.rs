//! Classical divisible-load baselines *without* return messages.
//!
//! These are the results the paper builds on (Section 1): the landmark bus
//! closed form of Bataineh-Hsiung-Robertazzi \[5, 10\], and its star
//! generalization by Beaumont-Casanova-Legrand-Robert-Yang \[6\] where the
//! optimal order serves **larger-bandwidth workers first** (non-decreasing
//! `c_i`), all workers participate, none ever idles, and all finish
//! simultaneously.
//!
//! With no return messages, tight termination constraints
//! `Σ_{j≤i} α_j c_j + α_i w_i = 1` give the load chain
//! `α_{i+1} (c_{i+1} + w_{i+1}) = α_i w_i` and the scale `α_1 (c_1+w_1)=1`.
//!
//! These baselines quantify, in the benches, what return messages cost.

use dls_platform::{Platform, WorkerId};

use crate::error::CoreError;
use crate::schedule::Schedule;

/// Closed-form solution of the no-return-message DLS problem.
#[derive(Debug, Clone)]
pub struct NoReturnSolution {
    /// Loads by platform worker index.
    pub loads: Vec<f64>,
    /// Throughput `Σ α_i` for `T = 1`.
    pub throughput: f64,
    /// Service order used.
    pub order: Vec<WorkerId>,
}

impl NoReturnSolution {
    /// Packages the loads as a schedule (FIFO orders, though with `d = 0`
    /// the return order is immaterial). Note the schedule is built against
    /// a platform whose `d` may be nonzero — use
    /// [`no_return_platform`] to zero the return costs first if you intend
    /// to simulate it.
    pub fn schedule(&self, platform: &Platform) -> Schedule {
        Schedule::fifo(platform, self.order.clone(), self.loads.clone())
            .expect("closed-form loads are valid")
    }
}

/// Returns a copy of `platform` with all return costs zeroed (`d_i = 0`).
pub fn no_return_platform(platform: &Platform) -> Platform {
    Platform::new(
        platform
            .workers()
            .iter()
            .map(|w| dls_platform::Worker::new(w.c, w.w, 0.0))
            .collect(),
    )
    .expect("zeroing d keeps the platform valid")
}

/// Closed form for a fixed service order, ignoring return messages.
pub fn no_return_for_order(
    platform: &Platform,
    order: &[WorkerId],
) -> Result<NoReturnSolution, CoreError> {
    if order.is_empty() {
        return Err(CoreError::MalformedOrder("empty order".into()));
    }
    Schedule::fifo(platform, order.to_vec(), vec![0.0; platform.num_workers()])?;
    let q = order.len();
    let w = |i: usize| platform.worker(order[i]);

    let mut alphas = vec![0.0; q];
    alphas[0] = 1.0 / (w(0).c + w(0).w);
    for i in 0..q - 1 {
        alphas[i + 1] = alphas[i] * w(i).w / (w(i + 1).c + w(i + 1).w);
    }

    let mut loads = vec![0.0; platform.num_workers()];
    for (id, a) in order.iter().zip(&alphas) {
        loads[id.index()] = *a;
    }
    Ok(NoReturnSolution {
        throughput: alphas.iter().sum(),
        loads,
        order: order.to_vec(),
    })
}

/// Optimal no-return schedule (result of \[6\]): all workers served by
/// non-decreasing `c`.
pub fn optimal_no_return(platform: &Platform) -> Result<NoReturnSolution, CoreError> {
    no_return_for_order(platform, &platform.order_by_c())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::PortModel;
    use crate::timeline::makespan;

    #[test]
    fn two_worker_bus_hand_computed() {
        // c = 1, w = 2 each: alpha1 = 1/3, alpha2 = (1/3)(2/3) = 2/9.
        let p = Platform::bus(1.0, 0.0, &[2.0, 2.0]).unwrap();
        let sol = optimal_no_return(&p).unwrap();
        assert!((sol.loads[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((sol.loads[1] - 2.0 / 9.0).abs() < 1e-12);
        assert!((sol.throughput - 5.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn all_workers_finish_simultaneously() {
        let p = Platform::star_with_z(&[(1.0, 3.0), (2.0, 1.0), (1.5, 2.0)], 0.0).unwrap_or_else(
            |_| {
                // z = 0 makes d = 0 which is allowed.
                Platform::new(vec![
                    dls_platform::Worker::new(1.0, 3.0, 0.0),
                    dls_platform::Worker::new(2.0, 1.0, 0.0),
                    dls_platform::Worker::new(1.5, 2.0, 0.0),
                ])
                .unwrap()
            },
        );
        let sol = optimal_no_return(&p).unwrap();
        // Every worker's completion time is exactly 1.
        let order = &sol.order;
        let mut t = 0.0;
        for id in order {
            let a = sol.loads[id.index()];
            let w = p.worker(*id);
            t += a * w.c;
            let finish = t + a * w.w;
            assert!((finish - 1.0).abs() < 1e-9, "{id} finishes at {finish}");
        }
    }

    #[test]
    fn inc_c_is_optimal_order() {
        // Result of [6]: larger bandwidth (smaller c) first beats any other
        // order; check against all 6 permutations of a 3-worker star.
        let p = Platform::new(vec![
            dls_platform::Worker::new(1.0, 2.0, 0.0),
            dls_platform::Worker::new(2.0, 1.0, 0.0),
            dls_platform::Worker::new(3.0, 0.5, 0.0),
        ])
        .unwrap();
        let best = optimal_no_return(&p).unwrap().throughput;
        let perms: [[usize; 3]; 6] = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        for perm in perms {
            let order: Vec<WorkerId> = perm.iter().map(|&i| WorkerId(i)).collect();
            let sol = no_return_for_order(&p, &order).unwrap();
            assert!(
                sol.throughput <= best + 1e-9,
                "order {perm:?} beats INC_C: {} > {best}",
                sol.throughput
            );
        }
    }

    #[test]
    fn schedule_on_zeroed_platform_meets_horizon() {
        let p = Platform::bus(1.0, 0.5, &[2.0, 3.0]).unwrap();
        let zero = no_return_platform(&p);
        let sol = optimal_no_return(&zero).unwrap();
        let s = sol.schedule(&zero);
        let ms = makespan(&zero, &s, PortModel::OnePort);
        assert!((ms - 1.0).abs() < 1e-9);
    }

    #[test]
    fn no_return_dominates_with_return() {
        // Dropping return messages can only help throughput.
        let p = Platform::bus(1.0, 0.5, &[2.0, 3.0, 4.0]).unwrap();
        let with_ret = crate::closed_form::bus_fifo(&p).unwrap().throughput;
        let without = optimal_no_return(&no_return_platform(&p))
            .unwrap()
            .throughput;
        assert!(without >= with_ret - 1e-9);
    }

    #[test]
    fn empty_order_rejected() {
        let p = Platform::bus(1.0, 0.0, &[1.0]).unwrap();
        assert!(no_return_for_order(&p, &[]).is_err());
    }
}
