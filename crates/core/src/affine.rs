//! Affine cost model extension (Section 6 of the paper).
//!
//! The linear model charges `α·c` per message; the *affine* model adds a
//! fixed start-up latency per message (`C_i` forward, `D_i` return). The
//! paper's related-work section explains why this matters — latencies
//! cannot be ignored for multi-round schedules — and cites the
//! NP-hardness of the affine one-round problem on stars
//! (Legrand-Yang-Casanova \[20\]). The hardness comes from *enrollment*:
//! with latencies, a worker costs port time even for an infinitesimal
//! load, so resource selection is no longer free in the LP and must be
//! searched combinatorially.
//!
//! This module provides:
//!
//! * [`affine_fifo_for_set`] — the scenario LP for a fixed enrolled set
//!   (still an LP: latencies only shift the right-hand sides);
//! * [`affine_fifo_best_prefix`] — polynomial heuristic over `c`-sorted
//!   prefixes;
//! * [`affine_fifo_best_subset`] — exhaustive subset search (exact, small
//!   `p`), the NP-hard problem's ground truth;
//! * [`affine_makespan`] — analytic earliest-feasible makespan of a FIFO
//!   schedule under affine costs (cross-checked against the simulator's
//!   per-message latency model in the integration tests);
//! * [`AffineScheduler`] / [`install`] — the registry wrap: one
//!   [`SchedulerProvider`] exposing the solvers as `affine_fifo` strategies
//!   with parameterized ids (`affine_fifo@prefix`, `affine_fifo@subset`,
//!   `affine_fifo@prefix:0.05` for an explicit uniform latency).

use std::sync::Arc;

use dls_lp::SolverOptions;
use dls_platform::{Platform, WorkerId};

use crate::engine::{Execution, Provenance, Scheduler, SchedulerProvider, Solution};
use crate::error::CoreError;
use crate::schedule::{Schedule, LOAD_EPS};

/// Per-worker fixed message latencies.
#[derive(Debug, Clone, PartialEq)]
pub struct AffineLatencies {
    /// Start-up cost of the forward (data) message of each worker.
    pub send: Vec<f64>,
    /// Start-up cost of the return (result) message of each worker.
    pub ret: Vec<f64>,
}

impl AffineLatencies {
    /// Identical latencies for every worker.
    pub fn uniform(workers: usize, send: f64, ret: f64) -> Self {
        AffineLatencies {
            send: vec![send; workers],
            ret: vec![ret; workers],
        }
    }

    /// The linear model (all latencies zero).
    pub fn zero(workers: usize) -> Self {
        Self::uniform(workers, 0.0, 0.0)
    }

    fn validate(&self, platform: &Platform) -> Result<(), CoreError> {
        if self.send.len() != platform.num_workers() || self.ret.len() != platform.num_workers() {
            return Err(CoreError::MalformedOrder(format!(
                "latency vectors sized {}/{} for {} workers",
                self.send.len(),
                self.ret.len(),
                platform.num_workers()
            )));
        }
        if self
            .send
            .iter()
            .chain(&self.ret)
            .any(|l| !l.is_finite() || *l < 0.0)
        {
            return Err(CoreError::MalformedOrder(
                "latencies must be finite and non-negative".into(),
            ));
        }
        Ok(())
    }
}

/// Result of an affine FIFO optimization.
#[derive(Debug, Clone)]
pub struct AffineSolution {
    /// Schedule over the full platform (non-enrolled workers at load 0).
    pub schedule: Schedule,
    /// Throughput for `T = 1`.
    pub throughput: f64,
    /// The enrolled set, in service order.
    pub enrolled: Vec<WorkerId>,
}

/// Solves the affine FIFO LP for a **fixed** enrolled set/order.
///
/// Returns `Ok(None)` when the latencies alone already exceed the horizon
/// (no feasible positive schedule for this set).
pub fn affine_fifo_for_set(
    platform: &Platform,
    lat: &AffineLatencies,
    order: &[WorkerId],
) -> Result<Option<AffineSolution>, CoreError> {
    lat.validate(platform)?;
    Schedule::fifo(platform, order.to_vec(), vec![0.0; platform.num_workers()])?;
    if order.is_empty() {
        return Err(CoreError::MalformedOrder("empty enrolled order".into()));
    }
    let q = order.len();

    // Fixed latency budgets per constraint.
    let send_lat = |i: usize| lat.send[order[i].index()];
    let ret_lat = |i: usize| lat.ret[order[i].index()];
    let total_lat: f64 = (0..q).map(|i| send_lat(i) + ret_lat(i)).sum();

    // Latencies only *shift the right-hand sides*: the coefficient matrix
    // is the canonical scenario's, built once in
    // `lp_model::scenario_model_with_rhs` (the single source of the
    // (2a)/(2b) rows). Per-row budget: all forward latencies up to k plus
    // all return latencies from k onward.
    let mut deadline_rhs = Vec::with_capacity(q);
    for k in 0..q {
        let fixed: f64 = (0..=k).map(send_lat).sum::<f64>() + (k..q).map(ret_lat).sum::<f64>();
        let rhs = 1.0 - fixed;
        if rhs < 0.0 {
            return Ok(None);
        }
        deadline_rhs.push(rhs);
    }
    let one_port_rhs = 1.0 - total_lat;
    if one_port_rhs < 0.0 {
        return Ok(None);
    }
    let (ir, vars) = crate::lp_model::scenario_model_with_rhs(
        platform,
        order,
        order,
        crate::schedule::PortModel::OnePort,
        &deadline_rhs,
        one_port_rhs,
    )?;

    // This path solves on the tableau directly (no engine router), so it
    // runs the pre-solve static analyzer itself.
    crate::lp_model::analyze_gate(&ir)?;
    let lp = ir.lower();
    let sol = dls_lp::solve_with::<f64>(
        &lp,
        &SolverOptions::for_size(lp.num_vars(), lp.num_constraints()),
    )?;
    let mut loads = vec![0.0; platform.num_workers()];
    for (k, &id) in order.iter().enumerate() {
        loads[id.index()] = sol.value(vars.alphas[k]).max(0.0);
    }
    let schedule = Schedule::fifo(platform, order.to_vec(), loads)?;
    Ok(Some(AffineSolution {
        throughput: sol.objective,
        enrolled: order.to_vec(),
        schedule,
    }))
}

/// Polynomial heuristic: best `c`-sorted prefix (by Theorem 1 intuition;
/// exact in the linear limit, a heuristic once latencies bite — see \[20\]).
pub fn affine_fifo_best_prefix(
    platform: &Platform,
    lat: &AffineLatencies,
) -> Result<AffineSolution, CoreError> {
    let sorted = platform.order_by_c();
    let mut best: Option<AffineSolution> = None;
    for k in 1..=sorted.len() {
        if let Some(sol) = affine_fifo_for_set(platform, lat, &sorted[..k])? {
            if best
                .as_ref()
                .map(|b| sol.throughput > b.throughput + LOAD_EPS)
                .unwrap_or(true)
            {
                best = Some(sol);
            }
        }
    }
    best.ok_or_else(|| {
        CoreError::MalformedOrder("latencies exceed the horizon for every prefix".into())
    })
}

/// Exhaustive subset search (exact for the `c`-sorted order family);
/// guarded to `p ≤ limit` since the affine selection problem is NP-hard.
pub fn affine_fifo_best_subset(
    platform: &Platform,
    lat: &AffineLatencies,
    limit: usize,
) -> Result<AffineSolution, CoreError> {
    let p = platform.num_workers();
    if p > limit {
        return Err(CoreError::TooManyWorkers { got: p, limit });
    }
    let sorted = platform.order_by_c();
    let mut best: Option<AffineSolution> = None;
    for mask in 1u32..(1u32 << p) {
        let order: Vec<WorkerId> = sorted
            .iter()
            .enumerate()
            .filter(|(k, _)| mask & (1 << k) != 0)
            .map(|(_, id)| *id)
            .collect();
        if let Some(sol) = affine_fifo_for_set(platform, lat, &order)? {
            if best
                .as_ref()
                .map(|b| sol.throughput > b.throughput + LOAD_EPS)
                .unwrap_or(true)
            {
                best = Some(sol);
            }
        }
    }
    best.ok_or_else(|| {
        CoreError::MalformedOrder("latencies exceed the horizon for every subset".into())
    })
}

/// Earliest-feasible makespan of a FIFO schedule under affine costs
/// (sends back-to-back with latency, returns in order as soon as the port
/// is free and the worker has computed).
pub fn affine_makespan(platform: &Platform, lat: &AffineLatencies, schedule: &Schedule) -> f64 {
    let participants: Vec<WorkerId> = schedule.participants();
    let mut compute_end = vec![0.0; platform.num_workers()];
    let mut t = 0.0;
    for &id in &participants {
        let w = platform.worker(id);
        let alpha = schedule.load(id);
        t += lat.send[id.index()] + alpha * w.c;
        compute_end[id.index()] = t + alpha * w.w;
    }
    let mut port_free = t;
    let mut makespan: f64 = t;
    for &id in schedule.return_order() {
        let alpha = schedule.load(id);
        if alpha <= LOAD_EPS {
            continue;
        }
        let w = platform.worker(id);
        let start = port_free.max(compute_end[id.index()]);
        port_free = start + lat.ret[id.index()] + alpha * w.d;
        makespan = makespan.max(port_free).max(compute_end[id.index()]);
    }
    for &id in &participants {
        makespan = makespan.max(compute_end[id.index()]);
    }
    makespan
}

// ---------------------------------------------------------------------------
// Registry wrap: the affine solvers as engine strategies.
// ---------------------------------------------------------------------------

/// Uniform per-message latency of the default registry instance, as a
/// fraction of the horizon (`T = 1`). Small enough that every paper-scale
/// platform stays feasible, large enough that latency-driven resource
/// selection is visible in the tables.
pub const DEFAULT_AFFINE_LATENCY: f64 = 0.01;

/// Size guard for the exhaustive subset search (`2^p` LPs) behind
/// `affine_fifo@subset` — the NP-hard selection problem's exact mode.
pub const SUBSET_SEARCH_LIMIT: usize = 12;

/// Which affine enrollment-search mode an [`AffineScheduler`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AffineMode {
    /// Best `c`-sorted prefix ([`affine_fifo_best_prefix`], `p` LPs).
    Prefix,
    /// Exhaustive subset search ([`affine_fifo_best_subset`], `2^p` LPs,
    /// guarded by [`SUBSET_SEARCH_LIMIT`]).
    Subset,
}

impl AffineMode {
    fn id_suffix(self) -> &'static str {
        match self {
            AffineMode::Prefix => "prefix",
            AffineMode::Subset => "subset",
        }
    }
}

/// A constructor-configured affine FIFO strategy: a search mode plus a
/// uniform per-message latency (applied to both the forward and the return
/// message of every worker).
///
/// Reported throughput is the affine LP objective — the achieved value
/// *under affine costs*. The default [`Scheduler::solve_exact`] re-solves
/// the chosen scenario under the *linear* model (latencies dropped), so its
/// exact objective upper-bounds the affine one; with latency `0` the two
/// coincide and `affine_fifo@prefix:0` reproduces `optimal_fifo` exactly.
#[derive(Debug, Clone)]
pub struct AffineScheduler {
    mode: AffineMode,
    latency: f64,
    name: String,
    legend: String,
}

impl AffineScheduler {
    /// A strategy named `affine_fifo@<mode>[:<latency>]`.
    pub fn new(mode: AffineMode, latency: f64) -> Self {
        let (name, legend) = if latency == DEFAULT_AFFINE_LATENCY {
            (
                format!("affine_fifo@{}", mode.id_suffix()),
                format!("AFF_{}", mode.id_suffix().to_uppercase()),
            )
        } else {
            (
                format!("affine_fifo@{}:{latency}", mode.id_suffix()),
                format!("AFF_{}:{latency}", mode.id_suffix().to_uppercase()),
            )
        };
        AffineScheduler {
            mode,
            latency,
            name,
            legend,
        }
    }

    /// The default registry instance: plain `affine_fifo` id, prefix
    /// search, [`DEFAULT_AFFINE_LATENCY`].
    pub fn registry_default() -> Self {
        AffineScheduler {
            mode: AffineMode::Prefix,
            latency: DEFAULT_AFFINE_LATENCY,
            name: "affine_fifo".into(),
            legend: "AFF_FIFO".into(),
        }
    }

    /// The configured search mode.
    pub fn mode(&self) -> AffineMode {
        self.mode
    }

    /// The configured uniform per-message latency.
    pub fn latency(&self) -> f64 {
        self.latency
    }

    /// The latency vectors this strategy charges on `platform`.
    pub fn latencies(&self, platform: &Platform) -> AffineLatencies {
        AffineLatencies::uniform(platform.num_workers(), self.latency, self.latency)
    }
}

impl Scheduler for AffineScheduler {
    fn name(&self) -> &str {
        &self.name
    }

    fn legend(&self) -> &str {
        &self.legend
    }

    fn solve(&self, platform: &Platform) -> Result<Solution, CoreError> {
        let lat = self.latencies(platform);
        let (sol, evaluated) = match self.mode {
            AffineMode::Prefix => (
                affine_fifo_best_prefix(platform, &lat)?,
                platform.num_workers(),
            ),
            AffineMode::Subset => (
                affine_fifo_best_subset(platform, &lat, SUBSET_SEARCH_LIMIT)?,
                (1usize << platform.num_workers()) - 1,
            ),
        };
        Ok(Solution {
            schedule: sol.schedule,
            throughput: sol.throughput,
            provenance: Provenance::Search { evaluated },
            execution: Execution::Direct,
        })
    }
}

/// The provider handing the `affine_fifo` family to the engine registry —
/// the ROADMAP's "one-provider wrap" of the Section 6 solvers. Installed
/// by [`install`].
pub struct AffineProvider;

impl AffineProvider {
    fn parse(name: &str) -> Option<AffineScheduler> {
        let rest = name.strip_prefix("affine_fifo")?;
        if rest.is_empty() {
            return Some(AffineScheduler::registry_default());
        }
        let params = rest.strip_prefix('@')?;
        let (mode_str, latency) = match params.split_once(':') {
            Some((m, l)) => {
                let lat: f64 = l.parse().ok()?;
                if !lat.is_finite() || lat < 0.0 {
                    return None;
                }
                (m, lat)
            }
            None => (params, DEFAULT_AFFINE_LATENCY),
        };
        let mode = match mode_str {
            "prefix" => AffineMode::Prefix,
            "subset" => AffineMode::Subset,
            _ => return None,
        };
        let mut s = AffineScheduler::new(mode, latency);
        // Preserve the exact spelling that was looked up (id == name, like
        // every other provider): `affine_fifo@prefix:0.01` must not
        // collapse into the default-latency name.
        s.name = name.to_string();
        Some(s)
    }
}

impl SchedulerProvider for AffineProvider {
    fn group(&self) -> &'static str {
        "affine"
    }

    fn schedulers(&self) -> Vec<Box<dyn Scheduler>> {
        vec![Box::new(AffineScheduler::registry_default())]
    }

    fn resolve(&self, name: &str) -> Option<Box<dyn Scheduler>> {
        Self::parse(name).map(|s| Box::new(s) as Box<dyn Scheduler>)
    }
}

/// Installs the affine provider into [`crate::registry`] (idempotent).
/// After this, `registry()` lists `affine_fifo` and [`crate::lookup`]
/// resolves parameterized ids such as `affine_fifo@subset` and
/// `affine_fifo@prefix:0.05`.
pub fn install() {
    crate::register_provider(Arc::new(AffineProvider));
}

#[cfg(test)]
// Unit tests assert exact outcomes of exact arithmetic.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::lp_model::solve_fifo;
    use crate::schedule::PortModel;

    fn star(n: usize) -> Platform {
        let cw: Vec<(f64, f64)> = (0..n)
            .map(|i| (1.0 + 0.3 * i as f64, 2.0 + 0.5 * ((i * 7) % 5) as f64))
            .collect();
        Platform::star_with_z(&cw, 0.5).unwrap()
    }

    #[test]
    fn zero_latency_reduces_to_linear_model() {
        let p = star(4);
        let lat = AffineLatencies::zero(4);
        let order = p.order_by_c();
        let affine = affine_fifo_for_set(&p, &lat, &order).unwrap().unwrap();
        let linear = solve_fifo(&p, &order, PortModel::OnePort).unwrap();
        assert!((affine.throughput - linear.throughput).abs() < 1e-7);
    }

    #[test]
    fn latency_strictly_decreases_throughput() {
        let p = star(3);
        let order = p.order_by_c();
        let base = affine_fifo_for_set(&p, &AffineLatencies::zero(3), &order)
            .unwrap()
            .unwrap()
            .throughput;
        let mut last = base;
        for l in [0.01, 0.05, 0.1] {
            let sol = affine_fifo_for_set(&p, &AffineLatencies::uniform(3, l, l), &order)
                .unwrap()
                .unwrap();
            assert!(sol.throughput < last, "latency {l} did not hurt");
            last = sol.throughput;
        }
    }

    #[test]
    fn huge_latency_makes_set_infeasible() {
        let p = star(3);
        let order = p.order_by_c();
        let sol = affine_fifo_for_set(&p, &AffineLatencies::uniform(3, 0.4, 0.4), &order).unwrap();
        // 3 workers x 0.8 latency = 2.4 > 1: no feasible schedule.
        assert!(sol.is_none());
    }

    #[test]
    fn latency_drives_resource_selection() {
        // With heavy per-message cost, enrolling fewer workers wins even
        // when all links are identical — impossible in the linear model.
        let p = Platform::bus(0.05, 0.025, &[1.0, 1.0, 1.0, 1.0]).unwrap();
        let no_lat = affine_fifo_best_subset(&p, &AffineLatencies::zero(4), 16).unwrap();
        assert_eq!(no_lat.enrolled.len(), 4, "linear model enrolls everyone");
        let heavy =
            affine_fifo_best_subset(&p, &AffineLatencies::uniform(4, 0.12, 0.12), 16).unwrap();
        assert!(
            heavy.enrolled.len() < 4,
            "expected latency-driven drop-out, got {:?}",
            heavy.enrolled
        );
    }

    #[test]
    fn subset_dominates_prefix() {
        let p = star(5);
        let lat = AffineLatencies::uniform(5, 0.05, 0.02);
        let prefix = affine_fifo_best_prefix(&p, &lat).unwrap();
        let subset = affine_fifo_best_subset(&p, &lat, 16).unwrap();
        assert!(subset.throughput >= prefix.throughput - 1e-9);
    }

    #[test]
    fn lp_solution_saturates_affine_horizon() {
        let p = star(3);
        let lat = AffineLatencies::uniform(3, 0.03, 0.01);
        let sol = affine_fifo_best_prefix(&p, &lat).unwrap();
        let ms = affine_makespan(&p, &lat, &sol.schedule);
        assert!(
            (ms - 1.0).abs() < 1e-6,
            "affine optimum should fill the horizon: {ms}"
        );
    }

    #[test]
    fn affine_makespan_reduces_to_timeline_without_latency() {
        let p = star(4);
        let order = p.order_by_c();
        let sol = solve_fifo(&p, &order, PortModel::OnePort).unwrap();
        let lat = AffineLatencies::zero(4);
        let a = affine_makespan(&p, &lat, &sol.schedule);
        let b = crate::timeline::makespan(&p, &sol.schedule, PortModel::OnePort);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn provider_parses_defaults_and_parameterized_ids_only() {
        assert_eq!(
            AffineProvider::parse("affine_fifo").unwrap().name(),
            "affine_fifo"
        );
        let s = AffineProvider::parse("affine_fifo@subset").unwrap();
        assert_eq!(s.mode(), AffineMode::Subset);
        assert_eq!(s.latency(), DEFAULT_AFFINE_LATENCY);
        assert_eq!(s.name(), "affine_fifo@subset");
        let s = AffineProvider::parse("affine_fifo@prefix:0.05").unwrap();
        assert_eq!(s.mode(), AffineMode::Prefix);
        assert!((s.latency() - 0.05).abs() < 1e-12);
        // Explicit spellings of the default latency keep their exact id
        // (id == name round-trip, like every other provider).
        let s = AffineProvider::parse("affine_fifo@prefix:0.01").unwrap();
        assert_eq!(s.name(), "affine_fifo@prefix:0.01");
        assert_eq!(s.latency(), DEFAULT_AFFINE_LATENCY);
        assert!(AffineProvider::parse("affine_fifo@chaos").is_none());
        assert!(AffineProvider::parse("affine_fifo@prefix:-1").is_none());
        assert!(AffineProvider::parse("affine_fifox").is_none());
        assert!(AffineProvider::parse("optimal_fifo").is_none());
    }

    #[test]
    fn scheduler_zero_latency_reproduces_optimal_fifo() {
        let p = star(4);
        let zero = AffineScheduler::new(AffineMode::Prefix, 0.0);
        assert_eq!(zero.name(), "affine_fifo@prefix:0");
        let sol = zero.solve(&p).unwrap();
        let opt = crate::fifo::optimal_fifo(&p).unwrap();
        assert!((sol.throughput - opt.throughput).abs() < 1e-7);
        assert_eq!(sol.execution, Execution::Direct);
    }

    #[test]
    fn scheduler_latency_reduces_throughput_and_subset_dominates() {
        let p = star(5);
        let prefix = AffineScheduler::registry_default().solve(&p).unwrap();
        let subset = AffineScheduler::new(AffineMode::Subset, DEFAULT_AFFINE_LATENCY)
            .solve(&p)
            .unwrap();
        let opt = crate::fifo::optimal_fifo(&p).unwrap();
        assert!(prefix.throughput < opt.throughput);
        assert!(subset.throughput >= prefix.throughput - 1e-9);
        assert!(matches!(
            prefix.provenance,
            Provenance::Search { evaluated: 5 }
        ));
        assert!(matches!(
            subset.provenance,
            Provenance::Search { evaluated: 31 }
        ));
    }

    #[test]
    fn subset_mode_is_guarded_by_the_size_limit() {
        let cw: Vec<(f64, f64)> = (0..SUBSET_SEARCH_LIMIT + 1)
            .map(|i| (1.0 + i as f64, 2.0))
            .collect();
        let p = Platform::star_with_z(&cw, 0.5).unwrap();
        let err = AffineScheduler::new(AffineMode::Subset, 0.001)
            .solve(&p)
            .unwrap_err();
        assert!(matches!(err, CoreError::TooManyWorkers { .. }));
        assert!(err.is_applicability());
    }

    #[test]
    fn mismatched_latency_vectors_rejected() {
        let p = star(3);
        let lat = AffineLatencies::zero(2);
        assert!(affine_fifo_for_set(&p, &lat, &p.order_by_c()).is_err());
        let bad = AffineLatencies {
            send: vec![0.0, -1.0, 0.0],
            ret: vec![0.0; 3],
        };
        assert!(affine_fifo_for_set(&p, &bad, &p.order_by_c()).is_err());
    }
}
