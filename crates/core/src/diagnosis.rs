//! Bottleneck diagnosis via LP duality.
//!
//! The dual value (shadow price) of each constraint of LP (2) measures the
//! throughput gained per unit of extra deadline budget: a positive dual on
//! the one-port row (2b) means the master's port is the bottleneck (the
//! comm-bound regime of Theorem 2); positive duals on deadline rows (2a)
//! identify the workers whose timing chain limits the schedule. Because
//! every right-hand side is `T = 1`, strong duality gives the tidy
//! identity `Σ duals = ρ` — which the tests exploit.

use dls_platform::{Platform, WorkerId};

use crate::error::CoreError;
use crate::lp_model::build_problem;
use crate::schedule::PortModel;

/// Shadow prices of a scenario's constraints.
#[derive(Debug, Clone)]
pub struct Diagnosis {
    /// Throughput of the diagnosed scenario.
    pub throughput: f64,
    /// Shadow price of the one-port constraint (2b); 0 under two-port or
    /// when the port is not saturated.
    pub port_dual: f64,
    /// `(worker, shadow price)` of each deadline constraint (2a), in
    /// enrollment order.
    pub deadline_duals: Vec<(WorkerId, f64)>,
}

impl Diagnosis {
    /// `true` when the master's port is the binding resource.
    pub fn is_comm_bound(&self) -> bool {
        self.port_dual > 1e-7
    }

    /// Workers whose deadline constraints bind (positive shadow price).
    pub fn binding_workers(&self) -> Vec<WorkerId> {
        self.deadline_duals
            .iter()
            .filter(|(_, y)| *y > 1e-7)
            .map(|(w, _)| *w)
            .collect()
    }
}

/// Solves the scenario LP and extracts its dual prices.
pub fn diagnose(
    platform: &Platform,
    send_order: &[WorkerId],
    return_order: &[WorkerId],
    model: PortModel,
) -> Result<Diagnosis, CoreError> {
    let (lp, _vars) = build_problem(platform, send_order, return_order, model)?;
    let sol = dls_lp::solve(&lp)?;

    // Constraint layout from build_problem: one deadline row per enrolled
    // worker (send order), then the one-port row if applicable.
    let q = send_order.len();
    let deadline_duals: Vec<(WorkerId, f64)> = send_order
        .iter()
        .zip(&sol.duals)
        .map(|(w, y)| (*w, y.max(0.0)))
        .collect();
    let port_dual = if model == PortModel::OnePort {
        sol.duals[q].max(0.0)
    } else {
        0.0
    };
    Ok(Diagnosis {
        throughput: sol.objective,
        port_dual,
        deadline_duals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diagnose_fifo(p: &Platform) -> Diagnosis {
        let order = p.order_by_c();
        diagnose(p, &order, &order, PortModel::OnePort).unwrap()
    }

    #[test]
    fn comm_bound_platform_has_positive_port_dual() {
        // Very fast workers: the port is the bottleneck.
        let p = Platform::star_with_z(&[(1.0, 0.01), (1.0, 0.01)], 0.5).unwrap();
        let d = diagnose_fifo(&p);
        assert!(d.is_comm_bound(), "port dual = {}", d.port_dual);
    }

    #[test]
    fn compute_bound_platform_has_zero_port_dual() {
        let p = Platform::star_with_z(&[(0.1, 10.0), (0.1, 12.0)], 0.5).unwrap();
        let d = diagnose_fifo(&p);
        assert!(!d.is_comm_bound(), "port dual = {}", d.port_dual);
        // Every enrolled worker's deadline binds.
        assert_eq!(d.binding_workers().len(), 2);
    }

    #[test]
    fn duals_sum_to_throughput() {
        // All rhs are 1, so strong duality gives sum(duals) = rho.
        for p in [
            Platform::star_with_z(&[(1.0, 2.0), (2.0, 1.0), (1.5, 3.0)], 0.5).unwrap(),
            Platform::star_with_z(&[(1.0, 0.05), (1.2, 0.02)], 0.5).unwrap(),
        ] {
            let d = diagnose_fifo(&p);
            let total: f64 = d.deadline_duals.iter().map(|(_, y)| y).sum::<f64>() + d.port_dual;
            assert!(
                (total - d.throughput).abs() < 1e-6,
                "sum of duals {total} != rho {}",
                d.throughput
            );
        }
    }

    #[test]
    fn two_port_never_reports_port_bound() {
        let p = Platform::star_with_z(&[(1.0, 0.01), (1.0, 0.01)], 0.5).unwrap();
        let order = p.order_by_c();
        let d = diagnose(&p, &order, &order, PortModel::TwoPort).unwrap();
        assert!(!d.is_comm_bound());
    }

    #[test]
    fn non_participating_worker_has_zero_dual() {
        // A worker the LP excludes cannot have a binding deadline.
        let p = Platform::star_with_z(&[(0.1, 1.0), (0.1, 1.0), (50.0, 1.0)], 0.5).unwrap();
        let d = diagnose_fifo(&p);
        let slow = d
            .deadline_duals
            .iter()
            .find(|(w, _)| w.index() == 2)
            .unwrap();
        assert!(slow.1 < 1e-7, "excluded worker has dual {}", slow.1);
    }
}
