//! Theorem 2: closed-form optimal FIFO throughput on a bus network.
//!
//! For a bus (`c_i = c`, `d_i = d`) the optimal one-port FIFO throughput is
//!
//! ```text
//! ρ_opt = min{ 1/(c+d),  U / (1 + d·U) }
//! U     = Σ_i u_i,   u_i = 1/(d+w_i) · Π_{j≤i} (d+w_j)/(c+w_j)
//! ```
//!
//! and **all** processors are enrolled. The `U/(1+dU)` term is the optimal
//! *two-port* throughput `ρ̃` of the companion paper \[7, 8\]; the paper's
//! proof (Figure 7) turns the two-port schedule into a one-port one:
//!
//! * if `ρ̃ ≤ 1/(c+d)` sends and returns never overlap, so the two-port
//!   schedule already obeys the one-port rule;
//! * otherwise insert a uniform gap `x = ρ̃(c+d) − 1` before every return
//!   and rescale everything by `1/(ρ̃(c+d))`, landing exactly on
//!   `ρ_opt = 1/(c+d)`.
//!
//! This module also derives the per-worker loads: the two-port loads are
//! `α_i = u_i / (1 + dU)` (recovered here from the tight constraint chain;
//! validated against the LP in tests), and the one-port loads follow by the
//! rescaling above.

use dls_platform::Platform;

use crate::error::CoreError;
use crate::schedule::Schedule;

/// Which regime of Theorem 2's `min` applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusRegime {
    /// `ρ̃ ≤ 1/(c+d)`: computation is the bottleneck; the two-port optimum
    /// is already one-port feasible and no idle time is needed.
    ComputeBound,
    /// `ρ̃ > 1/(c+d)`: the master's port is saturated; every worker gets a
    /// uniform idle gap and `ρ_opt = 1/(c+d)`.
    CommBound,
}

/// Closed-form solution of Theorem 2.
#[derive(Debug, Clone)]
pub struct BusFifoSolution {
    /// Optimal one-port FIFO throughput `ρ_opt`.
    pub throughput: f64,
    /// Optimal two-port FIFO throughput `ρ̃ = U/(1+dU)` from \[7, 8\].
    pub two_port_throughput: f64,
    /// One-port loads per worker, in platform declaration order (which is
    /// also the FIFO service order; on a bus all FIFO orders are
    /// equivalent).
    pub loads: Vec<f64>,
    /// Uniform idle gap inserted before each return (0 when compute-bound).
    pub gap: f64,
    /// Which side of the `min` fired.
    pub regime: BusRegime,
}

impl BusFifoSolution {
    /// Packages the loads as a FIFO [`Schedule`] in declaration order.
    pub fn schedule(&self, platform: &Platform) -> Schedule {
        Schedule::fifo(platform, platform.ids().collect(), self.loads.clone())
            .expect("closed-form loads are valid")
    }
}

/// Evaluates Theorem 2 on a bus platform.
///
/// Errors with [`CoreError::NotABus`] when links are heterogeneous.
pub fn bus_fifo(platform: &Platform) -> Result<BusFifoSolution, CoreError> {
    if !platform.is_bus() {
        return Err(CoreError::NotABus);
    }
    let c = platform.workers()[0].c;
    let d = platform.workers()[0].d;

    // u_i = 1/(d+w_i) * prod_{j<=i} (d+w_j)/(c+w_j), accumulated left to
    // right.
    let mut prefix = 1.0;
    let mut us = Vec::with_capacity(platform.num_workers());
    for w in platform.workers() {
        prefix *= (d + w.w) / (c + w.w);
        us.push(prefix / (d + w.w));
    }
    let u: f64 = us.iter().sum();

    let rho_two_port = u / (1.0 + d * u);
    let comm_cap = 1.0 / (c + d);

    // Two-port loads: alpha_i = u_i / (1 + dU).
    let two_port_loads: Vec<f64> = us.iter().map(|ui| ui / (1.0 + d * u)).collect();

    if rho_two_port <= comm_cap {
        Ok(BusFifoSolution {
            throughput: rho_two_port,
            two_port_throughput: rho_two_port,
            loads: two_port_loads,
            gap: 0.0,
            regime: BusRegime::ComputeBound,
        })
    } else {
        // Figure 7 transformation: scale by 1/(rho~ (c+d)), uniform gap.
        let scale = 1.0 / (rho_two_port * (c + d));
        let loads: Vec<f64> = two_port_loads.iter().map(|a| a * scale).collect();
        Ok(BusFifoSolution {
            throughput: comm_cap,
            two_port_throughput: rho_two_port,
            loads,
            gap: 1.0 - scale,
            regime: BusRegime::CommBound,
        })
    }
}

/// Closed-form optimal LIFO solution on a **star** (companion papers
/// \[7, 8\], restated in Section 5: all workers participate, served by
/// non-decreasing `c`, with no idle time).
///
/// With every deadline tight and no idle, consecutive constraints give the
/// load chain
///
/// ```text
/// α_{i+1} (c_{i+1} + w_{i+1} + d_{i+1}) = α_i · w_i,
/// α_1 (c_1 + w_1 + d_1) = 1,
/// ```
///
/// which is `O(p)` — no LP required. Validated against
/// [`crate::lifo::optimal_lifo`] in tests; on a bus it specializes to the
/// companion papers' bus LIFO formula.
#[derive(Debug, Clone)]
pub struct StarLifoSolution {
    /// Loads by platform worker index (all strictly positive).
    pub loads: Vec<f64>,
    /// Optimal LIFO throughput.
    pub throughput: f64,
    /// Send order used (non-decreasing `c`).
    pub order: Vec<dls_platform::WorkerId>,
}

impl StarLifoSolution {
    /// Packages the loads as a LIFO schedule.
    pub fn schedule(&self, platform: &Platform) -> Schedule {
        Schedule::lifo(platform, self.order.clone(), self.loads.clone())
            .expect("closed-form loads are valid")
    }
}

/// Evaluates the LIFO closed form on any star platform.
pub fn star_lifo(platform: &Platform) -> StarLifoSolution {
    let order = platform.order_by_c();
    let q = order.len();
    let w = |i: usize| platform.worker(order[i]);

    let mut alphas = vec![0.0; q];
    alphas[0] = 1.0 / (w(0).c + w(0).w + w(0).d);
    for i in 0..q - 1 {
        let nxt = w(i + 1);
        alphas[i + 1] = alphas[i] * w(i).w / (nxt.c + nxt.w + nxt.d);
    }

    let mut loads = vec![0.0; platform.num_workers()];
    for (id, a) in order.iter().zip(&alphas) {
        loads[id.index()] = *a;
    }
    StarLifoSolution {
        throughput: alphas.iter().sum(),
        loads,
        order,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifo::optimal_lifo;
    use crate::lp_model::solve_fifo;
    use crate::schedule::PortModel;
    use crate::timeline::{makespan, Timeline};
    use dls_platform::WorkerId;

    #[test]
    fn single_worker_bus_closed_form() {
        // One worker: rho~ = u1/(1+d u1), u1 = 1/(c+w1);
        // rho~ = 1/(c+w+d). comm_cap = 1/(c+d) > rho~ so compute-bound.
        let p = Platform::bus(2.0, 1.0, &[3.0]).unwrap();
        let sol = bus_fifo(&p).unwrap();
        assert_eq!(sol.regime, BusRegime::ComputeBound);
        assert!((sol.throughput - 1.0 / 6.0).abs() < 1e-12);
        assert!((sol.loads[0] - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn closed_form_matches_lp_compute_bound() {
        // Slow workers: compute-bound regime.
        let p = Platform::bus(1.0, 0.5, &[10.0, 8.0, 12.0, 9.0]).unwrap();
        let sol = bus_fifo(&p).unwrap();
        assert_eq!(sol.regime, BusRegime::ComputeBound);
        let lp = solve_fifo(&p, &p.order_by_c(), PortModel::OnePort).unwrap();
        assert!(
            (sol.throughput - lp.throughput).abs() < 1e-7,
            "closed form {} vs LP {}",
            sol.throughput,
            lp.throughput
        );
    }

    #[test]
    fn closed_form_matches_lp_comm_bound() {
        // Fast workers: the master's port saturates.
        let p = Platform::bus(1.0, 0.5, &[0.1, 0.2, 0.1, 0.15]).unwrap();
        let sol = bus_fifo(&p).unwrap();
        assert_eq!(sol.regime, BusRegime::CommBound);
        assert!((sol.throughput - 1.0 / 1.5).abs() < 1e-12);
        let lp = solve_fifo(&p, &p.order_by_c(), PortModel::OnePort).unwrap();
        assert!((sol.throughput - lp.throughput).abs() < 1e-7);
        assert!(sol.gap > 0.0);
    }

    #[test]
    fn loads_match_lp_loads_up_to_symmetry() {
        // With distinct w_i the optimal loads are unique; compare vectors.
        let p = Platform::bus(1.0, 0.5, &[5.0, 7.0, 9.0]).unwrap();
        let sol = bus_fifo(&p).unwrap();
        let lp = solve_fifo(&p, &p.ids().collect::<Vec<_>>(), PortModel::OnePort).unwrap();
        for (i, l) in sol.loads.iter().enumerate() {
            let lp_l = lp.schedule.load(WorkerId(i));
            assert!((l - lp_l).abs() < 1e-6, "load {i}: closed {l} vs lp {lp_l}");
        }
    }

    #[test]
    fn all_workers_enrolled() {
        let p = Platform::bus(1.0, 0.5, &[1.0, 50.0, 2.0]).unwrap();
        let sol = bus_fifo(&p).unwrap();
        assert!(sol.loads.iter().all(|&l| l > 0.0));
    }

    #[test]
    fn throughput_is_order_invariant_on_bus() {
        // Adler-Gong-Rosenberg: all FIFO orderings are equivalent on a bus.
        let ws = [3.0, 1.0, 7.0, 2.0];
        let p1 = Platform::bus(1.0, 0.5, &ws).unwrap();
        let mut rev = ws;
        rev.reverse();
        let p2 = Platform::bus(1.0, 0.5, &rev).unwrap();
        let a = bus_fifo(&p1).unwrap().throughput;
        let b = bus_fifo(&p2).unwrap().throughput;
        assert!(
            (a - b).abs() < 1e-9,
            "order changed bus throughput: {a} vs {b}"
        );
    }

    #[test]
    fn closed_form_schedule_fits_horizon() {
        for ws in [vec![10.0, 8.0], vec![0.1, 0.2, 0.3]] {
            let p = Platform::bus(1.0, 0.5, &ws).unwrap();
            let sol = bus_fifo(&p).unwrap();
            let s = sol.schedule(&p);
            let ms = makespan(&p, &s, PortModel::OnePort);
            assert!(ms <= 1.0 + 1e-9, "overflow: {ms}");
            // And saturates it (optimality).
            assert!((ms - 1.0).abs() < 1e-7, "wasted time: {ms}");
            let t = Timeline::build(&p, &s, PortModel::OnePort);
            assert!(t.verify(&p, &s, 1e-7).is_empty());
        }
    }

    #[test]
    fn comm_bound_gap_matches_timeline_idle() {
        // In the comm-bound regime every worker's physical idle time in the
        // earliest-feasible timeline... the *uniform-gap* construction is
        // one canonical optimal schedule; the eager timeline may place
        // returns earlier but the total makespan is identical.
        let p = Platform::bus(1.0, 0.5, &[0.1, 0.1]).unwrap();
        let sol = bus_fifo(&p).unwrap();
        let s = sol.schedule(&p);
        assert!((makespan(&p, &s, PortModel::OnePort) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn star_is_rejected() {
        let p = Platform::star_with_z(&[(1.0, 1.0), (2.0, 1.0)], 0.5).unwrap();
        assert_eq!(bus_fifo(&p).unwrap_err(), CoreError::NotABus);
    }

    #[test]
    fn two_port_throughput_matches_two_port_lp() {
        let p = Platform::bus(1.0, 0.5, &[2.0, 3.0, 4.0]).unwrap();
        let sol = bus_fifo(&p).unwrap();
        let lp = solve_fifo(&p, &p.ids().collect::<Vec<_>>(), PortModel::TwoPort).unwrap();
        assert!(
            (sol.two_port_throughput - lp.throughput).abs() < 1e-7,
            "rho~ {} vs two-port LP {}",
            sol.two_port_throughput,
            lp.throughput
        );
    }

    #[test]
    fn star_lifo_matches_lp_on_stars() {
        let cases = [
            Platform::star_with_z(&[(1.0, 2.0), (2.0, 1.0), (1.5, 3.0)], 0.5).unwrap(),
            Platform::star_with_z(&[(0.5, 5.0), (2.0, 0.5)], 0.8).unwrap(),
            Platform::bus(1.0, 0.5, &[3.0, 4.0, 5.0]).unwrap(),
        ];
        for p in &cases {
            let cf = star_lifo(p);
            let lp = optimal_lifo(p).unwrap();
            assert!(
                (cf.throughput - lp.throughput).abs() < 1e-7,
                "LIFO closed form {} vs LP {}",
                cf.throughput,
                lp.throughput
            );
            for (i, l) in cf.loads.iter().enumerate() {
                assert!(
                    (l - lp.schedule.load(WorkerId(i))).abs() < 1e-6,
                    "load {i}: {l} vs {}",
                    lp.schedule.load(WorkerId(i))
                );
            }
        }
    }

    #[test]
    fn star_lifo_schedule_is_tight_and_feasible() {
        let p = Platform::star_with_z(&[(1.0, 2.0), (2.0, 1.0), (1.5, 3.0)], 0.5).unwrap();
        let cf = star_lifo(&p);
        let s = cf.schedule(&p);
        assert!(s.is_lifo());
        let t = Timeline::build(&p, &s, PortModel::OnePort);
        assert!(t.verify(&p, &s, 1e-7).is_empty());
        assert!((t.makespan() - 1.0).abs() < 1e-7);
        // No worker idles in the optimal LIFO schedule.
        for e in t.entries() {
            assert!(e.idle < 1e-7, "{} idles {}", e.worker, e.idle);
        }
    }

    #[test]
    fn star_lifo_enrolls_everyone_with_positive_load() {
        let p = Platform::star_with_z(&[(0.1, 1.0), (0.1, 1.0), (30.0, 2.0)], 0.5).unwrap();
        let cf = star_lifo(&p);
        assert!(cf.loads.iter().all(|&l| l > 0.0));
    }

    #[test]
    fn zero_return_cost_degrades_to_classical_formula() {
        // d = 0: u_i chain reduces to the classical no-return bus formula.
        let p = Platform::bus(1.0, 0.0, &[2.0, 2.0]).unwrap();
        let sol = bus_fifo(&p).unwrap();
        // alpha_1 = 1/(c+w) = 1/3; alpha_2 = alpha_1 * w/(c+w) = 2/9;
        // rho = 5/9.
        assert!((sol.throughput - 5.0 / 9.0).abs() < 1e-9);
    }
}
