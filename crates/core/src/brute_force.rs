//! Exhaustive scenario search for small platforms.
//!
//! The paper conjectures the general problem (free choice of both
//! permutations) is NP-hard and proves optimality results only for fixed
//! communication schemes. These enumerators provide ground truth on small
//! instances:
//!
//! * [`best_fifo`] — every FIFO order (`p!` LPs), certifying Theorem 1;
//! * [`best_lifo`] — every LIFO order, certifying the companion-paper
//!   characterization;
//! * [`best_scenario`] — every `(σ1, σ2)` pair (`p!²` LPs), probing the
//!   open general problem under the canonical sends-then-returns shape.
//!
//! All enumeration is over *full* permutations of the worker set: the LP
//! performs resource selection by zeroing loads, so subsets need not be
//! enumerated separately.

use dls_platform::{Platform, WorkerId};

use crate::error::CoreError;
use crate::lp_model::{solve_scenario, LpSchedule};
use crate::schedule::PortModel;

/// Maximum workers for single-permutation enumeration (`8! = 40320` LPs).
pub const MAX_SINGLE_PERM: usize = 8;
/// Maximum workers for permutation-pair enumeration (`5!² = 14400` LPs).
pub const MAX_PAIR_PERM: usize = 5;

/// Iterator over all permutations of `0..n` (Heap's algorithm,
/// non-recursive).
pub struct Permutations {
    items: Vec<usize>,
    counters: Vec<usize>,
    depth: usize,
    first: bool,
}

impl Permutations {
    /// All permutations of `0..n`.
    pub fn new(n: usize) -> Self {
        Permutations {
            items: (0..n).collect(),
            counters: vec![0; n],
            depth: 0,
            first: true,
        }
    }
}

impl Iterator for Permutations {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.first {
            self.first = false;
            return Some(self.items.clone());
        }
        let n = self.items.len();
        while self.depth < n {
            if self.counters[self.depth] < self.depth {
                if self.depth.is_multiple_of(2) {
                    self.items.swap(0, self.depth);
                } else {
                    self.items.swap(self.counters[self.depth], self.depth);
                }
                self.counters[self.depth] += 1;
                self.depth = 0;
                return Some(self.items.clone());
            }
            self.counters[self.depth] = 0;
            self.depth += 1;
        }
        None
    }
}

fn to_ids(perm: &[usize]) -> Vec<WorkerId> {
    perm.iter().map(|&i| WorkerId(i)).collect()
}

/// Result of an exhaustive search.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// The best scenario found.
    pub best: LpSchedule,
    /// Number of scenarios (LPs) evaluated.
    pub evaluated: usize,
}

fn search<I>(scenarios: I) -> Option<SearchResult>
where
    I: Iterator<Item = Result<LpSchedule, CoreError>>,
{
    let mut best: Option<LpSchedule> = None;
    let mut evaluated = 0;
    for sol in scenarios {
        let sol = sol.ok()?;
        evaluated += 1;
        if best
            .as_ref()
            .map(|b| sol.throughput > b.throughput)
            .unwrap_or(true)
        {
            best = Some(sol);
        }
    }
    best.map(|best| SearchResult { best, evaluated })
}

/// Exhaustive best FIFO schedule under `model` (all `p!` orders).
pub fn best_fifo(platform: &Platform, model: PortModel) -> Result<SearchResult, CoreError> {
    let p = platform.num_workers();
    if p > MAX_SINGLE_PERM {
        return Err(CoreError::TooManyWorkers {
            got: p,
            limit: MAX_SINGLE_PERM,
        });
    }
    search(Permutations::new(p).map(|perm| {
        let order = to_ids(&perm);
        solve_scenario(platform, &order, &order, model)
    }))
    .ok_or_else(|| CoreError::MalformedOrder("search produced no scenario".into()))
}

/// Exhaustive best LIFO schedule under `model`.
pub fn best_lifo(platform: &Platform, model: PortModel) -> Result<SearchResult, CoreError> {
    let p = platform.num_workers();
    if p > MAX_SINGLE_PERM {
        return Err(CoreError::TooManyWorkers {
            got: p,
            limit: MAX_SINGLE_PERM,
        });
    }
    search(Permutations::new(p).map(|perm| {
        let order = to_ids(&perm);
        let rev: Vec<WorkerId> = order.iter().rev().copied().collect();
        solve_scenario(platform, &order, &rev, model)
    }))
    .ok_or_else(|| CoreError::MalformedOrder("search produced no scenario".into()))
}

/// Exhaustive best over every `(σ1, σ2)` pair under the canonical
/// sends-then-returns structure.
pub fn best_scenario(platform: &Platform, model: PortModel) -> Result<SearchResult, CoreError> {
    let p = platform.num_workers();
    if p > MAX_PAIR_PERM {
        return Err(CoreError::TooManyWorkers {
            got: p,
            limit: MAX_PAIR_PERM,
        });
    }
    let perms: Vec<Vec<usize>> = Permutations::new(p).collect();
    search(perms.iter().flat_map(|s1| {
        let s1 = to_ids(s1);
        perms.iter().map(move |s2| {
            let s2 = to_ids(s2);
            solve_scenario(platform, &s1, &s2, model)
        })
    }))
    .ok_or_else(|| CoreError::MalformedOrder("search produced no scenario".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fifo::optimal_fifo;
    use crate::lifo::optimal_lifo;

    fn star(z: f64, cw: &[(f64, f64)]) -> Platform {
        Platform::star_with_z(cw, z).unwrap()
    }

    #[test]
    fn permutations_count_and_uniqueness() {
        for n in 1..=5 {
            let mut seen: Vec<Vec<usize>> = Permutations::new(n).collect();
            let total = seen.len();
            seen.sort();
            seen.dedup();
            assert_eq!(seen.len(), total, "duplicates for n={n}");
            assert_eq!(total, (1..=n).product::<usize>(), "wrong count for n={n}");
        }
    }

    #[test]
    fn permutations_of_zero_and_one() {
        assert_eq!(Permutations::new(0).count(), 1); // the empty permutation
        let one: Vec<_> = Permutations::new(1).collect();
        assert_eq!(one, vec![vec![0]]);
    }

    #[test]
    fn theorem1_certified_on_small_star() {
        // Exhaustive FIFO search must agree with the INC_C optimum (z < 1).
        let p = star(0.5, &[(2.0, 1.0), (1.0, 3.0), (3.0, 0.5), (1.5, 2.0)]);
        let exhaustive = best_fifo(&p, PortModel::OnePort).unwrap();
        assert_eq!(exhaustive.evaluated, 24);
        let thm = optimal_fifo(&p).unwrap();
        assert!(
            (exhaustive.best.throughput - thm.throughput).abs() < 1e-7,
            "Theorem 1 violated: brute {} vs theorem {}",
            exhaustive.best.throughput,
            thm.throughput
        );
    }

    #[test]
    fn theorem1_certified_for_z_greater_one() {
        let p = star(2.0, &[(2.0, 1.0), (1.0, 3.0), (1.5, 0.5)]);
        let exhaustive = best_fifo(&p, PortModel::OnePort).unwrap();
        let thm = optimal_fifo(&p).unwrap();
        assert!((exhaustive.best.throughput - thm.throughput).abs() < 1e-7);
    }

    #[test]
    fn lifo_characterization_certified() {
        let p = star(0.5, &[(2.0, 1.0), (1.0, 3.0), (3.0, 0.5)]);
        let exhaustive = best_lifo(&p, PortModel::OnePort).unwrap();
        let inc_c = optimal_lifo(&p).unwrap();
        assert!(
            (exhaustive.best.throughput - inc_c.throughput).abs() < 1e-7,
            "LIFO INC_C not optimal: brute {} vs inc_c {}",
            exhaustive.best.throughput,
            inc_c.throughput
        );
    }

    #[test]
    fn pair_search_dominates_fifo_and_lifo() {
        let p = star(0.5, &[(2.0, 1.0), (1.0, 3.0), (1.5, 0.8)]);
        let pairs = best_scenario(&p, PortModel::OnePort).unwrap();
        assert_eq!(pairs.evaluated, 36);
        let fifo = best_fifo(&p, PortModel::OnePort).unwrap();
        let lifo = best_lifo(&p, PortModel::OnePort).unwrap();
        assert!(pairs.best.throughput >= fifo.best.throughput - 1e-9);
        assert!(pairs.best.throughput >= lifo.best.throughput - 1e-9);
    }

    #[test]
    fn guards_reject_large_platforms() {
        let p = star(0.5, &[(1.0, 1.0); 9]);
        assert!(matches!(
            best_fifo(&p, PortModel::OnePort),
            Err(CoreError::TooManyWorkers { .. })
        ));
        let p = star(0.5, &[(1.0, 1.0); 6]);
        assert!(matches!(
            best_scenario(&p, PortModel::OnePort),
            Err(CoreError::TooManyWorkers { .. })
        ));
    }
}
