//! Optimal one-port LIFO schedules.
//!
//! In a LIFO schedule the first-served worker returns its results *last*
//! (`σ2 = σ1` reversed). The companion papers \[7, 8\] characterize the
//! optimal *two-port* LIFO schedule: all workers participate, served by
//! non-decreasing `c_i`, with no idle time. Section 5 of RR-5738 observes
//! that this schedule "is indeed a one-port schedule": in any canonical
//! LIFO execution the first return belongs to the last-served worker, whose
//! computation only starts after every send has completed — so returns can
//! never overlap sends and the one-port constraint (2b) is automatically
//! satisfied. Consequently the two-port LIFO optimum *is* the one-port LIFO
//! optimum, and we obtain it by solving the LIFO scenario LP over all
//! workers sorted by non-decreasing `c`.
//!
//! The mirror argument shows the same send order remains optimal for
//! `z > 1`: time-reversing a LIFO schedule yields a LIFO schedule with the
//! *same* send order on the mirrored platform.

use dls_platform::Platform;

use crate::error::CoreError;
use crate::lp_model::{solve_lifo, LpSchedule};
use crate::schedule::PortModel;

/// Computes the optimal one-port LIFO schedule (all workers, served by
/// non-decreasing `c`). Valid for any `z`-tied platform; exhaustive search
/// over LIFO orders (see [`crate::brute_force`]) confirms optimality on
/// random instances in the test-suite.
pub fn optimal_lifo(platform: &Platform) -> Result<LpSchedule, CoreError> {
    platform.common_z().ok_or(CoreError::NotZTied)?;
    solve_lifo(platform, &platform.order_by_c(), PortModel::OnePort)
}

/// The paper's `LIFO` heuristic entry point used in the Section 5
/// experiments (identical to [`optimal_lifo`], named for symmetry with
/// `INC_C`/`INC_W`).
pub fn lifo_heuristic(platform: &Platform) -> Result<LpSchedule, CoreError> {
    optimal_lifo(platform)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp_model::solve_lifo;
    use crate::schedule::PortModel;
    use crate::timeline::Timeline;
    use dls_platform::WorkerId;

    fn star(z: f64, cw: &[(f64, f64)]) -> Platform {
        Platform::star_with_z(cw, z).unwrap()
    }

    #[test]
    fn optimal_lifo_is_lifo_and_feasible() {
        let p = star(0.5, &[(2.0, 1.0), (1.0, 3.0), (1.5, 2.0)]);
        let sol = optimal_lifo(&p).unwrap();
        assert!(sol.schedule.is_lifo());
        let t = Timeline::build(&p, &sol.schedule, PortModel::OnePort);
        assert!(t.verify(&p, &sol.schedule, 1e-7).is_empty());
        assert!(t.makespan() <= 1.0 + 1e-7);
    }

    #[test]
    fn one_port_equals_two_port_for_lifo() {
        // The (2b) constraint is implied for canonical LIFO schedules, so
        // both models give the same optimum.
        let p = star(0.5, &[(2.0, 1.0), (1.0, 3.0), (1.5, 2.0), (0.7, 4.0)]);
        let order = p.order_by_c();
        let one = solve_lifo(&p, &order, PortModel::OnePort).unwrap();
        let two = solve_lifo(&p, &order, PortModel::TwoPort).unwrap();
        assert!(
            (one.throughput - two.throughput).abs() < 1e-7,
            "LIFO one-port {} != two-port {}",
            one.throughput,
            two.throughput
        );
    }

    #[test]
    fn lifo_enrolls_all_workers() {
        // Companion-paper result: the optimal LIFO uses every worker — even
        // ones with slow links get a (possibly small) share.
        let p = star(0.5, &[(0.1, 1.0), (0.1, 1.0), (20.0, 1.0)]);
        let sol = optimal_lifo(&p).unwrap();
        assert!(
            sol.schedule.load(WorkerId(2)) > 0.0,
            "LIFO dropped a worker; loads = {:?}",
            sol.schedule.loads()
        );
    }

    #[test]
    fn lifo_send_order_is_inc_c_even_for_large_z() {
        let p = star(2.5, &[(2.0, 1.0), (1.0, 3.0)]);
        let sol = optimal_lifo(&p).unwrap();
        assert_eq!(sol.schedule.send_order(), &[WorkerId(1), WorkerId(0)]);
        assert!(sol.schedule.is_lifo());
    }

    #[test]
    fn lifo_heuristic_alias() {
        let p = star(0.5, &[(2.0, 1.0), (1.0, 3.0)]);
        let a = optimal_lifo(&p).unwrap();
        let b = lifo_heuristic(&p).unwrap();
        assert_eq!(a.schedule, b.schedule);
    }
}
