//! Event-time computation and feasibility verification.
//!
//! Given a platform, a [`Schedule`] and a [`PortModel`], [`Timeline::build`]
//! derives the unique *earliest-feasible* timing under the paper's
//! canonical execution policy (Section 2.2):
//!
//! * the master issues initial messages back-to-back in `σ1` order starting
//!   at time 0;
//! * each worker computes immediately after its reception completes;
//! * result messages are received in `σ2` order, each starting as soon as
//!   (a) the required port is free — under one-port, no earlier than the end
//!   of all sends — and (b) the worker has finished computing.
//!
//! The derived idle times `x_i` are exactly the paper's: the gap between a
//! worker's end-of-compute and the start of its return transfer.
//!
//! [`Timeline::verify`] independently re-checks every model constraint from
//! the raw intervals, so LP-produced schedules can be certified without
//! trusting the LP or the builder.

use dls_platform::{Platform, WorkerId};

use crate::schedule::{PortModel, Schedule, LOAD_EPS};

/// A half-open time interval `[start, end)` (may be empty).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Start time.
    pub start: f64,
    /// End time (`>= start`).
    pub end: f64,
}

impl Interval {
    /// Interval length.
    pub fn len(&self) -> f64 {
        self.end - self.start
    }

    /// `true` when the interval has (numerically) zero length.
    pub fn is_empty(&self) -> bool {
        self.len() <= LOAD_EPS
    }

    /// `true` when two intervals overlap by more than `tol`.
    pub fn overlaps(&self, other: &Interval, tol: f64) -> bool {
        self.start + tol < other.end && other.start + tol < self.end
    }
}

/// Timing of one participating worker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerTimeline {
    /// The worker.
    pub worker: WorkerId,
    /// Reception of the initial data from the master.
    pub send: Interval,
    /// Computation.
    pub compute: Interval,
    /// Idle gap `x_i` between end of compute and start of the return.
    pub idle: f64,
    /// Transfer of the result message back to the master.
    pub ret: Interval,
}

/// Full event timing of a schedule (participants only, in send order).
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    entries: Vec<WorkerTimeline>,
    model: PortModel,
}

impl Timeline {
    /// Builds the earliest-feasible timing for `schedule` on `platform`
    /// under `model`. Workers with negligible load are skipped entirely
    /// (they exchange no messages).
    pub fn build(platform: &Platform, schedule: &Schedule, model: PortModel) -> Timeline {
        let p = platform.num_workers();
        let mut send_iv: Vec<Option<Interval>> = vec![None; p];
        let mut compute_iv: Vec<Option<Interval>> = vec![None; p];

        // Phase 1: back-to-back sends in sigma_1 order.
        let mut t = 0.0;
        for &id in schedule.send_order() {
            let alpha = schedule.load(id);
            if alpha <= LOAD_EPS {
                continue;
            }
            let w = platform.worker(id);
            let send = Interval {
                start: t,
                end: t + alpha * w.c,
            };
            t = send.end;
            compute_iv[id.index()] = Some(Interval {
                start: send.end,
                end: send.end + alpha * w.w,
            });
            send_iv[id.index()] = Some(send);
        }
        let sends_end = t;

        // Phase 2: returns in sigma_2 order. Under one-port the master's
        // (single) port is busy until `sends_end`; under two-port the
        // receive port is free from time 0.
        let mut port_free = match model {
            PortModel::OnePort => sends_end,
            PortModel::TwoPort => 0.0,
        };
        let mut entries: Vec<WorkerTimeline> = Vec::new();
        let mut ret_iv: Vec<Option<(f64, Interval)>> = vec![None; p];
        for &id in schedule.return_order() {
            let alpha = schedule.load(id);
            if alpha <= LOAD_EPS {
                continue;
            }
            let w = platform.worker(id);
            let compute = compute_iv[id.index()].expect("participant has compute interval");
            let ret_len = alpha * w.d;
            if ret_len <= LOAD_EPS {
                // No (or negligible) return message: the classical model.
                // The worker is done at end-of-compute and the port chain is
                // untouched.
                ret_iv[id.index()] = Some((
                    0.0,
                    Interval {
                        start: compute.end,
                        end: compute.end,
                    },
                ));
                continue;
            }
            let start = port_free.max(compute.end);
            let ret = Interval {
                start,
                end: start + ret_len,
            };
            port_free = ret.end;
            ret_iv[id.index()] = Some((start - compute.end, ret));
        }

        // Assemble in send order.
        for &id in schedule.send_order() {
            if schedule.load(id) <= LOAD_EPS {
                continue;
            }
            let (idle, ret) = ret_iv[id.index()].expect("participant has return interval");
            entries.push(WorkerTimeline {
                worker: id,
                send: send_iv[id.index()].expect("participant has send interval"),
                compute: compute_iv[id.index()].expect("participant has compute interval"),
                idle,
                ret,
            });
        }
        Timeline { entries, model }
    }

    /// Per-worker timing entries (participants only, in send order).
    pub fn entries(&self) -> &[WorkerTimeline] {
        &self.entries
    }

    /// The port model this timeline was built for.
    pub fn model(&self) -> PortModel {
        self.model
    }

    /// Timing entry for a specific worker, if it participates.
    pub fn entry(&self, id: WorkerId) -> Option<&WorkerTimeline> {
        self.entries.iter().find(|e| e.worker == id)
    }

    /// Completion time of the whole schedule (0 for an empty schedule).
    pub fn makespan(&self) -> f64 {
        self.entries
            .iter()
            .map(|e| e.ret.end.max(e.compute.end))
            .fold(0.0, f64::max)
    }

    /// Independently re-checks every constraint of the model and returns
    /// the list of violations (empty = feasible). `tol` is the timing
    /// tolerance.
    pub fn verify(&self, platform: &Platform, schedule: &Schedule, tol: f64) -> Vec<String> {
        let mut violations = Vec::new();
        for e in &self.entries {
            let alpha = schedule.load(e.worker);
            let w = platform.worker(e.worker);
            if (e.send.len() - alpha * w.c).abs() > tol {
                violations.push(format!(
                    "{}: send duration {} != alpha*c = {}",
                    e.worker,
                    e.send.len(),
                    alpha * w.c
                ));
            }
            if (e.compute.len() - alpha * w.w).abs() > tol {
                violations.push(format!(
                    "{}: compute duration {} != alpha*w = {}",
                    e.worker,
                    e.compute.len(),
                    alpha * w.w
                ));
            }
            if !e.ret.is_empty() && (e.ret.len() - alpha * w.d).abs() > tol {
                violations.push(format!(
                    "{}: return duration {} != alpha*d = {}",
                    e.worker,
                    e.ret.len(),
                    alpha * w.d
                ));
            }
            if e.compute.start < e.send.end - tol {
                violations.push(format!("{}: computes before reception ends", e.worker));
            }
            if e.ret.start < e.compute.end - tol {
                violations.push(format!("{}: returns before compute ends", e.worker));
            }
            if e.send.start < -tol {
                violations.push(format!("{}: negative start time", e.worker));
            }
            if e.idle < -tol {
                violations.push(format!("{}: negative idle {}", e.worker, e.idle));
            }
        }

        // Master port exclusivity.
        let sends: Vec<Interval> = self.entries.iter().map(|e| e.send).collect();
        let rets: Vec<Interval> = self
            .entries
            .iter()
            .map(|e| e.ret)
            .filter(|r| !r.is_empty())
            .collect();
        let check_disjoint = |ivs: &[Interval], label: &str, violations: &mut Vec<String>| {
            for (i, a) in ivs.iter().enumerate() {
                for b in &ivs[i + 1..] {
                    if a.overlaps(b, tol) {
                        violations.push(format!("overlapping {label} intervals"));
                    }
                }
            }
        };
        match self.model {
            PortModel::OnePort => {
                let mut all = sends.clone();
                all.extend(rets.iter().copied());
                check_disjoint(&all, "one-port", &mut violations);
            }
            PortModel::TwoPort => {
                check_disjoint(&sends, "send-port", &mut violations);
                check_disjoint(&rets, "receive-port", &mut violations);
            }
        }

        // Orders respected.
        let participating: Vec<WorkerId> = schedule.participants();
        let mut last = f64::NEG_INFINITY;
        for id in &participating {
            let s = self.entry(*id).expect("participant entry").send.start;
            if s < last - tol {
                violations.push("send order violated".into());
            }
            last = s;
        }
        let mut last = f64::NEG_INFINITY;
        for id in schedule.return_order() {
            if let Some(e) = self.entry(*id) {
                if e.ret.is_empty() {
                    continue;
                }
                if e.ret.start < last - tol {
                    violations.push("return order violated".into());
                }
                last = e.ret.start;
            }
        }
        violations
    }
}

/// Convenience: earliest-feasible makespan of `schedule` on `platform`.
pub fn makespan(platform: &Platform, schedule: &Schedule, model: PortModel) -> f64 {
    Timeline::build(platform, schedule, model).makespan()
}

/// Convenience: achieved throughput `total_load / makespan` (0 for an empty
/// schedule).
pub fn throughput(platform: &Platform, schedule: &Schedule, model: PortModel) -> f64 {
    let ms = makespan(platform, schedule, model);
    if ms <= 0.0 {
        0.0
    } else {
        schedule.total_load() / ms
    }
}

#[cfg(test)]
// Unit tests assert exact outcomes of exact arithmetic.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use dls_platform::Platform;

    fn ids(v: &[usize]) -> Vec<WorkerId> {
        v.iter().map(|&i| WorkerId(i)).collect()
    }

    /// Hand-checkable platform: P1 = (c=1, w=2, d=0.5), P2 = (c=2, w=1, d=1).
    fn platform() -> Platform {
        Platform::new(vec![
            dls_platform::Worker::new(1.0, 2.0, 0.5),
            dls_platform::Worker::new(2.0, 1.0, 1.0),
        ])
        .unwrap()
    }

    #[test]
    fn fifo_hand_computed_timeline() {
        // alpha = (1, 1). Sends: P1 [0,1], P2 [1,3]. Compute: P1 [1,3],
        // P2 [3,4]. One-port: port free at 3. Returns FIFO (P1 then P2):
        // P1 ret [3, 3.5] (idle 0), P2 ret [4, 5] (idle 0: max(3.5, 4)=4).
        let p = platform();
        let s = Schedule::fifo(&p, ids(&[0, 1]), vec![1.0, 1.0]).unwrap();
        let t = Timeline::build(&p, &s, PortModel::OnePort);
        let e = t.entries();
        assert_eq!(e.len(), 2);
        assert_eq!(
            e[0].send,
            Interval {
                start: 0.0,
                end: 1.0
            }
        );
        assert_eq!(
            e[0].compute,
            Interval {
                start: 1.0,
                end: 3.0
            }
        );
        assert_eq!(
            e[0].ret,
            Interval {
                start: 3.0,
                end: 3.5
            }
        );
        assert_eq!(e[0].idle, 0.0);
        assert_eq!(
            e[1].send,
            Interval {
                start: 1.0,
                end: 3.0
            }
        );
        assert_eq!(
            e[1].compute,
            Interval {
                start: 3.0,
                end: 4.0
            }
        );
        assert_eq!(
            e[1].ret,
            Interval {
                start: 4.0,
                end: 5.0
            }
        );
        assert_eq!(e[1].idle, 0.0);
        assert_eq!(t.makespan(), 5.0);
        assert!(t.verify(&p, &s, 1e-9).is_empty());
    }

    #[test]
    fn lifo_hand_computed_timeline() {
        // Same loads, LIFO: returns P2 then P1.
        // P2 ret starts max(port_free=3, compute_end=4) = 4 -> [4,5].
        // P1 ret starts max(5, 3) = 5 -> [5,5.5]; P1 idle = 5-3 = 2.
        let p = platform();
        let s = Schedule::lifo(&p, ids(&[0, 1]), vec![1.0, 1.0]).unwrap();
        let t = Timeline::build(&p, &s, PortModel::OnePort);
        let e1 = t.entry(WorkerId(0)).unwrap();
        let e2 = t.entry(WorkerId(1)).unwrap();
        assert_eq!(
            e2.ret,
            Interval {
                start: 4.0,
                end: 5.0
            }
        );
        assert_eq!(
            e1.ret,
            Interval {
                start: 5.0,
                end: 5.5
            }
        );
        assert_eq!(e1.idle, 2.0);
        assert_eq!(t.makespan(), 5.5);
        assert!(t.verify(&p, &s, 1e-9).is_empty());
    }

    #[test]
    fn two_port_can_overlap_sends_and_returns() {
        // Two-port: P1's return may start at its compute end (3.0) even
        // though the master is still sending to nobody (sends done at 3);
        // use a third worker to create real overlap.
        let p = Platform::new(vec![
            dls_platform::Worker::new(1.0, 0.5, 1.0),
            dls_platform::Worker::new(2.0, 4.0, 1.0),
        ])
        .unwrap();
        let s = Schedule::fifo(&p, ids(&[0, 1]), vec![1.0, 1.0]).unwrap();
        let one = Timeline::build(&p, &s, PortModel::OnePort);
        let two = Timeline::build(&p, &s, PortModel::TwoPort);
        // One-port: P1 return waits for sends to finish (t=3).
        assert_eq!(one.entry(WorkerId(0)).unwrap().ret.start, 3.0);
        // Two-port: P1 returns right after computing (t=1.5).
        assert_eq!(two.entry(WorkerId(0)).unwrap().ret.start, 1.5);
        assert!(two.makespan() <= one.makespan());
        assert!(one.verify(&p, &s, 1e-9).is_empty());
        assert!(two.verify(&p, &s, 1e-9).is_empty());
    }

    #[test]
    fn zero_load_workers_are_skipped() {
        let p = platform();
        let s = Schedule::fifo(&p, ids(&[0, 1]), vec![0.0, 1.0]).unwrap();
        let t = Timeline::build(&p, &s, PortModel::OnePort);
        assert_eq!(t.entries().len(), 1);
        assert_eq!(t.entries()[0].worker, WorkerId(1));
        // P2 now starts receiving at t = 0.
        assert_eq!(t.entries()[0].send.start, 0.0);
    }

    #[test]
    fn no_return_messages_reduce_to_classical_model() {
        let p = Platform::new(vec![
            dls_platform::Worker::new(1.0, 2.0, 0.0),
            dls_platform::Worker::new(2.0, 1.0, 0.0),
        ])
        .unwrap();
        let s = Schedule::fifo(&p, ids(&[0, 1]), vec![1.0, 1.0]).unwrap();
        let t = Timeline::build(&p, &s, PortModel::OnePort);
        // Makespan = max(compute ends) = max(3, 4) = 4; no port contention
        // from returns.
        assert_eq!(t.makespan(), 4.0);
        assert!(t.verify(&p, &s, 1e-9).is_empty());
    }

    #[test]
    fn makespan_scales_linearly_with_load() {
        let p = platform();
        let s = Schedule::fifo(&p, ids(&[0, 1]), vec![1.0, 2.0]).unwrap();
        let m1 = makespan(&p, &s, PortModel::OnePort);
        let m2 = makespan(&p, &s.scaled(3.0), PortModel::OnePort);
        assert!((m2 - 3.0 * m1).abs() < 1e-9);
    }

    #[test]
    fn throughput_is_load_over_makespan() {
        let p = platform();
        let s = Schedule::fifo(&p, ids(&[0, 1]), vec![1.0, 1.0]).unwrap();
        let rho = throughput(&p, &s, PortModel::OnePort);
        assert!((rho - 2.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_schedule_has_zero_makespan() {
        let p = platform();
        let s = Schedule::fifo(&p, ids(&[0, 1]), vec![0.0, 0.0]).unwrap();
        assert_eq!(makespan(&p, &s, PortModel::OnePort), 0.0);
        assert_eq!(throughput(&p, &s, PortModel::OnePort), 0.0);
    }

    #[test]
    fn verify_catches_tampered_intervals() {
        let p = platform();
        let s = Schedule::fifo(&p, ids(&[0, 1]), vec![1.0, 1.0]).unwrap();
        let mut t = Timeline::build(&p, &s, PortModel::OnePort);
        // Tamper: make P2's return overlap P1's.
        t.entries[1].ret.start = t.entries[0].ret.start;
        let v = t.verify(&p, &s, 1e-9);
        assert!(!v.is_empty());
    }

    #[test]
    fn interval_overlap_logic() {
        let a = Interval {
            start: 0.0,
            end: 1.0,
        };
        let b = Interval {
            start: 1.0,
            end: 2.0,
        };
        let c = Interval {
            start: 0.5,
            end: 1.5,
        };
        assert!(!a.overlaps(&b, 1e-12));
        assert!(a.overlaps(&c, 1e-12));
        assert!(c.overlaps(&b, 1e-12));
    }
}
