//! Optimal one-port FIFO schedules (Theorem 1 and Proposition 1).
//!
//! Theorem 1: when `d_i = z·c_i` with `0 < z < 1`, there is an optimal
//! one-port FIFO schedule that serves workers in **non-decreasing `c_i`**
//! order, with idle time only on the last enrolled worker. Proposition 1
//! turns this into a polynomial algorithm: sort all `p` workers by `c_i`,
//! solve the LP (2) with every worker enrolled, and read the participating
//! set off the nonzero `α_i` — the LP performs resource selection for free
//! (Section 3: the best FIFO schedule may well *not* involve all workers).
//!
//! The case `z > 1` reduces to `z' = 1/z < 1` by the mirror argument: solve
//! on the mirrored platform (`c` and `d` swapped) and flip the resulting
//! schedule in time, which reverses the send order to non-increasing `c_i`.
//! When `z = 1` the ordering is irrelevant (we keep non-decreasing `c` for
//! determinism).

use dls_platform::{Platform, WorkerId};

use crate::error::CoreError;
use crate::lp_model::{solve_fifo, LpSchedule};
use crate::schedule::PortModel;

/// Computes the optimal one-port FIFO schedule with resource selection.
///
/// Requires all workers to share the ratio `z = d_i / c_i`
/// ([`CoreError::NotZTied`] otherwise); this is the hypothesis of
/// Theorem 1. For arbitrary `d_i`, use [`crate::brute_force::best_fifo`]
/// or solve a chosen order with [`crate::lp_model::solve_fifo`].
pub fn optimal_fifo(platform: &Platform) -> Result<LpSchedule, CoreError> {
    let z = platform.common_z().ok_or(CoreError::NotZTied)?;
    if z <= 1.0 {
        solve_fifo(platform, &platform.order_by_c(), PortModel::OnePort)
    } else {
        // Mirror reduction: the mirrored platform has z' = 1/z < 1.
        let mirrored = platform.mirror();
        let sol = solve_fifo(&mirrored, &mirrored.order_by_c(), PortModel::OnePort)?;
        // Flip the schedule back in time: feasible and optimal on the
        // original platform with the same loads and throughput.
        let schedule = sol.schedule.mirror();
        Ok(LpSchedule {
            schedule,
            throughput: sol.throughput,
            // Idle variables are not time-symmetric; physical idles should
            // be recomputed from the timeline.
            lp_idles: vec![0.0; platform.num_workers()],
            iterations: sol.iterations,
            warm_start: sol.warm_start,
        })
    }
}

/// The send order Theorem 1 prescribes for this platform (`z`-tied):
/// non-decreasing `c` when `z <= 1`, non-increasing `c` when `z > 1`.
pub fn theorem1_order(platform: &Platform) -> Result<Vec<WorkerId>, CoreError> {
    let z = platform.common_z().ok_or(CoreError::NotZTied)?;
    Ok(if z <= 1.0 {
        platform.order_by_c()
    } else {
        platform.order_by_c_desc()
    })
}

/// The paper's `INC_C` heuristic: FIFO over **all** workers sorted by
/// non-decreasing `c` (fast-communicating first), loads from the LP.
/// For `z <= 1` this coincides with the optimal FIFO schedule.
pub fn inc_c_fifo(platform: &Platform) -> Result<LpSchedule, CoreError> {
    solve_fifo(platform, &platform.order_by_c(), PortModel::OnePort)
}

/// The paper's `INC_W` heuristic: FIFO over all workers sorted by
/// non-decreasing `w` (fast-computing first), loads from the LP.
pub fn inc_w_fifo(platform: &Platform) -> Result<LpSchedule, CoreError> {
    solve_fifo(platform, &platform.order_by_w(), PortModel::OnePort)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::{makespan, Timeline};
    use dls_platform::Worker;

    fn star(z: f64, cw: &[(f64, f64)]) -> Platform {
        Platform::star_with_z(cw, z).unwrap()
    }

    #[test]
    fn optimal_fifo_orders_by_c_for_small_z() {
        let p = star(0.5, &[(3.0, 1.0), (1.0, 2.0), (2.0, 1.5)]);
        let sol = optimal_fifo(&p).unwrap();
        assert_eq!(
            sol.schedule.send_order(),
            &[WorkerId(1), WorkerId(2), WorkerId(0)]
        );
        assert!(sol.schedule.is_fifo());
        assert!(sol.throughput > 0.0);
    }

    #[test]
    fn optimal_fifo_fits_unit_horizon_and_verifies() {
        let p = star(0.5, &[(3.0, 1.0), (1.0, 2.0), (2.0, 1.5), (1.2, 0.7)]);
        let sol = optimal_fifo(&p).unwrap();
        let t = Timeline::build(&p, &sol.schedule, PortModel::OnePort);
        assert!(t.verify(&p, &sol.schedule, 1e-7).is_empty());
        assert!((t.makespan() - 1.0).abs() < 1e-7);
    }

    #[test]
    fn z_greater_than_one_uses_mirror() {
        // z = 2: return messages twice the input (e.g. key generation).
        let p = star(2.0, &[(1.0, 1.0), (2.0, 1.0), (0.5, 3.0)]);
        let sol = optimal_fifo(&p).unwrap();
        // Send order must be non-increasing c: P2 (c=2), P1 (c=1), P3 (.5).
        assert_eq!(
            sol.schedule.send_order(),
            &[WorkerId(1), WorkerId(0), WorkerId(2)]
        );
        assert!(sol.schedule.is_fifo());
        // Flipped schedule is feasible on the *original* platform.
        let ms = makespan(&p, &sol.schedule, PortModel::OnePort);
        assert!(ms <= 1.0 + 1e-7, "mirror-flipped schedule overflows: {ms}");
        // Throughput matches directly solving that order.
        let direct = solve_fifo(&p, sol.schedule.send_order(), PortModel::OnePort).unwrap();
        assert!((direct.throughput - sol.throughput).abs() < 1e-7);
    }

    #[test]
    fn mirror_symmetry_of_throughput() {
        // Optimal FIFO throughput is invariant under platform mirroring.
        let p = star(0.4, &[(1.0, 2.0), (3.0, 0.5), (2.0, 2.0)]);
        let a = optimal_fifo(&p).unwrap().throughput;
        let b = optimal_fifo(&p.mirror()).unwrap().throughput;
        assert!((a - b).abs() < 1e-7, "mirror broke optimality: {a} vs {b}");
    }

    #[test]
    fn z_equal_one_order_does_not_matter() {
        let p = star(1.0, &[(1.0, 2.0), (2.0, 1.0), (1.5, 1.5)]);
        let by_c = solve_fifo(&p, &p.order_by_c(), PortModel::OnePort).unwrap();
        let by_c_desc = solve_fifo(&p, &p.order_by_c_desc(), PortModel::OnePort).unwrap();
        assert!((by_c.throughput - by_c_desc.throughput).abs() < 1e-7);
    }

    #[test]
    fn not_z_tied_is_rejected() {
        let p =
            Platform::new(vec![Worker::new(1.0, 1.0, 0.5), Worker::new(1.0, 1.0, 0.9)]).unwrap();
        assert_eq!(optimal_fifo(&p).unwrap_err(), CoreError::NotZTied);
        assert_eq!(theorem1_order(&p).unwrap_err(), CoreError::NotZTied);
    }

    #[test]
    fn resource_selection_can_drop_workers() {
        // A worker with an extremely slow link should not be enrolled: its
        // messages would eat the whole horizon.
        let p = star(0.5, &[(0.1, 1.0), (0.1, 1.0), (100.0, 1.0)]);
        let sol = optimal_fifo(&p).unwrap();
        assert!(
            sol.schedule.load(WorkerId(2)) < 1e-6,
            "slow-link worker was enrolled with load {}",
            sol.schedule.load(WorkerId(2))
        );
        assert!(sol.schedule.load(WorkerId(0)) > 0.0);
        assert_eq!(sol.schedule.participants().len(), 2);
    }

    #[test]
    fn inc_c_beats_or_matches_inc_w() {
        // Theorem 1 says INC_C is the optimal FIFO ordering (z < 1), so it
        // can never lose to INC_W.
        let p = star(
            0.5,
            &[(3.0, 0.5), (1.0, 5.0), (2.0, 1.0), (1.5, 2.0), (2.5, 0.8)],
        );
        let c = inc_c_fifo(&p).unwrap();
        let w = inc_w_fifo(&p).unwrap();
        assert!(c.throughput >= w.throughput - 1e-9);
    }

    #[test]
    fn theorem1_order_directions() {
        let p = star(0.5, &[(2.0, 1.0), (1.0, 1.0)]);
        assert_eq!(theorem1_order(&p).unwrap(), vec![WorkerId(1), WorkerId(0)]);
        let p = star(3.0, &[(2.0, 1.0), (1.0, 1.0)]);
        assert_eq!(theorem1_order(&p).unwrap(), vec![WorkerId(0), WorkerId(1)]);
    }
}
