//! # dls-core — divisible loads with return messages, one-port model
//!
//! Reference implementation of Beaumont, Marchal, Rehn & Robert, *"FIFO
//! scheduling of divisible loads with return messages under the one-port
//! model"* (INRIA RR-5738, 2005 / IPDPS 2006).
//!
//! A divisible load is a perfectly parallel job: any number of load units
//! can be processed by any worker. The master of a star platform sends each
//! enrolled worker its share (`α_i` units, costing `α_i·c_i` time), the
//! worker computes (`α_i·w_i`), and ships results back (`α_i·d_i`). Under
//! the **one-port model** the master handles at most one transfer at a
//! time, which couples all communications and makes the ordering decisions
//! hard — the general problem's complexity is open (conjectured NP-hard).
//!
//! ## What this crate provides
//!
//! | Paper result | API |
//! |---|---|
//! | LP (2) for a fixed scenario, §2.3 | [`lp_model::build_problem`], [`lp_model::solve_scenario`] |
//! | Theorem 1 + Proposition 1 (optimal FIFO, resource selection) | [`fifo::optimal_fifo`] |
//! | Optimal LIFO (via companion papers \[7,8\]) | [`lifo::optimal_lifo`] |
//! | Theorem 2 (bus closed form) | [`closed_form::bus_fifo`] |
//! | `INC_C` / `INC_W` heuristics, §5 | [`fifo::inc_c_fifo`], [`fifo::inc_w_fifo`] |
//! | Integer rounding policy, §5 | [`rounding::round_loads`] |
//! | Mirror reduction for `z > 1`, §3 | [`Schedule::mirror`], handled inside [`fifo::optimal_fifo`] |
//! | Exhaustive ground truth (small `p`) | [`brute_force`] |
//! | Analytical chain solver (no LP) | [`chain`] |
//! | Classical no-return baselines \[5,6,10\] | [`no_return`] |
//! | Unified strategy API over all of the above | [`engine`], [`registry`] |
//!
//! ## Quickstart
//!
//! ```
//! use dls_core::prelude::*;
//! use dls_platform::Platform;
//!
//! // Three workers, return messages half the input size (z = 1/2).
//! let p = Platform::star_with_z(&[(2.0, 5.0), (1.0, 4.0), (3.0, 2.0)], 0.5).unwrap();
//! let sol = optimal_fifo(&p).unwrap();
//! assert!(sol.throughput > 0.0);
//! // The optimal FIFO serves fast-communicating workers first.
//! let t = Timeline::build(&p, &sol.schedule, PortModel::OnePort);
//! assert!(t.verify(&p, &sol.schedule, 1e-7).is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod affine;
pub mod brute_force;
pub mod chain;
pub mod closed_form;
pub mod diagnosis;
pub mod engine;
mod error;
pub mod fifo;
pub mod interleaved;
pub mod lifo;
pub mod lp_model;
pub mod no_return;
pub mod rounding;
mod schedule;
pub mod timeline;

pub use engine::{
    lookup, register_provider, registry, ExactSolution, Execution, Provenance, Scheduler,
    SchedulerProvider, Solution,
};
pub use error::CoreError;
pub use schedule::{PortModel, Schedule, LOAD_EPS};

/// Convenient glob-import of the most used items.
pub mod prelude {
    pub use crate::affine::{
        affine_fifo_best_prefix, affine_fifo_best_subset, affine_fifo_for_set, affine_makespan,
        AffineLatencies,
    };
    pub use crate::brute_force::{best_fifo, best_lifo, best_scenario};
    pub use crate::chain::{chain_best_prefix, chain_best_subset, chain_fifo};
    pub use crate::closed_form::{bus_fifo, star_lifo, BusFifoSolution, BusRegime};
    pub use crate::diagnosis::{diagnose, Diagnosis};
    pub use crate::engine::{
        lookup, register_provider, registry, ExactSolution, Execution, Provenance, Scheduler,
        SchedulerProvider, Solution,
    };
    pub use crate::fifo::{inc_c_fifo, inc_w_fifo, optimal_fifo, theorem1_order};
    pub use crate::interleaved::{
        interleaved_fifo, interleaved_fifo_for_order, interleaved_profile, InterleavedSolution,
    };
    pub use crate::lifo::optimal_lifo;
    pub use crate::lp_model::{
        scenario_model, solve_fifo, solve_lifo, solve_model, solve_scenario, warm_start_stats,
        with_engine, LpEngine, LpSchedule, ModelSolution,
    };
    pub use crate::no_return::{no_return_platform, optimal_no_return};
    pub use crate::rounding::{integer_schedule, round_loads};
    pub use crate::timeline::{makespan, throughput, Timeline};
    pub use crate::{CoreError, PortModel, Schedule};
}
