//! Error type for the scheduling library.

use core::fmt;

use dls_lp::LpError;
use dls_platform::PlatformError;

/// Errors raised by schedule construction and optimization.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Underlying platform was invalid.
    Platform(PlatformError),
    /// The LP solver failed (should not happen for well-formed scheduling
    /// LPs: the zero schedule is always feasible and throughput is bounded).
    Lp(LpError),
    /// The requested optimality result (Theorem 1 / Theorem 2) requires all
    /// workers to share the ratio `z = d/c`, which this platform does not.
    NotZTied,
    /// The requested closed form requires a bus platform (`ci = c`,
    /// `di = d`).
    NotABus,
    /// Exhaustive search was requested on a platform too large to enumerate.
    TooManyWorkers {
        /// Workers in the platform.
        got: usize,
        /// Enumeration limit for this routine.
        limit: usize,
    },
    /// An order contained duplicate or out-of-range worker ids, or the send
    /// and return orders enrolled different sets.
    MalformedOrder(String),
    /// A multi-round plan asked for more installments than the expanded
    /// virtual platform supports (the round count times the worker count is
    /// capped to keep scenario LPs tractable).
    TooManyRounds {
        /// Requested installment rounds.
        rounds: usize,
        /// Maximum supported for this platform size.
        limit: usize,
    },
    /// The pre-solve static analyzer ([`dls_lp::analyze`]) found
    /// error-severity diagnostics in a schedule model about to be lowered —
    /// a structural bug in the builder that produced it. Carries the
    /// rendered [`dls_lp::AnalysisReport`], which names each offending row
    /// label and [`dls_lp::RowKind`]. Raised only when analysis is enabled
    /// (debug builds, or `DLS_ANALYZE=1`; see
    /// [`crate::lp_model::analysis_enabled`]).
    InvalidModel(String),
    /// A pinned interleaved-master lead exceeds the platform's enrollment:
    /// the merge family only defines leads `1..=q`, so
    /// `interleaved_fifo@<lead>` does not apply to smaller platforms
    /// (silently clamping would mislabel the canonical merge's result).
    LeadBeyondEnrollment {
        /// The pinned lead.
        lead: usize,
        /// Enrolled workers (= the largest valid lead).
        enrolled: usize,
    },
}

impl CoreError {
    /// `true` when the error means a strategy simply *does not apply* to
    /// the platform at hand (wrong family, too large for exhaustive
    /// search) — the benign class that batch runners may record as a skip.
    /// Everything else (LP failures, malformed orders, invalid platforms)
    /// is a bug in the caller or the solver and should stay loud. New
    /// applicability-style variants must be added here so every batch
    /// runner classifies them consistently.
    pub fn is_applicability(&self) -> bool {
        matches!(
            self,
            CoreError::NotABus
                | CoreError::NotZTied
                | CoreError::TooManyWorkers { .. }
                | CoreError::TooManyRounds { .. }
                | CoreError::LeadBeyondEnrollment { .. }
        )
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Platform(e) => write!(f, "platform error: {e}"),
            CoreError::Lp(e) => write!(f, "LP solver error: {e}"),
            CoreError::NotZTied => {
                write!(f, "workers do not share a common ratio z = d/c")
            }
            CoreError::NotABus => write!(f, "platform is not a bus network"),
            CoreError::TooManyWorkers { got, limit } => write!(
                f,
                "exhaustive search limited to {limit} workers, platform has {got}"
            ),
            CoreError::MalformedOrder(msg) => write!(f, "malformed order: {msg}"),
            CoreError::TooManyRounds { rounds, limit } => write!(
                f,
                "multi-round plan limited to {limit} rounds on this platform, requested {rounds}"
            ),
            CoreError::InvalidModel(report) => {
                write!(f, "schedule model failed static analysis: {report}")
            }
            CoreError::LeadBeyondEnrollment { lead, enrolled } => write!(
                f,
                "interleaved lead {lead} exceeds the {enrolled}-worker enrollment \
                 (valid leads are 1..={enrolled})"
            ),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Platform(e) => Some(e),
            CoreError::Lp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PlatformError> for CoreError {
    fn from(e: PlatformError) -> Self {
        CoreError::Platform(e)
    }
}

impl From<LpError> for CoreError {
    fn from(e: LpError) -> Self {
        CoreError::Lp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = LpError::Infeasible.into();
        assert!(e.to_string().contains("infeasible"));
        let e: CoreError = PlatformError::Empty.into();
        assert!(e.to_string().contains("no workers"));
        assert!(CoreError::NotZTied.to_string().contains('z'));
        let e = CoreError::TooManyWorkers { got: 12, limit: 8 };
        assert!(e.to_string().contains("12"));
    }

    #[test]
    fn applicability_classification() {
        assert!(CoreError::NotABus.is_applicability());
        assert!(CoreError::NotZTied.is_applicability());
        assert!(CoreError::TooManyWorkers { got: 9, limit: 8 }.is_applicability());
        assert!(CoreError::TooManyRounds {
            rounds: 4096,
            limit: 512
        }
        .is_applicability());
        assert!(CoreError::LeadBeyondEnrollment {
            lead: 9,
            enrolled: 4
        }
        .is_applicability());
        assert!(!CoreError::from(LpError::Infeasible).is_applicability());
        assert!(!CoreError::MalformedOrder("dup".into()).is_applicability());
        assert!(!CoreError::InvalidModel("dup row".into()).is_applicability());
        assert!(!CoreError::from(PlatformError::Empty).is_applicability());
    }

    #[test]
    fn source_chains() {
        use std::error::Error;
        let e: CoreError = LpError::Unbounded.into();
        assert!(e.source().is_some());
        assert!(CoreError::NotABus.source().is_none());
    }
}
