//! Interleaved-master FIFO LPs: dropping the sends-then-returns shape.
//!
//! The paper's canonical schedule posts every `σ1` send before any `σ2`
//! return. `dls-sim` has always been able to *execute* an interleaved
//! master ([`MasterPolicy::Interleaved`]); this module finally lets a
//! solver *optimize* for one. For a FIFO order `σ` and a fixed
//! **merge** of the `2q` port operations (sends in `σ` order, returns in
//! `σ` order, each return after its own send), the optimal loads solve an
//! LP with per-message start variables:
//!
//! ```text
//! maximize  Σ α_i
//!   s_i, r_i ≥ 0                       (send/return start of worker i)
//!   start(op_{k+1}) ≥ start(op_k) + dur(op_k)    (port chain: the
//!       one-port disjunctions resolved by the merge order)
//!   r_i ≥ s_i + α_i (c_i + w_i)       (results exist only after compute)
//!   start(op_last) + dur(op_last) ≤ 1 (horizon; chain order makes the
//!       last operation finish last)
//! ```
//!
//! The merge family swept here is parameterized by a **lead** `L ∈
//! 1..=q`: return `R_j` is slotted immediately after send `S_{j+L-1}`
//! (trailing returns after `S_q`). `L = q` is exactly the canonical
//! sends-then-returns shape — so the best-over-leads schedule is *never
//! worse than `optimal_fifo`* by construction — and `L = 1` is the fully
//! alternating `S_1 R_1 S_2 R_2 …` master.
//!
//! **Design note (negative result, pinned by tests).** The paper's
//! canonical-shape argument is visible empirically here: on every platform
//! family we sweep, the canonical lead `L = q` is optimal within the
//! family — early returns only insert port-busy time before later sends,
//! while the canonical shape already pushes returns as late as the horizon
//! allows. The per-lead profile ([`interleaved_profile`]) quantifies how
//! much each interleaving *costs* (the `interleaved_gap` artifact of
//! `repro_all`), closing the ROADMAP item the honest way: the simulator
//! ablation of PR 4 said noise-free interleaving cannot beat the LP
//! optimum, and the LP family over merges now says the same from the
//! optimization side.
//!
//! Every LP here is built on the schedule-model IR ([`ScheduleModel`]:
//! `alpha`/`send_start`/`return_start` groups, `precedence` rows for the
//! resolved one-port disjunctions) and solved through
//! [`lp_model::solve_model`], so repeated solves warm-start from the
//! per-thread basis cache under the models' structural keys.
//!
//! [`MasterPolicy::Interleaved`]: ../../dls_sim/enum.MasterPolicy.html

use std::sync::Arc;

use dls_lp::{MVar, ScheduleModel};
use dls_platform::{Platform, WorkerId};

use crate::engine::{Execution, Provenance, Scheduler, SchedulerProvider, Solution};
use crate::error::CoreError;
use crate::fifo::theorem1_order;
use crate::lp_model;
use crate::schedule::Schedule;

/// Strict-improvement threshold: a non-canonical lead must beat the
/// canonical optimum by more than this to displace it (ties keep the
/// canonical schedule, whose earliest-feasible timeline achieves the LP
/// value exactly).
const LEAD_EPS: f64 = 1e-9;

/// One port operation of a fixed merge: a send to, or a return from, an
/// enrolled position (index into the FIFO order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortOp {
    /// The initial-data message to enrolled position `k`.
    Send(usize),
    /// The result message from enrolled position `k`.
    Ret(usize),
}

/// The merge with lead `lead` over `q` enrolled workers: sends in order,
/// return `R_j` immediately after send `S_{j + lead - 1}`, trailing
/// returns after the last send. `lead = q` is the canonical
/// sends-then-returns sequence.
///
/// # Panics
/// Panics when `lead` is outside `1..=q` or `q == 0`.
pub fn merge_with_lead(q: usize, lead: usize) -> Vec<PortOp> {
    assert!(q > 0, "empty enrollment has no merges");
    assert!((1..=q).contains(&lead), "lead must be in 1..={q}");
    let mut ops = Vec::with_capacity(2 * q);
    for i in 0..q {
        ops.push(PortOp::Send(i));
        if i + 1 >= lead {
            ops.push(PortOp::Ret(i + 1 - lead));
        }
    }
    for j in (q + 1 - lead)..q {
        ops.push(PortOp::Ret(j));
    }
    ops
}

/// The per-message start-variable LP of one `(order, merge)` pair on the
/// schedule-model IR. Returns the model plus the `alpha` group (loads per
/// enrolled position).
pub fn interleaved_model(
    platform: &Platform,
    order: &[WorkerId],
    merge: &[PortOp],
) -> (ScheduleModel, dls_lp::VarGroup) {
    let q = order.len();
    debug_assert_eq!(merge.len(), 2 * q, "merge must cover all 2q port ops");
    let mut ir = ScheduleModel::maximize();
    let alphas = ir.group("alpha", order.iter().map(|id| (format!("alpha_{id}"), 1.0)));
    let sends = ir.group(
        "send_start",
        order.iter().map(|id| (format!("s_{id}"), 0.0)),
    );
    let rets = ir.group(
        "return_start",
        order.iter().map(|id| (format!("r_{id}"), 0.0)),
    );

    let start_of = |op: PortOp| -> MVar {
        match op {
            PortOp::Send(k) => sends.var(k),
            PortOp::Ret(k) => rets.var(k),
        }
    };
    let duration_of = |op: PortOp| -> (MVar, f64) {
        match op {
            PortOp::Send(k) => (alphas.var(k), platform.worker(order[k]).c),
            PortOp::Ret(k) => (alphas.var(k), platform.worker(order[k]).d),
        }
    };
    let op_name = |op: PortOp| -> String {
        match op {
            PortOp::Send(k) => format!("S_{}", order[k]),
            PortOp::Ret(k) => format!("R_{}", order[k]),
        }
    };

    // One-port chain: consecutive merge operations in order — the
    // disjunctions, resolved.
    for pair in merge.windows(2) {
        ir.precedence(
            format!("port_{}_{}", op_name(pair[0]), op_name(pair[1])),
            start_of(pair[1]),
            start_of(pair[0]),
            [duration_of(pair[0])],
        );
    }
    // Results exist only after reception + computation.
    for (k, &id) in order.iter().enumerate() {
        let w = platform.worker(id);
        ir.precedence(
            format!("ready_{id}"),
            rets.var(k),
            sends.var(k),
            [(alphas.var(k), w.c + w.w)],
        );
    }
    // Horizon: the chain orders finishing times, so the last operation's
    // deadline bounds them all.
    let last = *merge.last().expect("merge is non-empty");
    let (dur_var, dur_coeff) = duration_of(last);
    ir.deadline(
        "horizon",
        [(start_of(last), 1.0), (dur_var, dur_coeff)],
        1.0,
    );
    (ir, alphas)
}

/// Outcome of one lead's LP.
#[derive(Debug, Clone)]
pub struct LeadOutcome {
    /// The lead (merge parameter; `q` = canonical).
    pub lead: usize,
    /// Optimal throughput of this merge's LP.
    pub throughput: f64,
    /// Loads per platform worker index.
    pub loads: Vec<f64>,
    /// Simplex pivots.
    pub iterations: usize,
    /// Basis-cache warm start.
    pub warm_start: bool,
}

/// The interleaving order every solver entry point uses: Theorem 1's
/// optimal FIFO order when the platform is `z`-tied, `INC_C` otherwise
/// (the same fallback as the multi-round planners).
pub fn interleaved_order(platform: &Platform) -> Vec<WorkerId> {
    theorem1_order(platform).unwrap_or_else(|_| platform.order_by_c())
}

/// Solves every lead's LP for a fixed order, canonical lead (`q`) first.
/// The profile is the raw material of the `interleaved_gap` artifact.
pub fn interleaved_profile(
    platform: &Platform,
    order: &[WorkerId],
) -> Result<Vec<LeadOutcome>, CoreError> {
    if order.is_empty() {
        return Err(CoreError::MalformedOrder("empty enrolled order".into()));
    }
    let q = order.len();
    let mut out = Vec::with_capacity(q);
    for lead in (1..=q).rev() {
        let merge = merge_with_lead(q, lead);
        let (ir, alphas) = interleaved_model(platform, order, &merge);
        let sol = lp_model::solve_model(&ir, None)?;
        let mut loads = vec![0.0; platform.num_workers()];
        for (k, &id) in order.iter().enumerate() {
            loads[id.index()] = sol.value(alphas.var(k).var_id()).max(0.0);
        }
        out.push(LeadOutcome {
            lead,
            throughput: sol.objective,
            loads,
            iterations: sol.iterations,
            warm_start: sol.warm_start,
        });
    }
    Ok(out)
}

/// Result of the interleaved FIFO optimization.
#[derive(Debug, Clone)]
pub struct InterleavedSolution {
    /// The winning schedule (FIFO orders over the interleaving order).
    pub schedule: Schedule,
    /// The winning merge's optimal throughput.
    pub throughput: f64,
    /// The winning lead (`q` = the canonical shape won or tied).
    pub lead: usize,
    /// The canonical (`lead = q`) optimum — equals `optimal_fifo` on
    /// `z`-tied platforms, so `throughput >= canonical_throughput` always.
    pub canonical_throughput: f64,
    /// Merge LPs evaluated.
    pub evaluated: usize,
}

/// Best-over-leads interleaved FIFO schedule for a fixed order. The
/// canonical lead is always evaluated (first), and a non-canonical lead
/// must *strictly* improve on it to win, so the result is never worse
/// than the canonical FIFO optimum for the same order.
///
/// The returned throughput is always **achievable by the returned
/// schedule**: a non-canonical winner is accepted only if its loads also
/// fit the unit horizon under the canonical earliest-feasible timeline
/// (the execution shape [`Schedule`] consumers replay). The
/// canonical-shape argument says this guard is dead code — a strictly
/// better interleaved optimum would contradict the theorem — so in
/// practice it only defends against numerical noise crossing `LEAD_EPS`.
pub fn interleaved_fifo_for_order(
    platform: &Platform,
    order: &[WorkerId],
) -> Result<InterleavedSolution, CoreError> {
    let profile = interleaved_profile(platform, order)?;
    let canonical = &profile[0]; // leads are evaluated q-first
    let mut best = canonical;
    for outcome in &profile[1..] {
        if outcome.throughput <= best.throughput + LEAD_EPS {
            continue;
        }
        // Achievability guard: the loads must replay canonically within
        // the horizon, or the reported throughput would be fiction.
        let candidate = Schedule::fifo(platform, order.to_vec(), outcome.loads.clone())?;
        let makespan =
            crate::timeline::makespan(platform, &candidate, crate::schedule::PortModel::OnePort);
        if makespan <= 1.0 + LEAD_EPS {
            best = outcome;
        }
    }
    let schedule = Schedule::fifo(platform, order.to_vec(), best.loads.clone())?;
    Ok(InterleavedSolution {
        schedule,
        throughput: best.throughput,
        lead: best.lead,
        canonical_throughput: canonical.throughput,
        evaluated: profile.len(),
    })
}

/// Best-over-leads interleaved FIFO schedule in the
/// [`interleaved_order`]: the `interleaved_fifo` registry strategy's
/// implementation. Never worse than `optimal_fifo` on `z`-tied platforms
/// (where both use Theorem 1's order and the canonical lead reproduces the
/// scenario LP exactly).
pub fn interleaved_fifo(platform: &Platform) -> Result<InterleavedSolution, CoreError> {
    interleaved_fifo_for_order(platform, &interleaved_order(platform))
}

// ---------------------------------------------------------------------------
// Registry wrap.
// ---------------------------------------------------------------------------

/// A constructor-configured interleaved-master strategy: either the
/// best-over-leads sweep (the `interleaved_fifo` default) or a single
/// pinned lead (`interleaved_fifo@<lead>`, used by the gap artifact to
/// chart what each interleaving costs; a pinned lead may well be *worse*
/// than `optimal_fifo`).
#[derive(Debug, Clone)]
pub struct InterleavedScheduler {
    lead: Option<usize>,
    name: String,
    legend: String,
}

impl InterleavedScheduler {
    /// The best-over-leads registry default.
    pub fn registry_default() -> Self {
        InterleavedScheduler {
            lead: None,
            name: "interleaved_fifo".into(),
            legend: "INT_FIFO".into(),
        }
    }

    /// A strategy pinned to one lead, named `interleaved_fifo@<lead>`.
    pub fn with_lead(lead: usize) -> Self {
        InterleavedScheduler {
            lead: Some(lead),
            name: format!("interleaved_fifo@{lead}"),
            legend: format!("INT_FIFO@{lead}"),
        }
    }

    /// The pinned lead, if any.
    pub fn lead(&self) -> Option<usize> {
        self.lead
    }
}

impl Scheduler for InterleavedScheduler {
    fn name(&self) -> &str {
        &self.name
    }

    fn legend(&self) -> &str {
        &self.legend
    }

    fn solve(&self, platform: &Platform) -> Result<Solution, CoreError> {
        let order = interleaved_order(platform);
        match self.lead {
            None => {
                let sol = interleaved_fifo_for_order(platform, &order)?;
                Ok(Solution {
                    schedule: sol.schedule,
                    throughput: sol.throughput,
                    provenance: Provenance::Search {
                        evaluated: sol.evaluated,
                    },
                    execution: Execution::Direct,
                })
            }
            Some(lead) => {
                let q = order.len();
                if lead > q {
                    // The merge family only defines leads 1..=q; clamping
                    // would solve the canonical merge under this
                    // strategy's `@<lead>` name and mislabel the result.
                    return Err(CoreError::LeadBeyondEnrollment { lead, enrolled: q });
                }
                let merge = merge_with_lead(q, lead);
                let (ir, alphas) = interleaved_model(platform, &order, &merge);
                let lp = lp_model::solve_model(&ir, None)?;
                let mut loads = vec![0.0; platform.num_workers()];
                for (k, &id) in order.iter().enumerate() {
                    loads[id.index()] = lp.value(alphas.var(k).var_id()).max(0.0);
                }
                Ok(Solution {
                    schedule: Schedule::fifo(platform, order, loads)?,
                    throughput: lp.objective,
                    provenance: Provenance::Lp {
                        iterations: lp.iterations,
                        warm_start: lp.warm_start,
                    },
                    execution: Execution::Direct,
                })
            }
        }
    }
}

/// The provider handing the `interleaved_fifo` family to the engine
/// registry; installed by [`install`].
pub struct InterleavedProvider;

impl InterleavedProvider {
    fn parse(name: &str) -> Option<InterleavedScheduler> {
        let rest = name.strip_prefix("interleaved_fifo")?;
        if rest.is_empty() {
            return Some(InterleavedScheduler::registry_default());
        }
        let lead = rest.strip_prefix('@')?.parse::<usize>().ok()?;
        if lead == 0 {
            return None;
        }
        Some(InterleavedScheduler::with_lead(lead))
    }
}

impl SchedulerProvider for InterleavedProvider {
    fn group(&self) -> &'static str {
        "interleaved"
    }

    fn schedulers(&self) -> Vec<Box<dyn Scheduler>> {
        vec![Box::new(InterleavedScheduler::registry_default())]
    }

    fn resolve(&self, name: &str) -> Option<Box<dyn Scheduler>> {
        Self::parse(name).map(|s| Box::new(s) as Box<dyn Scheduler>)
    }
}

/// Installs the interleaved provider into [`crate::registry`]
/// (idempotent). After this, `registry()` lists `interleaved_fifo` and
/// [`crate::lookup`] resolves pinned-lead ids such as
/// `interleaved_fifo@1`.
pub fn install() {
    crate::register_provider(Arc::new(InterleavedProvider));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fifo::optimal_fifo;
    use crate::schedule::PortModel;
    use crate::timeline::{makespan, Timeline};

    fn star(n: usize) -> Platform {
        let cw: Vec<(f64, f64)> = (0..n)
            .map(|i| (1.0 + 0.4 * i as f64, 2.0 + 0.7 * ((i * 5) % 4) as f64))
            .collect();
        Platform::star_with_z(&cw, 0.5).unwrap()
    }

    #[test]
    fn merges_cover_all_ops_and_respect_orders() {
        for q in 1..=6 {
            for lead in 1..=q {
                let merge = merge_with_lead(q, lead);
                assert_eq!(merge.len(), 2 * q);
                let mut next_send = 0;
                let mut next_ret = 0;
                for op in &merge {
                    match *op {
                        PortOp::Send(k) => {
                            assert_eq!(k, next_send, "sends out of order");
                            next_send += 1;
                        }
                        PortOp::Ret(k) => {
                            assert_eq!(k, next_ret, "returns out of order");
                            assert!(k < next_send, "return before its own send");
                            next_ret += 1;
                        }
                    }
                }
            }
        }
        // lead = q is canonical: all sends, then all returns.
        let canon = merge_with_lead(4, 4);
        assert!(matches!(canon[3], PortOp::Send(3)));
        assert!(matches!(canon[4], PortOp::Ret(0)));
        // lead = 1 alternates.
        let alt = merge_with_lead(3, 1);
        assert_eq!(
            alt,
            vec![
                PortOp::Send(0),
                PortOp::Ret(0),
                PortOp::Send(1),
                PortOp::Ret(1),
                PortOp::Send(2),
                PortOp::Ret(2),
            ]
        );
    }

    #[test]
    fn canonical_lead_reproduces_the_scenario_lp() {
        // The lead = q merge LP and the paper's canonical LP (2) describe
        // the same feasible loads: identical optima.
        for n in [1usize, 2, 4, 6] {
            let p = star(n);
            let order = interleaved_order(&p);
            let merge = merge_with_lead(n, n);
            let (ir, _) = interleaved_model(&p, &order, &merge);
            let merged = lp_model::solve_model(&ir, None).unwrap();
            let canonical = lp_model::solve_fifo(&p, &order, PortModel::OnePort).unwrap();
            assert!(
                (merged.objective - canonical.throughput).abs() < 1e-7,
                "p = {n}: merge {} vs canonical {}",
                merged.objective,
                canonical.throughput
            );
        }
    }

    #[test]
    fn never_worse_than_optimal_fifo() {
        for n in [2usize, 3, 5, 8] {
            let p = star(n);
            let sol = interleaved_fifo(&p).unwrap();
            let opt = optimal_fifo(&p).unwrap();
            assert!(
                sol.throughput >= opt.throughput - 1e-9,
                "p = {n}: interleaved {} below optimal_fifo {}",
                sol.throughput,
                opt.throughput
            );
            assert!((sol.canonical_throughput - opt.throughput).abs() < 1e-7);
            assert_eq!(sol.evaluated, n);
        }
    }

    #[test]
    fn canonical_shape_wins_the_merge_family() {
        // The paper's canonical-shape argument, visible in the LP family:
        // no lead strictly beats lead = q, so the winning schedule is the
        // canonical one and its earliest-feasible timeline verifies clean
        // in the unit horizon.
        let p = star(5);
        let sol = interleaved_fifo(&p).unwrap();
        assert_eq!(sol.lead, 5, "a non-canonical lead claimed a strict win");
        let t = Timeline::build(&p, &sol.schedule, PortModel::OnePort);
        assert!(t.verify(&p, &sol.schedule, 1e-7).is_empty());
        assert!(makespan(&p, &sol.schedule, PortModel::OnePort) <= 1.0 + 1e-7);
    }

    #[test]
    fn profile_charts_what_interleaving_costs() {
        let p = star(4);
        let order = interleaved_order(&p);
        let profile = interleaved_profile(&p, &order).unwrap();
        assert_eq!(profile.len(), 4);
        assert_eq!(profile[0].lead, 4);
        // Canonical is the family's optimum; every interleaving is <= it.
        for o in &profile[1..] {
            assert!(
                o.throughput <= profile[0].throughput + 1e-9,
                "lead {} beat canonical: {} vs {}",
                o.lead,
                o.throughput,
                profile[0].throughput
            );
        }
        // Repeated profiles warm-start from the per-lead basis slots.
        let again = interleaved_profile(&p, &order).unwrap();
        assert!(again.iter().all(|o| o.warm_start));
    }

    #[test]
    fn comm_bound_regime_is_port_limited_for_every_lead() {
        // The comm-bound regime PR 4 flagged: tiny compute, the port is
        // the binding resource. Interleaving shuffles the port sequence
        // but cannot create port time: every lead hits the same 1/(c+d)
        // capacity bound.
        let p = Platform::star_with_z(&[(1.0, 1e-6), (1.0, 1e-6)], 0.5).unwrap();
        let order = interleaved_order(&p);
        let profile = interleaved_profile(&p, &order).unwrap();
        for o in &profile {
            assert!(
                (o.throughput - 1.0 / 1.5).abs() < 1e-4,
                "lead {}: {} vs port bound {}",
                o.lead,
                o.throughput,
                1.0 / 1.5
            );
        }
    }

    #[test]
    fn single_worker_degenerates_cleanly() {
        let p = star(1);
        let sol = interleaved_fifo(&p).unwrap();
        let expect = 1.0 / (1.0 + 2.0 + 0.5);
        assert!((sol.throughput - expect).abs() < 1e-9);
        assert_eq!(sol.lead, 1);
    }

    #[test]
    fn provider_parses_defaults_and_pinned_leads_only() {
        assert_eq!(
            InterleavedProvider::parse("interleaved_fifo")
                .unwrap()
                .name(),
            "interleaved_fifo"
        );
        let s = InterleavedProvider::parse("interleaved_fifo@2").unwrap();
        assert_eq!(s.lead(), Some(2));
        assert_eq!(s.name(), "interleaved_fifo@2");
        assert!(InterleavedProvider::parse("interleaved_fifo@0").is_none());
        assert!(InterleavedProvider::parse("interleaved_fifo@x").is_none());
        assert!(InterleavedProvider::parse("interleaved_fifox").is_none());
        assert!(InterleavedProvider::parse("optimal_fifo").is_none());
    }

    #[test]
    fn scheduler_default_matches_free_function_and_pinned_leads_cost() {
        let p = star(4);
        let default = InterleavedScheduler::registry_default().solve(&p).unwrap();
        let free = interleaved_fifo(&p).unwrap();
        assert!((default.throughput - free.throughput).abs() < 1e-12);
        assert!(matches!(
            default.provenance,
            Provenance::Search { evaluated: 4 }
        ));
        // A pinned alternating lead reports that merge's (worse-or-equal)
        // optimum with LP provenance.
        let pinned = InterleavedScheduler::with_lead(1).solve(&p).unwrap();
        assert!(pinned.throughput <= default.throughput + 1e-9);
        assert!(matches!(pinned.provenance, Provenance::Lp { .. }));
    }

    #[test]
    fn pinned_lead_beyond_enrollment_is_an_applicability_error() {
        // Clamping would solve the canonical merge under the `@9` name and
        // mislabel the result; the strategy must declare itself
        // inapplicable instead (sweeps record it as a skip).
        let p = star(4);
        let err = InterleavedScheduler::with_lead(9).solve(&p).unwrap_err();
        assert!(matches!(
            err,
            CoreError::LeadBeyondEnrollment {
                lead: 9,
                enrolled: 4
            }
        ));
        assert!(err.is_applicability());
        // The largest valid lead is exactly the enrollment.
        assert!(InterleavedScheduler::with_lead(4).solve(&p).is_ok());
    }

    #[test]
    fn applies_to_non_z_tied_platforms_via_the_inc_c_fallback() {
        let p = Platform::new(vec![
            dls_platform::Worker::new(1.0, 1.0, 0.5),
            dls_platform::Worker::new(1.0, 1.0, 0.9),
        ])
        .unwrap();
        let sol = interleaved_fifo(&p).unwrap();
        assert!(sol.throughput > 0.0);
        // The canonical lead still matches the plain scenario LP there.
        let direct = lp_model::solve_fifo(&p, &p.order_by_c(), PortModel::OnePort).unwrap();
        assert!((sol.canonical_throughput - direct.throughput).abs() < 1e-9);
    }
}
