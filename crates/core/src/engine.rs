//! Unified scheduler engine: every solver family behind one trait.
//!
//! The crate grew as a collection of free functions with divergent
//! signatures (`optimal_fifo` returns an [`LpSchedule`], `bus_fifo` a
//! [`BusFifoSolution`], `chain_best_prefix` an order/solution pair, …),
//! which forced every downstream consumer — sweeps, report tables,
//! benchmarks — to hard-code each call site. This module normalizes them:
//!
//! * [`Scheduler`] — `name()` + `solve(&Platform) -> Result<Solution>`,
//!   plus [`Scheduler::solve_exact`] for exact-rational certification;
//! * [`Solution`] — schedule + throughput + [`Provenance`] + [`Execution`]
//!   (where the schedule's worker ids live: the physical platform, or an
//!   expanded multi-round replication of it);
//! * [`registry()`] — every built-in strategy as a trait object, so new
//!   strategies (multi-round, tree platforms, interleaved masters) plug in
//!   as one file instead of a cross-crate surgery;
//! * [`SchedulerProvider`] / [`register_provider`] — the
//!   parameterized-scheduler story: crates *above* `dls-core` (e.g.
//!   `dls-rounds`) contribute constructor-configured strategies to
//!   [`registry()`] and resolve parameterized ids such as
//!   `multiround_lp@8` through [`lookup`].
//!
//! The original free functions remain the implementation; the engine types
//! are thin adapters over them.
//!
//! ```
//! use dls_core::prelude::*;
//! use dls_platform::Platform;
//!
//! let p = Platform::bus(1.0, 0.5, &[3.0, 5.0, 4.0]).unwrap();
//! for s in dls_core::registry() {
//!     let sol = s.solve(&p).unwrap();
//!     assert!(sol.throughput > 0.0, "{} failed", s.name());
//! }
//! ```

use std::sync::{Arc, OnceLock, RwLock};

use dls_lp::Rational;
use dls_platform::{Platform, TreePlatform, WorkerId};

use crate::error::CoreError;
use crate::lp_model::LpSchedule;
use crate::schedule::{PortModel, Schedule};
use crate::timeline::Timeline;

/// How a [`Solution`] was obtained.
#[derive(Debug, Clone, PartialEq)]
pub enum Provenance {
    /// A scenario LP solved with the simplex (`iterations` pivots).
    Lp {
        /// Simplex pivots used.
        iterations: usize,
        /// `true` when the solve warm-started from a cached basis of an
        /// earlier LP on the same platform (see
        /// [`crate::lp_model::warm_start_stats`]).
        warm_start: bool,
    },
    /// An analytical closed form or chain solution — no LP involved.
    ClosedForm,
    /// Exhaustive search over `evaluated` candidate scenarios.
    Search {
        /// Scenarios (LPs) evaluated.
        evaluated: usize,
    },
    /// An LP **relaxation** paired with a replay-achieved value: the
    /// solution's reported throughput was achieved by an executable
    /// schedule (simulator replay or expansion), while `bound` is the
    /// relaxation's own optimum — a certified upper bound on what *any*
    /// schedule of the instance can achieve. Used by the tree-native
    /// per-link LP (`tree_lp`), whose formulation relaxes message ordering
    /// but whose store-and-forward replay is exact; `bound - throughput`
    /// is the remaining pipelining gap.
    LpBound {
        /// Simplex pivots of the relaxation solve.
        iterations: usize,
        /// The relaxation's optimal throughput (a valid upper bound).
        bound: f64,
    },
}

/// Where a [`Solution`]'s schedule executes: the worker-id space its
/// `Schedule` refers to.
///
/// One-round strategies schedule the physical platform directly. Multi-round
/// strategies (see the `dls-rounds` crate) lower an installment plan onto an
/// *expanded* virtual platform — `rounds` round-major copies of the physical
/// worker set, virtual id `r·p + j` being round `r`'s installment for
/// physical worker `j` — so the existing timeline/simulator machinery
/// replays the plan unchanged.
#[derive(Debug, Clone, PartialEq)]
pub enum Execution {
    /// Schedule worker ids are physical platform ids (a one-round plan).
    Direct,
    /// The schedule lives on `platform`, a `rounds`-fold round-major
    /// replication of the physical platform.
    Rounds {
        /// The expanded virtual platform the schedule's ids refer to.
        platform: Platform,
        /// Number of installment rounds (`platform` has `rounds · p`
        /// workers for a physical platform of `p`).
        rounds: usize,
    },
    /// The schedule lives on `platform`, the bandwidth-equivalent
    /// *star-collapse* of a multi-level tree topology (see the `dls-tree`
    /// crate): virtual worker `j` stands for tree node `j`, its `c`/`d`
    /// summed along the root-to-node path (serialized store-and-forward
    /// cost). Expanding the collapsed-star timeline back into per-edge hop
    /// timings is always feasible on `tree`, so the reported throughput is
    /// achieved (it is *exact* for depth-1 trees and conservative for
    /// deeper ones, where real relays can pipeline hops in parallel).
    Tree {
        /// The collapsed bandwidth-equivalent star the schedule's ids
        /// refer to.
        platform: Platform,
        /// The tree topology the solution was planned for.
        tree: TreePlatform,
        /// Physical worker id per tree node / collapsed-star worker — the
        /// collapse mapping back to the platform the scheduler was asked
        /// to solve (identity for solves of a native tree).
        nodes: Vec<WorkerId>,
    },
}

/// The unified result every [`Scheduler`] produces.
#[derive(Debug, Clone)]
pub struct Solution {
    /// The schedule (orders + loads) to execute — on the physical platform
    /// for [`Execution::Direct`], on the expanded virtual platform for
    /// [`Execution::Rounds`].
    pub schedule: Schedule,
    /// Normalized throughput: load processed per unit of horizon when this
    /// schedule is executed on the platform it was solved for (`T = 1`
    /// scaling). For baselines that ignore part of the cost model (e.g.
    /// [`no-return`](crate::no_return)) this is the *achieved* throughput
    /// under the full one-port model, not the solver's own optimistic
    /// objective — all registry entries are therefore directly comparable.
    pub throughput: f64,
    /// How the solution was computed.
    pub provenance: Provenance,
    /// The worker-id space the schedule refers to (physical platform or a
    /// multi-round expansion of it).
    pub execution: Execution,
}

impl Solution {
    /// Packages an LP result (throughput is the LP objective, which the
    /// one-port timeline achieves exactly).
    fn from_lp(lp: LpSchedule) -> Solution {
        Solution {
            schedule: lp.schedule,
            throughput: lp.throughput,
            provenance: Provenance::Lp {
                iterations: lp.iterations,
                warm_start: lp.warm_start,
            },
            execution: Execution::Direct,
        }
    }

    /// Packages a closed-form schedule, measuring the achieved one-port
    /// throughput off the earliest-feasible timeline.
    fn measured(platform: &Platform, schedule: Schedule) -> Solution {
        let throughput = crate::timeline::throughput(platform, &schedule, PortModel::OnePort);
        Solution {
            schedule,
            throughput,
            provenance: Provenance::ClosedForm,
            execution: Execution::Direct,
        }
    }

    /// The platform this solution's schedule must be timed/simulated on:
    /// `physical` itself for [`Execution::Direct`], the stored expanded
    /// platform for [`Execution::Rounds`].
    pub fn execution_platform<'a>(&'a self, physical: &'a Platform) -> &'a Platform {
        match &self.execution {
            Execution::Direct => physical,
            Execution::Rounds { platform, .. } => platform,
            Execution::Tree { platform, .. } => platform,
        }
    }

    /// Number of installment rounds (1 for one-round solutions; tree
    /// schedules are one-round).
    pub fn rounds(&self) -> usize {
        match &self.execution {
            Execution::Direct => 1,
            Execution::Rounds { rounds, .. } => *rounds,
            Execution::Tree { .. } => 1,
        }
    }

    /// The tree topology this solution was planned for, if it is a
    /// star-collapse solution.
    pub fn tree(&self) -> Option<&TreePlatform> {
        match &self.execution {
            Execution::Tree { tree, .. } => Some(tree),
            _ => None,
        }
    }

    /// Number of *physical* workers that process load: participants of a
    /// direct schedule, distinct `id mod p` of an expanded one.
    pub fn enrolled_workers(&self, physical: &Platform) -> usize {
        let p = physical.num_workers();
        match &self.execution {
            Execution::Direct => self.schedule.participants().len(),
            Execution::Rounds { .. } => {
                let mut seen = vec![false; p];
                for id in self.schedule.participants() {
                    seen[id.index() % p] = true;
                }
                seen.iter().filter(|s| **s).count()
            }
            Execution::Tree { nodes, .. } => {
                let mut seen = vec![false; p];
                for id in self.schedule.participants() {
                    seen[nodes[id.index()].index()] = true;
                }
                seen.iter().filter(|s| **s).count()
            }
        }
    }

    /// Builds and verifies the earliest-feasible one-port timeline of this
    /// solution on its [`execution platform`](Solution::execution_platform);
    /// `Err` carries the violation list.
    pub fn verified_timeline(
        &self,
        platform: &Platform,
        tol: f64,
    ) -> Result<Timeline, Vec<String>> {
        let platform = self.execution_platform(platform);
        let t = Timeline::build(platform, &self.schedule, PortModel::OnePort);
        let violations = t.verify(platform, &self.schedule, tol);
        if violations.is_empty() {
            Ok(t)
        } else {
            Err(violations)
        }
    }
}

/// Exact-rational certificate of a strategy's chosen scenario: the optimal
/// objective and loads of the scenario LP solved with [`Rational`]
/// arithmetic (no floating point anywhere in the pivot path).
#[derive(Debug, Clone)]
pub struct ExactSolution {
    /// Exact optimal throughput of the scenario the strategy selected.
    pub throughput: Rational,
    /// Exact loads, indexed by the execution platform's worker ids.
    pub loads: Vec<Rational>,
}

/// A scheduling strategy: anything that maps a [`Platform`] to a
/// [`Solution`]. `Send + Sync` so registries can be shared across the
/// sweep worker threads.
pub trait Scheduler: Send + Sync {
    /// Stable identifier, unique within [`registry()`] (snake_case).
    fn name(&self) -> &str;

    /// Display name matching the paper's figure legends (defaults to
    /// [`Scheduler::name`]).
    fn legend(&self) -> &str {
        self.name()
    }

    /// Solves the platform. Errors are strategy-specific: e.g.
    /// [`CoreError::NotABus`] from the Theorem 2 closed form on a star, or
    /// [`CoreError::TooManyWorkers`] from exhaustive search.
    fn solve(&self, platform: &Platform) -> Result<Solution, CoreError>;

    /// Certifies the strategy with exact rational arithmetic: re-solves the
    /// scenario (enrollment + `σ1`/`σ2`) the float path selected, as an
    /// exact LP under the one-port model, on the solution's execution
    /// platform.
    ///
    /// For every strategy whose reported throughput *is* its scenario's LP
    /// optimum (the LP solvers, the closed forms, the exhaustive searches,
    /// the multi-round LP planner) the exact objective must match
    /// [`Solution::throughput`] to floating-point accuracy — the CI
    /// certification in `tests/exact_registry.rs` relies on this. The
    /// exceptions report *achieved* values below the scenario optimum: the
    /// `no_return` baseline (loads chosen while ignoring return costs) and
    /// the non-LP multi-round planners (uniform/geometric chunking); for
    /// those the exact objective is an upper bound.
    fn solve_exact(&self, platform: &Platform) -> Result<ExactSolution, CoreError> {
        let sol = self.solve(platform)?;
        let exec = sol.execution_platform(platform);
        let (throughput, loads) = crate::lp_model::solve_scenario_exact::<Rational>(
            exec,
            sol.schedule.send_order(),
            sol.schedule.return_order(),
            PortModel::OnePort,
        )?;
        Ok(ExactSolution { throughput, loads })
    }
}

/// A family of externally contributed, constructor-configured schedulers —
/// the registry's extension point for crates that sit *above* `dls-core`
/// in the dependency graph (multi-round planners today, the affine solvers
/// next).
///
/// Providers are process-global: [`register_provider`] installs one (keyed
/// by [`SchedulerProvider::group`]; re-registering a group replaces it,
/// making installation idempotent), after which [`registry()`] lists the
/// provider's default instances and [`lookup`] resolves its ids — including
/// parameterized spellings such as `multiround_lp@8` that name a
/// constructor configuration rather than a fixed instance.
pub trait SchedulerProvider: Send + Sync {
    /// Stable provider id (e.g. `"multiround"`); re-registering the same
    /// group replaces the previous provider.
    fn group(&self) -> &'static str;

    /// The default instances this provider contributes to [`registry()`].
    /// Names must be unique registry-wide.
    fn schedulers(&self) -> Vec<Box<dyn Scheduler>>;

    /// Resolves a strategy id — the default names from
    /// [`SchedulerProvider::schedulers`] *and* any parameterized forms the
    /// provider supports. `None` for ids this provider does not own.
    fn resolve(&self, name: &str) -> Option<Box<dyn Scheduler>>;
}

fn providers() -> &'static RwLock<Vec<Arc<dyn SchedulerProvider>>> {
    static PROVIDERS: OnceLock<RwLock<Vec<Arc<dyn SchedulerProvider>>>> = OnceLock::new();
    PROVIDERS.get_or_init(|| RwLock::new(Vec::new()))
}

/// Installs (or replaces, by [`SchedulerProvider::group`]) a scheduler
/// provider; its defaults appear in every subsequent [`registry()`] call.
pub fn register_provider(provider: Arc<dyn SchedulerProvider>) {
    let mut ps = providers().write().expect("provider registry poisoned");
    if let Some(slot) = ps.iter_mut().find(|p| p.group() == provider.group()) {
        *slot = provider;
    } else {
        ps.push(provider);
    }
}

macro_rules! define_scheduler {
    ($(#[$doc:meta])* $ty:ident, $name:literal, $legend:literal,
     |$platform:ident| $solve:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, Default)]
        pub struct $ty;

        impl Scheduler for $ty {
            fn name(&self) -> &str {
                $name
            }
            fn legend(&self) -> &str {
                $legend
            }
            fn solve(&self, $platform: &Platform) -> Result<Solution, CoreError> {
                $solve
            }
        }
    };
}

define_scheduler!(
    /// Theorem 1 + Proposition 1: the optimal one-port FIFO schedule with
    /// LP resource selection (requires a `z`-tied platform).
    OptimalFifo, "optimal_fifo", "OPT_FIFO",
    |platform| crate::fifo::optimal_fifo(platform).map(Solution::from_lp)
);

define_scheduler!(
    /// The optimal one-port LIFO schedule (all workers, non-decreasing
    /// `c`); the paper's `LIFO` heuristic.
    OptimalLifo, "optimal_lifo", "LIFO",
    |platform| crate::lifo::optimal_lifo(platform).map(Solution::from_lp)
);

define_scheduler!(
    /// The paper's `INC_C` heuristic: FIFO over all workers by
    /// non-decreasing `c` (optimal FIFO order for `z <= 1`).
    IncC, "inc_c", "INC_C",
    |platform| crate::fifo::inc_c_fifo(platform).map(Solution::from_lp)
);

define_scheduler!(
    /// The paper's `INC_W` heuristic: FIFO over all workers by
    /// non-decreasing `w`.
    IncW, "inc_w", "INC_W",
    |platform| crate::fifo::inc_w_fifo(platform).map(Solution::from_lp)
);

define_scheduler!(
    /// Theorem 2: the closed-form optimal FIFO on a bus platform (errors
    /// with [`CoreError::NotABus`] elsewhere).
    BusFifo, "bus_fifo", "BUS_FIFO",
    |platform| {
        let sol = crate::closed_form::bus_fifo(platform)?;
        Ok(Solution {
            schedule: sol.schedule(platform),
            throughput: sol.throughput,
            provenance: Provenance::ClosedForm,
            execution: Execution::Direct,
        })
    }
);

define_scheduler!(
    /// The `O(p)` LIFO closed form from the companion papers (all workers,
    /// tight constraint chain; no LP).
    StarLifo, "star_lifo", "LIFO_CF",
    |platform| {
        let sol = crate::closed_form::star_lifo(platform);
        Ok(Solution {
            schedule: sol.schedule(platform),
            throughput: sol.throughput,
            provenance: Provenance::ClosedForm,
            execution: Execution::Direct,
        })
    }
);

define_scheduler!(
    /// The analytical chain solver over prefixes of the `c`-sorted worker
    /// list — a fast LP-free FIFO heuristic.
    ChainFifo, "chain", "CHAIN",
    |platform| {
        let (order, sol) = crate::chain::chain_best_prefix(platform)?;
        Ok(Solution {
            schedule: sol.schedule(platform, &order),
            throughput: sol.throughput,
            provenance: Provenance::ClosedForm,
            execution: Execution::Direct,
        })
    }
);

define_scheduler!(
    /// The classical no-return baseline \[6\]: loads chosen ignoring return
    /// messages, then *executed* under the full one-port model — its
    /// reported throughput is the achieved (degraded) one.
    NoReturn, "no_return", "NO_RETURN",
    |platform| {
        let sol = crate::no_return::optimal_no_return(platform)?;
        Ok(Solution::measured(platform, sol.schedule(platform)))
    }
);

define_scheduler!(
    /// Exhaustive ground truth over every FIFO order (`p!` LPs, `p <= 8`).
    BruteFifo, "brute_fifo", "BRUTE_FIFO",
    |platform| {
        let res = crate::brute_force::best_fifo(platform, PortModel::OnePort)?;
        Ok(Solution {
            schedule: res.best.schedule,
            throughput: res.best.throughput,
            provenance: Provenance::Search {
                evaluated: res.evaluated,
            },
            execution: Execution::Direct,
        })
    }
);

define_scheduler!(
    /// Exhaustive ground truth over every `(σ1, σ2)` permutation pair
    /// (`p!²` LPs, `p <= 5`) — the open general problem, canonical shape.
    BruteScenario, "brute_force", "BRUTE",
    |platform| {
        let res = crate::brute_force::best_scenario(platform, PortModel::OnePort)?;
        Ok(Solution {
            schedule: res.best.schedule,
            throughput: res.best.throughput,
            provenance: Provenance::Search {
                evaluated: res.evaluated,
            },
            execution: Execution::Direct,
        })
    }
);

/// Every built-in strategy, in a stable order (optimal solvers first, then
/// heuristics, then baselines and exhaustive searches), followed by the
/// default instances of every installed [`SchedulerProvider`] in
/// registration order.
pub fn registry() -> Vec<Box<dyn Scheduler>> {
    let mut reg: Vec<Box<dyn Scheduler>> = vec![
        Box::new(OptimalFifo),
        Box::new(OptimalLifo),
        Box::new(IncC),
        Box::new(IncW),
        Box::new(BusFifo),
        Box::new(StarLifo),
        Box::new(ChainFifo),
        Box::new(NoReturn),
        Box::new(BruteFifo),
        Box::new(BruteScenario),
    ];
    for provider in providers()
        .read()
        .expect("provider registry poisoned")
        .iter()
    {
        reg.extend(provider.schedulers());
    }
    reg
}

/// Finds a strategy by its [`Scheduler::name`]: built-ins first, then each
/// installed provider's [`SchedulerProvider::resolve`] — which also accepts
/// parameterized ids (e.g. `multiround_lp@8`) that do not appear verbatim
/// in [`registry()`].
pub fn lookup(name: &str) -> Option<Box<dyn Scheduler>> {
    if let Some(s) = registry().into_iter().find(|s| s.name() == name) {
        return Some(s);
    }
    providers()
        .read()
        .expect("provider registry poisoned")
        .iter()
        .find_map(|p| p.resolve(name))
}

// Engine-local invariants only: the registry round-trip on the shared
// 5-worker fixture (verify-clean timelines, optimal-FIFO dominance,
// provenance) lives in the workspace integration suite,
// `tests/engine_registry.rs`.
#[cfg(test)]
mod tests {
    use super::*;
    use dls_lp::Scalar;

    /// A small bus so every registered strategy applies.
    fn fixture() -> Platform {
        Platform::bus(1.0, 0.5, &[2.0, 4.0, 3.0, 6.0, 5.0]).unwrap()
    }

    #[test]
    fn registry_names_are_unique() {
        let reg = registry();
        let mut names: Vec<&str> = reg.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate scheduler names");
    }

    #[test]
    fn lookup_finds_by_name() {
        assert!(lookup("optimal_fifo").is_some());
        assert!(lookup("inc_c").is_some());
        assert!(lookup("nonexistent").is_none());
        assert_eq!(lookup("optimal_lifo").unwrap().legend(), "LIFO");
    }

    #[test]
    fn trait_objects_match_free_functions() {
        let p = fixture();
        let via_trait = lookup("optimal_fifo").unwrap().solve(&p).unwrap();
        let direct = crate::fifo::optimal_fifo(&p).unwrap();
        assert!((via_trait.throughput - direct.throughput).abs() < 1e-12);
        assert_eq!(via_trait.schedule, direct.schedule);
        assert!(matches!(via_trait.provenance, Provenance::Lp { .. }));
    }

    #[test]
    fn bus_closed_form_errors_on_stars_through_the_trait() {
        let star = Platform::star_with_z(&[(1.0, 2.0), (2.0, 1.0)], 0.5).unwrap();
        assert_eq!(
            lookup("bus_fifo").unwrap().solve(&star).unwrap_err(),
            CoreError::NotABus
        );
    }

    #[test]
    fn no_return_reports_achieved_not_optimistic_throughput() {
        let p = fixture();
        let engine = lookup("no_return").unwrap().solve(&p).unwrap();
        let optimistic = crate::no_return::optimal_no_return(&p).unwrap();
        // Ignoring returns overstates what the one-port execution achieves.
        assert!(engine.throughput < optimistic.throughput);
    }

    #[test]
    fn direct_solutions_execute_on_the_physical_platform() {
        let p = fixture();
        let sol = lookup("optimal_fifo").unwrap().solve(&p).unwrap();
        assert_eq!(sol.execution, Execution::Direct);
        assert_eq!(sol.rounds(), 1);
        assert!(std::ptr::eq(sol.execution_platform(&p), &p));
        assert_eq!(sol.enrolled_workers(&p), sol.schedule.participants().len());
    }

    #[test]
    fn rounds_execution_maps_virtual_ids_back_to_physical_workers() {
        // Hand-build a 2-round solution on an expanded copy of a 2-worker
        // platform: virtual ids {0,1,2,3} are rounds-major, so enrolling
        // {0, 2} (both rounds of P1) is a single physical worker.
        let p = Platform::bus(1.0, 0.5, &[2.0, 4.0]).unwrap();
        let expanded = Platform::bus(1.0, 0.5, &[2.0, 4.0, 2.0, 4.0]).unwrap();
        let order: Vec<dls_platform::WorkerId> = expanded.ids().collect();
        let schedule = Schedule::fifo(&expanded, order, vec![0.25, 0.0, 0.75, 0.0]).unwrap();
        let sol = Solution {
            schedule,
            throughput: 0.1,
            provenance: Provenance::ClosedForm,
            execution: Execution::Rounds {
                platform: expanded.clone(),
                rounds: 2,
            },
        };
        assert_eq!(sol.rounds(), 2);
        assert_eq!(sol.execution_platform(&p).num_workers(), 4);
        assert_eq!(sol.enrolled_workers(&p), 1);
        // verified_timeline must time the schedule on the expanded platform.
        assert!(sol.verified_timeline(&p, 1e-9).is_ok());
    }

    #[test]
    fn solve_exact_certifies_lp_strategies_on_the_fixture() {
        let p = fixture();
        for name in ["optimal_fifo", "optimal_lifo", "inc_c", "bus_fifo"] {
            let s = lookup(name).unwrap();
            let float = s.solve(&p).unwrap().throughput;
            let exact = s.solve_exact(&p).unwrap();
            assert!(
                (exact.throughput.to_f64() - float).abs() < 1e-9,
                "{name}: exact {} vs float {float}",
                exact.throughput.to_f64()
            );
            let load_sum: f64 = exact.loads.iter().map(|l| l.to_f64()).sum();
            assert!(
                (load_sum - float).abs() < 1e-9,
                "{name}: loads sum {load_sum}"
            );
        }
    }

    #[test]
    fn solve_exact_upper_bounds_the_no_return_baseline() {
        // no_return reports the *achieved* throughput; the exact re-solve of
        // its scenario re-optimizes the loads and can only do better.
        let p = fixture();
        let s = lookup("no_return").unwrap();
        let float = s.solve(&p).unwrap().throughput;
        let exact = s.solve_exact(&p).unwrap().throughput.to_f64();
        assert!(
            exact >= float - 1e-9,
            "exact {exact} below achieved {float}"
        );
    }

    /// A provider contributing one configurable dummy strategy, for the
    /// registration mechanics (real providers live in `dls-rounds`).
    struct DummyProvider;

    struct DummyScheduler {
        name: String,
    }

    impl Scheduler for DummyScheduler {
        fn name(&self) -> &str {
            &self.name
        }
        fn solve(&self, platform: &Platform) -> Result<Solution, CoreError> {
            crate::fifo::inc_c_fifo(platform).map(Solution::from_lp)
        }
    }

    impl SchedulerProvider for DummyProvider {
        fn group(&self) -> &'static str {
            "engine-test-dummy"
        }
        fn schedulers(&self) -> Vec<Box<dyn Scheduler>> {
            vec![Box::new(DummyScheduler {
                name: "engine_test_dummy".into(),
            })]
        }
        fn resolve(&self, name: &str) -> Option<Box<dyn Scheduler>> {
            let rest = name.strip_prefix("engine_test_dummy")?;
            if rest.is_empty() || rest.starts_with('@') {
                Some(Box::new(DummyScheduler { name: name.into() }))
            } else {
                None
            }
        }
    }

    #[test]
    fn providers_extend_registry_and_resolve_parameterized_ids() {
        register_provider(Arc::new(DummyProvider));
        // Idempotent: a second registration replaces, not duplicates.
        register_provider(Arc::new(DummyProvider));
        let names: Vec<String> = registry().iter().map(|s| s.name().to_string()).collect();
        assert_eq!(
            names.iter().filter(|n| *n == "engine_test_dummy").count(),
            1,
            "provider defaults duplicated: {names:?}"
        );
        // Default and parameterized lookups both resolve and solve.
        let p = fixture();
        for id in ["engine_test_dummy", "engine_test_dummy@7"] {
            let s = lookup(id).expect("provider id resolves");
            assert_eq!(s.name(), id);
            assert!(s.solve(&p).unwrap().throughput > 0.0);
        }
        assert!(lookup("engine_test_dummy_unknown").is_none());
    }
}
