//! Unified scheduler engine: every solver family behind one trait.
//!
//! The crate grew as a collection of free functions with divergent
//! signatures (`optimal_fifo` returns an [`LpSchedule`], `bus_fifo` a
//! [`BusFifoSolution`], `chain_best_prefix` an order/solution pair, …),
//! which forced every downstream consumer — sweeps, report tables,
//! benchmarks — to hard-code each call site. This module normalizes them:
//!
//! * [`Scheduler`] — `name()` + `solve(&Platform) -> Result<Solution>`;
//! * [`Solution`] — schedule + throughput + [`Provenance`];
//! * [`registry()`] — every built-in strategy as a trait object, so new
//!   strategies (multi-round, tree platforms, interleaved masters) plug in
//!   as one file instead of a cross-crate surgery.
//!
//! The original free functions remain the implementation; the engine types
//! are thin adapters over them.
//!
//! ```
//! use dls_core::prelude::*;
//! use dls_platform::Platform;
//!
//! let p = Platform::bus(1.0, 0.5, &[3.0, 5.0, 4.0]).unwrap();
//! for s in dls_core::registry() {
//!     let sol = s.solve(&p).unwrap();
//!     assert!(sol.throughput > 0.0, "{} failed", s.name());
//! }
//! ```

use dls_platform::Platform;

use crate::error::CoreError;
use crate::lp_model::LpSchedule;
use crate::schedule::{PortModel, Schedule};
use crate::timeline::Timeline;

/// How a [`Solution`] was obtained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Provenance {
    /// A scenario LP solved with the simplex (`iterations` pivots).
    Lp {
        /// Simplex pivots used.
        iterations: usize,
        /// `true` when the solve warm-started from a cached basis of an
        /// earlier LP on the same platform (see
        /// [`crate::lp_model::warm_start_stats`]).
        warm_start: bool,
    },
    /// An analytical closed form or chain solution — no LP involved.
    ClosedForm,
    /// Exhaustive search over `evaluated` candidate scenarios.
    Search {
        /// Scenarios (LPs) evaluated.
        evaluated: usize,
    },
}

/// The unified result every [`Scheduler`] produces.
#[derive(Debug, Clone)]
pub struct Solution {
    /// The schedule (orders + loads) to execute.
    pub schedule: Schedule,
    /// Normalized throughput: load processed per unit of horizon when this
    /// schedule is executed on the platform it was solved for (`T = 1`
    /// scaling). For baselines that ignore part of the cost model (e.g.
    /// [`no-return`](crate::no_return)) this is the *achieved* throughput
    /// under the full one-port model, not the solver's own optimistic
    /// objective — all registry entries are therefore directly comparable.
    pub throughput: f64,
    /// How the solution was computed.
    pub provenance: Provenance,
}

impl Solution {
    /// Packages an LP result (throughput is the LP objective, which the
    /// one-port timeline achieves exactly).
    fn from_lp(lp: LpSchedule) -> Solution {
        Solution {
            schedule: lp.schedule,
            throughput: lp.throughput,
            provenance: Provenance::Lp {
                iterations: lp.iterations,
                warm_start: lp.warm_start,
            },
        }
    }

    /// Packages a closed-form schedule, measuring the achieved one-port
    /// throughput off the earliest-feasible timeline.
    fn measured(platform: &Platform, schedule: Schedule) -> Solution {
        let throughput = crate::timeline::throughput(platform, &schedule, PortModel::OnePort);
        Solution {
            schedule,
            throughput,
            provenance: Provenance::ClosedForm,
        }
    }

    /// Builds and verifies the earliest-feasible one-port timeline of this
    /// solution; `Err` carries the violation list.
    pub fn verified_timeline(
        &self,
        platform: &Platform,
        tol: f64,
    ) -> Result<Timeline, Vec<String>> {
        let t = Timeline::build(platform, &self.schedule, PortModel::OnePort);
        let violations = t.verify(platform, &self.schedule, tol);
        if violations.is_empty() {
            Ok(t)
        } else {
            Err(violations)
        }
    }
}

/// A scheduling strategy: anything that maps a [`Platform`] to a
/// [`Solution`]. `Send + Sync` so registries can be shared across the
/// sweep worker threads.
pub trait Scheduler: Send + Sync {
    /// Stable identifier, unique within [`registry()`] (snake_case).
    fn name(&self) -> &str;

    /// Display name matching the paper's figure legends (defaults to
    /// [`Scheduler::name`]).
    fn legend(&self) -> &str {
        self.name()
    }

    /// Solves the platform. Errors are strategy-specific: e.g.
    /// [`CoreError::NotABus`] from the Theorem 2 closed form on a star, or
    /// [`CoreError::TooManyWorkers`] from exhaustive search.
    fn solve(&self, platform: &Platform) -> Result<Solution, CoreError>;
}

macro_rules! define_scheduler {
    ($(#[$doc:meta])* $ty:ident, $name:literal, $legend:literal,
     |$platform:ident| $solve:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, Default)]
        pub struct $ty;

        impl Scheduler for $ty {
            fn name(&self) -> &str {
                $name
            }
            fn legend(&self) -> &str {
                $legend
            }
            fn solve(&self, $platform: &Platform) -> Result<Solution, CoreError> {
                $solve
            }
        }
    };
}

define_scheduler!(
    /// Theorem 1 + Proposition 1: the optimal one-port FIFO schedule with
    /// LP resource selection (requires a `z`-tied platform).
    OptimalFifo, "optimal_fifo", "OPT_FIFO",
    |platform| crate::fifo::optimal_fifo(platform).map(Solution::from_lp)
);

define_scheduler!(
    /// The optimal one-port LIFO schedule (all workers, non-decreasing
    /// `c`); the paper's `LIFO` heuristic.
    OptimalLifo, "optimal_lifo", "LIFO",
    |platform| crate::lifo::optimal_lifo(platform).map(Solution::from_lp)
);

define_scheduler!(
    /// The paper's `INC_C` heuristic: FIFO over all workers by
    /// non-decreasing `c` (optimal FIFO order for `z <= 1`).
    IncC, "inc_c", "INC_C",
    |platform| crate::fifo::inc_c_fifo(platform).map(Solution::from_lp)
);

define_scheduler!(
    /// The paper's `INC_W` heuristic: FIFO over all workers by
    /// non-decreasing `w`.
    IncW, "inc_w", "INC_W",
    |platform| crate::fifo::inc_w_fifo(platform).map(Solution::from_lp)
);

define_scheduler!(
    /// Theorem 2: the closed-form optimal FIFO on a bus platform (errors
    /// with [`CoreError::NotABus`] elsewhere).
    BusFifo, "bus_fifo", "BUS_FIFO",
    |platform| {
        let sol = crate::closed_form::bus_fifo(platform)?;
        Ok(Solution {
            schedule: sol.schedule(platform),
            throughput: sol.throughput,
            provenance: Provenance::ClosedForm,
        })
    }
);

define_scheduler!(
    /// The `O(p)` LIFO closed form from the companion papers (all workers,
    /// tight constraint chain; no LP).
    StarLifo, "star_lifo", "LIFO_CF",
    |platform| {
        let sol = crate::closed_form::star_lifo(platform);
        Ok(Solution {
            schedule: sol.schedule(platform),
            throughput: sol.throughput,
            provenance: Provenance::ClosedForm,
        })
    }
);

define_scheduler!(
    /// The analytical chain solver over prefixes of the `c`-sorted worker
    /// list — a fast LP-free FIFO heuristic.
    ChainFifo, "chain", "CHAIN",
    |platform| {
        let (order, sol) = crate::chain::chain_best_prefix(platform)?;
        Ok(Solution {
            schedule: sol.schedule(platform, &order),
            throughput: sol.throughput,
            provenance: Provenance::ClosedForm,
        })
    }
);

define_scheduler!(
    /// The classical no-return baseline \[6\]: loads chosen ignoring return
    /// messages, then *executed* under the full one-port model — its
    /// reported throughput is the achieved (degraded) one.
    NoReturn, "no_return", "NO_RETURN",
    |platform| {
        let sol = crate::no_return::optimal_no_return(platform)?;
        Ok(Solution::measured(platform, sol.schedule(platform)))
    }
);

define_scheduler!(
    /// Exhaustive ground truth over every FIFO order (`p!` LPs, `p <= 8`).
    BruteFifo, "brute_fifo", "BRUTE_FIFO",
    |platform| {
        let res = crate::brute_force::best_fifo(platform, PortModel::OnePort)?;
        Ok(Solution {
            schedule: res.best.schedule,
            throughput: res.best.throughput,
            provenance: Provenance::Search {
                evaluated: res.evaluated,
            },
        })
    }
);

define_scheduler!(
    /// Exhaustive ground truth over every `(σ1, σ2)` permutation pair
    /// (`p!²` LPs, `p <= 5`) — the open general problem, canonical shape.
    BruteScenario, "brute_force", "BRUTE",
    |platform| {
        let res = crate::brute_force::best_scenario(platform, PortModel::OnePort)?;
        Ok(Solution {
            schedule: res.best.schedule,
            throughput: res.best.throughput,
            provenance: Provenance::Search {
                evaluated: res.evaluated,
            },
        })
    }
);

/// Every built-in strategy, in a stable order (optimal solvers first, then
/// heuristics, then baselines and exhaustive searches).
pub fn registry() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(OptimalFifo),
        Box::new(OptimalLifo),
        Box::new(IncC),
        Box::new(IncW),
        Box::new(BusFifo),
        Box::new(StarLifo),
        Box::new(ChainFifo),
        Box::new(NoReturn),
        Box::new(BruteFifo),
        Box::new(BruteScenario),
    ]
}

/// Finds a registered strategy by its [`Scheduler::name`].
pub fn lookup(name: &str) -> Option<Box<dyn Scheduler>> {
    registry().into_iter().find(|s| s.name() == name)
}

// Engine-local invariants only: the registry round-trip on the shared
// 5-worker fixture (verify-clean timelines, optimal-FIFO dominance,
// provenance) lives in the workspace integration suite,
// `tests/engine_registry.rs`.
#[cfg(test)]
mod tests {
    use super::*;

    /// A small bus so every registered strategy applies.
    fn fixture() -> Platform {
        Platform::bus(1.0, 0.5, &[2.0, 4.0, 3.0, 6.0, 5.0]).unwrap()
    }

    #[test]
    fn registry_names_are_unique() {
        let reg = registry();
        let mut names: Vec<&str> = reg.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate scheduler names");
    }

    #[test]
    fn lookup_finds_by_name() {
        assert!(lookup("optimal_fifo").is_some());
        assert!(lookup("inc_c").is_some());
        assert!(lookup("nonexistent").is_none());
        assert_eq!(lookup("optimal_lifo").unwrap().legend(), "LIFO");
    }

    #[test]
    fn trait_objects_match_free_functions() {
        let p = fixture();
        let via_trait = lookup("optimal_fifo").unwrap().solve(&p).unwrap();
        let direct = crate::fifo::optimal_fifo(&p).unwrap();
        assert!((via_trait.throughput - direct.throughput).abs() < 1e-12);
        assert_eq!(via_trait.schedule, direct.schedule);
        assert!(matches!(via_trait.provenance, Provenance::Lp { .. }));
    }

    #[test]
    fn bus_closed_form_errors_on_stars_through_the_trait() {
        let star = Platform::star_with_z(&[(1.0, 2.0), (2.0, 1.0)], 0.5).unwrap();
        assert_eq!(
            lookup("bus_fifo").unwrap().solve(&star).unwrap_err(),
            CoreError::NotABus
        );
    }

    #[test]
    fn no_return_reports_achieved_not_optimistic_throughput() {
        let p = fixture();
        let engine = lookup("no_return").unwrap().solve(&p).unwrap();
        let optimistic = crate::no_return::optimal_no_return(&p).unwrap();
        // Ignoring returns overstates what the one-port execution achieves.
        assert!(engine.throughput < optimistic.throughput);
    }
}
