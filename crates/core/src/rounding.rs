//! Integer rounding of fractional LP loads (Section 5 of the paper).
//!
//! LP solutions are rational, but a real run must assign an integer number
//! of matrix products to each worker. The paper's policy:
//!
//! > "We first round down every value to the immediate lower integer, and
//! > then we distribute the K remaining tasks to the first K workers of the
//! > schedule in the order of the sending permutation σ1, by giving one
//! > more matrix to process to each of these workers."
//!
//! [`round_loads`] implements exactly this, after scaling the (throughput-
//! normalized) fractional loads so they sum to the requested total `M`.

use crate::schedule::{Schedule, LOAD_EPS};

/// Rounds the schedule's fractional loads into integer unit counts summing
/// exactly to `total_units`, using the paper's floor-then-distribute
/// policy. Returns counts indexed by platform worker id.
///
/// Workers with negligible fractional load stay at zero (they are not part
/// of "the schedule" the paper distributes the remainder over).
pub fn round_loads(schedule: &Schedule, total_units: u64) -> Vec<u64> {
    let p = schedule.loads().len();
    let total_frac = schedule.total_load();
    let mut counts = vec![0u64; p];
    if total_units == 0 || total_frac <= LOAD_EPS {
        return counts;
    }

    // Scale loads to sum to `total_units` and floor.
    let scale = total_units as f64 / total_frac;
    let mut assigned = 0u64;
    for id in schedule.participants() {
        let beta = schedule.load(id) * scale;
        let fl = beta.floor() as u64;
        counts[id.index()] = fl;
        assigned += fl;
    }

    // Distribute the K leftovers, +1 each, to the first K participants in
    // send order (wrapping in the pathological case K > #participants,
    // which can only occur through floating-point dust).
    let participants = schedule.participants();
    let mut remaining = total_units - assigned;
    while remaining > 0 {
        for id in &participants {
            if remaining == 0 {
                break;
            }
            counts[id.index()] += 1;
            remaining -= 1;
        }
    }
    counts
}

/// Convenience: the schedule with integer loads (as `f64`), preserving
/// orders — ready for simulation of an `M`-unit run.
pub fn integer_schedule(schedule: &Schedule, total_units: u64) -> Schedule {
    let counts = round_loads(schedule, total_units);
    schedule.with_loads(counts.iter().map(|&c| c as f64).collect())
}

#[cfg(test)]
// Unit tests assert exact outcomes of exact arithmetic.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use dls_platform::{Platform, WorkerId};

    fn ids(v: &[usize]) -> Vec<WorkerId> {
        v.iter().map(|&i| WorkerId(i)).collect()
    }

    fn platform(n: usize) -> Platform {
        Platform::star_with_z(&vec![(1.0, 1.0); n], 0.5).unwrap()
    }

    #[test]
    fn papers_worked_example() {
        // "with 4 processors P1 to P4 used in this order for σ1, if
        //  M = 1000, α1 = 200.4, α2 = 300.2, α3 = 139.8 and α4 = 359.6,
        //  then K = 2, and we assign 200 + 1 matrices to P1, 300 + 1 to P2,
        //  139 to P3 and 359 to P4."
        let p = platform(4);
        let s = Schedule::fifo(&p, ids(&[0, 1, 2, 3]), vec![200.4, 300.2, 139.8, 359.6]).unwrap();
        let counts = round_loads(&s, 1000);
        assert_eq!(counts, vec![201, 301, 139, 359]);
        assert_eq!(counts.iter().sum::<u64>(), 1000);
    }

    #[test]
    fn totals_always_exact() {
        let p = platform(3);
        let s = Schedule::fifo(&p, ids(&[2, 0, 1]), vec![0.3, 0.5, 0.2]).unwrap();
        for m in [1u64, 7, 100, 999, 1000, 12345] {
            let counts = round_loads(&s, m);
            assert_eq!(counts.iter().sum::<u64>(), m, "total broken for M={m}");
        }
    }

    #[test]
    fn remainder_goes_to_first_in_send_order() {
        let p = platform(3);
        // Send order P3, P1, P2; equal fractional loads, M = 4 -> floors
        // 1,1,1 and the leftover goes to P3 (first in sigma1).
        let s = Schedule::fifo(&p, ids(&[2, 0, 1]), vec![1.0, 1.0, 1.0]).unwrap();
        let counts = round_loads(&s, 4);
        assert_eq!(counts[2], 2);
        assert_eq!(counts[0], 1);
        assert_eq!(counts[1], 1);
    }

    #[test]
    fn zero_load_workers_get_nothing() {
        let p = platform(3);
        let s = Schedule::fifo(&p, ids(&[0, 1, 2]), vec![0.6, 0.0, 0.4]).unwrap();
        let counts = round_loads(&s, 11);
        assert_eq!(counts[1], 0);
        assert_eq!(counts.iter().sum::<u64>(), 11);
    }

    #[test]
    fn zero_units_or_empty_schedule() {
        let p = platform(2);
        let s = Schedule::fifo(&p, ids(&[0, 1]), vec![1.0, 1.0]).unwrap();
        assert_eq!(round_loads(&s, 0), vec![0, 0]);
        let empty = Schedule::fifo(&p, ids(&[0, 1]), vec![0.0, 0.0]).unwrap();
        assert_eq!(round_loads(&empty, 10), vec![0, 0]);
    }

    #[test]
    fn integer_schedule_preserves_orders() {
        let p = platform(3);
        let s = Schedule::fifo(&p, ids(&[2, 0, 1]), vec![0.3, 0.5, 0.2]).unwrap();
        let i = integer_schedule(&s, 100);
        assert_eq!(i.send_order(), s.send_order());
        assert_eq!(i.total_load(), 100.0);
        assert!(i.loads().iter().all(|l| l.fract() == 0.0));
    }

    #[test]
    fn rounding_error_is_bounded_by_one_unit() {
        let p = platform(4);
        let s = Schedule::fifo(&p, ids(&[0, 1, 2, 3]), vec![0.13, 0.29, 0.41, 0.17]).unwrap();
        let m = 1000u64;
        let counts = round_loads(&s, m);
        let scale = m as f64 / s.total_load();
        for (i, &cnt) in counts.iter().enumerate() {
            let ideal = s.loads()[i] * scale;
            assert!(
                (cnt as f64 - ideal).abs() <= 1.0 + 1e-9,
                "worker {i}: {cnt} vs ideal {ideal}"
            );
        }
    }
}
