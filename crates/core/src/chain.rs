//! Analytical "chain" solver for star FIFO schedules.
//!
//! At an optimal vertex of the FIFO LP (2), Lemma 1's counting argument
//! leaves at most one constraint slack among `{(2a)_i} ∪ {(2b)} ∪ {x_i ≥ 0}`
//! for the enrolled workers. Two regimes therefore cover the optimum for a
//! *fixed enrolled set*:
//!
//! * **Compute-bound** — (2b) is the slack one: every deadline `(2a)_i` is
//!   tight with `x_i = 0`. Subtracting consecutive tight constraints gives
//!   the load chain `α_{i+1}(c_{i+1} + w_{i+1}) = α_i (w_i + d_i)`, and
//!   `(2a)_1` pins the scale.
//! * **Comm-bound** — `x_q ≥ 0` is the slack one: `(2a)_i` tight for
//!   `i < q`, (2b) tight. The chain covers `α_1 .. α_{q-1}` and a 2×2
//!   system in `(α_1, α_q)` closes it.
//!
//! This yields an `O(q)` solver per enrolled set — no LP — which this crate
//! uses three ways: as a fast scheduler ([`chain_best_prefix`]), as an
//! exact subset-selection oracle for small `p` ([`chain_best_subset`]),
//! and as an independent cross-check of the LP in tests.
//!
//! **Caveat (documented ablation):** the optimal enrolled set need not be a
//! *prefix* of the `c`-sorted worker list, so [`chain_best_prefix`] is a
//! heuristic; [`chain_best_subset`] enumerates all `2^p − 1` subsets and is
//! exact (it matches Proposition 1's LP on every instance tested). See
//! `DESIGN.md` §8.

use dls_platform::{Platform, WorkerId};

use crate::error::CoreError;
use crate::schedule::Schedule;

/// Which LP regime produced the chain solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainRegime {
    /// All deadlines tight, no idle time, (2b) slack.
    ComputeBound,
    /// (2b) tight; only the last worker may idle.
    CommBound,
}

/// Closed-form FIFO solution for a fixed enrolled order.
#[derive(Debug, Clone)]
pub struct ChainSolution {
    /// Loads by platform worker index (non-enrolled workers carry 0).
    pub loads: Vec<f64>,
    /// Throughput `Σ α_i`.
    pub throughput: f64,
    /// Idle time of the last enrolled worker (0 in the compute-bound
    /// regime).
    pub last_idle: f64,
    /// Regime that fired.
    pub regime: ChainRegime,
}

impl ChainSolution {
    /// Packages the solution as a FIFO schedule over `order`.
    pub fn schedule(&self, platform: &Platform, order: &[WorkerId]) -> Schedule {
        Schedule::fifo(platform, order.to_vec(), self.loads.clone()).expect("chain loads are valid")
    }
}

/// Evaluates `(2a)_i`'s left side at `x_i = 0` for the enrolled loads.
fn deadline_lhs(platform: &Platform, order: &[WorkerId], alphas: &[f64], i: usize) -> f64 {
    let sends: f64 = order
        .iter()
        .take(i + 1)
        .zip(alphas)
        .map(|(id, a)| a * platform.worker(*id).c)
        .sum();
    let returns: f64 = order
        .iter()
        .zip(alphas)
        .skip(i)
        .map(|(id, a)| a * platform.worker(*id).d)
        .sum();
    sends + alphas[i] * platform.worker(*order.get(i).expect("index in range")).w + returns
}

fn comm_total(platform: &Platform, order: &[WorkerId], alphas: &[f64]) -> f64 {
    order
        .iter()
        .zip(alphas)
        .map(|(id, a)| {
            let w = platform.worker(*id);
            a * (w.c + w.d)
        })
        .sum()
}

const TOL: f64 = 1e-9;

/// Solves the FIFO chain for the exact enrolled set/order `order`.
///
/// Returns `Ok(None)` when neither regime yields a feasible positive-load
/// solution (meaning this enrolled set cannot be optimal with everyone
/// participating).
pub fn chain_fifo(
    platform: &Platform,
    order: &[WorkerId],
) -> Result<Option<ChainSolution>, CoreError> {
    if order.is_empty() {
        return Err(CoreError::MalformedOrder("empty enrolled order".into()));
    }
    // Validate via the Schedule constructor.
    Schedule::fifo(platform, order.to_vec(), vec![0.0; platform.num_workers()])?;
    let q = order.len();
    let w = |i: usize| platform.worker(order[i]);

    // Chain ratios r_i = alpha_i / alpha_1 for the full chain.
    let mut ratios = vec![1.0; q];
    for i in 0..q - 1 {
        let wi = w(i);
        let wn = w(i + 1);
        ratios[i + 1] = ratios[i] * (wi.w + wi.d) / (wn.c + wn.w);
    }

    let pack = |alphas: Vec<f64>, regime: ChainRegime, last_idle: f64| {
        let mut loads = vec![0.0; platform.num_workers()];
        for (id, a) in order.iter().zip(&alphas) {
            loads[id.index()] = *a;
        }
        ChainSolution {
            throughput: alphas.iter().sum(),
            loads,
            last_idle,
            regime,
        }
    };

    // ---- Regime A (compute-bound): full chain, (2a)_1 pins the scale.
    {
        // (2a)_1: alpha_1 (c_1 + w_1) + sum_j alpha_j d_j = 1.
        let denom = w(0).c + w(0).w + (0..q).map(|j| ratios[j] * w(j).d).sum::<f64>();
        if denom > TOL {
            let a1 = 1.0 / denom;
            let alphas: Vec<f64> = ratios.iter().map(|r| r * a1).collect();
            if comm_total(platform, order, &alphas) <= 1.0 + TOL {
                return Ok(Some(pack(alphas, ChainRegime::ComputeBound, 0.0)));
            }
        }
    }

    // ---- Regime B (comm-bound): chain over alpha_1..alpha_{q-1}, 2x2
    // system closing (alpha_1, alpha_q).
    if q >= 2 {
        // 1-based worker q-1 is 0-based index `last = q - 2`.
        // Eq1 ((2a)_{q-1} tight):
        //   a1 * K1 + aq * d_q = 1,
        //   K1 = sum_{j<=q-1} r_j c_j + r_{q-1} (w_{q-1} + d_{q-1})
        // Eq2 ((2b) tight):
        //   a1 * K2 + aq * (c_q + d_q) = 1,
        //   K2 = sum_{j<=q-1} r_j (c_j + d_j)
        let last = q - 2;
        let k1: f64 = (0..=last).map(|j| ratios[j] * w(j).c).sum::<f64>()
            + ratios[last] * (w(last).w + w(last).d);
        let k2: f64 = (0..=last)
            .map(|j| ratios[j] * (w(j).c + w(j).d))
            .sum::<f64>();
        let dq = w(q - 1).d;
        let cdq = w(q - 1).c + dq;
        // | K1  d_q  | |a1|   |1|
        // | K2  cd_q | |aq| = |1|
        let det = k1 * cdq - dq * k2;
        if det.abs() > TOL {
            let a1 = (cdq - dq) / det;
            let aq = (k1 - k2) / det;
            if a1 > TOL && aq >= -TOL {
                let aq = aq.max(0.0);
                let mut alphas: Vec<f64> = (0..q - 1).map(|j| ratios[j] * a1).collect();
                alphas.push(aq);
                // Feasibility: last deadline with slack x_q >= 0, and all
                // deadlines within 1.
                let xq = 1.0 - deadline_lhs(platform, order, &alphas, q - 1);
                if xq >= -TOL {
                    let feasible =
                        (0..q - 1).all(|i| deadline_lhs(platform, order, &alphas, i) <= 1.0 + 1e-7);
                    if feasible {
                        return Ok(Some(pack(alphas, ChainRegime::CommBound, xq.max(0.0))));
                    }
                }
            }
        }
    }

    Ok(None)
}

/// Best chain solution over all prefixes of the `c`-sorted worker list.
///
/// Fast (`O(p²)`) but heuristic: the optimal enrolled set may skip a middle
/// worker (see module docs). Returns the best feasible prefix solution
/// together with its order.
pub fn chain_best_prefix(platform: &Platform) -> Result<(Vec<WorkerId>, ChainSolution), CoreError> {
    let sorted = platform.order_by_c();
    let mut best: Option<(Vec<WorkerId>, ChainSolution)> = None;
    for q in 1..=sorted.len() {
        let order = &sorted[..q];
        if let Some(sol) = chain_fifo(platform, order)? {
            if best
                .as_ref()
                .map(|(_, b)| sol.throughput > b.throughput + TOL)
                .unwrap_or(true)
            {
                best = Some((order.to_vec(), sol));
            }
        }
    }
    best.ok_or_else(|| CoreError::MalformedOrder("no feasible prefix".into()))
}

/// Exact chain-based optimum: enumerates every nonempty subset of workers
/// (each ordered by non-decreasing `c`, per Theorem 1) and keeps the best.
/// Exponential — guarded to `p ≤ limit`.
pub fn chain_best_subset(
    platform: &Platform,
    limit: usize,
) -> Result<(Vec<WorkerId>, ChainSolution), CoreError> {
    let p = platform.num_workers();
    if p > limit {
        return Err(CoreError::TooManyWorkers { got: p, limit });
    }
    let sorted = platform.order_by_c();
    let mut best: Option<(Vec<WorkerId>, ChainSolution)> = None;
    for mask in 1u32..(1u32 << p) {
        let order: Vec<WorkerId> = sorted
            .iter()
            .enumerate()
            .filter(|(k, _)| mask & (1 << k) != 0)
            .map(|(_, id)| *id)
            .collect();
        if let Some(sol) = chain_fifo(platform, &order)? {
            if best
                .as_ref()
                .map(|(_, b)| sol.throughput > b.throughput + TOL)
                .unwrap_or(true)
            {
                best = Some((order, sol));
            }
        }
    }
    best.ok_or_else(|| CoreError::MalformedOrder("no feasible subset".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closed_form::bus_fifo;
    use crate::fifo::optimal_fifo;
    use crate::lp_model::solve_fifo;
    use crate::schedule::PortModel;
    use crate::timeline::makespan;

    fn star(z: f64, cw: &[(f64, f64)]) -> Platform {
        Platform::star_with_z(cw, z).unwrap()
    }

    #[test]
    fn chain_matches_lp_when_all_enrolled_compute_bound() {
        let p = star(0.5, &[(1.0, 8.0), (1.5, 9.0), (2.0, 10.0)]);
        let order = p.order_by_c();
        let chain = chain_fifo(&p, &order).unwrap().unwrap();
        assert_eq!(chain.regime, ChainRegime::ComputeBound);
        let lp = solve_fifo(&p, &order, PortModel::OnePort).unwrap();
        assert!(
            (chain.throughput - lp.throughput).abs() < 1e-7,
            "chain {} vs lp {}",
            chain.throughput,
            lp.throughput
        );
    }

    #[test]
    fn chain_matches_lp_comm_bound() {
        // Moderately fast workers: (2b) binds but everyone keeps a positive
        // share.
        let p = star(0.5, &[(1.0, 0.3), (1.0, 0.3)]);
        let order = p.order_by_c();
        let chain = chain_fifo(&p, &order).unwrap().unwrap();
        assert_eq!(chain.regime, ChainRegime::CommBound);
        let lp = solve_fifo(&p, &order, PortModel::OnePort).unwrap();
        assert!(
            (chain.throughput - lp.throughput).abs() < 1e-6,
            "chain {} vs lp {}",
            chain.throughput,
            lp.throughput
        );
        assert!(chain.last_idle >= 0.0);
    }

    #[test]
    fn chain_returns_none_when_last_worker_must_be_dropped() {
        // Very fast computers on slow links: enrolling all three in the
        // comm-bound regime would require a negative last load, so the
        // all-enrolled chain has no solution — the LP drops a worker
        // instead. This instance documents why chain_fifo is Option-valued.
        let p = star(0.5, &[(1.0, 0.05), (1.2, 0.1), (1.4, 0.05)]);
        let order = p.order_by_c();
        assert!(chain_fifo(&p, &order).unwrap().is_none());
        // The subset search still matches Proposition 1's LP.
        let (best_order, chain) = chain_best_subset(&p, 16).unwrap();
        let lp = optimal_fifo(&p).unwrap();
        assert!(best_order.len() < 3, "expected a dropped worker");
        assert!(
            (chain.throughput - lp.throughput).abs() < 1e-6,
            "subset chain {} vs LP {}",
            chain.throughput,
            lp.throughput
        );
    }

    #[test]
    fn chain_reduces_to_theorem2_on_bus() {
        let p = Platform::bus(1.0, 0.5, &[5.0, 7.0, 9.0]).unwrap();
        let order = p.order_by_c();
        let chain = chain_fifo(&p, &order).unwrap().unwrap();
        let cf = bus_fifo(&p).unwrap();
        assert!((chain.throughput - cf.throughput).abs() < 1e-9);
        for (a, b) in chain.loads.iter().zip(&cf.loads) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn chain_schedule_is_feasible() {
        let p = star(0.5, &[(1.0, 2.0), (2.0, 1.0), (1.5, 3.0)]);
        let order = p.order_by_c();
        if let Some(sol) = chain_fifo(&p, &order).unwrap() {
            let s = sol.schedule(&p, &order);
            let ms = makespan(&p, &s, PortModel::OnePort);
            assert!(ms <= 1.0 + 1e-7, "chain schedule overflows: {ms}");
        }
    }

    #[test]
    fn best_subset_matches_proposition1_lp() {
        // Random-ish platforms where resource selection matters.
        let cases = [
            star(0.5, &[(0.1, 1.0), (0.1, 1.0), (100.0, 1.0)]),
            star(0.5, &[(1.0, 1.0), (2.0, 0.5), (4.0, 0.25)]),
            star(0.9, &[(0.5, 0.1), (0.6, 0.1), (0.7, 0.1), (10.0, 5.0)]),
        ];
        for p in &cases {
            let (_, chain) = chain_best_subset(p, 16).unwrap();
            let lp = optimal_fifo(p).unwrap();
            assert!(
                (chain.throughput - lp.throughput).abs() < 1e-6,
                "subset chain {} vs Proposition 1 LP {}",
                chain.throughput,
                lp.throughput
            );
        }
    }

    #[test]
    fn prefix_heuristic_is_lower_bound() {
        let p = star(0.5, &[(0.5, 2.0), (1.0, 0.1), (1.5, 4.0), (2.0, 0.2)]);
        let (_, prefix) = chain_best_prefix(&p).unwrap();
        let lp = optimal_fifo(&p).unwrap();
        assert!(prefix.throughput <= lp.throughput + 1e-7);
    }

    #[test]
    fn single_worker_chain() {
        let p = star(0.5, &[(2.0, 3.0)]);
        let sol = chain_fifo(&p, &[WorkerId(0)]).unwrap().unwrap();
        assert!((sol.throughput - 1.0 / 6.0).abs() < 1e-12);
        assert_eq!(sol.regime, ChainRegime::ComputeBound);
    }

    #[test]
    fn single_fast_worker_hits_comm_bound() {
        // One worker, tiny w: compute-bound chain would violate (2b)?
        // alpha (c+w+d) = 1 -> alpha (c+d) = 1 - alpha w < 1, so (2b) never
        // binds with one worker; regime stays ComputeBound.
        let p = star(0.5, &[(1.0, 1e-9)]);
        let sol = chain_fifo(&p, &[WorkerId(0)]).unwrap().unwrap();
        assert_eq!(sol.regime, ChainRegime::ComputeBound);
        assert!((sol.throughput - 1.0 / 1.5).abs() < 1e-6);
    }

    #[test]
    fn too_many_workers_guard() {
        let p = star(0.5, &[(1.0, 1.0); 20]);
        assert!(matches!(
            chain_best_subset(&p, 16),
            Err(CoreError::TooManyWorkers { .. })
        ));
    }

    #[test]
    fn empty_order_rejected() {
        let p = star(0.5, &[(1.0, 1.0)]);
        assert!(chain_fifo(&p, &[]).is_err());
    }
}
