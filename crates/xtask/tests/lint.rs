//! Fixture-tree tests for `lint_workspace`, plus the gate that the real
//! workspace is clean.

use std::fs;
use std::path::{Path, PathBuf};

use xtask::lint_workspace;

/// A throwaway workspace tree under the target-adjacent temp dir, removed
/// on drop.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(name: &str) -> Self {
        let root = std::env::temp_dir().join(format!("xtask-lint-{}-{}", std::process::id(), name));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).unwrap();
        Self { root }
    }

    fn write(&self, rel: &str, content: &str) {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(path, content).unwrap();
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

#[test]
fn flags_raw_row_construction_outside_the_ir_home() {
    let fx = Fixture::new("ir");
    fx.write(
        "crates/foo/src/build.rs",
        "fn f(p: &mut Problem) {\n    p.add_constraint(\"row\", [], Relation::Le, 1.0);\n}\n",
    );
    // The IR home is exempt.
    fx.write(
        "crates/lp/src/model.rs",
        "fn lower(p: &mut Problem) {\n    p.add_constraint(\"row\", [], Relation::Le, 1.0);\n}\n",
    );
    fx.write(
        "crates/lp/src/problem.rs",
        "impl Problem {\n    pub fn add_constraint(&mut self) {}\n}\n",
    );

    let v = lint_workspace(&fx.root).unwrap();
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, "ir-lowering");
    assert_eq!(v[0].file, Path::new("crates/foo/src/build.rs"));
    assert_eq!(v[0].line, 2);
    assert!(
        v[0].to_string()
            .starts_with("crates/foo/src/build.rs:2: [ir-lowering]"),
        "{}",
        v[0]
    );
}

#[test]
fn flags_lp_core_partial_cmp_and_float_eq_only_in_scope() {
    let fx = Fixture::new("core");
    fx.write(
        "crates/lp/src/simplex.rs",
        "fn pivot(xs: &mut [f64]) {\n    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n",
    );
    fx.write(
        "crates/core/src/lp_model.rs",
        "fn gate(t: f64) -> bool {\n    t == 0.0\n}\n",
    );
    // Out of scope: other crates may use partial_cmp freely.
    fx.write(
        "crates/report/src/stats.rs",
        "fn s(xs: &mut [f64]) {\n    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n",
    );

    let mut v = lint_workspace(&fx.root).unwrap();
    v.sort_by(|a, b| a.file.cmp(&b.file));
    assert_eq!(v.len(), 2, "{v:?}");
    assert_eq!(v[0].file, Path::new("crates/core/src/lp_model.rs"));
    assert_eq!(v[0].rule, "lp-core-discipline");
    assert!(v[0].message.contains("float-literal"));
    assert_eq!(v[1].file, Path::new("crates/lp/src/simplex.rs"));
    assert!(v[1].message.contains("total_cmp"));
}

#[test]
fn flags_baseline_keys_the_gate_never_references() {
    let fx = Fixture::new("baseline");
    fx.write(
        "crates/bench/benches/solver_baseline.json",
        "{\n  \"comment\": \"fixture\",\n  \"used_ns\": 100,\n  \"stale_ns\": 200,\n  \"calibration_ns\": 10,\n  \"max_regression\": 2.0\n}\n",
    );
    fx.write(
        "crates/bench/benches/solver.rs",
        "fn main() {\n    run_gate(base, \"used_ns\", \"solver\", work);\n}\n",
    );

    let v = lint_workspace(&fx.root).unwrap();
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, "baseline-keys");
    assert_eq!(
        v[0].file,
        Path::new("crates/bench/benches/solver_baseline.json")
    );
    assert_eq!(v[0].line, 4);
    assert!(v[0].message.contains("stale_ns"));
}

#[test]
fn flags_metric_names_missing_from_the_readme_inventory() {
    let fx = Fixture::new("obs");
    fx.write(
        "README.md",
        "## Observability\n\n| `lp.solve.count` | scenario LPs solved |\n",
    );
    fx.write(
        "crates/foo/src/lib.rs",
        "fn f() {\n    dls_obs::counter!(\"lp.solve.count\").incr();\n    \
         dls_obs::span!(\"undocumented.seconds\");\n}\n",
    );

    let v = lint_workspace(&fx.root).unwrap();
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, "obs-metric-names");
    assert_eq!(v[0].file, Path::new("crates/foo/src/lib.rs"));
    assert_eq!(v[0].line, 3);
    assert!(v[0].message.contains("undocumented.seconds"));
}

#[test]
fn clean_fixture_produces_no_violations() {
    let fx = Fixture::new("clean");
    fx.write(
        "crates/foo/src/lib.rs",
        "fn f(m: &mut ScheduleModel) {\n    m.one_port(\"p\", [], 1.0);\n}\n",
    );
    fx.write(
        "crates/bench/benches/solver_baseline.json",
        "{\n  \"p_ns\": 1\n}\n",
    );
    fx.write(
        "crates/bench/benches/solver.rs",
        "fn main() { run_gate(base, \"p_ns\", \"solver\", work); }\n",
    );
    assert!(lint_workspace(&fx.root).unwrap().is_empty());
}

/// The gate CI relies on: the actual repository is lint-clean.
#[test]
fn real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .unwrap();
    let violations = lint_workspace(root).unwrap();
    assert!(
        violations.is_empty(),
        "workspace has lint violations:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
