//! `cargo xtask <task>` — workspace development tasks.
//!
//! Currently one task: `lint`, the source-level convention linter (see
//! the library docs for the rule list).

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // crates/xtask -> crates -> workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/xtask has a workspace root two levels up")
        .to_path_buf()
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let task = args.next();
    match task.as_deref() {
        Some("lint") => {
            let mut root = workspace_root();
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--root" => match args.next() {
                        Some(p) => root = PathBuf::from(p),
                        None => {
                            eprintln!("--root requires a path");
                            return ExitCode::FAILURE;
                        }
                    },
                    other => {
                        eprintln!("unknown argument: {other}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            match xtask::lint_workspace(&root) {
                Ok(violations) if violations.is_empty() => {
                    println!("xtask lint: clean ({})", root.display());
                    ExitCode::SUCCESS
                }
                Ok(violations) => {
                    for v in &violations {
                        println!("{v}");
                    }
                    println!(
                        "xtask lint: {} violation{} in {}",
                        violations.len(),
                        if violations.len() == 1 { "" } else { "s" },
                        root.display()
                    );
                    ExitCode::FAILURE
                }
                Err(err) => {
                    eprintln!("xtask lint: io error: {err}");
                    ExitCode::FAILURE
                }
            }
        }
        Some(other) => {
            eprintln!("unknown task: {other}\n\navailable tasks:\n  lint    run the source-level convention linter");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo xtask <task>\n\navailable tasks:\n  lint    run the source-level convention linter");
            ExitCode::FAILURE
        }
    }
}
