//! `cargo xtask <task>` — workspace development tasks.
//!
//! * `lint` — the source-level convention linter (see the library docs
//!   for the rule list);
//! * `check-trace <file>` — validate a `DLS_TRACE=chrome:<path>` export
//!   (parses the JSON, checks the event schema, and requires the solve
//!   spans to nest under their `par_map` item parents).

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "available tasks:\n  lint                       run the source-level convention linter\n  check-trace <trace.json>   validate a DLS_TRACE=chrome: export";

fn workspace_root() -> PathBuf {
    // crates/xtask -> crates -> workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/xtask has a workspace root two levels up")
        .to_path_buf()
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let task = args.next();
    match task.as_deref() {
        Some("lint") => {
            let mut root = workspace_root();
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--root" => match args.next() {
                        Some(p) => root = PathBuf::from(p),
                        None => {
                            eprintln!("--root requires a path");
                            return ExitCode::FAILURE;
                        }
                    },
                    other => {
                        eprintln!("unknown argument: {other}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            match xtask::lint_workspace(&root) {
                Ok(violations) if violations.is_empty() => {
                    println!("xtask lint: clean ({})", root.display());
                    ExitCode::SUCCESS
                }
                Ok(violations) => {
                    for v in &violations {
                        println!("{v}");
                    }
                    println!(
                        "xtask lint: {} violation{} in {}",
                        violations.len(),
                        if violations.len() == 1 { "" } else { "s" },
                        root.display()
                    );
                    ExitCode::FAILURE
                }
                Err(err) => {
                    eprintln!("xtask lint: io error: {err}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("check-trace") => {
            let Some(path) = args.next() else {
                eprintln!("usage: cargo xtask check-trace <trace.json>");
                return ExitCode::FAILURE;
            };
            let doc = match std::fs::read_to_string(&path) {
                Ok(doc) => doc,
                Err(e) => {
                    eprintln!("xtask check-trace: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match xtask::check_chrome_trace(&doc) {
                Ok(check) => {
                    println!(
                        "xtask check-trace: OK — {} events ({} spans, {} instants), \
                         {} par_map items, {} solve spans nested under them ({path})",
                        check.events,
                        check.complete,
                        check.instants,
                        check.par_map_items,
                        check.nested_solves
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("xtask check-trace: FAIL — {e} ({path})");
                    ExitCode::FAILURE
                }
            }
        }
        Some(other) => {
            eprintln!("unknown task: {other}\n\n{USAGE}");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo xtask <task>\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
