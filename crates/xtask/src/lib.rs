//! Source-level convention linter for the workspace (`cargo xtask lint`).
//!
//! Clippy enforces language-level hygiene (see `[workspace.lints]` and
//! `clippy.toml`); this linter enforces the *project* conventions that no
//! general-purpose tool knows about:
//!
//! * **`ir-lowering`** — every LP row in the workspace must lower through
//!   the `dls_lp::ScheduleModel` IR, so the pre-solve static analyzer
//!   (`dls_lp::analyze`) sees it. Hand-rolled `Problem::add_constraint`
//!   calls are forbidden outside the IR's own home
//!   (`crates/lp/src/model.rs`, `crates/lp/src/problem.rs`).
//! * **`lp-core-discipline`** — in the LP core (`crates/lp/src/*`,
//!   `crates/core/src/lp_model.rs`), `partial_cmp(...).unwrap()` /
//!   `.expect(...)` chains and float-literal `==`/`!=` comparisons are
//!   forbidden: use `f64::total_cmp` or the `Scalar` tolerance helpers.
//! * **`baseline-keys`** — every measurement key in a
//!   `benches/*_baseline.json` must be referenced by its sibling smoke
//!   gate (`benches/<name>.rs`), so a renamed gate cannot silently stop
//!   comparing against its checked-in baseline.
//! * **`obs-metric-names`** — every metric-name literal passed to the
//!   `dls-obs` recording macros (`counter!`, `gauge!`, `histogram!`,
//!   `span!`, `trace_span!`, `trace_event!`) must be listed, backticked,
//!   in the README's observability inventory, so the documented name
//!   table cannot silently go stale when instrumentation is added or
//!   renamed.
//!
//! Beyond linting, [`check_chrome_trace`] validates a Chrome Trace Event
//! Format export produced by `DLS_TRACE=chrome:<path>` (the
//! `cargo xtask check-trace` task CI runs on a quick `repro_all` trace).
//!
//! The scanner is textual, not syntactic: it strips `//` comments and
//! string literals, and stops at a file's trailing `#[cfg(test)]` module
//! (tests may build raw problems and compare exact floats). A line may
//! carry an explicit waiver: `// xtask: allow(<rule>)`.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One rule violation, printed as `file:line: [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// File the violation is in (relative to the linted root when
    /// produced by [`lint_workspace`]).
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule identifier (`ir-lowering`, `lp-core-discipline`,
    /// `baseline-keys`, `obs-metric-names`).
    pub rule: &'static str,
    /// What went wrong and what to do instead.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// A source line with comments and string-literal *contents* blanked out
/// (delimiters kept), so pattern checks cannot fire inside either.
#[derive(Debug)]
struct CodeLine {
    number: usize,
    code: String,
    waivers: Vec<String>,
}

/// Strips a Rust source file down to the lines the rules look at: comment
/// text and string contents blanked, everything from a trailing
/// `#[cfg(test)]` module onward dropped. Good enough for a convention
/// linter; not a parser.
fn code_lines(content: &str) -> Vec<CodeLine> {
    let mut out = Vec::new();
    let mut in_block_comment = 0usize;
    for (idx, raw) in content.lines().enumerate() {
        let trimmed = raw.trim();
        if in_block_comment == 0 && trimmed == "#[cfg(test)]" {
            // Convention: the trailing unit-test module. Tests are exempt.
            break;
        }
        let mut code = String::with_capacity(raw.len());
        let mut waivers = Vec::new();
        let mut chars = raw.chars().peekable();
        let mut in_string = false;
        while let Some(ch) = chars.next() {
            if in_block_comment > 0 {
                if ch == '*' && chars.peek() == Some(&'/') {
                    chars.next();
                    in_block_comment -= 1;
                } else if ch == '/' && chars.peek() == Some(&'*') {
                    chars.next();
                    in_block_comment += 1;
                }
                continue;
            }
            if in_string {
                match ch {
                    '\\' => {
                        chars.next();
                    }
                    '"' => {
                        in_string = false;
                        code.push('"');
                    }
                    _ => code.push('_'),
                }
                continue;
            }
            match ch {
                '/' if chars.peek() == Some(&'/') => {
                    // Line comment: scan the rest for an explicit waiver.
                    let rest: String = chars.collect();
                    if let Some(pos) = rest.find("xtask: allow(") {
                        let tail = &rest[pos + "xtask: allow(".len()..];
                        if let Some(end) = tail.find(')') {
                            waivers.push(tail[..end].trim().to_string());
                        }
                    }
                    break;
                }
                '/' if chars.peek() == Some(&'*') => {
                    chars.next();
                    in_block_comment += 1;
                }
                '"' => {
                    in_string = true;
                    code.push('"');
                }
                '\'' => {
                    // Char literal or lifetime; skip a possible escaped or
                    // plain char so '"' cannot open a string.
                    code.push('\'');
                    match chars.peek() {
                        Some('\\') => {
                            chars.next();
                            chars.next();
                        }
                        Some(&c) if c != ' ' => {
                            // Lifetimes ('a) have no closing quote; chars do.
                            let mut look = chars.clone();
                            look.next();
                            if look.peek() == Some(&'\'') {
                                chars.next();
                            }
                        }
                        _ => {}
                    }
                }
                _ => code.push(ch),
            }
        }
        out.push(CodeLine {
            number: idx + 1,
            code,
            waivers,
        });
    }
    out
}

fn waived(line: &CodeLine, rule: &str) -> bool {
    line.waivers.iter().any(|w| w == rule)
}

/// `true` when `s[at..]` (after optional spaces and a sign) starts with a
/// float literal such as `1.0`, `.5` or `3.`.
fn float_literal_follows(s: &str, at: usize) -> bool {
    let rest = s[at..].trim_start().trim_start_matches('-').trim_start();
    let mut chars = rest.chars().peekable();
    let mut digits = 0;
    while let Some(c) = chars.peek() {
        if c.is_ascii_digit() || *c == '_' {
            digits += 1;
            chars.next();
        } else {
            break;
        }
    }
    match chars.peek() {
        Some('.') => {
            chars.next();
            // `1.0`, `.5`, `3.` but not `1..4` (range) or `x.method()`.
            digits > 0 || chars.peek().is_some_and(|c| c.is_ascii_digit())
        }
        _ => false,
    }
}

/// `true` when the text *ending* at `at` ends with a float literal.
fn float_literal_precedes(s: &str, at: usize) -> bool {
    let rest = s[..at].trim_end();
    let bytes = rest.as_bytes();
    let mut i = bytes.len();
    while i > 0 && (bytes[i - 1].is_ascii_digit() || bytes[i - 1] == b'_') {
        i -= 1;
    }
    if i == 0 || bytes[i - 1] != b'.' {
        return false;
    }
    let before_dot = i - 1;
    let mut j = before_dot;
    let mut digits_before = 0;
    while j > 0 && (bytes[j - 1].is_ascii_digit() || bytes[j - 1] == b'_') {
        j -= 1;
        digits_before += 1;
    }
    // `1.0 ==`, `3. ==`; reject `..3 ==` (range) and `x.0 ==` (tuple field).
    digits_before > 0
        && (j == 0
            || !bytes[j - 1].is_ascii_alphanumeric()
                && bytes[j - 1] != b'.'
                && bytes[j - 1] != b'_')
}

/// Rule `ir-lowering`: no hand-rolled `Problem` rows outside the IR's home.
pub fn check_ir_lowering(path: &Path, content: &str) -> Vec<Violation> {
    const RULE: &str = "ir-lowering";
    let mut out = Vec::new();
    for line in code_lines(content) {
        if waived(&line, RULE) {
            continue;
        }
        if line.code.contains(".add_constraint(") {
            out.push(Violation {
                file: path.to_path_buf(),
                line: line.number,
                rule: RULE,
                message: "hand-rolled Problem row construction — declare the row through \
                          dls_lp::ScheduleModel (deadline/one_port/capacity/precedence/\
                          constraint) so the static analyzer sees it"
                    .to_string(),
            });
        }
    }
    out
}

/// Rule `lp-core-discipline`: total-order comparisons only in the LP core.
pub fn check_lp_core_discipline(path: &Path, content: &str) -> Vec<Violation> {
    const RULE: &str = "lp-core-discipline";
    let mut out = Vec::new();
    for line in code_lines(content) {
        if waived(&line, RULE) {
            continue;
        }
        if line.code.contains("partial_cmp") {
            if let Some(at) = line.code.find("partial_cmp") {
                let after = &line.code[at..];
                if after.contains(".unwrap()") || after.contains(".expect(") {
                    out.push(Violation {
                        file: path.to_path_buf(),
                        line: line.number,
                        rule: RULE,
                        message: "partial_cmp(..).unwrap() panics on NaN mid-pivot — use \
                                  f64::total_cmp or the Scalar tolerance helpers"
                            .to_string(),
                    });
                }
            }
        }
        for op in ["==", "!="] {
            let mut from = 0;
            while let Some(pos) = line.code[from..].find(op) {
                let at = from + pos;
                // Skip `===`-like runs and `<=`, `>=`, `!=` handled by op.
                let before_ok =
                    at == 0 || !matches!(line.code.as_bytes()[at - 1], b'=' | b'<' | b'>' | b'!');
                let after = at + op.len();
                let after_ok = after >= line.code.len() || line.code.as_bytes()[after] != b'=';
                if before_ok
                    && after_ok
                    && (float_literal_follows(&line.code, after)
                        || float_literal_precedes(&line.code, at))
                {
                    out.push(Violation {
                        file: path.to_path_buf(),
                        line: line.number,
                        rule: RULE,
                        message: format!(
                            "float-literal `{op}` comparison in the LP core — compare \
                             against the engine tolerances (Scalar::is_zero, \
                             coefficient_scale-relative bounds) instead"
                        ),
                    });
                }
                from = after;
            }
        }
    }
    out
}

/// Top-level string keys of a flat JSON object, with 1-based line numbers.
/// String *values* are skipped (a key name quoted inside the `comment`
/// field is not a key).
fn json_keys(doc: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut chars = doc.chars().peekable();
    while let Some(ch) = chars.next() {
        match ch {
            '\n' => line += 1,
            '"' => {
                let mut s = String::new();
                for c in chars.by_ref() {
                    match c {
                        '"' => break,
                        '\n' => line += 1,
                        _ => s.push(c),
                    }
                }
                // A string followed by ':' is a key; anything else is a
                // value. Skip the value if it is itself a string.
                while matches!(chars.peek(), Some(' ' | '\t')) {
                    chars.next();
                }
                if chars.peek() == Some(&':') {
                    chars.next();
                    out.push((s, line));
                    // If the value is a string, consume it so its contents
                    // are never scanned for keys.
                    while matches!(chars.peek(), Some(' ' | '\t')) {
                        chars.next();
                    }
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        let mut escaped = false;
                        for c in chars.by_ref() {
                            match c {
                                '\n' => line += 1,
                                '\\' if !escaped => escaped = true,
                                '"' if !escaped => break,
                                _ => escaped = false,
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// Keys every smoke gate reads generically, exempt from the reference
/// check (see `dls_bench::smoke::run_gate`).
const GENERIC_BASELINE_KEYS: &[&str] = &["comment", "calibration_ns", "max_regression"];

/// Rule `baseline-keys`: every measurement key of `*_baseline.json` must
/// appear (quoted) in the sibling `<name>.rs` smoke gate.
pub fn check_baseline_keys(
    json_path: &Path,
    json: &str,
    bench_path: &Path,
    bench_src: Option<&str>,
) -> Vec<Violation> {
    const RULE: &str = "baseline-keys";
    let mut out = Vec::new();
    let Some(bench_src) = bench_src else {
        return vec![Violation {
            file: json_path.to_path_buf(),
            line: 1,
            rule: RULE,
            message: format!(
                "baseline has no sibling smoke gate {} — every baseline must be \
                 compared by a bench",
                bench_path.display()
            ),
        }];
    };
    for (key, line) in json_keys(json) {
        if GENERIC_BASELINE_KEYS.contains(&key.as_str()) {
            continue;
        }
        let needle = format!("\"{key}\"");
        if !bench_src.contains(&needle) {
            out.push(Violation {
                file: json_path.to_path_buf(),
                line,
                rule: RULE,
                message: format!(
                    "baseline key \"{key}\" is never referenced by {} — the smoke gate \
                     no longer compares it (rename the key or wire it back in)",
                    bench_path.display()
                ),
            });
        }
    }
    out
}

/// The `dls-obs` recording macros whose first argument names a metric.
const OBS_MACROS: &[&str] = &[
    "counter!(",
    "gauge!(",
    "histogram!(",
    "span!(",
    "trace_span!(",
    "trace_event!(",
];

/// `true` when the match at `pos` starts the macro name rather than being
/// the suffix of a longer identifier (`span!(` inside `trace_span!(`).
fn macro_name_starts_at(s: &str, pos: usize) -> bool {
    pos == 0 || !matches!(s.as_bytes()[pos - 1], b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')
}

/// Rule `obs-metric-names`: every metric-name literal handed to a
/// `dls-obs` macro must appear backticked in the README (the
/// observability inventory), mirroring how `baseline-keys` pins the smoke
/// baselines. Dynamically-built names (`dls_obs::histogram(&format!(..))`)
/// are out of scope — the README documents those as patterns.
pub fn check_obs_metric_names(path: &Path, content: &str, readme: &str) -> Vec<Violation> {
    const RULE: &str = "obs-metric-names";
    let mut out = Vec::new();
    let raw_lines: Vec<&str> = content.lines().collect();
    for line in code_lines(content) {
        if waived(&line, RULE) {
            continue;
        }
        let raw = raw_lines.get(line.number - 1).copied().unwrap_or_default();
        for mac in OBS_MACROS {
            // Gate on the comment/string-blanked code: the macro must be
            // invoked with a string literal on this line. A definition-side
            // `histogram!($name)` or a name quoted in a comment never fires.
            let mut literal_call = false;
            let mut from = 0;
            while let Some(pos) = line.code[from..].find(mac) {
                let abs = from + pos;
                from = abs + mac.len();
                if !macro_name_starts_at(&line.code, abs) {
                    continue;
                }
                if line.code[from..].trim_start().starts_with('"') {
                    literal_call = true;
                    break;
                }
            }
            if !literal_call {
                continue;
            }
            // The blanked code hides the literal's contents; recover the
            // names from the raw line (metric names contain no escapes).
            let mut from = 0;
            while let Some(pos) = raw[from..].find(mac) {
                let abs = from + pos;
                from = abs + mac.len();
                if !macro_name_starts_at(raw, abs) {
                    continue;
                }
                let rest = raw[from..].trim_start();
                let Some(stripped) = rest.strip_prefix('"') else {
                    continue;
                };
                let Some(end) = stripped.find('"') else {
                    continue;
                };
                let name = &stripped[..end];
                if !readme.contains(&format!("`{name}`")) {
                    out.push(Violation {
                        file: path.to_path_buf(),
                        line: line.number,
                        rule: RULE,
                        message: format!(
                            "metric name \"{name}\" is missing from the README \
                             observability inventory — add `{name}` to the metric \
                             table in README.md (or rename the metric)"
                        ),
                    });
                }
            }
        }
    }
    out
}

/// Files rule `ir-lowering` must never flag: the IR and raw-builder home.
fn ir_exempt(rel: &Path) -> bool {
    rel == Path::new("crates/lp/src/model.rs") || rel == Path::new("crates/lp/src/problem.rs")
}

/// `true` when `rel` is in the LP core (rule `lp-core-discipline` scope).
fn lp_core_scoped(rel: &Path) -> bool {
    rel.starts_with("crates/lp/src") || rel == Path::new("crates/core/src/lp_model.rs")
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints the workspace rooted at `root` (the directory holding the
/// top-level `Cargo.toml`). Returns every violation, in path order.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    let mut violations = Vec::new();

    // Rules 1 + 2 over crates/*/src (vendor/ and benches/tests/ are out of
    // scope by construction; xtask itself is skipped — its fixtures and
    // pattern strings would self-flag).
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let entry = entry?;
            let src = entry.path().join("src");
            if entry.path().file_name().is_some_and(|n| n == "xtask") {
                continue;
            }
            if src.is_dir() {
                walk_rs(&src, &mut files)?;
            }
        }
    }
    files.sort();
    let readme = fs::read_to_string(root.join("README.md")).unwrap_or_default();
    for path in &files {
        let rel = path.strip_prefix(root).unwrap_or(path).to_path_buf();
        let content = fs::read_to_string(path)?;
        if !ir_exempt(&rel) {
            for mut v in check_ir_lowering(&rel, &content) {
                v.file = rel.clone();
                violations.push(v);
            }
        }
        if lp_core_scoped(&rel) {
            violations.extend(check_lp_core_discipline(&rel, &content));
        }
        violations.extend(check_obs_metric_names(&rel, &content, &readme));
    }

    // Rule 3 over crates/bench/benches/*_baseline.json.
    let benches = root.join("crates/bench/benches");
    if benches.is_dir() {
        let mut jsons: Vec<PathBuf> = fs::read_dir(&benches)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.ends_with("_baseline.json"))
            })
            .collect();
        jsons.sort();
        for json_path in jsons {
            let stem = json_path
                .file_name()
                .and_then(|n| n.to_str())
                .and_then(|n| n.strip_suffix("_baseline.json"))
                .unwrap_or_default()
                .to_string();
            let bench_path = benches.join(format!("{stem}.rs"));
            let json = fs::read_to_string(&json_path)?;
            let bench_src = fs::read_to_string(&bench_path).ok();
            let rel_json = json_path
                .strip_prefix(root)
                .unwrap_or(&json_path)
                .to_path_buf();
            let rel_bench = bench_path
                .strip_prefix(root)
                .unwrap_or(&bench_path)
                .to_path_buf();
            violations.extend(check_baseline_keys(
                &rel_json,
                &json,
                &rel_bench,
                bench_src.as_deref(),
            ));
        }
    }

    Ok(violations)
}

// ---------------------------------------------------------------------------
// Chrome-trace checker (`cargo xtask check-trace <file>`)
// ---------------------------------------------------------------------------

/// Minimal JSON value for the trace checker (std-only by design, like the
/// rest of this crate).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, fields in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (`None` on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one JSON document. Strict on structure (a torn or truncated
/// export fails), tolerant on nothing: trailing garbage is an error too.
pub fn parse_json(doc: &str) -> Result<Json, String> {
    struct P<'a> {
        b: &'a [u8],
        i: usize,
    }
    impl P<'_> {
        fn err<T>(&self, what: &str) -> Result<T, String> {
            Err(format!("{what} at byte {}", self.i))
        }
        fn ws(&mut self) {
            while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
                self.i += 1;
            }
        }
        fn value(&mut self) -> Result<Json, String> {
            self.ws();
            match self.b.get(self.i) {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Json::Str(self.string()?)),
                Some(b't') => self.lit(b"true", Json::Bool(true)),
                Some(b'f') => self.lit(b"false", Json::Bool(false)),
                Some(b'n') => self.lit(b"null", Json::Null),
                Some(b'-' | b'0'..=b'9') => self.number(),
                _ => self.err("expected a JSON value"),
            }
        }
        fn lit(&mut self, lit: &[u8], v: Json) -> Result<Json, String> {
            if self.b[self.i..].starts_with(lit) {
                self.i += lit.len();
                Ok(v)
            } else {
                self.err("malformed literal")
            }
        }
        fn number(&mut self) -> Result<Json, String> {
            let start = self.i;
            while self.i < self.b.len()
                && matches!(
                    self.b[self.i],
                    b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
                )
            {
                self.i += 1;
            }
            std::str::from_utf8(&self.b[start..self.i])
                .ok()
                .and_then(|s| s.parse().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("malformed number at byte {start}"))
        }
        fn string(&mut self) -> Result<String, String> {
            self.i += 1; // opening quote
            let mut out = String::new();
            while let Some(&c) = self.b.get(self.i) {
                match c {
                    b'"' => {
                        self.i += 1;
                        return Ok(out);
                    }
                    b'\\' => {
                        let esc = self.b.get(self.i + 1).copied();
                        self.i += 2;
                        match esc {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b't') => out.push('\t'),
                            Some(b'r') => out.push('\r'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'u') => {
                                let hex = self
                                    .b
                                    .get(self.i..self.i + 4)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .and_then(|h| u32::from_str_radix(h, 16).ok());
                                self.i += 4;
                                match hex.and_then(char::from_u32) {
                                    Some(ch) => out.push(ch),
                                    None => return self.err("bad \\u escape"),
                                }
                            }
                            _ => return self.err("bad escape"),
                        }
                    }
                    _ => {
                        // Copy the full UTF-8 scalar: decode just this
                        // sequence (validating the whole tail per char
                        // would make parsing quadratic).
                        let len = match c {
                            0x00..=0x7f => 1,
                            0xc0..=0xdf => 2,
                            0xe0..=0xef => 3,
                            _ => 4,
                        };
                        let seq = self
                            .b
                            .get(self.i..self.i + len)
                            .and_then(|s| std::str::from_utf8(s).ok())
                            .ok_or_else(|| format!("invalid UTF-8 at byte {}", self.i))?;
                        out.push_str(seq);
                        self.i += len;
                    }
                }
            }
            self.err("unterminated string")
        }
        fn object(&mut self) -> Result<Json, String> {
            self.i += 1;
            let mut fields = Vec::new();
            self.ws();
            if self.b.get(self.i) == Some(&b'}') {
                self.i += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                self.ws();
                if self.b.get(self.i) != Some(&b'"') {
                    return self.err("expected object key");
                }
                let key = self.string()?;
                self.ws();
                if self.b.get(self.i) != Some(&b':') {
                    return self.err("expected ':'");
                }
                self.i += 1;
                let v = self.value()?;
                fields.push((key, v));
                self.ws();
                match self.b.get(self.i) {
                    Some(b',') => self.i += 1,
                    Some(b'}') => {
                        self.i += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return self.err("expected ',' or '}'"),
                }
            }
        }
        fn array(&mut self) -> Result<Json, String> {
            self.i += 1;
            let mut items = Vec::new();
            self.ws();
            if self.b.get(self.i) == Some(&b']') {
                self.i += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(self.value()?);
                self.ws();
                match self.b.get(self.i) {
                    Some(b',') => self.i += 1,
                    Some(b']') => {
                        self.i += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return self.err("expected ',' or ']'"),
                }
            }
        }
    }
    let mut p = P {
        b: doc.as_bytes(),
        i: 0,
    };
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing garbage at byte {}", p.i));
    }
    Ok(v)
}

/// Summary of a validated chrome trace (printed by `xtask check-trace`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCheck {
    /// Total events in `traceEvents`.
    pub events: usize,
    /// `ph:"X"` complete (span) events.
    pub complete: usize,
    /// `ph:"i"` instant events.
    pub instants: usize,
    /// `par_map.item.seconds` spans.
    pub par_map_items: usize,
    /// `core.solve_scenario.seconds` spans nesting (transitively, via the
    /// `args.span_id`/`args.parent_id` chain) under a `par_map` item.
    pub nested_solves: usize,
}

/// Validates a `DLS_TRACE=chrome:<path>` export:
///
/// * the document parses and has a `traceEvents` array;
/// * every event carries `name`, `ph` and `pid`; complete events (`"X"`)
///   also `tid`, `ts` and `dur`, and span/instant events an
///   `args.span_id`;
/// * at least one `par_map.item.seconds` span exists and at least one
///   `core.solve_scenario.seconds` span nests under one through the
///   parent chain — the causal-propagation contract of the solve path.
pub fn check_chrome_trace(doc: &str) -> Result<TraceCheck, String> {
    let root = parse_json(doc)?;
    let events = root
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("document has no traceEvents array")?;

    let mut check = TraceCheck {
        events: events.len(),
        complete: 0,
        instants: 0,
        par_map_items: 0,
        nested_solves: 0,
    };
    // span id -> (name, parent id) over all span events.
    let mut span_index: std::collections::HashMap<u64, (String, Option<u64>)> =
        std::collections::HashMap::new();
    let mut solve_parents: Vec<Option<u64>> = Vec::new();
    for (n, ev) in events.iter().enumerate() {
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {n} has no name"))?;
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {n} ({name}) has no ph"))?;
        if ev.get("pid").and_then(Json::as_f64).is_none() {
            return Err(format!("event {n} ({name}) has no pid"));
        }
        match ph {
            "M" => continue, // process_name metadata
            "i" => check.instants += 1,
            "X" => {
                check.complete += 1;
                for field in ["tid", "ts", "dur"] {
                    if ev.get(field).and_then(Json::as_f64).is_none() {
                        return Err(format!("complete event {n} ({name}) has no {field}"));
                    }
                }
            }
            other => return Err(format!("event {n} ({name}) has unexpected ph {other:?}")),
        }
        let args = ev
            .get("args")
            .ok_or_else(|| format!("event {n} ({name}) has no args"))?;
        let span_id = args
            .get("span_id")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {n} ({name}) has no args.span_id"))?
            as u64;
        let parent_id = args
            .get("parent_id")
            .and_then(Json::as_f64)
            .map(|p| p as u64);
        if ph == "X" {
            span_index.insert(span_id, (name.to_string(), parent_id));
            if name == "par_map.item.seconds" {
                check.par_map_items += 1;
            }
            if name == "core.solve_scenario.seconds" {
                solve_parents.push(parent_id);
            }
        }
    }

    if check.par_map_items == 0 {
        return Err("no par_map.item.seconds spans in the trace".into());
    }
    if solve_parents.is_empty() {
        return Err("no core.solve_scenario.seconds spans in the trace".into());
    }
    for mut parent in solve_parents {
        // Walk up the parent chain (depth-capped against cycles).
        for _ in 0..64 {
            let Some(pid) = parent else { break };
            let Some((pname, pparent)) = span_index.get(&pid) else {
                break;
            };
            if pname == "par_map.item.seconds" {
                check.nested_solves += 1;
                break;
            }
            parent = *pparent;
        }
    }
    if check.nested_solves == 0 {
        return Err(
            "no core.solve_scenario.seconds span nests under a par_map.item.seconds span \
             (TraceContext propagation broken?)"
                .into(),
        );
    }
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ir_lowering_flags_raw_rows_but_not_comments_tests_or_waivers() {
        let src = "\
use dls_lp::Problem;

fn build() {
    let mut p = Problem::maximize();
    // p.add_constraint(\"in a comment\", [], Relation::Le, 1.0);
    p.add_constraint(\"bad\", [], Relation::Le, 1.0);
    p.add_constraint(\"waived\", [], Relation::Le, 1.0); // xtask: allow(ir-lowering)
}

#[cfg(test)]
mod tests {
    fn in_tests() {
        p.add_constraint(\"fine here\", [], Relation::Le, 1.0);
    }
}
";
        let v = check_ir_lowering(Path::new("crates/foo/src/bad.rs"), src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 6);
        assert_eq!(v[0].rule, "ir-lowering");
        assert!(v[0].to_string().starts_with("crates/foo/src/bad.rs:6:"));
    }

    #[test]
    fn lp_core_discipline_flags_partial_cmp_chains_and_float_eq() {
        let src = "\
fn hot(xs: &mut [f64], t: f64) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs.sort_by(|a, b| a.partial_cmp(b).expect(\"no NaN\"));
    xs.sort_by(|a, b| a.total_cmp(b));
    if t == 1.0 {}
    if 0.5 != t {}
    if t <= 1.0 {}
    let r = 1..2;
    let _ = r;
}
";
        let v = check_lp_core_discipline(Path::new("crates/lp/src/simplex.rs"), src);
        let lines: Vec<usize> = v.iter().map(|x| x.line).collect();
        assert_eq!(lines, vec![2, 3, 5, 6], "{v:?}");
    }

    #[test]
    fn lp_core_scope_covers_every_solver_module() {
        // The discipline rule guards the whole LP core by directory, so a
        // new solver module (the sparse LU factorization most recently) is
        // in scope the day it lands — pin the boundary on both sides.
        for covered in [
            "crates/lp/src/simplex.rs",
            "crates/lp/src/revised.rs",
            "crates/lp/src/sparse_lu.rs",
            "crates/lp/src/scalar.rs",
            "crates/core/src/lp_model.rs",
        ] {
            assert!(
                lp_core_scoped(Path::new(covered)),
                "{covered} must be in scope"
            );
        }
        for outside in [
            "crates/lp/tests/sparse_dense.rs",
            "crates/core/src/lib.rs",
            "crates/bench/benches/solver.rs",
        ] {
            assert!(
                !lp_core_scoped(Path::new(outside)),
                "{outside} must be out of scope"
            );
        }
        // And the rule itself fires on the pivot-selection idioms the
        // factorization must not use.
        let src = "fn pick(a: f64, b: f64) -> bool { a.partial_cmp(&b).unwrap().is_gt() }\n";
        let v = check_lp_core_discipline(Path::new("crates/lp/src/sparse_lu.rs"), src);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn float_literal_detection_avoids_ranges_and_ints() {
        // Integer equality and range syntax are not float comparisons.
        let src = "\
fn f(n: usize) {
    if n == 1 {}
    for _ in 0..2 {}
    if n == 10 {}
}
";
        let v = check_lp_core_discipline(Path::new("crates/lp/src/x.rs"), src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn string_contents_never_match_patterns() {
        let src = "fn f() { let s = \"call .add_constraint( and x == 1.0 here\"; }\n";
        assert!(check_ir_lowering(Path::new("a.rs"), src).is_empty());
        assert!(check_lp_core_discipline(Path::new("a.rs"), src).is_empty());
    }

    #[test]
    fn baseline_keys_flags_unreferenced_measurements_only() {
        let json = "{\n  \"comment\": \"mentions \\\"ghost_ns\\\" harmlessly\",\n  \
                    \"p128_ns\": 10,\n  \"ghost_ns\": 20,\n  \"calibration_ns\": 5,\n  \
                    \"max_regression\": 2.0\n}\n";
        let bench = "run_gate(path, \"p128_ns\", \"label\", f);\n";
        let v = check_baseline_keys(
            Path::new("crates/bench/benches/foo_baseline.json"),
            json,
            Path::new("crates/bench/benches/foo.rs"),
            Some(bench),
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("ghost_ns"));
        assert_eq!(v[0].line, 4);
    }

    #[test]
    fn obs_metric_names_flags_undocumented_literals_only() {
        let src = "\
fn f() {
    dls_obs::counter!(\"documented.count\").incr();
    dls_obs::histogram!(\"ghost.seconds\").record(1.5);
    // a comment quoting counter!(\"commented.out\") never fires
    dls_obs::span!(\"waived.seconds\"); // xtask: allow(obs-metric-names)
    dls_obs::histogram(&name); // dynamic name: out of scope
}

#[cfg(test)]
mod tests {
    fn g() {
        dls_obs::counter!(\"test.only\").incr();
    }
}
";
        let readme = "| `documented.count` | solves |\n";
        let v = check_obs_metric_names(Path::new("crates/foo/src/lib.rs"), src, readme);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "obs-metric-names");
        assert_eq!(v[0].line, 3);
        assert!(v[0].message.contains("ghost.seconds"));
    }

    #[test]
    fn obs_metric_names_skips_macro_definitions() {
        // The macro definition forwards `$name` — no literal, no firing.
        let src = "macro_rules! span {\n    ($name:expr) => { $crate::Span::start($crate::histogram!($name)) };\n}\n";
        assert!(check_obs_metric_names(Path::new("crates/obs/src/macros.rs"), src, "").is_empty());
    }

    #[test]
    fn obs_metric_names_covers_trace_macros_without_double_counting() {
        let src = "\
fn f() {
    let _s = dls_obs::trace_span!(\"ghost.span.seconds\", \"k\" => 1);
    dls_obs::trace_event!(\"ghost.instant\");
    dls_obs::trace_span!(\"known.span.seconds\");
}
";
        let readme = "| `known.span.seconds` | phase |\n";
        let v = check_obs_metric_names(Path::new("crates/foo/src/lib.rs"), src, readme);
        // One violation per undocumented name: `span!(` inside
        // `trace_span!(` must not fire a second time.
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].message.contains("ghost.span.seconds"));
        assert!(v[1].message.contains("ghost.instant"));
    }

    #[test]
    fn json_parser_round_trips_and_rejects_torn_documents() {
        let doc = r#"{"a":[1,-2.5e3,"x\"A"],"b":{"c":null,"d":true},"e":false}"#;
        let v = parse_json(doc).expect("parses");
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(v.get("b").and_then(|b| b.get("c")), Some(&Json::Null));
        assert!(parse_json("{\"a\":1").is_err(), "truncated object");
        assert!(parse_json("{\"a\":1} x").is_err(), "trailing garbage");
        assert!(parse_json("{\"a\":\"tor").is_err(), "torn string");
    }

    fn span_event(name: &str, span_id: u64, parent_id: Option<u64>) -> String {
        let parent = parent_id
            .map(|p| format!(",\"parent_id\":{p}"))
            .unwrap_or_default();
        format!(
            "{{\"name\":\"{name}\",\"cat\":\"dls\",\"ph\":\"X\",\"ts\":1,\"dur\":2,\
             \"pid\":1,\"tid\":0,\"args\":{{\"span_id\":{span_id}{parent}}}}}"
        )
    }

    #[test]
    fn check_trace_accepts_nested_solves_and_reports_counts() {
        let doc = format!(
            "{{\"traceEvents\":[\n\
             {{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{{\"name\":\"trace 1\"}}}},\n{},\n{},\n{}\n],\
             \"displayTimeUnit\":\"ms\"}}",
            span_event("sweep.run.seconds", 1, None),
            span_event("par_map.item.seconds", 2, Some(1)),
            span_event("core.solve_scenario.seconds", 3, Some(2)),
        );
        let check = check_chrome_trace(&doc).expect("valid trace");
        assert_eq!(check.events, 4);
        assert_eq!(check.complete, 3);
        assert_eq!(check.par_map_items, 1);
        assert_eq!(check.nested_solves, 1);
    }

    #[test]
    fn check_trace_rejects_orphan_solves_and_schema_gaps() {
        // Solve span present but not under a par_map item.
        let orphan = format!(
            "{{\"traceEvents\":[\n{},\n{}\n]}}",
            span_event("par_map.item.seconds", 2, None),
            span_event("core.solve_scenario.seconds", 3, None),
        );
        let err = check_chrome_trace(&orphan).unwrap_err();
        assert!(err.contains("nests under"), "{err}");

        // A complete event missing `dur` is a schema error.
        let torn = "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"X\",\"ts\":1,\
                     \"pid\":1,\"tid\":0,\"args\":{\"span_id\":1}}]}";
        let err = check_chrome_trace(torn).unwrap_err();
        assert!(err.contains("no dur"), "{err}");
    }

    #[test]
    fn baseline_without_gate_is_a_violation() {
        let v = check_baseline_keys(
            Path::new("crates/bench/benches/orphan_baseline.json"),
            "{\"x_ns\": 1}",
            Path::new("crates/bench/benches/orphan.rs"),
            None,
        );
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("no sibling smoke gate"));
    }
}
