//! Source-level convention linter for the workspace (`cargo xtask lint`).
//!
//! Clippy enforces language-level hygiene (see `[workspace.lints]` and
//! `clippy.toml`); this linter enforces the *project* conventions that no
//! general-purpose tool knows about:
//!
//! * **`ir-lowering`** — every LP row in the workspace must lower through
//!   the `dls_lp::ScheduleModel` IR, so the pre-solve static analyzer
//!   (`dls_lp::analyze`) sees it. Hand-rolled `Problem::add_constraint`
//!   calls are forbidden outside the IR's own home
//!   (`crates/lp/src/model.rs`, `crates/lp/src/problem.rs`).
//! * **`lp-core-discipline`** — in the LP core (`crates/lp/src/*`,
//!   `crates/core/src/lp_model.rs`), `partial_cmp(...).unwrap()` /
//!   `.expect(...)` chains and float-literal `==`/`!=` comparisons are
//!   forbidden: use `f64::total_cmp` or the `Scalar` tolerance helpers.
//! * **`baseline-keys`** — every measurement key in a
//!   `benches/*_baseline.json` must be referenced by its sibling smoke
//!   gate (`benches/<name>.rs`), so a renamed gate cannot silently stop
//!   comparing against its checked-in baseline.
//! * **`obs-metric-names`** — every metric-name literal passed to the
//!   `dls-obs` recording macros (`counter!`, `gauge!`, `histogram!`,
//!   `span!`) must be listed, backticked, in the README's observability
//!   inventory, so the documented name table cannot silently go stale
//!   when instrumentation is added or renamed.
//!
//! The scanner is textual, not syntactic: it strips `//` comments and
//! string literals, and stops at a file's trailing `#[cfg(test)]` module
//! (tests may build raw problems and compare exact floats). A line may
//! carry an explicit waiver: `// xtask: allow(<rule>)`.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One rule violation, printed as `file:line: [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// File the violation is in (relative to the linted root when
    /// produced by [`lint_workspace`]).
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule identifier (`ir-lowering`, `lp-core-discipline`,
    /// `baseline-keys`, `obs-metric-names`).
    pub rule: &'static str,
    /// What went wrong and what to do instead.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// A source line with comments and string-literal *contents* blanked out
/// (delimiters kept), so pattern checks cannot fire inside either.
#[derive(Debug)]
struct CodeLine {
    number: usize,
    code: String,
    waivers: Vec<String>,
}

/// Strips a Rust source file down to the lines the rules look at: comment
/// text and string contents blanked, everything from a trailing
/// `#[cfg(test)]` module onward dropped. Good enough for a convention
/// linter; not a parser.
fn code_lines(content: &str) -> Vec<CodeLine> {
    let mut out = Vec::new();
    let mut in_block_comment = 0usize;
    for (idx, raw) in content.lines().enumerate() {
        let trimmed = raw.trim();
        if in_block_comment == 0 && trimmed == "#[cfg(test)]" {
            // Convention: the trailing unit-test module. Tests are exempt.
            break;
        }
        let mut code = String::with_capacity(raw.len());
        let mut waivers = Vec::new();
        let mut chars = raw.chars().peekable();
        let mut in_string = false;
        while let Some(ch) = chars.next() {
            if in_block_comment > 0 {
                if ch == '*' && chars.peek() == Some(&'/') {
                    chars.next();
                    in_block_comment -= 1;
                } else if ch == '/' && chars.peek() == Some(&'*') {
                    chars.next();
                    in_block_comment += 1;
                }
                continue;
            }
            if in_string {
                match ch {
                    '\\' => {
                        chars.next();
                    }
                    '"' => {
                        in_string = false;
                        code.push('"');
                    }
                    _ => code.push('_'),
                }
                continue;
            }
            match ch {
                '/' if chars.peek() == Some(&'/') => {
                    // Line comment: scan the rest for an explicit waiver.
                    let rest: String = chars.collect();
                    if let Some(pos) = rest.find("xtask: allow(") {
                        let tail = &rest[pos + "xtask: allow(".len()..];
                        if let Some(end) = tail.find(')') {
                            waivers.push(tail[..end].trim().to_string());
                        }
                    }
                    break;
                }
                '/' if chars.peek() == Some(&'*') => {
                    chars.next();
                    in_block_comment += 1;
                }
                '"' => {
                    in_string = true;
                    code.push('"');
                }
                '\'' => {
                    // Char literal or lifetime; skip a possible escaped or
                    // plain char so '"' cannot open a string.
                    code.push('\'');
                    match chars.peek() {
                        Some('\\') => {
                            chars.next();
                            chars.next();
                        }
                        Some(&c) if c != ' ' => {
                            // Lifetimes ('a) have no closing quote; chars do.
                            let mut look = chars.clone();
                            look.next();
                            if look.peek() == Some(&'\'') {
                                chars.next();
                            }
                        }
                        _ => {}
                    }
                }
                _ => code.push(ch),
            }
        }
        out.push(CodeLine {
            number: idx + 1,
            code,
            waivers,
        });
    }
    out
}

fn waived(line: &CodeLine, rule: &str) -> bool {
    line.waivers.iter().any(|w| w == rule)
}

/// `true` when `s[at..]` (after optional spaces and a sign) starts with a
/// float literal such as `1.0`, `.5` or `3.`.
fn float_literal_follows(s: &str, at: usize) -> bool {
    let rest = s[at..].trim_start().trim_start_matches('-').trim_start();
    let mut chars = rest.chars().peekable();
    let mut digits = 0;
    while let Some(c) = chars.peek() {
        if c.is_ascii_digit() || *c == '_' {
            digits += 1;
            chars.next();
        } else {
            break;
        }
    }
    match chars.peek() {
        Some('.') => {
            chars.next();
            // `1.0`, `.5`, `3.` but not `1..4` (range) or `x.method()`.
            digits > 0 || chars.peek().is_some_and(|c| c.is_ascii_digit())
        }
        _ => false,
    }
}

/// `true` when the text *ending* at `at` ends with a float literal.
fn float_literal_precedes(s: &str, at: usize) -> bool {
    let rest = s[..at].trim_end();
    let bytes = rest.as_bytes();
    let mut i = bytes.len();
    while i > 0 && (bytes[i - 1].is_ascii_digit() || bytes[i - 1] == b'_') {
        i -= 1;
    }
    if i == 0 || bytes[i - 1] != b'.' {
        return false;
    }
    let before_dot = i - 1;
    let mut j = before_dot;
    let mut digits_before = 0;
    while j > 0 && (bytes[j - 1].is_ascii_digit() || bytes[j - 1] == b'_') {
        j -= 1;
        digits_before += 1;
    }
    // `1.0 ==`, `3. ==`; reject `..3 ==` (range) and `x.0 ==` (tuple field).
    digits_before > 0
        && (j == 0
            || !bytes[j - 1].is_ascii_alphanumeric()
                && bytes[j - 1] != b'.'
                && bytes[j - 1] != b'_')
}

/// Rule `ir-lowering`: no hand-rolled `Problem` rows outside the IR's home.
pub fn check_ir_lowering(path: &Path, content: &str) -> Vec<Violation> {
    const RULE: &str = "ir-lowering";
    let mut out = Vec::new();
    for line in code_lines(content) {
        if waived(&line, RULE) {
            continue;
        }
        if line.code.contains(".add_constraint(") {
            out.push(Violation {
                file: path.to_path_buf(),
                line: line.number,
                rule: RULE,
                message: "hand-rolled Problem row construction — declare the row through \
                          dls_lp::ScheduleModel (deadline/one_port/capacity/precedence/\
                          constraint) so the static analyzer sees it"
                    .to_string(),
            });
        }
    }
    out
}

/// Rule `lp-core-discipline`: total-order comparisons only in the LP core.
pub fn check_lp_core_discipline(path: &Path, content: &str) -> Vec<Violation> {
    const RULE: &str = "lp-core-discipline";
    let mut out = Vec::new();
    for line in code_lines(content) {
        if waived(&line, RULE) {
            continue;
        }
        if line.code.contains("partial_cmp") {
            if let Some(at) = line.code.find("partial_cmp") {
                let after = &line.code[at..];
                if after.contains(".unwrap()") || after.contains(".expect(") {
                    out.push(Violation {
                        file: path.to_path_buf(),
                        line: line.number,
                        rule: RULE,
                        message: "partial_cmp(..).unwrap() panics on NaN mid-pivot — use \
                                  f64::total_cmp or the Scalar tolerance helpers"
                            .to_string(),
                    });
                }
            }
        }
        for op in ["==", "!="] {
            let mut from = 0;
            while let Some(pos) = line.code[from..].find(op) {
                let at = from + pos;
                // Skip `===`-like runs and `<=`, `>=`, `!=` handled by op.
                let before_ok =
                    at == 0 || !matches!(line.code.as_bytes()[at - 1], b'=' | b'<' | b'>' | b'!');
                let after = at + op.len();
                let after_ok = after >= line.code.len() || line.code.as_bytes()[after] != b'=';
                if before_ok
                    && after_ok
                    && (float_literal_follows(&line.code, after)
                        || float_literal_precedes(&line.code, at))
                {
                    out.push(Violation {
                        file: path.to_path_buf(),
                        line: line.number,
                        rule: RULE,
                        message: format!(
                            "float-literal `{op}` comparison in the LP core — compare \
                             against the engine tolerances (Scalar::is_zero, \
                             coefficient_scale-relative bounds) instead"
                        ),
                    });
                }
                from = after;
            }
        }
    }
    out
}

/// Top-level string keys of a flat JSON object, with 1-based line numbers.
/// String *values* are skipped (a key name quoted inside the `comment`
/// field is not a key).
fn json_keys(doc: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut chars = doc.chars().peekable();
    while let Some(ch) = chars.next() {
        match ch {
            '\n' => line += 1,
            '"' => {
                let mut s = String::new();
                for c in chars.by_ref() {
                    match c {
                        '"' => break,
                        '\n' => line += 1,
                        _ => s.push(c),
                    }
                }
                // A string followed by ':' is a key; anything else is a
                // value. Skip the value if it is itself a string.
                while matches!(chars.peek(), Some(' ' | '\t')) {
                    chars.next();
                }
                if chars.peek() == Some(&':') {
                    chars.next();
                    out.push((s, line));
                    // If the value is a string, consume it so its contents
                    // are never scanned for keys.
                    while matches!(chars.peek(), Some(' ' | '\t')) {
                        chars.next();
                    }
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        let mut escaped = false;
                        for c in chars.by_ref() {
                            match c {
                                '\n' => line += 1,
                                '\\' if !escaped => escaped = true,
                                '"' if !escaped => break,
                                _ => escaped = false,
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// Keys every smoke gate reads generically, exempt from the reference
/// check (see `dls_bench::smoke::run_gate`).
const GENERIC_BASELINE_KEYS: &[&str] = &["comment", "calibration_ns", "max_regression"];

/// Rule `baseline-keys`: every measurement key of `*_baseline.json` must
/// appear (quoted) in the sibling `<name>.rs` smoke gate.
pub fn check_baseline_keys(
    json_path: &Path,
    json: &str,
    bench_path: &Path,
    bench_src: Option<&str>,
) -> Vec<Violation> {
    const RULE: &str = "baseline-keys";
    let mut out = Vec::new();
    let Some(bench_src) = bench_src else {
        return vec![Violation {
            file: json_path.to_path_buf(),
            line: 1,
            rule: RULE,
            message: format!(
                "baseline has no sibling smoke gate {} — every baseline must be \
                 compared by a bench",
                bench_path.display()
            ),
        }];
    };
    for (key, line) in json_keys(json) {
        if GENERIC_BASELINE_KEYS.contains(&key.as_str()) {
            continue;
        }
        let needle = format!("\"{key}\"");
        if !bench_src.contains(&needle) {
            out.push(Violation {
                file: json_path.to_path_buf(),
                line,
                rule: RULE,
                message: format!(
                    "baseline key \"{key}\" is never referenced by {} — the smoke gate \
                     no longer compares it (rename the key or wire it back in)",
                    bench_path.display()
                ),
            });
        }
    }
    out
}

/// The `dls-obs` recording macros whose first argument names a metric.
const OBS_MACROS: &[&str] = &["counter!(", "gauge!(", "histogram!(", "span!("];

/// Rule `obs-metric-names`: every metric-name literal handed to a
/// `dls-obs` macro must appear backticked in the README (the
/// observability inventory), mirroring how `baseline-keys` pins the smoke
/// baselines. Dynamically-built names (`dls_obs::histogram(&format!(..))`)
/// are out of scope — the README documents those as patterns.
pub fn check_obs_metric_names(path: &Path, content: &str, readme: &str) -> Vec<Violation> {
    const RULE: &str = "obs-metric-names";
    let mut out = Vec::new();
    let raw_lines: Vec<&str> = content.lines().collect();
    for line in code_lines(content) {
        if waived(&line, RULE) {
            continue;
        }
        let raw = raw_lines.get(line.number - 1).copied().unwrap_or_default();
        for mac in OBS_MACROS {
            // Gate on the comment/string-blanked code: the macro must be
            // invoked with a string literal on this line. A definition-side
            // `histogram!($name)` or a name quoted in a comment never fires.
            let mut literal_call = false;
            let mut from = 0;
            while let Some(pos) = line.code[from..].find(mac) {
                from += pos + mac.len();
                if line.code[from..].trim_start().starts_with('"') {
                    literal_call = true;
                    break;
                }
            }
            if !literal_call {
                continue;
            }
            // The blanked code hides the literal's contents; recover the
            // names from the raw line (metric names contain no escapes).
            let mut from = 0;
            while let Some(pos) = raw[from..].find(mac) {
                from += pos + mac.len();
                let rest = raw[from..].trim_start();
                let Some(stripped) = rest.strip_prefix('"') else {
                    continue;
                };
                let Some(end) = stripped.find('"') else {
                    continue;
                };
                let name = &stripped[..end];
                if !readme.contains(&format!("`{name}`")) {
                    out.push(Violation {
                        file: path.to_path_buf(),
                        line: line.number,
                        rule: RULE,
                        message: format!(
                            "metric name \"{name}\" is missing from the README \
                             observability inventory — add `{name}` to the metric \
                             table in README.md (or rename the metric)"
                        ),
                    });
                }
            }
        }
    }
    out
}

/// Files rule `ir-lowering` must never flag: the IR and raw-builder home.
fn ir_exempt(rel: &Path) -> bool {
    rel == Path::new("crates/lp/src/model.rs") || rel == Path::new("crates/lp/src/problem.rs")
}

/// `true` when `rel` is in the LP core (rule `lp-core-discipline` scope).
fn lp_core_scoped(rel: &Path) -> bool {
    rel.starts_with("crates/lp/src") || rel == Path::new("crates/core/src/lp_model.rs")
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints the workspace rooted at `root` (the directory holding the
/// top-level `Cargo.toml`). Returns every violation, in path order.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    let mut violations = Vec::new();

    // Rules 1 + 2 over crates/*/src (vendor/ and benches/tests/ are out of
    // scope by construction; xtask itself is skipped — its fixtures and
    // pattern strings would self-flag).
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let entry = entry?;
            let src = entry.path().join("src");
            if entry.path().file_name().is_some_and(|n| n == "xtask") {
                continue;
            }
            if src.is_dir() {
                walk_rs(&src, &mut files)?;
            }
        }
    }
    files.sort();
    let readme = fs::read_to_string(root.join("README.md")).unwrap_or_default();
    for path in &files {
        let rel = path.strip_prefix(root).unwrap_or(path).to_path_buf();
        let content = fs::read_to_string(path)?;
        if !ir_exempt(&rel) {
            for mut v in check_ir_lowering(&rel, &content) {
                v.file = rel.clone();
                violations.push(v);
            }
        }
        if lp_core_scoped(&rel) {
            violations.extend(check_lp_core_discipline(&rel, &content));
        }
        violations.extend(check_obs_metric_names(&rel, &content, &readme));
    }

    // Rule 3 over crates/bench/benches/*_baseline.json.
    let benches = root.join("crates/bench/benches");
    if benches.is_dir() {
        let mut jsons: Vec<PathBuf> = fs::read_dir(&benches)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.ends_with("_baseline.json"))
            })
            .collect();
        jsons.sort();
        for json_path in jsons {
            let stem = json_path
                .file_name()
                .and_then(|n| n.to_str())
                .and_then(|n| n.strip_suffix("_baseline.json"))
                .unwrap_or_default()
                .to_string();
            let bench_path = benches.join(format!("{stem}.rs"));
            let json = fs::read_to_string(&json_path)?;
            let bench_src = fs::read_to_string(&bench_path).ok();
            let rel_json = json_path
                .strip_prefix(root)
                .unwrap_or(&json_path)
                .to_path_buf();
            let rel_bench = bench_path
                .strip_prefix(root)
                .unwrap_or(&bench_path)
                .to_path_buf();
            violations.extend(check_baseline_keys(
                &rel_json,
                &json,
                &rel_bench,
                bench_src.as_deref(),
            ));
        }
    }

    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ir_lowering_flags_raw_rows_but_not_comments_tests_or_waivers() {
        let src = "\
use dls_lp::Problem;

fn build() {
    let mut p = Problem::maximize();
    // p.add_constraint(\"in a comment\", [], Relation::Le, 1.0);
    p.add_constraint(\"bad\", [], Relation::Le, 1.0);
    p.add_constraint(\"waived\", [], Relation::Le, 1.0); // xtask: allow(ir-lowering)
}

#[cfg(test)]
mod tests {
    fn in_tests() {
        p.add_constraint(\"fine here\", [], Relation::Le, 1.0);
    }
}
";
        let v = check_ir_lowering(Path::new("crates/foo/src/bad.rs"), src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 6);
        assert_eq!(v[0].rule, "ir-lowering");
        assert!(v[0].to_string().starts_with("crates/foo/src/bad.rs:6:"));
    }

    #[test]
    fn lp_core_discipline_flags_partial_cmp_chains_and_float_eq() {
        let src = "\
fn hot(xs: &mut [f64], t: f64) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs.sort_by(|a, b| a.partial_cmp(b).expect(\"no NaN\"));
    xs.sort_by(|a, b| a.total_cmp(b));
    if t == 1.0 {}
    if 0.5 != t {}
    if t <= 1.0 {}
    let r = 1..2;
    let _ = r;
}
";
        let v = check_lp_core_discipline(Path::new("crates/lp/src/simplex.rs"), src);
        let lines: Vec<usize> = v.iter().map(|x| x.line).collect();
        assert_eq!(lines, vec![2, 3, 5, 6], "{v:?}");
    }

    #[test]
    fn float_literal_detection_avoids_ranges_and_ints() {
        // Integer equality and range syntax are not float comparisons.
        let src = "\
fn f(n: usize) {
    if n == 1 {}
    for _ in 0..2 {}
    if n == 10 {}
}
";
        let v = check_lp_core_discipline(Path::new("crates/lp/src/x.rs"), src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn string_contents_never_match_patterns() {
        let src = "fn f() { let s = \"call .add_constraint( and x == 1.0 here\"; }\n";
        assert!(check_ir_lowering(Path::new("a.rs"), src).is_empty());
        assert!(check_lp_core_discipline(Path::new("a.rs"), src).is_empty());
    }

    #[test]
    fn baseline_keys_flags_unreferenced_measurements_only() {
        let json = "{\n  \"comment\": \"mentions \\\"ghost_ns\\\" harmlessly\",\n  \
                    \"p128_ns\": 10,\n  \"ghost_ns\": 20,\n  \"calibration_ns\": 5,\n  \
                    \"max_regression\": 2.0\n}\n";
        let bench = "run_gate(path, \"p128_ns\", \"label\", f);\n";
        let v = check_baseline_keys(
            Path::new("crates/bench/benches/foo_baseline.json"),
            json,
            Path::new("crates/bench/benches/foo.rs"),
            Some(bench),
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("ghost_ns"));
        assert_eq!(v[0].line, 4);
    }

    #[test]
    fn obs_metric_names_flags_undocumented_literals_only() {
        let src = "\
fn f() {
    dls_obs::counter!(\"documented.count\").incr();
    dls_obs::histogram!(\"ghost.seconds\").record(1.5);
    // a comment quoting counter!(\"commented.out\") never fires
    dls_obs::span!(\"waived.seconds\"); // xtask: allow(obs-metric-names)
    dls_obs::histogram(&name); // dynamic name: out of scope
}

#[cfg(test)]
mod tests {
    fn g() {
        dls_obs::counter!(\"test.only\").incr();
    }
}
";
        let readme = "| `documented.count` | solves |\n";
        let v = check_obs_metric_names(Path::new("crates/foo/src/lib.rs"), src, readme);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "obs-metric-names");
        assert_eq!(v[0].line, 3);
        assert!(v[0].message.contains("ghost.seconds"));
    }

    #[test]
    fn obs_metric_names_skips_macro_definitions() {
        // The macro definition forwards `$name` — no literal, no firing.
        let src = "macro_rules! span {\n    ($name:expr) => { $crate::Span::start($crate::histogram!($name)) };\n}\n";
        assert!(check_obs_metric_names(Path::new("crates/obs/src/macros.rs"), src, "").is_empty());
    }

    #[test]
    fn baseline_without_gate_is_a_violation() {
        let v = check_baseline_keys(
            Path::new("crates/bench/benches/orphan_baseline.json"),
            "{\"x_ns\": 1}",
            Path::new("crates/bench/benches/orphan.rs"),
            None,
        );
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("no sibling smoke gate"));
    }
}
