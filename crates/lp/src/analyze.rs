//! Pre-solve static analysis of [`ScheduleModel`]s.
//!
//! Every LP-backed strategy in the workspace lowers through the
//! schedule-model IR, so one structural bug in a builder — a sign-flipped
//! coefficient, a duplicated row, a group declared but never constrained —
//! silently corrupts every solver family riding on it. The literature shows
//! this is exactly where divisible-load work goes wrong: Gallet, Robert &
//! Vivien's *Comments on "Design and performance evaluation of load
//! distribution strategies…"* exists because published schedules violated
//! their own constraints. [`analyze`] turns those classes of bugs into
//! pre-solve diagnostics.
//!
//! Three layers of checks, each finding carried as a [`Diagnostic`] with
//! the offending row's label and [`RowKind`]:
//!
//! * **per-kind row signatures** — [`RowKind::Deadline`] rows are `≤` with
//!   a strictly positive budget and nonnegative coefficients (the paper's
//!   (2a) shape; the literal nested-prefix structure is *not* checked,
//!   because general permutation pairs scatter the return block across
//!   send positions); [`RowKind::OnePort`] / [`RowKind::Capacity`] rows
//!   are `≤` with nonnegative coefficients and a nonnegative budget;
//!   [`RowKind::Precedence`] rows (which also back
//!   [`ScheduleModel::release`]) are `≥ 0` differences: exactly one `+1`
//!   event term, every other term nonpositive;
//! * **whole-model structure** — every declared variable appears in at
//!   least one row, the objective touches the model, groups are non-empty,
//!   no two rows are identical, and no row is trivially infeasible
//!   (`≤ negative` over nonnegative terms, `≥ positive` over nonpositive
//!   terms); coefficient-wise *dominated* rows (redundant but harmless)
//!   are reported as warnings — the tree-native per-link relaxation
//!   legitimately emits a dominated master-port row on chains, so this
//!   cannot be an error;
//! * **conditioning** — per-row coefficient-magnitude spread beyond
//!   [`SPREAD_LIMIT`] is flagged, because the solver engines' tolerances
//!   are *relative* (scaled by [`crate::Problem::coefficient_scale`]): a
//!   row mixing `1e-6` and `1e6` coefficients defeats them.
//!
//! Checks operate on the *normalized* row (duplicate variable entries
//! summed, exact zeros dropped) — the canonical scenario builder pushes a
//! worker's send and compute coefficients as separate terms of the same
//! variable, which is well-formed.
//!
//! ```
//! use dls_lp::{analyze, ScheduleModel, RowKind, Severity};
//!
//! let mut m = ScheduleModel::maximize();
//! let a = m.group("alpha", [("alpha_P1".to_string(), 1.0)]);
//! // Sign-flipped one-port row: a structural bug, caught pre-solve.
//! m.one_port("one_port", [(a.var(0), -1.5)], 1.0);
//! let report = analyze(&m);
//! assert!(report.has_errors());
//! let d = report.errors().next().unwrap();
//! assert_eq!(d.kind, Some(RowKind::OnePort));
//! assert_eq!(d.row.as_deref(), Some("one_port"));
//! assert_eq!(d.severity, Severity::Error);
//! ```

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use crate::model::{ModelRow, ScheduleModel};
use crate::problem::Relation;
use crate::RowKind;

/// Per-row coefficient-magnitude spread (max |c| / min |c| over nonzero
/// terms) beyond which a conditioning warning is emitted. The engines'
/// relative tolerance is `1e-9 ·` coefficient scale, so a spread of `1e8`
/// leaves less than one decimal digit between the smallest coefficient and
/// numerical noise.
pub const SPREAD_LIMIT: f64 = 1e8;

/// How bad a finding is.
// The derived PartialOrd forwards to partial_cmp on the discriminant,
// which the workspace-wide disallowed-methods ban would otherwise flag.
#[allow(clippy::disallowed_methods)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory: the model solves correctly but carries redundancy or a
    /// conditioning hazard worth knowing about.
    Warning,
    /// The model is structurally broken; solving it would return garbage
    /// (or fail deep inside the engine without naming the culprit).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One analyzer finding, carrying enough context to locate the bug in the
/// *builder* that emitted the row (label + kind), not just in the lowered
/// matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// Label of the offending row, when the finding is row-scoped.
    pub row: Option<String>,
    /// [`RowKind`] of the offending row, when row-scoped.
    pub kind: Option<RowKind>,
    /// Human-readable description of the finding.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.severity)?;
        if let Some(kind) = self.kind {
            write!(f, "[{kind:?}]")?;
        }
        if let Some(row) = &self.row {
            write!(f, " row '{row}':")?;
        }
        write!(f, " {}", self.message)
    }
}

/// The outcome of [`analyze`]: every finding, in check order.
#[derive(Debug, Clone, Default)]
pub struct AnalysisReport {
    diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// All findings, errors and warnings, in check order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Error-severity findings only.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Warning-severity findings only.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// `true` when at least one finding is an error.
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// `true` when the model produced no findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    fn error(&mut self, row: &ModelRow, message: String) {
        self.diagnostics.push(Diagnostic {
            severity: Severity::Error,
            row: Some(row.label.clone()),
            kind: Some(row.kind),
            message,
        });
    }

    fn warn(&mut self, row: &ModelRow, message: String) {
        self.diagnostics.push(Diagnostic {
            severity: Severity::Warning,
            row: Some(row.label.clone()),
            kind: Some(row.kind),
            message,
        });
    }

    fn model_error(&mut self, message: String) {
        self.diagnostics.push(Diagnostic {
            severity: Severity::Error,
            row: None,
            kind: None,
            message,
        });
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.diagnostics.is_empty() {
            return write!(f, "model analysis: clean");
        }
        let errors = self.errors().count();
        let warnings = self.warnings().count();
        writeln!(
            f,
            "model analysis: {errors} error(s), {warnings} warning(s)"
        )?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

/// A row reduced to its mathematical content: duplicate variable entries
/// summed, exact zeros dropped. Keyed by variable index, so two rows over
/// the same variables compare structurally.
fn normalize(row: &ModelRow) -> BTreeMap<usize, f64> {
    let mut terms: BTreeMap<usize, f64> = BTreeMap::new();
    for &(i, c) in &row.terms {
        *terms.entry(i).or_insert(0.0) += c;
    }
    terms.retain(|_, c| c.abs() > 0.0 || c.is_nan());
    terms
}

fn fmt_coeff_list(
    terms: &BTreeMap<usize, f64>,
    names: &[String],
    pred: impl Fn(f64) -> bool,
) -> String {
    let mut out = Vec::new();
    for (&i, &c) in terms {
        if pred(c) {
            let name = names.get(i).map_or("<undeclared>", |n| n.as_str());
            out.push(format!("{name}={c}"));
        }
    }
    out.join(", ")
}

/// Statically analyzes a [`ScheduleModel`] for structural well-formedness.
/// Pure and read-only; safe to call on every model before lowering. See the
/// module docs for the full check list.
pub fn analyze(model: &ScheduleModel) -> AnalysisReport {
    let mut report = AnalysisReport::default();
    let names = model.var_names();
    let objective = model.objective_coeffs();
    let rows = model.model_rows();

    // ---- whole-model: declarations ------------------------------------
    if names.is_empty() {
        report.model_error("model declares no variables".to_string());
        return report;
    }
    for g in model.groups() {
        if g.is_empty() {
            report.model_error(format!("group '{}' declares no variables", g.name()));
        }
    }
    if !objective.iter().any(|c| c.abs() > 0.0) {
        report.model_error(
            "objective touches no variable (every objective coefficient is zero)".to_string(),
        );
    }
    let mut referenced = vec![false; names.len()];

    // ---- per-row checks ------------------------------------------------
    let mut normalized: Vec<BTreeMap<usize, f64>> = Vec::with_capacity(rows.len());
    for row in rows {
        let terms = normalize(row);

        // Validity of the references themselves.
        let mut broken = false;
        for (&i, &c) in &terms {
            if i >= names.len() {
                report.error(
                    row,
                    format!(
                        "references variable index {i}, but the model declares only {} \
                         variables",
                        names.len()
                    ),
                );
                broken = true;
            }
            if !c.is_finite() {
                report.error(row, format!("non-finite coefficient {c} on variable {i}"));
                broken = true;
            } else {
                referenced[i.min(names.len() - 1)] |= i < names.len();
            }
        }
        if !row.rhs.is_finite() {
            report.error(row, format!("non-finite right-hand side {}", row.rhs));
            broken = true;
        }
        if terms.is_empty() {
            report.error(
                row,
                "has no terms (every coefficient is zero or the row is empty)".to_string(),
            );
            broken = true;
        }
        if broken {
            normalized.push(terms);
            continue;
        }

        let all_nonneg = terms.values().all(|&c| c >= 0.0);
        let all_nonpos = terms.values().all(|&c| c <= 0.0);

        // Kind-specific signatures.
        match row.kind {
            RowKind::Deadline => {
                if row.relation != Relation::Le {
                    report.error(
                        row,
                        format!("deadline rows must be ≤, found {:?}", row.relation),
                    );
                }
                if row.rhs <= 0.0 {
                    report.error(
                        row,
                        format!(
                            "deadline budget must be strictly positive, found {}",
                            row.rhs
                        ),
                    );
                }
                if !all_nonneg {
                    report.error(
                        row,
                        format!(
                            "deadline rows take nonnegative coefficients; negative: {}",
                            fmt_coeff_list(&terms, names, |c| c < 0.0)
                        ),
                    );
                }
            }
            RowKind::OnePort | RowKind::Capacity => {
                if row.relation != Relation::Le {
                    report.error(
                        row,
                        format!("capacity rows must be ≤, found {:?}", row.relation),
                    );
                }
                if !all_nonneg {
                    report.error(
                        row,
                        format!(
                            "capacity rows take nonnegative coefficients (sign-flipped \
                             builder?); negative: {}",
                            fmt_coeff_list(&terms, names, |c| c < 0.0)
                        ),
                    );
                }
                if row.rhs < 0.0 {
                    report.error(
                        row,
                        format!("capacity budget must be nonnegative, found {}", row.rhs),
                    );
                }
            }
            RowKind::Precedence => {
                if row.relation != Relation::Ge {
                    report.error(
                        row,
                        format!("precedence rows must be ≥, found {:?}", row.relation),
                    );
                }
                if row.rhs.abs() > 0.0 {
                    report.error(
                        row,
                        format!(
                            "precedence rows are homogeneous differences (rhs 0), found {}",
                            row.rhs
                        ),
                    );
                }
                let positives: Vec<f64> = terms.values().copied().filter(|&c| c > 0.0).collect();
                if positives.len() != 1 || (positives[0] - 1.0).abs() > 0.0 {
                    report.error(
                        row,
                        format!(
                            "precedence rows carry exactly one +1 event term and \
                             nonpositive duration terms; positive terms: [{}]",
                            fmt_coeff_list(&terms, names, |c| c > 0.0)
                        ),
                    );
                }
            }
            RowKind::Custom => {}
        }

        // Trivial infeasibility over nonnegative variables, any kind.
        match row.relation {
            Relation::Le if row.rhs < 0.0 && all_nonneg => report.error(
                row,
                format!(
                    "trivially infeasible: nonnegative terms can never be ≤ {}",
                    row.rhs
                ),
            ),
            Relation::Ge if row.rhs > 0.0 && all_nonpos => report.error(
                row,
                format!(
                    "trivially infeasible: nonpositive terms can never be ≥ {}",
                    row.rhs
                ),
            ),
            Relation::Eq if row.rhs.abs() > 0.0 && (all_nonneg && all_nonpos) => report.error(
                row,
                format!("trivially infeasible: zero row can never equal {}", row.rhs),
            ),
            _ => {}
        }

        // Conditioning: coefficient-magnitude spread within the row.
        let mut min_mag = f64::INFINITY;
        let mut max_mag = 0.0f64;
        for &c in terms.values() {
            let m = c.abs();
            if m < min_mag {
                min_mag = m;
            }
            if m > max_mag {
                max_mag = m;
            }
        }
        if min_mag.is_finite() && max_mag > min_mag * SPREAD_LIMIT {
            report.warn(
                row,
                format!(
                    "coefficient magnitudes span {min_mag:e}..{max_mag:e} \
                     (spread {:.1e} > {SPREAD_LIMIT:e}): the engines' relative \
                     tolerances cannot separate the small terms from noise",
                    max_mag / min_mag
                ),
            );
        }

        normalized.push(terms);
    }

    // ---- whole-model: unused variables ---------------------------------
    for (i, used) in referenced.iter().enumerate() {
        if !used {
            report.model_error(format!(
                "variable '{}' appears in no row (unbounded or dead column)",
                names[i]
            ));
        }
    }

    // ---- duplicate rows ------------------------------------------------
    // Signature: relation + rhs bits + normalized term bits. Exact
    // duplicates are builder bugs (a loop emitted the same row twice).
    type RowSignature = (u8, u64, Vec<(usize, u64)>);
    let mut seen: HashMap<RowSignature, usize> = HashMap::new();
    for (r, row) in rows.iter().enumerate() {
        let sig = (
            row.relation as u8,
            row.rhs.to_bits(),
            normalized[r]
                .iter()
                .map(|(&i, &c)| (i, c.to_bits()))
                .collect::<Vec<_>>(),
        );
        if let Some(&first) = seen.get(&sig) {
            report.error(
                row,
                format!("duplicates row '{}' exactly", rows[first].label),
            );
        } else {
            seen.insert(sig, r);
        }
    }

    // ---- dominated rows ------------------------------------------------
    // Over nonnegative variables, a ≤-row A makes ≤-row B redundant when
    // A's coefficients are ≥ B's everywhere and A's budget is ≤ B's (dual
    // direction for ≥-rows). Redundant rows are legal — the tree per-link
    // relaxation emits a dominated master-port row on chain topologies —
    // so this is advisory.
    for (b, row_b) in rows.iter().enumerate() {
        if matches!(row_b.relation, Relation::Eq) {
            continue;
        }
        for (a, row_a) in rows.iter().enumerate() {
            if a == b || row_a.relation != row_b.relation {
                continue;
            }
            let dominated = match row_b.relation {
                Relation::Le => row_a.rhs <= row_b.rhs && covers(&normalized[a], &normalized[b]),
                Relation::Ge => row_a.rhs >= row_b.rhs && covers(&normalized[b], &normalized[a]),
                Relation::Eq => false,
            };
            // Exact duplicates were already reported as errors above.
            if dominated
                && !(row_a.rhs.to_bits() == row_b.rhs.to_bits() && normalized[a] == normalized[b])
            {
                report.warn(
                    row_b,
                    format!(
                        "coefficient-wise dominated by row '{}' (redundant)",
                        row_a.label
                    ),
                );
                break;
            }
        }
    }

    report
}

/// `true` when `hi[v] ≥ lo[v]` for every variable (missing entries are 0).
fn covers(hi: &BTreeMap<usize, f64>, lo: &BTreeMap<usize, f64>) -> bool {
    for (&i, &c) in lo {
        if hi.get(&i).copied().unwrap_or(0.0) < c {
            return false;
        }
    }
    for (&i, &c) in hi {
        if c < 0.0 && lo.get(&i).copied().unwrap_or(0.0) > c {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScheduleModel;

    /// A well-formed 2-worker canonical model (the shape `dls-core`
    /// builds), including the duplicate-variable term idiom.
    fn canonical() -> ScheduleModel {
        let mut m = ScheduleModel::maximize();
        let a = m.group("alpha", (1..=2).map(|i| (format!("alpha_P{i}"), 1.0)));
        let x = m.group("idle", (1..=2).map(|i| (format!("x_P{i}"), 0.0)));
        m.deadline(
            "deadline_P1",
            [
                (a.var(0), 1.0),
                (a.var(0), 2.0),
                (x.var(0), 1.0),
                (a.var(0), 0.5),
                (a.var(1), 1.0),
            ],
            1.0,
        );
        m.deadline(
            "deadline_P2",
            [
                (a.var(0), 1.0),
                (a.var(1), 3.0),
                (x.var(1), 1.0),
                (a.var(1), 1.0),
            ],
            1.0,
        );
        m.one_port("one_port", [(a.var(0), 1.5), (a.var(1), 3.0)], 1.0);
        m
    }

    #[test]
    fn canonical_model_is_error_free() {
        let report = analyze(&canonical());
        assert!(!report.has_errors(), "{report}");
    }

    #[test]
    fn precedence_and_release_rows_pass() {
        let mut m = ScheduleModel::maximize();
        let a = m.group("alpha", [("alpha".to_string(), 1.0)]);
        let s = m.group("start", [("s".to_string(), 0.0), ("r".to_string(), 0.0)]);
        m.release("rel", s.var(0), [(a.var(0), 2.0)]);
        m.precedence("prec", s.var(1), s.var(0), [(a.var(0), 1.0)]);
        m.deadline("horizon", [(s.var(1), 1.0), (a.var(0), 1.0)], 1.0);
        let report = analyze(&m);
        assert!(!report.has_errors(), "{report}");
    }

    #[test]
    fn sign_flipped_one_port_is_caught_with_kind() {
        let mut m = ScheduleModel::maximize();
        let a = m.group("alpha", (1..=2).map(|i| (format!("alpha_P{i}"), 1.0)));
        m.deadline("deadline_P1", [(a.var(0), 3.0)], 1.0);
        m.deadline("deadline_P2", [(a.var(1), 4.0)], 1.0);
        m.one_port("one_port", [(a.var(0), -1.5), (a.var(1), 3.0)], 1.0);
        let report = analyze(&m);
        assert!(report.has_errors());
        let d = report.errors().next().unwrap();
        assert_eq!(d.kind, Some(RowKind::OnePort));
        assert_eq!(d.row.as_deref(), Some("one_port"));
        assert!(d.message.contains("alpha_P1"), "{}", d.message);
    }

    #[test]
    fn duplicate_rows_are_errors_naming_both_labels() {
        let mut m = ScheduleModel::maximize();
        let a = m.group("alpha", (1..=2).map(|i| (format!("alpha_P{i}"), 1.0)));
        m.deadline("deadline_P1", [(a.var(0), 3.0), (a.var(1), 1.0)], 1.0);
        m.deadline("deadline_P1_again", [(a.var(1), 1.0), (a.var(0), 3.0)], 1.0);
        let report = analyze(&m);
        let dup: Vec<_> = report
            .errors()
            .filter(|d| d.message.contains("duplicates"))
            .collect();
        assert_eq!(dup.len(), 1, "{report}");
        assert_eq!(dup[0].row.as_deref(), Some("deadline_P1_again"));
        assert!(dup[0].message.contains("deadline_P1"));
    }

    #[test]
    fn empty_group_and_unused_variable_are_errors() {
        let mut m = ScheduleModel::maximize();
        let a = m.group("alpha", [("alpha".to_string(), 1.0)]);
        let _ghost = m.group("ghost", std::iter::empty::<(String, f64)>());
        let _dead = m.group("dead", [("unused".to_string(), 0.0)]);
        m.deadline("deadline", [(a.var(0), 2.0)], 1.0);
        let report = analyze(&m);
        assert!(report
            .errors()
            .any(|d| d.row.is_none() && d.message.contains("ghost")));
        assert!(report
            .errors()
            .any(|d| d.row.is_none() && d.message.contains("unused")));
    }

    #[test]
    fn zero_objective_is_an_error() {
        let mut m = ScheduleModel::maximize();
        let a = m.group("alpha", [("alpha".to_string(), 0.0)]);
        m.deadline("deadline", [(a.var(0), 2.0)], 1.0);
        let report = analyze(&m);
        assert!(report
            .errors()
            .any(|d| d.message.contains("objective touches no variable")));
    }

    #[test]
    fn trivially_infeasible_rows_are_errors() {
        let mut m = ScheduleModel::maximize();
        let a = m.group("alpha", [("alpha".to_string(), 1.0)]);
        m.deadline("ok", [(a.var(0), 2.0)], 1.0);
        m.constraint("neg_budget", [(a.var(0), 2.0)], Relation::Le, -1.0);
        let report = analyze(&m);
        let d = report
            .errors()
            .find(|d| d.row.as_deref() == Some("neg_budget"))
            .expect("trivially infeasible row reported");
        assert_eq!(d.kind, Some(RowKind::Custom));
        assert!(d.message.contains("trivially infeasible"));
    }

    #[test]
    fn wrong_sense_deadline_and_bad_precedence_shapes() {
        let mut m = ScheduleModel::maximize();
        let a = m.group("alpha", [("alpha".to_string(), 1.0)]);
        let s = m.group("start", [("s".to_string(), 0.0)]);
        m.deadline("zero_budget", [(a.var(0), 2.0)], 0.0);
        // A precedence row whose event coefficient cancels itself.
        m.precedence("self_loop", s.var(0), s.var(0), [(a.var(0), 1.0)]);
        let report = analyze(&m);
        assert!(report
            .errors()
            .any(|d| d.row.as_deref() == Some("zero_budget") && d.kind == Some(RowKind::Deadline)));
        assert!(report
            .errors()
            .any(|d| d.row.as_deref() == Some("self_loop") && d.kind == Some(RowKind::Precedence)));
    }

    #[test]
    fn dominated_row_is_a_warning_not_an_error() {
        let mut m = ScheduleModel::maximize();
        let a = m.group("alpha", (1..=2).map(|i| (format!("alpha_P{i}"), 1.0)));
        // cap_tight dominates cap_loose: larger coefficients, same budget.
        m.capacity("cap_tight", [(a.var(0), 3.0), (a.var(1), 2.0)], 1.0);
        m.capacity("cap_loose", [(a.var(0), 1.0), (a.var(1), 2.0)], 1.0);
        let report = analyze(&m);
        assert!(!report.has_errors(), "{report}");
        let w = report
            .warnings()
            .find(|d| d.row.as_deref() == Some("cap_loose"))
            .expect("dominated row warned");
        assert!(w.message.contains("cap_tight"));
    }

    #[test]
    fn conditioning_spread_is_a_warning() {
        let mut m = ScheduleModel::maximize();
        let a = m.group("alpha", (1..=2).map(|i| (format!("alpha_P{i}"), 1.0)));
        m.deadline("spread", [(a.var(0), 1e-6), (a.var(1), 1e6)], 1.0);
        m.deadline("d2", [(a.var(0), 1.0), (a.var(1), 1.0)], 1.0);
        let report = analyze(&m);
        assert!(!report.has_errors(), "{report}");
        assert!(report
            .warnings()
            .any(|d| d.row.as_deref() == Some("spread") && d.message.contains("tolerances")));
    }

    #[test]
    fn report_display_counts_and_lists() {
        let mut m = ScheduleModel::maximize();
        let a = m.group("alpha", [("alpha".to_string(), 1.0)]);
        m.one_port("one_port", [(a.var(0), -1.0)], 1.0);
        let report = analyze(&m);
        let text = report.to_string();
        assert!(text.contains("error"), "{text}");
        assert!(text.contains("one_port"), "{text}");
        let clean = analyze(&canonical());
        assert!(!clean.has_errors());
        assert!(clean.to_string().contains("analysis"));
    }

    #[test]
    fn empty_model_reports_once() {
        let m = ScheduleModel::maximize();
        let report = analyze(&m);
        assert!(report.has_errors());
        assert_eq!(report.diagnostics().len(), 1);
    }
}
