//! Dense two-phase primal simplex.
//!
//! The engine is generic over [`Scalar`], so the identical pivoting code
//! runs in floating point (fast path) and in exact rational arithmetic
//! (validation path). Design notes:
//!
//! * **Standard form.** Internally everything is a maximization over
//!   non-negative variables with rows normalized to non-negative right-hand
//!   sides. `<=` rows get a slack, `>=` rows a surplus plus an artificial,
//!   `==` rows an artificial.
//! * **Phase 1** maximizes minus the sum of artificials from the trivial
//!   slack/artificial basis; a nonzero optimum means infeasible. Residual
//!   basic artificials are driven out by degenerate pivots where possible;
//!   rows where that is impossible are redundant and become inert.
//! * **Phase 2** prices only non-artificial columns. Dantzig's rule is used
//!   until `bland_after` pivots, then Bland's rule guarantees termination on
//!   degenerate instances (e.g. Beale's cycling example, covered in tests).
//! * **Duals** are recovered from the reduced costs of the logical columns.

use crate::error::LpError;
use crate::problem::{Problem, Relation, Sense, VarId};
use crate::scalar::Scalar;

/// Basis-inverse representation used by the revised solver.
///
/// The sparse LU is the production default: Markowitz-ordered sparse
/// factors with Forrest–Tomlin row-eta updates, refactorizing when the
/// update file or fill-in grows past its caps. The dense Gauss-Jordan
/// inverse (the original implementation) is kept as a cross-check oracle
/// — the dense-vs-sparse property tests pin both paths to identical
/// pivots — and as a debugging fallback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BasisFactorization {
    /// Sparse LU with Markowitz pivoting and Forrest–Tomlin updates.
    SparseLu,
    /// Dense explicit inverse with a dense eta file (oracle path).
    Dense,
}

/// Tunable solver parameters.
#[derive(Debug, Clone)]
pub struct SolverOptions {
    /// Hard cap on total pivots across both phases.
    pub max_iterations: usize,
    /// Pivot count after which the entering rule switches from Dantzig to
    /// Bland (anti-cycling).
    pub bland_after: usize,
    /// Eta/update-file length after which the revised solver rebuilds the
    /// basis inverse from scratch (ignored by the dense tableau).
    pub refactor_every: usize,
    /// Candidate-list (partial) pricing budget for the revised solver:
    /// `0` prices every column each pivot (classic Dantzig); a positive
    /// value keeps a rotating list of at most this many improving columns
    /// and re-prices only the list between full scans. Optimality is
    /// still decided by a full scan, so the answer is unchanged — only
    /// the per-pivot pricing cost drops on wide instances. Ignored by the
    /// dense tableau and by Bland's rule.
    pub candidate_list: usize,
    /// Basis-inverse representation for the revised solver (ignored by
    /// the dense tableau).
    pub factorization: BasisFactorization,
    /// Canonical extraction for the revised solver (ignored by the dense
    /// tableau): flush accumulated update-file drift with one final
    /// refactorization, making the reported solution a pure function of
    /// the final basis instead of the pivot history. A plain cold solve
    /// is already deterministic, so this defaults off and the flush cost
    /// stays out of the cold hot path; [`crate::BasisCache`] switches it
    /// on because its warm starts depend on request history, and a
    /// cache-warmed repeat must agree bitwise with the solve that
    /// populated the cache.
    pub canonical: bool,
}

impl SolverOptions {
    /// Sensible defaults scaled to the instance size. Partial pricing
    /// switches on for wide instances only (`dim ≥ 192`: the cold-solve
    /// regime where full Dantzig pricing starts to dominate); the paper's
    /// 11-worker LPs keep classic full pricing and bit-identical pivots.
    /// The list width is deliberately narrow — on the scheduling LPs the
    /// pivot count is insensitive to it (measured flat from 16 up to full
    /// pricing at p = 128/256), so per-pivot re-pricing cost is all that
    /// matters and the smallest measured-safe width wins.
    pub fn for_size(num_vars: usize, num_constraints: usize) -> Self {
        let dim = num_vars + num_constraints;
        SolverOptions {
            max_iterations: 2_000 + 200 * dim,
            bland_after: 200 + 20 * dim,
            refactor_every: 48,
            candidate_list: if dim >= 192 { 16 } else { 0 },
            factorization: BasisFactorization::SparseLu,
            canonical: false,
        }
    }
}

/// Result of a successful solve.
#[derive(Debug, Clone)]
pub struct Solution<S> {
    /// Optimal objective value (in the problem's own sense).
    pub objective: S,
    /// Optimal point, one entry per declared variable.
    pub x: Vec<S>,
    /// Dual value (Lagrange multiplier) per constraint, in declaration
    /// order. Sign convention: for a `Maximize` problem, binding `<=`
    /// constraints have non-negative duals. For `Minimize` input the duals
    /// are reported for the minimization problem (negated internally).
    pub duals: Vec<S>,
    /// Total simplex pivots performed.
    pub iterations: usize,
}

impl<S: Scalar> Solution<S> {
    /// Value of variable `v` at the optimum.
    pub fn value(&self, v: VarId) -> S {
        self.x[v.index()].clone()
    }

    /// Converts every payload to `f64` (useful for the exact backend).
    pub fn to_f64(&self) -> Solution<f64> {
        Solution {
            objective: self.objective.to_f64(),
            x: self.x.iter().map(Scalar::to_f64).collect(),
            duals: self.duals.iter().map(Scalar::to_f64).collect(),
            iterations: self.iterations,
        }
    }
}

/// Solves `problem` with default options on the `f64` backend.
pub fn solve(problem: &Problem) -> Result<Solution<f64>, LpError> {
    solve_with::<f64>(
        problem,
        &SolverOptions::for_size(problem.num_vars(), problem.num_constraints()),
    )
}

/// Solves `problem` with default options on an arbitrary scalar backend.
pub fn solve_exact<S: Scalar>(problem: &Problem) -> Result<Solution<S>, LpError> {
    solve_with::<S>(
        problem,
        &SolverOptions::for_size(problem.num_vars(), problem.num_constraints()),
    )
}

/// Kind of a standardized column (shared with the revised solver).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ColKind {
    /// One of the problem's declared variables.
    Structural,
    /// Slack (`<=`) or surplus (`>=`) of the given standardized row.
    Logical(usize),
    /// Artificial variable of the given standardized row.
    Artificial(usize),
}

/// Column layout of a standardized instance: structural columns first, then
/// one logical per `<=`/`>=` row, then one artificial per `>=`/`==` row.
/// Both solver backends derive it with [`column_layout`], so a basis
/// expressed in these indices is portable between them (the foundation of
/// warm starts and the [`crate::revised::BasisCache`]).
pub(crate) struct ColumnLayout {
    /// Kind of every column, in layout order.
    pub kinds: Vec<ColKind>,
    /// Row index -> its logical column (`usize::MAX` for `==` rows).
    pub logical_col: Vec<usize>,
    /// Row index -> its artificial column (`usize::MAX` for `<=` rows).
    pub artificial_col: Vec<usize>,
    /// Total column count.
    pub cols: usize,
}

impl ColumnLayout {
    /// `true` when column `c` is an artificial.
    pub fn is_artificial(&self, c: usize) -> bool {
        matches!(self.kinds[c], ColKind::Artificial(_))
    }
}

/// Derives the canonical column layout for `n` structural variables and the
/// given standardized row relations.
pub(crate) fn column_layout(n: usize, relations: &[Relation]) -> ColumnLayout {
    let m = relations.len();
    let mut kinds: Vec<ColKind> = vec![ColKind::Structural; n];
    let mut logical_col = vec![usize::MAX; m];
    let mut artificial_col = vec![usize::MAX; m];
    let mut next = n;
    for (i, rel) in relations.iter().enumerate() {
        if matches!(rel, Relation::Le | Relation::Ge) {
            logical_col[i] = next;
            kinds.push(ColKind::Logical(i));
            next += 1;
        }
    }
    for (i, rel) in relations.iter().enumerate() {
        if matches!(rel, Relation::Ge | Relation::Eq) {
            artificial_col[i] = next;
            kinds.push(ColKind::Artificial(i));
            next += 1;
        }
    }
    ColumnLayout {
        kinds,
        logical_col,
        artificial_col,
        cols: next,
    }
}

/// Dense simplex tableau with an explicit basis.
struct Tableau<S> {
    /// Row-major coefficient matrix, `rows x cols`.
    a: Vec<S>,
    /// Right-hand sides, one per row (kept non-negative by pivoting).
    rhs: Vec<S>,
    /// Reduced-cost row, one per column.
    zrow: Vec<S>,
    /// Current (phase-specific) objective value accumulator.
    zval: S,
    /// Basic column index per row.
    basis: Vec<usize>,
    rows: usize,
    cols: usize,
    /// Relative comparison tolerance: the backend's base tolerance scaled by
    /// the largest input coefficient magnitude, so platforms with large
    /// `w`/`c` ratios are not judged against an absolute `1e-9`.
    tol: S,
}

impl<S: Scalar> Tableau<S> {
    #[inline]
    fn at(&self, r: usize, c: usize) -> &S {
        &self.a[r * self.cols + c]
    }

    #[inline]
    fn set(&mut self, r: usize, c: usize, v: S) {
        self.a[r * self.cols + c] = v;
    }

    /// `v > tol` under the instance-scaled tolerance.
    #[inline]
    fn is_pos(&self, v: &S) -> bool {
        *v > self.tol
    }

    /// Gauss-Jordan pivot on `(pr, pc)`: row `pr` is scaled so the pivot is
    /// one, then eliminated from all other rows and the reduced-cost row.
    fn pivot(&mut self, pr: usize, pc: usize) {
        let piv = self.at(pr, pc).clone();
        debug_assert!(!piv.is_zero(), "pivot on a zero element");
        let inv = S::one() / piv;

        // Scale the pivot row.
        for c in 0..self.cols {
            let v = self.at(pr, c).clone() * inv.clone();
            self.set(pr, c, v);
        }
        self.rhs[pr] = self.rhs[pr].clone() * inv;

        // Eliminate the pivot column from every other row. The skip is the
        // backend's *base* zero test, not the instance-scaled tolerance:
        // the pivot row is normalized to O(1), so a factor of, say, 1e-4 is
        // a genuine entry on a 1e6-scaled instance and must be eliminated
        // (the scaled tolerance is only for decision predicates on
        // O(scale) quantities).
        for r in 0..self.rows {
            if r == pr {
                continue;
            }
            let factor = self.at(r, pc).clone();
            if factor.is_zero() {
                continue;
            }
            for c in 0..self.cols {
                let v = self.at(r, c).clone() - factor.clone() * self.at(pr, c).clone();
                self.set(r, c, v);
            }
            self.rhs[r] = self.rhs[r].clone() - factor * self.rhs[pr].clone();
            // Clamp tiny negative noise on the f64 backend so the invariant
            // rhs >= 0 survives long pivot sequences.
            if self.rhs[r] < S::zero() && self.rhs[r].abs() <= self.tol.clone() + self.tol.clone() {
                self.rhs[r] = S::zero();
            }
        }

        // Eliminate from the reduced-cost row (same base-zero skip).
        let zfactor = self.zrow[pc].clone();
        if !zfactor.is_zero() {
            for c in 0..self.cols {
                self.zrow[c] = self.zrow[c].clone() - zfactor.clone() * self.at(pr, c).clone();
            }
            self.zval = self.zval.clone() + zfactor * self.rhs[pr].clone();
        }

        self.basis[pr] = pc;
    }

    /// Rebuilds `zrow`/`zval` from scratch for cost vector `costs`.
    fn reprice(&mut self, costs: &[S]) {
        for c in 0..self.cols {
            let mut z = S::zero();
            for r in 0..self.rows {
                let cb = costs[self.basis[r]].clone();
                if !cb.is_zero() {
                    z = z + cb * self.at(r, c).clone();
                }
            }
            self.zrow[c] = costs[c].clone() - z;
        }
        let mut zv = S::zero();
        for r in 0..self.rows {
            let cb = costs[self.basis[r]].clone();
            if !cb.is_zero() {
                zv = zv + cb * self.rhs[r].clone();
            }
        }
        self.zval = zv;
    }
}

/// One standardized row: sparse structural coefficients, relation, rhs,
/// plus bookkeeping for dual-sign recovery.
pub(crate) struct StdRow<S> {
    /// Distinct structural indices with nonzero coefficients (first-touch
    /// order, not sorted) — the scheduling rows are sparse, and both
    /// engines assemble their working matrices from this list instead of
    /// a dense row vector.
    pub nz: Vec<usize>,
    /// Coefficient values parallel to `nz` (duplicate input indices
    /// already summed, rhs-flip already applied).
    pub nzv: Vec<S>,
    pub relation: Relation,
    pub rhs: S,
    /// `true` when the row was negated to make its rhs non-negative.
    pub flipped: bool,
}

/// Fully assembled standard-form instance (shared with the revised solver).
pub(crate) struct StandardForm<S> {
    pub rows: Vec<StdRow<S>>,
    /// Phase-2 cost per structural variable (maximization).
    pub costs: Vec<S>,
    /// `true` if the input sense was `Minimize` (objective and duals are
    /// negated on the way out).
    pub negated: bool,
}

pub(crate) fn standardize<S: Scalar>(problem: &Problem) -> StandardForm<S> {
    let negate = problem.sense() == Sense::Minimize;
    let costs: Vec<S> = problem
        .objective()
        .iter()
        .map(|&c| {
            let s = S::from_f64(c);
            if negate {
                -s
            } else {
                s
            }
        })
        .collect();

    let n = problem.num_vars();
    // Generation-tagged dedup scratch shared across rows: `tag[i] == gen`
    // marks index `i` as already touched by the current row (its running
    // sum lives in `acc[i]`), without a per-row sort, clear, or dense row
    // allocation. `nz` comes out in first-touch order, which is
    // deterministic (constraint coefficient order is) and fine downstream —
    // column assembly walks rows outermost, so supports stay row-major.
    let mut tag = vec![0usize; n];
    let mut acc = vec![S::zero(); n];
    let mut rows = Vec::with_capacity(problem.num_constraints());
    for (gen, con) in problem.constraints().iter().enumerate() {
        let gen = gen + 1;
        // Duplicate indices sum, as in `Problem::dense_rows`.
        let mut touched: Vec<usize> = Vec::with_capacity(con.coeffs.len());
        for &(i, c) in &con.coeffs {
            if tag[i] != gen {
                tag[i] = gen;
                acc[i] = S::zero();
                touched.push(i);
            }
            acc[i] = acc[i].clone() + S::from_f64(c);
        }
        let mut rhs = S::from_f64(con.rhs);
        let mut relation = con.relation;
        let mut flipped = false;
        if rhs.is_negative() {
            for &i in &touched {
                acc[i] = -acc[i].clone();
            }
            rhs = -rhs;
            relation = match relation {
                Relation::Le => Relation::Ge,
                Relation::Ge => Relation::Le,
                Relation::Eq => Relation::Eq,
            };
            flipped = true;
        }
        let mut nz = Vec::with_capacity(touched.len());
        let mut nzv = Vec::with_capacity(touched.len());
        for &i in &touched {
            if !acc[i].is_zero() {
                nz.push(i);
                nzv.push(acc[i].clone());
            }
        }
        rows.push(StdRow {
            nz,
            nzv,
            relation,
            rhs,
            flipped,
        });
    }

    StandardForm {
        rows,
        costs,
        negated: negate,
    }
}

/// Solves `problem` with explicit options on scalar backend `S`.
pub fn solve_with<S: Scalar>(
    problem: &Problem,
    opts: &SolverOptions,
) -> Result<Solution<S>, LpError> {
    dls_obs::counter!("tableau.solve").incr();
    let _span = dls_obs::trace_span!(
        "tableau.solve.seconds",
        "vars" => problem.num_vars(),
        "rows" => problem.num_constraints(),
    );
    problem.validate()?;
    let n = problem.num_vars();
    let std_form = standardize::<S>(problem);
    let m = std_form.rows.len();
    let tol = S::tolerance() * S::from_f64(problem.coefficient_scale());

    // ---- Column layout: structural | logical | artificial | (rhs separate).
    let relations: Vec<Relation> = std_form.rows.iter().map(|r| r.relation).collect();
    let layout = column_layout(n, &relations);
    let ColumnLayout {
        ref kinds,
        ref logical_col,
        ref artificial_col,
        cols,
    } = layout;

    // ---- Assemble the tableau.
    let mut t = Tableau {
        a: vec![S::zero(); m * cols],
        rhs: Vec::with_capacity(m),
        zrow: vec![S::zero(); cols],
        zval: S::zero(),
        basis: vec![0; m],
        rows: m,
        cols,
        tol,
    };
    for (i, row) in std_form.rows.iter().enumerate() {
        for (&j, v) in row.nz.iter().zip(&row.nzv) {
            t.set(i, j, v.clone());
        }
        match row.relation {
            Relation::Le => {
                t.set(i, logical_col[i], S::one());
                t.basis[i] = logical_col[i];
            }
            Relation::Ge => {
                t.set(i, logical_col[i], -S::one());
                t.set(i, artificial_col[i], S::one());
                t.basis[i] = artificial_col[i];
            }
            Relation::Eq => {
                t.set(i, artificial_col[i], S::one());
                t.basis[i] = artificial_col[i];
            }
        }
        t.rhs.push(row.rhs.clone());
    }

    let is_artificial = |c: usize| matches!(kinds[c], ColKind::Artificial(_));
    let mut iterations = 0usize;

    // ---- Phase 1 (only if artificials exist): maximize -sum(artificials).
    let need_phase1 = (0..cols).any(is_artificial);
    if need_phase1 {
        let mut p1_costs = vec![S::zero(); cols];
        for (c, p1c) in p1_costs.iter_mut().enumerate() {
            if is_artificial(c) {
                *p1c = -S::one();
            }
        }
        t.reprice(&p1_costs);
        run_phase(&mut t, &mut iterations, opts, |_c| true)?;

        // Optimal phase-1 value must be ~0 for feasibility; the threshold is
        // row-scaled because the value sums residuals over all m rows.
        let infeas_tol = t.tol.clone() * S::from_f64(m.max(1) as f64);
        if t.zval < -infeas_tol {
            return Err(LpError::Infeasible);
        }

        // Drive residual basic artificials out with degenerate pivots
        // (base-tolerance test: these are normalized-frame entries).
        for r in 0..m {
            if is_artificial(t.basis[r]) {
                if let Some(pc) = (0..cols).find(|&c| !is_artificial(c) && !t.at(r, c).is_zero()) {
                    t.pivot(r, pc);
                    iterations += 1;
                }
                // Otherwise the row is redundant: all structural and logical
                // entries are zero, so no later pivot can touch it.
            }
        }
    }

    // ---- Phase 2: the real objective over structural columns.
    let mut p2_costs = vec![S::zero(); cols];
    p2_costs[..n].clone_from_slice(&std_form.costs);
    t.reprice(&p2_costs);
    run_phase(&mut t, &mut iterations, opts, |c| {
        !matches!(kinds[c], ColKind::Artificial(_))
    })?;

    // ---- Extract the primal point.
    let mut x = vec![S::zero(); n];
    for r in 0..m {
        let b = t.basis[r];
        if b < n {
            x[b] = t.rhs[r].clone();
        }
    }

    // Recompute the objective from the point (avoids accumulated zval noise)
    // and restore the input sense.
    let mut obj = S::zero();
    for (c, xv) in std_form.costs.iter().zip(&x) {
        obj = obj + c.clone() * xv.clone();
    }
    if std_form.negated {
        obj = -obj;
    }

    // ---- Duals from reduced costs of the logical/artificial columns.
    let mut duals = Vec::with_capacity(m);
    for (i, row) in std_form.rows.iter().enumerate() {
        let mut y = match row.relation {
            Relation::Le => -t.zrow[logical_col[i]].clone(),
            Relation::Ge => t.zrow[logical_col[i]].clone(),
            Relation::Eq => -t.zrow[artificial_col[i]].clone(),
        };
        if row.flipped {
            y = -y;
        }
        if std_form.negated {
            y = -y;
        }
        duals.push(y);
    }

    dls_obs::histogram!("tableau.iterations").record(iterations as f64);
    Ok(Solution {
        objective: obj,
        x,
        duals,
        iterations,
    })
}

/// Runs the pivot loop until no entering column improves the (already
/// priced) objective. `enterable` filters candidate entering columns.
fn run_phase<S: Scalar>(
    t: &mut Tableau<S>,
    iterations: &mut usize,
    opts: &SolverOptions,
    enterable: impl Fn(usize) -> bool,
) -> Result<(), LpError> {
    let start = *iterations;
    loop {
        if *iterations >= opts.max_iterations {
            return Err(LpError::IterationLimit {
                iterations: *iterations,
            });
        }
        let use_bland = *iterations - start >= opts.bland_after;

        // Entering column: positive reduced cost (maximization).
        let mut entering: Option<usize> = None;
        if use_bland {
            entering = (0..t.cols).find(|&c| enterable(c) && t.is_pos(&t.zrow[c]));
        } else {
            let mut best: Option<(usize, S)> = None;
            for c in 0..t.cols {
                if enterable(c) && t.is_pos(&t.zrow[c]) {
                    let improves = match &best {
                        Some((_, v)) => t.zrow[c] > *v,
                        None => true,
                    };
                    if improves {
                        best = Some((c, t.zrow[c].clone()));
                    }
                }
            }
            entering = best.map(|(c, _)| c).or(entering);
        }
        let Some(pc) = entering else {
            return Ok(()); // optimal for this phase
        };

        // Ratio test. Degenerate-artificial guard: if a basic artificial sits
        // at zero and the entering column touches its row, pivot it out
        // immediately (keeps artificials from re-entering the positive
        // orthant during phase 2).
        // Ratio test. Tableau entries are O(1) after pivot normalization —
        // not O(coefficient_scale) — so eligibility uses the backend's
        // *base* tolerance; the scaled tolerance would skip genuine small
        // pivots on mixed-scale instances and misreport Unbounded.
        let mut leaving: Option<(usize, S)> = None;
        for r in 0..t.rows {
            let a = t.at(r, pc).clone();
            if !a.is_positive() {
                continue;
            }
            let ratio = t.rhs[r].clone() / a;
            let better = match &leaving {
                None => true,
                Some((lr, lv)) => {
                    // Strictly better ratio, or an equal ratio broken by the
                    // smaller basis index (Bland) — `<=` is safe because the
                    // scalar ordering is total on solver-produced values.
                    ratio < *lv || (ratio <= *lv && t.basis[r] < t.basis[*lr])
                }
            };
            if better {
                leaving = Some((r, ratio));
            }
        }
        let Some((pr, _)) = leaving else {
            return Err(LpError::Unbounded);
        };

        let pivot_span = dls_obs::trace_span!("tableau.pivot.seconds");
        t.pivot(pr, pc);
        pivot_span.finish();
        *iterations += 1;
    }
}

#[cfg(test)]
// Unit tests assert exact outcomes of exact arithmetic.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::problem::{Problem, Relation};
    use crate::rational::Rational;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "expected {b}, got {a}");
    }

    #[test]
    fn textbook_2d_max() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  -> z = 36 at (2, 6)
        let mut p = Problem::maximize();
        let x = p.add_var("x", 3.0);
        let y = p.add_var("y", 5.0);
        p.add_constraint("c1", [(x, 1.0)], Relation::Le, 4.0);
        p.add_constraint("c2", [(y, 2.0)], Relation::Le, 12.0);
        p.add_constraint("c3", [(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
        let s = solve(&p).unwrap();
        assert_close(s.objective, 36.0);
        assert_close(s.value(x), 2.0);
        assert_close(s.value(y), 6.0);
    }

    #[test]
    fn textbook_2d_max_exact() {
        let mut p = Problem::maximize();
        let x = p.add_var("x", 3.0);
        let y = p.add_var("y", 5.0);
        p.add_constraint("c1", [(x, 1.0)], Relation::Le, 4.0);
        p.add_constraint("c2", [(y, 2.0)], Relation::Le, 12.0);
        p.add_constraint("c3", [(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
        let s = solve_exact::<Rational>(&p).unwrap();
        assert_eq!(s.objective, Rational::from_int(36));
        assert_eq!(s.value(x), Rational::from_int(2));
        assert_eq!(s.value(y), Rational::from_int(6));
    }

    #[test]
    fn minimization_with_ge_constraints() {
        // min 2x + 3y s.t. x + y >= 10, x >= 2  -> x=10?? check: put all on x:
        // cost 2 < 3, so x = 10, y = 0, z = 20.
        let mut p = Problem::minimize();
        let x = p.add_var("x", 2.0);
        let y = p.add_var("y", 3.0);
        p.add_constraint("demand", [(x, 1.0), (y, 1.0)], Relation::Ge, 10.0);
        p.add_constraint("xmin", [(x, 1.0)], Relation::Ge, 2.0);
        let s = solve(&p).unwrap();
        assert_close(s.objective, 20.0);
        assert_close(s.value(x), 10.0);
        assert_close(s.value(y), 0.0);
    }

    #[test]
    fn equality_constraints() {
        // max x + y s.t. x + y == 5, x - y == 1 -> (3, 2), z = 5.
        let mut p = Problem::maximize();
        let x = p.add_var("x", 1.0);
        let y = p.add_var("y", 1.0);
        p.add_constraint("sum", [(x, 1.0), (y, 1.0)], Relation::Eq, 5.0);
        p.add_constraint("diff", [(x, 1.0), (y, -1.0)], Relation::Eq, 1.0);
        let s = solve(&p).unwrap();
        assert_close(s.objective, 5.0);
        assert_close(s.value(x), 3.0);
        assert_close(s.value(y), 2.0);
    }

    #[test]
    fn negative_rhs_rows_are_flipped() {
        // x - y <= -2 with x,y >= 0 means y >= x + 2.
        // max x + y s.t. x - y <= -2, x + y <= 10 -> best x: x=4,y=6, z=10.
        let mut p = Problem::maximize();
        let x = p.add_var("x", 1.0);
        let y = p.add_var("y", 1.0);
        p.add_constraint("gap", [(x, 1.0), (y, -1.0)], Relation::Le, -2.0);
        p.add_constraint("cap", [(x, 1.0), (y, 1.0)], Relation::Le, 10.0);
        let s = solve(&p).unwrap();
        assert_close(s.objective, 10.0);
        assert!(s.value(y) >= s.value(x) + 2.0 - 1e-7);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::maximize();
        let x = p.add_var("x", 1.0);
        p.add_constraint("lo", [(x, 1.0)], Relation::Ge, 5.0);
        p.add_constraint("hi", [(x, 1.0)], Relation::Le, 3.0);
        assert_eq!(solve(&p).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Problem::maximize();
        // x has positive cost and no constraint touches it: unbounded ray.
        let _x = p.add_var("x", 1.0);
        let y = p.add_var("y", 0.0);
        p.add_constraint("only-y", [(y, 1.0)], Relation::Le, 3.0);
        assert_eq!(solve(&p).unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn redundant_equalities_are_tolerated() {
        // Same equality twice: the second row's artificial cannot always be
        // pivoted out and must be left inert.
        let mut p = Problem::maximize();
        let x = p.add_var("x", 1.0);
        let y = p.add_var("y", 1.0);
        p.add_constraint("e1", [(x, 1.0), (y, 1.0)], Relation::Eq, 4.0);
        p.add_constraint("e2", [(x, 2.0), (y, 2.0)], Relation::Eq, 8.0);
        let s = solve(&p).unwrap();
        assert_close(s.objective, 4.0);
    }

    #[test]
    fn duals_of_binding_constraints() {
        // max 3x + 5y, x <= 4 (slack at opt -> dual 0), 2y <= 12 (dual 3/2),
        // 3x + 2y <= 18 (dual 1). Classic Dantzig example.
        let mut p = Problem::maximize();
        let x = p.add_var("x", 3.0);
        let y = p.add_var("y", 5.0);
        p.add_constraint("c1", [(x, 1.0)], Relation::Le, 4.0);
        p.add_constraint("c2", [(y, 2.0)], Relation::Le, 12.0);
        p.add_constraint("c3", [(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
        let s = solve(&p).unwrap();
        assert_close(s.duals[0], 0.0);
        assert_close(s.duals[1], 1.5);
        assert_close(s.duals[2], 1.0);
        // Strong duality: y^T b == objective.
        let dual_obj = s.duals[0] * 4.0 + s.duals[1] * 12.0 + s.duals[2] * 18.0;
        assert_close(dual_obj, s.objective);
    }

    #[test]
    fn beale_cycling_example_terminates() {
        // Beale (1955): Dantzig's rule cycles forever on this LP without an
        // anti-cycling rule. min -0.75a + 150b - 0.02c + 6d subject to
        //   0.25a - 60b - 0.04c + 9d <= 0
        //   0.50a - 90b - 0.02c + 3d <= 0
        //   c <= 1
        // Optimum: z = -0.05 at a = 0.04/0.8... (c=1, a=0.04, b=0, d=0) ->
        // check: -0.75*0.04 - 0.02*1 = -0.05.
        let mut p = Problem::minimize();
        let a = p.add_var("a", -0.75);
        let b = p.add_var("b", 150.0);
        let c = p.add_var("c", -0.02);
        let d = p.add_var("d", 6.0);
        p.add_constraint(
            "r1",
            [(a, 0.25), (b, -60.0), (c, -0.04), (d, 9.0)],
            Relation::Le,
            0.0,
        );
        p.add_constraint(
            "r2",
            [(a, 0.5), (b, -90.0), (c, -0.02), (d, 3.0)],
            Relation::Le,
            0.0,
        );
        p.add_constraint("r3", [(c, 1.0)], Relation::Le, 1.0);
        let s = solve(&p).unwrap();
        assert_close(s.objective, -0.05);
    }

    #[test]
    fn exact_and_float_agree_on_mixed_relations() {
        let mut p = Problem::maximize();
        let x = p.add_var("x", 2.0);
        let y = p.add_var("y", 3.0);
        let z = p.add_var("z", 1.0);
        p.add_constraint("a", [(x, 1.0), (y, 2.0), (z, 1.0)], Relation::Le, 10.0);
        p.add_constraint("b", [(x, 1.0), (y, 1.0)], Relation::Ge, 2.0);
        p.add_constraint("c", [(z, 1.0), (y, -1.0)], Relation::Eq, 0.0);
        let sf = solve(&p).unwrap();
        let sr = solve_exact::<Rational>(&p).unwrap().to_f64();
        assert_close(sf.objective, sr.objective);
        for (a, b) in sf.x.iter().zip(&sr.x) {
            assert_close(*a, *b);
        }
    }

    #[test]
    fn iteration_limit_is_enforced() {
        let mut p = Problem::maximize();
        let x = p.add_var("x", 1.0);
        let y = p.add_var("y", 1.0);
        p.add_constraint("c", [(x, 1.0), (y, 1.0)], Relation::Le, 1.0);
        let opts = SolverOptions {
            max_iterations: 0,
            ..SolverOptions::for_size(p.num_vars(), p.num_constraints())
        };
        assert!(matches!(
            solve_with::<f64>(&p, &opts),
            Err(LpError::IterationLimit { .. })
        ));
    }

    #[test]
    fn zero_rhs_degenerate_start() {
        // All rhs zero: heavily degenerate but feasible with optimum 0.
        let mut p = Problem::maximize();
        let x = p.add_var("x", 1.0);
        let y = p.add_var("y", 1.0);
        p.add_constraint("c1", [(x, 1.0), (y, -1.0)], Relation::Le, 0.0);
        p.add_constraint("c2", [(y, 1.0), (x, -1.0)], Relation::Le, 0.0);
        p.add_constraint("c3", [(x, 1.0), (y, 1.0)], Relation::Le, 0.0);
        let s = solve(&p).unwrap();
        assert_close(s.objective, 0.0);
    }

    #[test]
    fn large_coefficients_use_relative_tolerance() {
        // The same textbook LP with every row scaled by 1e6: an absolute
        // 1e-9 pivot tolerance is meaningless against 1e6-range entries
        // (reduced costs of ~1e-3 relative noise look "positive"), while the
        // relative tolerance keeps the solve exact. Regression for the
        // hard-coded-epsilon bug.
        let mut p = Problem::maximize();
        let x = p.add_var("x", 3.0e6);
        let y = p.add_var("y", 5.0e6);
        p.add_constraint("c1", [(x, 1.0e6)], Relation::Le, 4.0e6);
        p.add_constraint("c2", [(y, 2.0e6)], Relation::Le, 12.0e6);
        p.add_constraint("c3", [(x, 3.0e6), (y, 2.0e6)], Relation::Le, 18.0e6);
        assert_eq!(p.coefficient_scale(), 18.0e6);
        let s = solve(&p).unwrap();
        assert!(
            (s.objective - 36.0e6).abs() < 36.0 * 1e-3,
            "{}",
            s.objective
        );
        assert_close(s.value(x), 2.0);
        assert_close(s.value(y), 6.0);
    }

    #[test]
    fn large_coefficients_no_spurious_infeasibility() {
        // Equality rows in the 1e6 range: phase 1 must accept the residual
        // rounding noise (relative to the coefficient scale) instead of
        // declaring the instance infeasible.
        let mut p = Problem::maximize();
        let x = p.add_var("x", 1.0);
        let y = p.add_var("y", 1.0);
        p.add_constraint("sum", [(x, 1.0e6), (y, 1.0e6)], Relation::Eq, 5.0e6);
        p.add_constraint("diff", [(x, 3.0e6), (y, -1.0e6)], Relation::Eq, 3.0e6);
        let s = solve(&p).unwrap();
        assert_close(s.objective, 5.0);
        assert_close(s.value(x), 2.0);
        assert_close(s.value(y), 3.0);
    }

    #[test]
    fn large_w_over_c_ratio_platform_shape() {
        // The divisible-load shape that motivated the fix: deadline rows
        // mixing O(1) communication with O(1e6) computation coefficients.
        // maximize a1 + a2 with w = 2e6, c = 1, d = 0.5 (so the optimum is
        // tiny but must not be declared one pivot early).
        let mut p = Problem::maximize();
        let a1 = p.add_var("a1", 1.0);
        let a2 = p.add_var("a2", 1.0);
        p.add_constraint(
            "d1",
            [(a1, 1.0 + 2.0e6 + 0.5), (a2, 0.5)],
            Relation::Le,
            1.0,
        );
        p.add_constraint(
            "d2",
            [(a1, 1.0), (a2, 1.0 + 2.0e6 + 0.5)],
            Relation::Le,
            1.0,
        );
        p.add_constraint("port", [(a1, 1.5), (a2, 1.5)], Relation::Le, 1.0);
        let s = solve(&p).unwrap();
        // Both workers saturate their compute deadline: a_i ~= 1/(w + c + d).
        let sr = solve_exact::<Rational>(&p).unwrap().to_f64();
        assert!(
            (s.objective - sr.objective).abs() <= 1e-9 * sr.objective.abs().max(1.0),
            "float {} vs exact {}",
            s.objective,
            sr.objective
        );
        assert!(s.objective > 0.0);
    }

    #[test]
    fn mixed_scale_coefficients_are_still_eliminated() {
        // One 1e6-range row next to O(1e-3) coefficients: the scaled
        // tolerance must gate *decisions* only — a small-but-real pivot
        // factor (far below tol = 1e-9 * scale) still has to be eliminated,
        // or the tableau drifts at ~1e-3 relative error. Certified against
        // the exact backend.
        let mut p = Problem::maximize();
        let x = p.add_var("x", 1.0);
        let y = p.add_var("y", 1.0);
        p.add_constraint("big", [(x, 1.0e6), (y, 1.0e6)], Relation::Le, 2.0e6);
        p.add_constraint("tiny", [(x, 5.0e-4), (y, 1.0)], Relation::Le, 1.0);
        p.add_constraint("cap", [(x, 1.0)], Relation::Le, 1.2);
        let sf = solve(&p).unwrap();
        let sr = solve_exact::<Rational>(&p).unwrap().to_f64();
        assert!(
            (sf.objective - sr.objective).abs() <= 1e-9 * sr.objective.abs().max(1.0),
            "float {} vs exact {}",
            sf.objective,
            sr.objective
        );
        for (a, b) in sf.x.iter().zip(&sr.x) {
            assert!((a - b).abs() <= 1e-7, "point drifted: {a} vs {b}");
        }
    }

    #[test]
    fn mixed_scale_ratio_test_is_not_unbounded() {
        // coefficient_scale = 1e6 makes the scaled tolerance 1e-3 — larger
        // than x's only constraint coefficient (1e-4). The ratio test must
        // still accept that entry (tableau entries are normalized-frame):
        // the LP is bounded with optimum 1e4 + 1 = 10001.
        let mut p = Problem::maximize();
        let x = p.add_var("x", 1.0);
        let y = p.add_var("y", 1.0);
        p.add_constraint("small", [(x, 1.0e-4)], Relation::Le, 1.0);
        p.add_constraint("big", [(y, 1.0e6)], Relation::Le, 1.0e6);
        let s = solve(&p).unwrap();
        assert!(
            (s.objective - 10_001.0).abs() < 1e-6,
            "expected 10001, got {}",
            s.objective
        );
    }

    #[test]
    fn solution_accessors() {
        let mut p = Problem::maximize();
        let x = p.add_var("x", 1.0);
        p.add_constraint("c", [(x, 1.0)], Relation::Le, 7.0);
        let s = solve(&p).unwrap();
        assert_close(s.value(x), 7.0);
        assert!(s.iterations >= 1);
    }
}
