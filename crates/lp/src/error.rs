//! Error types for LP construction and solving.

use core::fmt;

/// Errors raised while building or solving a linear program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// The constraint system admits no feasible point.
    Infeasible,
    /// The objective is unbounded above (for maximization) on the feasible
    /// region.
    Unbounded,
    /// The pivot loop exceeded its iteration budget; the instance is likely
    /// degenerate beyond what the anti-cycling safeguards handle, or the
    /// budget is too small.
    IterationLimit {
        /// Number of pivots performed before giving up.
        iterations: usize,
    },
    /// A constraint referenced a variable index that was never declared.
    UnknownVariable {
        /// The offending index.
        index: usize,
        /// Number of declared variables.
        declared: usize,
    },
    /// A coefficient or right-hand side was NaN/infinite.
    NonFiniteCoefficient {
        /// Human-readable location of the bad value.
        location: String,
    },
    /// The problem has no variables.
    Empty,
    /// The revised solver's basis matrix could not be factorized (singular
    /// at the working tolerance). A cold start never produces this — the
    /// initial slack/artificial basis is an identity — so it signals a
    /// numerically collapsed instance.
    SingularBasis,
    /// LP-format text could not be parsed (see
    /// [`Problem::from_lp_format`](crate::Problem::from_lp_format)).
    ParseError(String),
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::IterationLimit { iterations } => {
                write!(f, "simplex exceeded iteration budget ({iterations} pivots)")
            }
            LpError::UnknownVariable { index, declared } => write!(
                f,
                "constraint references variable #{index} but only {declared} are declared"
            ),
            LpError::NonFiniteCoefficient { location } => {
                write!(f, "non-finite coefficient at {location}")
            }
            LpError::Empty => write!(f, "linear program has no variables"),
            LpError::SingularBasis => {
                write!(f, "basis matrix is singular at the working tolerance")
            }
            LpError::ParseError(msg) => write!(f, "LP-format parse error: {msg}"),
        }
    }
}

impl std::error::Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(LpError::Infeasible.to_string().contains("infeasible"));
        assert!(LpError::Unbounded.to_string().contains("unbounded"));
        assert!(LpError::IterationLimit { iterations: 7 }
            .to_string()
            .contains('7'));
        let e = LpError::UnknownVariable {
            index: 9,
            declared: 3,
        };
        assert!(e.to_string().contains("#9"));
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&LpError::Empty);
    }
}
