//! Exact rational arithmetic over `i128`.
//!
//! [`Rational`] backs the exact simplex path used to cross-validate the
//! floating-point solver. Values are kept in lowest terms with a positive
//! denominator. All arithmetic is overflow-checked: an overflow panics with
//! a descriptive message rather than silently wrapping, because a wrapped
//! value would corrupt an "exact" answer. The intended domain (divisible-load
//! LPs with single-digit worker counts and small decimal inputs) stays far
//! below `i128` limits.

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, Div, Mul, Neg, Sub};

use crate::scalar::Scalar;

/// An exact rational number `num/den` in lowest terms, `den > 0`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

/// Greatest common divisor (non-negative), `gcd(0, 0) = 0`.
fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rational {
    /// Zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// One.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Builds `num/den`, normalizing sign and reducing to lowest terms.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "Rational with zero denominator");
        if num == 0 {
            return Self::ZERO;
        }
        let sign = if (num < 0) != (den < 0) { -1 } else { 1 };
        let g = gcd(num, den);
        Rational {
            num: sign * (num.abs() / g),
            den: den.abs() / g,
        }
    }

    /// Builds the integer `n`.
    pub fn from_int(n: i64) -> Self {
        Rational {
            num: n as i128,
            den: 1,
        }
    }

    /// Numerator (sign-carrying).
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// `true` iff the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics on zero.
    pub fn recip(&self) -> Self {
        assert!(self.num != 0, "Rational::recip of zero");
        Rational::new(self.den, self.num)
    }

    fn checked(num: Option<i128>, den: Option<i128>, op: &str) -> Self {
        match (num, den) {
            (Some(n), Some(d)) => Rational::new(n, d),
            _ => panic!("Rational overflow during {op}"),
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl Add for Rational {
    type Output = Rational;

    fn add(self, rhs: Rational) -> Rational {
        // Cross-reduce first to keep intermediates small:
        // a/b + c/d = (a*(d/g) + c*(b/g)) / (b/g * d)   with g = gcd(b, d).
        let g = gcd(self.den, rhs.den);
        let (db, dd) = (self.den / g, rhs.den / g);
        let num = self
            .num
            .checked_mul(dd)
            .and_then(|l| rhs.num.checked_mul(db).and_then(|r| l.checked_add(r)));
        let den = db.checked_mul(rhs.den);
        Rational::checked(num, den, "add")
    }
}

impl Sub for Rational {
    type Output = Rational;

    fn sub(self, rhs: Rational) -> Rational {
        self + (-rhs)
    }
}

impl Mul for Rational {
    type Output = Rational;

    fn mul(self, rhs: Rational) -> Rational {
        // Cross-cancel before multiplying.
        let g1 = gcd(self.num, rhs.den).max(1);
        let g2 = gcd(rhs.num, self.den).max(1);
        let num = (self.num / g1).checked_mul(rhs.num / g2);
        let den = (self.den / g2).checked_mul(rhs.den / g1);
        Rational::checked(num, den, "mul")
    }
}

impl Div for Rational {
    type Output = Rational;

    fn div(self, rhs: Rational) -> Rational {
        assert!(rhs.num != 0, "Rational division by zero");
        self * rhs.recip()
    }
}

impl Neg for Rational {
    type Output = Rational;

    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // Compare a/b vs c/d via a*d vs c*b with cross-reduction.
        let g = gcd(self.den, other.den).max(1);
        let (db, dd) = (self.den / g, other.den / g);
        let lhs = self.num.checked_mul(dd);
        let rhs = other.num.checked_mul(db);
        match (lhs, rhs) {
            (Some(l), Some(r)) => l.cmp(&r),
            // Fall back to f64 comparison only on overflow; magnitudes this
            // large are far outside the solver's intended domain anyway.
            _ => self.to_f64().total_cmp(&other.to_f64()),
        }
    }
}

impl Scalar for Rational {
    fn zero() -> Self {
        Self::ZERO
    }

    fn one() -> Self {
        Self::ONE
    }

    fn from_f64(v: f64) -> Self {
        assert!(v.is_finite(), "cannot convert non-finite f64 to Rational");
        // Round to 9 decimal digits: exact for the decimal-valued platform
        // parameters used throughout this workspace, and safely within i128.
        const SCALE: i128 = 1_000_000_000;
        let scaled = (v * SCALE as f64).round();
        assert!(
            scaled.abs() < 9e17,
            "f64 value {v} too large for Rational conversion"
        );
        Rational::new(scaled as i128, SCALE)
    }

    fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    fn abs(&self) -> Self {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }

    fn tolerance() -> Self {
        Self::ZERO
    }
}

impl From<i64> for Rational {
    fn from(n: i64) -> Self {
        Rational::from_int(n)
    }
}

#[cfg(test)]
// Unit tests assert exact outcomes of exact arithmetic.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn construction_reduces_to_lowest_terms() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
        assert_eq!(r(0, 7), Rational::ZERO);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = r(1, 0);
    }

    #[test]
    fn arithmetic_matches_hand_computation() {
        assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(1, 2) / r(1, 4), r(2, 1));
        assert_eq!(-r(1, 2), r(-1, 2));
    }

    #[test]
    fn ordering_is_exact() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(7, 7) == r(1, 1));
        assert!(r(10, 3) > r(3, 1));
    }

    #[test]
    fn recip_and_integrality() {
        assert_eq!(r(3, 4).recip(), r(4, 3));
        assert!(r(8, 4).is_integer());
        assert!(!r(1, 3).is_integer());
    }

    #[test]
    #[should_panic(expected = "recip of zero")]
    fn recip_of_zero_panics() {
        let _ = Rational::ZERO.recip();
    }

    #[test]
    fn from_f64_exact_on_short_decimals() {
        assert_eq!(<Rational as Scalar>::from_f64(0.5), r(1, 2));
        assert_eq!(<Rational as Scalar>::from_f64(0.125), r(1, 8));
        assert_eq!(<Rational as Scalar>::from_f64(3.0), r(3, 1));
        assert_eq!(<Rational as Scalar>::from_f64(-0.2), r(-1, 5));
    }

    #[test]
    fn to_f64_roundtrip() {
        assert_eq!(r(1, 4).to_f64(), 0.25);
        assert_eq!(r(-3, 2).to_f64(), -1.5);
    }

    #[test]
    fn scalar_predicates_are_exact() {
        assert!(Scalar::is_zero(&Rational::ZERO));
        assert!(!Scalar::is_zero(&r(1, 1_000_000_000_000)));
        assert!(Scalar::is_positive(&r(1, 1_000_000_000_000)));
        assert!(Scalar::is_negative(&r(-1, 1_000_000_000_000)));
    }

    #[test]
    fn gcd_edge_cases() {
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
        assert_eq!(gcd(-4, 6), 2);
        assert_eq!(gcd(12, 18), 6);
    }

    #[test]
    fn large_intermediate_cross_cancellation() {
        // Without cross-cancellation this would overflow i64-sized numerators;
        // the implementation must survive comfortably.
        let big = r(1_000_000_007, 998_244_353);
        let prod = big * big.recip();
        assert_eq!(prod, Rational::ONE);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", r(3, 1)), "3");
        assert_eq!(format!("{}", r(-1, 2)), "-1/2");
    }
}
