//! # dls-lp — dense two-phase simplex for divisible-load scheduling
//!
//! A self-contained linear-programming solver built for the LP formulations
//! of Beaumont, Marchal, Rehn & Robert, *"FIFO scheduling of divisible loads
//! with return messages under the one-port model"* (RR-5738, 2005). The
//! paper solves its scheduling LPs with `lp_solve`; this crate plays that
//! role for the reproduction.
//!
//! The instances of interest are small and dense (`2p` variables, `3p + 1`
//! constraints for `p` workers). Two solver *engines* share the same
//! standardization and column layout:
//!
//! * the **dense tableau** ([`solve`], [`solve_with`]) — two-phase primal
//!   simplex, the simple reference engine for small instances;
//! * the **revised simplex** ([`solve_revised`], [`solve_revised_with`]) —
//!   sparse LU basis factorization (Markowitz pivoting, Forrest–Tomlin
//!   updates; see [`BasisFactorization`]) with periodic refactorization,
//!   candidate-list (partial) pricing on wide instances, and
//!   **warm starts** from a caller-supplied [`Basis`]; the [`BasisCache`]
//!   amortizes families of related instances (the sweeps' access pattern).
//!   The sparse factors make it the fastest engine cold *and* warm at
//!   scenario sizes.
//!
//! Above the raw [`Problem`] builder sits the **schedule-model IR**
//! ([`ScheduleModel`]): named variable groups, tagged constraint
//! combinators (deadline/one-port/capacity/precedence), deterministic
//! lowering and structural cache keys — the shared vocabulary every
//! divisible-load LP variant in the workspace is built from. The
//! [`analyze`] pass statically checks a model's structural invariants
//! (row-kind signatures, duplicate/dominated rows, conditioning) *before*
//! lowering, turning builder bugs into named diagnostics instead of
//! garbage optima.
//!
//! Both are generic over the [`Scalar`] backend:
//!
//! * **`f64`** — the fast default, with *relative* tolerances (scaled by
//!   [`Problem::coefficient_scale`]) and a Dantzig-then-Bland pivot rule
//!   for anti-cycling;
//! * **[`Rational`]** — exact `i128` rationals, used by the test-suite to
//!   certify the floating-point answers on small instances.
//!
//! ## Example
//!
//! ```
//! use dls_lp::{Problem, Relation, solve};
//!
//! // maximize x + y  s.t.  2x + y <= 4,  x + 3y <= 6
//! let mut p = Problem::maximize();
//! let x = p.add_var("x", 1.0);
//! let y = p.add_var("y", 1.0);
//! p.add_constraint("c1", [(x, 2.0), (y, 1.0)], Relation::Le, 4.0);
//! p.add_constraint("c2", [(x, 1.0), (y, 3.0)], Relation::Le, 6.0);
//! let sol = solve(&p).unwrap();
//! assert!((sol.objective - 2.8).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyze;
mod error;
mod model;
mod problem;
mod rational;
mod revised;
mod scalar;
mod simplex;
mod sparse_lu;

pub use analyze::{analyze, AnalysisReport, Diagnostic, Severity, SPREAD_LIMIT};
pub use error::LpError;
pub use model::{MVar, RowKind, ScheduleModel, StandardShape, VarGroup};
pub use problem::{Constraint, Problem, Relation, Sense, VarId};
pub use rational::Rational;
pub use revised::{solve_revised, solve_revised_with, Basis, BasisCache, RevisedSolution};
pub use scalar::Scalar;
pub use simplex::{solve, solve_exact, solve_with, BasisFactorization, Solution, SolverOptions};
