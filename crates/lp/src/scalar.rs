//! Numeric abstraction used by the simplex engine.
//!
//! The solver is generic over [`Scalar`] so the same pivoting code runs on
//! fast `f64` arithmetic (with explicit tolerances) and on exact [`crate::Rational`]
//! arithmetic (tolerance zero). The exact backend is used in tests to
//! cross-validate the floating-point path on small instances.

use core::fmt::Debug;
use core::ops::{Add, Div, Mul, Neg, Sub};

/// A field-like numeric type usable inside the simplex tableau.
///
/// Implementations must form an ordered field on the values the solver
/// produces. `f64` satisfies this up to rounding; [`crate::Rational`] is exact
/// but may fail loudly on overflow.
pub trait Scalar:
    Clone
    + Debug
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
{
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Conversion from `f64` (may round for exact backends).
    fn from_f64(v: f64) -> Self;
    /// Conversion to `f64` (may round for exact backends).
    fn to_f64(&self) -> f64;
    /// Absolute value.
    fn abs(&self) -> Self;
    /// Comparison tolerance: magnitudes at or below this are treated as zero
    /// by the pivoting logic. Exact backends return zero.
    fn tolerance() -> Self;

    /// `true` when the value is indistinguishable from zero at the backend's
    /// tolerance.
    fn is_zero(&self) -> bool {
        self.abs() <= Self::tolerance()
    }

    /// `true` when strictly positive beyond tolerance.
    fn is_positive(&self) -> bool {
        *self > Self::tolerance()
    }

    /// `true` when strictly negative beyond tolerance.
    fn is_negative(&self) -> bool {
        *self < -Self::tolerance()
    }
}

impl Scalar for f64 {
    fn zero() -> Self {
        0.0
    }

    fn one() -> Self {
        1.0
    }

    fn from_f64(v: f64) -> Self {
        v
    }

    fn to_f64(&self) -> f64 {
        *self
    }

    fn abs(&self) -> Self {
        f64::abs(*self)
    }

    fn tolerance() -> Self {
        // Chosen for tableaux whose raw coefficients are O(1)..O(1e3), as is
        // the case for the divisible-load LPs built by `dls-core`. Pivot
        // magnitudes below this are numerically meaningless.
        1e-9
    }
}

#[cfg(test)]
// Unit tests assert exact outcomes of exact arithmetic.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn f64_zero_one_identities() {
        assert_eq!(<f64 as Scalar>::zero(), 0.0);
        assert_eq!(<f64 as Scalar>::one(), 1.0);
        assert_eq!(<f64 as Scalar>::one() + <f64 as Scalar>::zero(), 1.0);
    }

    #[test]
    fn f64_sign_predicates_respect_tolerance() {
        assert!(Scalar::is_zero(&0.0_f64));
        assert!(Scalar::is_zero(&1e-12_f64));
        assert!(Scalar::is_zero(&-1e-12_f64));
        assert!(Scalar::is_positive(&1e-3_f64));
        assert!(!Scalar::is_positive(&1e-12_f64));
        assert!(Scalar::is_negative(&-1e-3_f64));
        assert!(!Scalar::is_negative(&-1e-12_f64));
    }

    #[test]
    fn f64_roundtrip() {
        let v = 0.372_f64;
        assert_eq!(<f64 as Scalar>::from_f64(v).to_f64(), v);
    }

    #[test]
    fn f64_abs() {
        assert_eq!(Scalar::abs(&-2.5_f64), 2.5);
        assert_eq!(Scalar::abs(&2.5_f64), 2.5);
    }
}
