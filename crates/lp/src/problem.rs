//! Linear program description and builder API.
//!
//! A [`Problem`] is a linear objective over non-negative variables together
//! with a list of linear constraints (`<=`, `>=`, `==`). Non-negativity of
//! every variable is built in: the divisible-load formulations of RR-5738
//! only ever need `x >= 0` bounds, and fixing the convention keeps the
//! simplex construction simple and well tested.

use crate::error::LpError;

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Maximize the objective.
    Maximize,
    /// Minimize the objective.
    Minimize,
}

/// Constraint relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `lhs <= rhs`
    Le,
    /// `lhs >= rhs`
    Ge,
    /// `lhs == rhs`
    Eq,
}

/// Opaque handle to a declared variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Index of the variable in solution vectors.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// A single linear constraint in sparse form.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// `(variable index, coefficient)` pairs; indices need not be sorted but
    /// duplicates are summed during standardization.
    pub coeffs: Vec<(usize, f64)>,
    /// Relation between lhs and rhs.
    pub relation: Relation,
    /// Right-hand side.
    pub rhs: f64,
    /// Diagnostic label (also used in error messages).
    pub label: String,
}

/// A linear program over non-negative variables.
#[derive(Debug, Clone)]
pub struct Problem {
    sense: Sense,
    names: Vec<String>,
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
}

impl Problem {
    /// Creates an empty problem with the given optimization direction.
    pub fn new(sense: Sense) -> Self {
        Problem {
            sense,
            names: Vec::new(),
            objective: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Convenience constructor for maximization problems.
    pub fn maximize() -> Self {
        Self::new(Sense::Maximize)
    }

    /// Convenience constructor for minimization problems.
    pub fn minimize() -> Self {
        Self::new(Sense::Minimize)
    }

    /// Declares a non-negative variable with objective coefficient
    /// `obj_coeff` and returns its handle.
    pub fn add_var(&mut self, name: impl Into<String>, obj_coeff: f64) -> VarId {
        self.names.push(name.into());
        self.objective.push(obj_coeff);
        VarId(self.names.len() - 1)
    }

    /// Adds the constraint `sum coeffs . vars  relation  rhs`.
    pub fn add_constraint(
        &mut self,
        label: impl Into<String>,
        coeffs: impl IntoIterator<Item = (VarId, f64)>,
        relation: Relation,
        rhs: f64,
    ) {
        self.constraints.push(Constraint {
            coeffs: coeffs.into_iter().map(|(v, c)| (v.0, c)).collect(),
            relation,
            rhs,
            label: label.into(),
        });
    }

    /// Optimization direction.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Number of declared variables.
    pub fn num_vars(&self) -> usize {
        self.names.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Name of variable `v`.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.names[v.0]
    }

    /// Objective coefficients (one per variable, in declaration order).
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// Declared constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Validates indices and finiteness of all coefficients.
    ///
    /// Called automatically by the solver; exposed for early error surfacing
    /// in model-building code.
    pub fn validate(&self) -> Result<(), LpError> {
        if self.names.is_empty() {
            return Err(LpError::Empty);
        }
        for (i, &c) in self.objective.iter().enumerate() {
            if !c.is_finite() {
                return Err(LpError::NonFiniteCoefficient {
                    location: format!("objective coefficient of {}", self.names[i]),
                });
            }
        }
        for con in &self.constraints {
            if !con.rhs.is_finite() {
                return Err(LpError::NonFiniteCoefficient {
                    location: format!("rhs of constraint '{}'", con.label),
                });
            }
            for &(idx, c) in &con.coeffs {
                if idx >= self.names.len() {
                    return Err(LpError::UnknownVariable {
                        index: idx,
                        declared: self.names.len(),
                    });
                }
                if !c.is_finite() {
                    return Err(LpError::NonFiniteCoefficient {
                        location: format!(
                            "coefficient of {} in constraint '{}'",
                            self.names[idx], con.label
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// Returns each constraint's lhs as a dense row (duplicate entries
    /// summed), paired with its relation and rhs. Used by the standardizer.
    pub(crate) fn dense_rows(&self) -> Vec<(Vec<f64>, Relation, f64)> {
        self.constraints
            .iter()
            .map(|con| {
                let mut row = vec![0.0; self.names.len()];
                for &(idx, c) in &con.coeffs {
                    row[idx] += c;
                }
                (row, con.relation, con.rhs)
            })
            .collect()
    }

    /// Largest coefficient magnitude across the objective, constraint
    /// matrix and right-hand sides, floored at 1.
    ///
    /// The solvers scale their comparison tolerances by this value so that
    /// optimality and feasibility tests are *relative*: an instance with
    /// costs in the `1e6` range is not judged against the same absolute
    /// epsilon as one with costs in the units range (which could declare
    /// optimality one pivot early or report spurious infeasibility).
    pub fn coefficient_scale(&self) -> f64 {
        let mut scale = 1.0f64;
        for &c in &self.objective {
            scale = scale.max(c.abs());
        }
        for con in &self.constraints {
            scale = scale.max(con.rhs.abs());
            for &(_, c) in &con.coeffs {
                scale = scale.max(c.abs());
            }
        }
        scale
    }

    /// Evaluates the objective at a point (panics if dimensions mismatch).
    pub fn eval_objective(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.objective.len(), "dimension mismatch");
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// The sanitized, collision-free LP-format identifier of every
    /// variable, in declaration order. Sanitization maps every
    /// non-alphanumeric character to `_`; when two distinct declared names
    /// collide after sanitization (a round-trip gap in the original
    /// exporter: both `x P2` and `x_P2` rendered as `x_P2`), later
    /// occurrences get a `__<index>` suffix — re-suffixed until genuinely
    /// unique, since a declared name may itself end in `__<index>` — so
    /// the written file always keeps the variables distinct.
    fn lp_format_names(&self) -> Vec<String> {
        let sanitize = |s: &str| -> String {
            s.chars()
                .map(|c| {
                    if c.is_alphanumeric() || c == '_' {
                        c
                    } else {
                        '_'
                    }
                })
                .collect()
        };
        let mut seen = std::collections::HashSet::new();
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let base = sanitize(n);
                let mut name = base.clone();
                let mut k = i;
                while !seen.insert(name.clone()) {
                    name = format!("{base}__{k}");
                    k += self.names.len(); // strides past any declared __<index> tail
                }
                name
            })
            .collect()
    }

    /// Serializes the problem in the standard **LP file format** (as read
    /// by CPLEX, Gurobi, HiGHS, glpsol, `lp_solve` — the solver the paper
    /// used). Handy for certifying this crate's answers against an
    /// external solver, and for dumping IR-built models as readable text;
    /// [`Problem::from_lp_format`] parses the emitted subset back, and the
    /// snapshot tests pin the exact bytes for the scenario models.
    ///
    /// Round-trip guarantees: sanitized variable names are kept distinct
    /// (colliding names get a `__<index>` suffix), an all-zero objective
    /// or constraint expression is written as `0 <first-var>` instead of
    /// an empty (unparseable) expression, and equality rows use the
    /// format's `=`. Variables that appear in neither the objective nor
    /// any constraint are the one lossy case (the format has nowhere to
    /// mention them).
    pub fn to_lp_format(&self) -> String {
        use std::fmt::Write as _;
        let names = self.lp_format_names();
        let sanitize = |s: &str| -> String {
            s.chars()
                .map(|c| {
                    if c.is_alphanumeric() || c == '_' {
                        c
                    } else {
                        '_'
                    }
                })
                .collect()
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            match self.sense {
                Sense::Maximize => "Maximize",
                Sense::Minimize => "Minimize",
            }
        );
        let _ = write!(out, " obj:");
        let mut wrote_obj = false;
        for (i, &c) in self.objective.iter().enumerate() {
            if c.abs() > 0.0 {
                let _ = write!(out, " {:+} {}", c, names[i]);
                wrote_obj = true;
            }
        }
        if !wrote_obj {
            // A constant-zero objective still needs a parseable expression.
            let _ = write!(out, " +0 {}", names[0]);
        }
        let _ = writeln!(out, "\nSubject To");
        for (k, con) in self.constraints.iter().enumerate() {
            let label = if con.label.is_empty() {
                format!("c{k}")
            } else {
                sanitize(&con.label)
            };
            let _ = write!(out, " {label}:");
            let mut dense = vec![0.0; self.names.len()];
            for &(idx, c) in &con.coeffs {
                dense[idx] += c;
            }
            let mut wrote_term = false;
            for (i, &c) in dense.iter().enumerate() {
                if c.abs() > 0.0 {
                    let _ = write!(out, " {:+} {}", c, names[i]);
                    wrote_term = true;
                }
            }
            if !wrote_term {
                let _ = write!(out, " +0 {}", names[0]);
            }
            let rel = match con.relation {
                Relation::Le => "<=",
                Relation::Ge => ">=",
                Relation::Eq => "=",
            };
            let _ = writeln!(out, " {rel} {}", con.rhs);
        }
        // All variables are non-negative by this crate's convention, which
        // is the LP-format default — no Bounds section needed.
        let _ = writeln!(out, "End");
        out
    }

    /// Parses the LP file format back into a [`Problem`] — the inverse of
    /// [`Problem::to_lp_format`] on the subset this crate emits, plus two
    /// forms external files use that the exporter cannot produce:
    /// **ranged rows** (`lo <= expr <= hi`, split into a `>= lo` and a
    /// `<= hi` row labeled `<label>_lo`/`<label>_hi`) and bare
    /// coefficient-less terms (`x + y <= 1`).
    ///
    /// Variables are declared in order of first appearance (objective
    /// first, then rows). For the canonical scenario models (alphas in the
    /// objective, each idle introduced by its own deadline row) this
    /// coincides with the original declaration order; models whose
    /// zero-objective variables first appear out of declaration order in
    /// the rows (e.g. the interleaved start variables) parse into a
    /// *different* [`VarId`] numbering — the round trip is
    /// self-consistent, but original variable handles must not be reused
    /// against the reparsed problem. `\`-comments are stripped;
    /// `Bounds`/`General`/`Binary` sections are rejected (this crate's
    /// problems are continuous and non-negative by construction).
    pub fn from_lp_format(text: &str) -> Result<Problem, LpError> {
        parse::parse(text)
    }

    /// Checks primal feasibility of `x` within tolerance `tol`.
    ///
    /// Returns the first violated constraint label, or `None` if feasible.
    pub fn check_feasible(&self, x: &[f64], tol: f64) -> Option<String> {
        if x.iter().any(|&v| v < -tol) {
            return Some("non-negativity".to_string());
        }
        for (k, (row, rel, rhs)) in self.dense_rows().into_iter().enumerate() {
            let lhs: f64 = row.iter().zip(x).map(|(c, v)| c * v).sum();
            let ok = match rel {
                Relation::Le => lhs <= rhs + tol,
                Relation::Ge => lhs >= rhs - tol,
                Relation::Eq => (lhs - rhs).abs() <= tol,
            };
            if !ok {
                // dense_rows() is index-aligned with `constraints`.
                return Some(self.constraints[k].label.clone());
            }
        }
        None
    }
}

/// LP-format parsing (see [`Problem::from_lp_format`]).
mod parse {
    use super::{Problem, Relation, Sense};
    use crate::error::LpError;
    use std::collections::HashMap;

    #[derive(Debug, Clone, PartialEq)]
    enum Token {
        Word(String),
        Num(f64),
        Colon,
        Plus,
        Minus,
        Le,
        Ge,
        Eq,
    }

    fn err(msg: impl Into<String>) -> LpError {
        LpError::ParseError(msg.into())
    }

    fn tokenize(text: &str) -> Result<Vec<Token>, LpError> {
        let mut tokens = Vec::new();
        for line in text.lines() {
            // `\` starts a comment in the LP format.
            let line = line.split('\\').next().unwrap_or("");
            let bytes: Vec<char> = line.chars().collect();
            let mut i = 0;
            while i < bytes.len() {
                let c = bytes[i];
                if c.is_whitespace() {
                    i += 1;
                } else if c == ':' {
                    tokens.push(Token::Colon);
                    i += 1;
                } else if c == '+' {
                    tokens.push(Token::Plus);
                    i += 1;
                } else if c == '-' {
                    tokens.push(Token::Minus);
                    i += 1;
                } else if c == '<' || c == '>' || c == '=' {
                    // Accept <=, >=, =, =<, =>, and the bare <, > forms.
                    let mut rel = String::from(c);
                    if i + 1 < bytes.len() && matches!(bytes[i + 1], '<' | '>' | '=') {
                        rel.push(bytes[i + 1]);
                        i += 1;
                    }
                    i += 1;
                    tokens.push(match rel.as_str() {
                        "<" | "<=" | "=<" => Token::Le,
                        ">" | ">=" | "=>" => Token::Ge,
                        "=" | "==" => Token::Eq,
                        other => return Err(err(format!("unrecognized relation '{other}'"))),
                    });
                } else if c.is_ascii_digit() || c == '.' {
                    let start = i;
                    while i < bytes.len()
                        && (bytes[i].is_ascii_digit()
                            || bytes[i] == '.'
                            || bytes[i] == 'e'
                            || bytes[i] == 'E'
                            || (matches!(bytes[i], '+' | '-')
                                && i > start
                                && matches!(bytes[i - 1], 'e' | 'E')))
                    {
                        i += 1;
                    }
                    let lit: String = bytes[start..i].iter().collect();
                    // An exponent-free token of digits followed by a name
                    // character would be a malformed name ("9x"): let the
                    // number parse fail loudly rather than mis-splitting.
                    let value = lit
                        .parse::<f64>()
                        .map_err(|_| err(format!("bad numeric literal '{lit}'")))?;
                    tokens.push(Token::Num(value));
                } else if c.is_alphanumeric() || c == '_' {
                    let start = i;
                    while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                        i += 1;
                    }
                    tokens.push(Token::Word(bytes[start..i].iter().collect()));
                } else {
                    return Err(err(format!("unexpected character '{c}'")));
                }
            }
        }
        Ok(tokens)
    }

    /// Linear expression: `(terms, next position)`; stops at the first
    /// relation token or section keyword.
    fn parse_terms(
        tokens: &[Token],
        mut i: usize,
        vars: &mut Vec<String>,
        index: &mut HashMap<String, usize>,
    ) -> Result<(Vec<(usize, f64)>, usize), LpError> {
        let mut terms = Vec::new();
        let mut sign = 1.0;
        let mut coeff: Option<f64> = None;
        loop {
            match tokens.get(i) {
                Some(Token::Plus) => {
                    if coeff.is_some() {
                        return Err(err("dangling coefficient before '+'"));
                    }
                    i += 1;
                }
                Some(Token::Minus) => {
                    if coeff.is_some() {
                        return Err(err("dangling coefficient before '-'"));
                    }
                    sign = -sign;
                    i += 1;
                }
                Some(Token::Num(v)) => {
                    if coeff.is_some() {
                        return Err(err("two consecutive numeric literals"));
                    }
                    coeff = Some(*v);
                    i += 1;
                }
                Some(Token::Word(w)) if !is_keyword(w) => {
                    let idx = *index.entry(w.clone()).or_insert_with(|| {
                        vars.push(w.clone());
                        vars.len() - 1
                    });
                    terms.push((idx, sign * coeff.unwrap_or(1.0)));
                    sign = 1.0;
                    coeff = None;
                    i += 1;
                }
                _ => break,
            }
        }
        if coeff.is_some() {
            // A trailing number belongs to the caller (a right-hand side);
            // rewind so it can read it.
            i -= 1;
        }
        Ok((terms, i))
    }

    fn is_keyword(word: &str) -> bool {
        matches!(
            word.to_ascii_lowercase().as_str(),
            "subject" | "st" | "end" | "bounds" | "general" | "generals" | "binary" | "binaries"
        )
    }

    fn read_rhs(tokens: &[Token], mut i: usize) -> Result<(f64, usize), LpError> {
        let mut sign = 1.0;
        loop {
            match tokens.get(i) {
                Some(Token::Plus) => i += 1,
                Some(Token::Minus) => {
                    sign = -sign;
                    i += 1;
                }
                Some(Token::Num(v)) => return Ok((sign * v, i + 1)),
                other => return Err(err(format!("expected a right-hand side, got {other:?}"))),
            }
        }
    }

    pub(super) fn parse(text: &str) -> Result<Problem, LpError> {
        let tokens = tokenize(text)?;
        let mut i = 0;

        // Sense.
        let sense = match tokens.get(i) {
            Some(Token::Word(w)) => match w.to_ascii_lowercase().as_str() {
                "maximize" | "maximise" | "max" => Sense::Maximize,
                "minimize" | "minimise" | "min" => Sense::Minimize,
                other => return Err(err(format!("expected Maximize/Minimize, got '{other}'"))),
            },
            other => return Err(err(format!("expected Maximize/Minimize, got {other:?}"))),
        };
        i += 1;

        // Objective: optional `label:` then terms.
        let mut vars: Vec<String> = Vec::new();
        let mut index: HashMap<String, usize> = HashMap::new();
        if let (Some(Token::Word(_)), Some(Token::Colon)) = (tokens.get(i), tokens.get(i + 1)) {
            i += 2;
        }
        let (obj_terms, next) = parse_terms(&tokens, i, &mut vars, &mut index)?;
        i = next;

        // "Subject To" / "ST".
        match tokens.get(i) {
            Some(Token::Word(w)) if w.eq_ignore_ascii_case("subject") => {
                i += 1;
                match tokens.get(i) {
                    Some(Token::Word(t)) if t.eq_ignore_ascii_case("to") => i += 1,
                    other => {
                        return Err(err(format!("expected 'To' after 'Subject', got {other:?}")))
                    }
                }
            }
            Some(Token::Word(w)) if w.eq_ignore_ascii_case("st") => i += 1,
            other => return Err(err(format!("expected 'Subject To', got {other:?}"))),
        }

        // Rows until End.
        struct Row {
            label: String,
            terms: Vec<(usize, f64)>,
            relation: Relation,
            rhs: f64,
        }
        let mut rows: Vec<Row> = Vec::new();
        loop {
            match tokens.get(i) {
                None => return Err(err("missing 'End'")),
                Some(Token::Word(w)) if w.eq_ignore_ascii_case("end") => break,
                Some(Token::Word(w))
                    if matches!(
                        w.to_ascii_lowercase().as_str(),
                        "bounds" | "general" | "generals" | "binary" | "binaries"
                    ) =>
                {
                    return Err(err(format!(
                        "unsupported section '{w}': this crate's problems are continuous \
                         and non-negative by construction"
                    )));
                }
                _ => {}
            }
            // Optional label.
            let label = match (tokens.get(i), tokens.get(i + 1)) {
                (Some(Token::Word(w)), Some(Token::Colon)) => {
                    i += 2;
                    w.clone()
                }
                _ => format!("c{}", rows.len()),
            };
            // Ranged-low form: `lo <= expr <= hi`.
            let mut low: Option<(f64, Relation)> = None;
            if let Ok((lo, after_num)) = read_rhs(&tokens, i) {
                if let Some(rel @ (Token::Le | Token::Ge)) = tokens.get(after_num) {
                    let relation = if *rel == Token::Le {
                        Relation::Ge // lo <= expr  ⇒  expr >= lo
                    } else {
                        Relation::Le
                    };
                    low = Some((lo, relation));
                    i = after_num + 1;
                }
            }
            let (terms, next) = parse_terms(&tokens, i, &mut vars, &mut index)?;
            if terms.is_empty() {
                return Err(err(format!("row '{label}' has no terms")));
            }
            i = next;
            if let Some((lo, relation)) = low {
                rows.push(Row {
                    label: format!("{label}_lo"),
                    terms: terms.clone(),
                    relation,
                    rhs: lo,
                });
            }
            let relation = match tokens.get(i) {
                Some(Token::Le) => Relation::Le,
                Some(Token::Ge) => Relation::Ge,
                Some(Token::Eq) => Relation::Eq,
                other if low.is_some() => {
                    // `lo <= expr` with no upper side: the low row covers it.
                    let _ = other;
                    continue;
                }
                other => {
                    return Err(err(format!(
                        "row '{label}': expected a relation, got {other:?}"
                    )))
                }
            };
            i += 1;
            let (rhs, next) = read_rhs(&tokens, i)?;
            i = next;
            rows.push(Row {
                label: if low.is_some() {
                    format!("{label}_hi")
                } else {
                    label
                },
                terms,
                relation,
                rhs,
            });
        }

        if vars.is_empty() {
            return Err(LpError::Empty);
        }
        let mut p = Problem::new(sense);
        let mut objective = vec![0.0; vars.len()];
        for (idx, c) in obj_terms {
            objective[idx] += c;
        }
        let ids: Vec<VarIdAlias> = vars
            .iter()
            .zip(&objective)
            .map(|(name, &obj)| p.add_var(name.clone(), obj))
            .collect();
        for row in rows {
            p.add_constraint(
                row.label,
                row.terms.iter().map(|&(idx, c)| (ids[idx], c)),
                row.relation,
                row.rhs,
            );
        }
        p.validate()?;
        Ok(p)
    }

    type VarIdAlias = super::VarId;
}

#[cfg(test)]
// Unit tests assert exact outcomes of exact arithmetic.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_vars_and_constraints() {
        let mut p = Problem::maximize();
        let x = p.add_var("x", 1.0);
        let y = p.add_var("y", 2.0);
        p.add_constraint("cap", [(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
        assert_eq!(p.num_vars(), 2);
        assert_eq!(p.num_constraints(), 1);
        assert_eq!(p.var_name(x), "x");
        assert_eq!(p.var_name(y), "y");
        assert_eq!(p.sense(), Sense::Maximize);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validate_rejects_empty() {
        let p = Problem::maximize();
        assert_eq!(p.validate(), Err(LpError::Empty));
    }

    #[test]
    fn validate_rejects_unknown_variable() {
        let mut p = Problem::maximize();
        let _x = p.add_var("x", 1.0);
        p.constraints.push(Constraint {
            coeffs: vec![(5, 1.0)],
            relation: Relation::Le,
            rhs: 1.0,
            label: "bad".into(),
        });
        assert!(matches!(
            p.validate(),
            Err(LpError::UnknownVariable { index: 5, .. })
        ));
    }

    #[test]
    fn validate_rejects_nan() {
        let mut p = Problem::maximize();
        let x = p.add_var("x", f64::NAN);
        p.add_constraint("c", [(x, 1.0)], Relation::Le, 1.0);
        assert!(matches!(
            p.validate(),
            Err(LpError::NonFiniteCoefficient { .. })
        ));
    }

    #[test]
    fn dense_rows_sum_duplicates() {
        let mut p = Problem::maximize();
        let x = p.add_var("x", 1.0);
        p.add_constraint("dup", [(x, 1.0), (x, 2.0)], Relation::Le, 3.0);
        let rows = p.dense_rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, vec![3.0]);
    }

    #[test]
    fn lp_format_export() {
        let mut p = Problem::maximize();
        let x = p.add_var("alpha_P1", 1.0);
        let y = p.add_var("x P2", 0.0); // space gets sanitized
        p.add_constraint("deadline 1", [(x, 2.0), (y, 1.0)], Relation::Le, 1.0);
        p.add_constraint("balance", [(x, 1.0), (y, -1.0)], Relation::Eq, 0.0);
        p.add_constraint("floor", [(y, 1.0)], Relation::Ge, 0.25);
        let lp = p.to_lp_format();
        assert!(lp.starts_with("Maximize"));
        assert!(lp.contains("obj: +1 alpha_P1"));
        assert!(lp.contains("deadline_1: +2 alpha_P1 +1 x_P2 <= 1"));
        assert!(lp.contains("balance: +1 alpha_P1 -1 x_P2 = 0"));
        assert!(lp.contains("floor: +1 x_P2 >= 0.25"));
        assert!(lp.trim_end().ends_with("End"));
    }

    #[test]
    fn lp_format_keeps_colliding_sanitized_names_distinct() {
        // "x P2" and "x_P2" both sanitize to x_P2: the round-trip gap the
        // exporter used to have. The writer must keep them apart.
        let mut p = Problem::maximize();
        let a = p.add_var("x_P2", 1.0);
        let b = p.add_var("x P2", 2.0);
        p.add_constraint("cap", [(a, 1.0), (b, 1.0)], Relation::Le, 1.0);
        let lp = p.to_lp_format();
        assert!(lp.contains("+1 x_P2"), "{lp}");
        assert!(lp.contains("+2 x_P2__1"), "{lp}");
        let back = Problem::from_lp_format(&lp).unwrap();
        assert_eq!(back.num_vars(), 2);

        // Adversarial case: a declared name that already looks like a
        // dedup suffix must not be collided into by the dedup of a later
        // variable (the single-pass suffixing bug).
        let mut q = Problem::maximize();
        let a = q.add_var("x_P2__2", 1.0);
        let b = q.add_var("x P2", 2.0);
        let c = q.add_var("x_P2", 4.0);
        q.add_constraint("cap", [(a, 1.0), (b, 1.0), (c, 1.0)], Relation::Le, 1.0);
        let text = q.to_lp_format();
        let back = Problem::from_lp_format(&text).unwrap();
        assert_eq!(back.num_vars(), 3, "names collapsed in:\n{text}");
        assert_eq!(back.objective().iter().sum::<f64>(), 7.0);
    }

    #[test]
    fn lp_format_writes_parseable_zero_expressions() {
        // All-zero objective and an all-zero row: both must still emit a
        // parseable expression instead of an empty one.
        let mut p = Problem::minimize();
        let x = p.add_var("x", 0.0);
        p.add_constraint("zero", [(x, 0.0)], Relation::Le, 5.0);
        p.add_constraint("real", [(x, 2.0)], Relation::Ge, 1.0);
        let lp = p.to_lp_format();
        assert!(lp.contains("obj: +0 x"), "{lp}");
        assert!(lp.contains("zero: +0 x <= 5"), "{lp}");
        let back = Problem::from_lp_format(&lp).unwrap();
        assert_eq!(back.num_constraints(), 2);
        assert_eq!(back.sense(), Sense::Minimize);
    }

    #[test]
    fn lp_format_round_trips_mixed_relations() {
        let mut p = Problem::maximize();
        let x = p.add_var("x", 3.0);
        let y = p.add_var("y", -0.25);
        p.add_constraint("le", [(x, 2.0), (y, 1.0)], Relation::Le, 4.0);
        p.add_constraint("ge", [(x, 1.0)], Relation::Ge, 0.5);
        p.add_constraint("eq", [(x, 1.0), (y, -1.0)], Relation::Eq, 0.0);
        p.add_constraint("neg", [(y, 1.0)], Relation::Le, -2.0);
        let text = p.to_lp_format();
        let back = Problem::from_lp_format(&text).unwrap();
        // Identical structure: re-serializing gives the same bytes.
        assert_eq!(back.to_lp_format(), text);
        assert_eq!(back.sense(), p.sense());
        assert_eq!(back.num_vars(), p.num_vars());
        assert_eq!(back.objective(), p.objective());
        for (a, b) in back.dense_rows().iter().zip(p.dense_rows()) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1, b.1);
            assert_eq!(a.2, b.2);
        }
        // Equality rows survive the trip (the historical gap).
        assert_eq!(back.constraints()[2].relation, Relation::Eq);
        assert_eq!(back.constraints()[2].label, "eq");
    }

    #[test]
    fn lp_format_parses_ranged_rows_from_external_files() {
        // `lo <= expr <= hi` (CPLEX ranged rows — not producible by the
        // writer) split into two rows.
        let text = "Minimize\n obj: x + 2 y\nSubject To\n band: 1 <= x + y <= 3\n\
                    floor: 0.5 <= x\nEnd\n";
        let p = Problem::from_lp_format(text).unwrap();
        assert_eq!(p.num_constraints(), 3);
        assert_eq!(p.constraints()[0].label, "band_lo");
        assert_eq!(p.constraints()[0].relation, Relation::Ge);
        assert_eq!(p.constraints()[0].rhs, 1.0);
        assert_eq!(p.constraints()[1].label, "band_hi");
        assert_eq!(p.constraints()[1].relation, Relation::Le);
        assert_eq!(p.constraints()[1].rhs, 3.0);
        assert_eq!(p.constraints()[2].label, "floor_lo");
        assert_eq!(p.constraints()[2].relation, Relation::Ge);
        // Coefficient-less terms default to 1; solve it for good measure:
        // min x + 2y with x + y >= 1, x >= 0.5 puts everything on x.
        let sol = crate::simplex::solve(&p).unwrap();
        assert!((sol.objective - 1.0).abs() < 1e-9, "{}", sol.objective);
    }

    #[test]
    fn lp_format_parser_rejects_garbage_and_unsupported_sections() {
        assert!(matches!(
            Problem::from_lp_format("Maximize obj: x Subject To Bounds End"),
            Err(LpError::ParseError(_))
        ));
        assert!(matches!(
            Problem::from_lp_format("Dance obj: x End"),
            Err(LpError::ParseError(_))
        ));
        assert!(matches!(
            Problem::from_lp_format("Maximize obj: x Subject To r: x ? 1 End"),
            Err(LpError::ParseError(_))
        ));
        assert!(matches!(
            Problem::from_lp_format("Maximize obj: x Subject To r: x <= 1"),
            Err(LpError::ParseError(_)) // missing End
        ));
    }

    #[test]
    fn lp_format_comments_are_stripped() {
        let text = "\\ a header comment\nMaximize\n obj: +1 x \\ trailing\nSubject To\n\
                    c: +1 x <= 2\nEnd\n";
        let p = Problem::from_lp_format(text).unwrap();
        let sol = crate::simplex::solve(&p).unwrap();
        assert!((sol.objective - 2.0).abs() < 1e-9);
    }

    #[test]
    fn coefficient_scale_tracks_largest_magnitude() {
        let mut p = Problem::maximize();
        let x = p.add_var("x", -3.0);
        p.add_constraint("c", [(x, 2.0e6)], Relation::Le, 7.0);
        assert_eq!(p.coefficient_scale(), 2.0e6);
        // Floored at 1 for small instances.
        let mut q = Problem::maximize();
        let y = q.add_var("y", 0.25);
        q.add_constraint("c", [(y, 0.5)], Relation::Le, 0.125);
        assert_eq!(q.coefficient_scale(), 1.0);
    }

    #[test]
    fn eval_and_feasibility() {
        let mut p = Problem::maximize();
        let x = p.add_var("x", 3.0);
        let y = p.add_var("y", 1.0);
        p.add_constraint("sum", [(x, 1.0), (y, 1.0)], Relation::Le, 2.0);
        assert_eq!(p.eval_objective(&[1.0, 1.0]), 4.0);
        assert_eq!(p.check_feasible(&[1.0, 1.0], 1e-9), None);
        assert!(p.check_feasible(&[3.0, 0.0], 1e-9).is_some());
        assert_eq!(
            p.check_feasible(&[-1.0, 0.0], 1e-9).as_deref(),
            Some("non-negativity")
        );
    }
}
