//! Linear program description and builder API.
//!
//! A [`Problem`] is a linear objective over non-negative variables together
//! with a list of linear constraints (`<=`, `>=`, `==`). Non-negativity of
//! every variable is built in: the divisible-load formulations of RR-5738
//! only ever need `x >= 0` bounds, and fixing the convention keeps the
//! simplex construction simple and well tested.

use crate::error::LpError;

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Maximize the objective.
    Maximize,
    /// Minimize the objective.
    Minimize,
}

/// Constraint relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `lhs <= rhs`
    Le,
    /// `lhs >= rhs`
    Ge,
    /// `lhs == rhs`
    Eq,
}

/// Opaque handle to a declared variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Index of the variable in solution vectors.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// A single linear constraint in sparse form.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// `(variable index, coefficient)` pairs; indices need not be sorted but
    /// duplicates are summed during standardization.
    pub coeffs: Vec<(usize, f64)>,
    /// Relation between lhs and rhs.
    pub relation: Relation,
    /// Right-hand side.
    pub rhs: f64,
    /// Diagnostic label (also used in error messages).
    pub label: String,
}

/// A linear program over non-negative variables.
#[derive(Debug, Clone)]
pub struct Problem {
    sense: Sense,
    names: Vec<String>,
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
}

impl Problem {
    /// Creates an empty problem with the given optimization direction.
    pub fn new(sense: Sense) -> Self {
        Problem {
            sense,
            names: Vec::new(),
            objective: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Convenience constructor for maximization problems.
    pub fn maximize() -> Self {
        Self::new(Sense::Maximize)
    }

    /// Convenience constructor for minimization problems.
    pub fn minimize() -> Self {
        Self::new(Sense::Minimize)
    }

    /// Declares a non-negative variable with objective coefficient
    /// `obj_coeff` and returns its handle.
    pub fn add_var(&mut self, name: impl Into<String>, obj_coeff: f64) -> VarId {
        self.names.push(name.into());
        self.objective.push(obj_coeff);
        VarId(self.names.len() - 1)
    }

    /// Adds the constraint `sum coeffs . vars  relation  rhs`.
    pub fn add_constraint(
        &mut self,
        label: impl Into<String>,
        coeffs: impl IntoIterator<Item = (VarId, f64)>,
        relation: Relation,
        rhs: f64,
    ) {
        self.constraints.push(Constraint {
            coeffs: coeffs.into_iter().map(|(v, c)| (v.0, c)).collect(),
            relation,
            rhs,
            label: label.into(),
        });
    }

    /// Optimization direction.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Number of declared variables.
    pub fn num_vars(&self) -> usize {
        self.names.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Name of variable `v`.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.names[v.0]
    }

    /// Objective coefficients (one per variable, in declaration order).
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// Declared constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Validates indices and finiteness of all coefficients.
    ///
    /// Called automatically by the solver; exposed for early error surfacing
    /// in model-building code.
    pub fn validate(&self) -> Result<(), LpError> {
        if self.names.is_empty() {
            return Err(LpError::Empty);
        }
        for (i, &c) in self.objective.iter().enumerate() {
            if !c.is_finite() {
                return Err(LpError::NonFiniteCoefficient {
                    location: format!("objective coefficient of {}", self.names[i]),
                });
            }
        }
        for con in &self.constraints {
            if !con.rhs.is_finite() {
                return Err(LpError::NonFiniteCoefficient {
                    location: format!("rhs of constraint '{}'", con.label),
                });
            }
            for &(idx, c) in &con.coeffs {
                if idx >= self.names.len() {
                    return Err(LpError::UnknownVariable {
                        index: idx,
                        declared: self.names.len(),
                    });
                }
                if !c.is_finite() {
                    return Err(LpError::NonFiniteCoefficient {
                        location: format!(
                            "coefficient of {} in constraint '{}'",
                            self.names[idx], con.label
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// Returns each constraint's lhs as a dense row (duplicate entries
    /// summed), paired with its relation and rhs. Used by the standardizer.
    pub(crate) fn dense_rows(&self) -> Vec<(Vec<f64>, Relation, f64)> {
        self.constraints
            .iter()
            .map(|con| {
                let mut row = vec![0.0; self.names.len()];
                for &(idx, c) in &con.coeffs {
                    row[idx] += c;
                }
                (row, con.relation, con.rhs)
            })
            .collect()
    }

    /// Largest coefficient magnitude across the objective, constraint
    /// matrix and right-hand sides, floored at 1.
    ///
    /// The solvers scale their comparison tolerances by this value so that
    /// optimality and feasibility tests are *relative*: an instance with
    /// costs in the `1e6` range is not judged against the same absolute
    /// epsilon as one with costs in the units range (which could declare
    /// optimality one pivot early or report spurious infeasibility).
    pub fn coefficient_scale(&self) -> f64 {
        let mut scale = 1.0f64;
        for &c in &self.objective {
            scale = scale.max(c.abs());
        }
        for con in &self.constraints {
            scale = scale.max(con.rhs.abs());
            for &(_, c) in &con.coeffs {
                scale = scale.max(c.abs());
            }
        }
        scale
    }

    /// Evaluates the objective at a point (panics if dimensions mismatch).
    pub fn eval_objective(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.objective.len(), "dimension mismatch");
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Serializes the problem in the standard **LP file format** (as read
    /// by CPLEX, Gurobi, HiGHS, glpsol, `lp_solve` — the solver the paper
    /// used). Handy for certifying this crate's answers against an
    /// external solver.
    pub fn to_lp_format(&self) -> String {
        use std::fmt::Write as _;
        let sanitize = |s: &str| -> String {
            s.chars()
                .map(|c| {
                    if c.is_alphanumeric() || c == '_' {
                        c
                    } else {
                        '_'
                    }
                })
                .collect()
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            match self.sense {
                Sense::Maximize => "Maximize",
                Sense::Minimize => "Minimize",
            }
        );
        let _ = write!(out, " obj:");
        for (i, &c) in self.objective.iter().enumerate() {
            if c != 0.0 {
                let _ = write!(out, " {:+} {}", c, sanitize(&self.names[i]));
            }
        }
        let _ = writeln!(out, "\nSubject To");
        for (k, con) in self.constraints.iter().enumerate() {
            let label = if con.label.is_empty() {
                format!("c{k}")
            } else {
                sanitize(&con.label)
            };
            let _ = write!(out, " {label}:");
            let mut dense = vec![0.0; self.names.len()];
            for &(idx, c) in &con.coeffs {
                dense[idx] += c;
            }
            for (i, &c) in dense.iter().enumerate() {
                if c != 0.0 {
                    let _ = write!(out, " {:+} {}", c, sanitize(&self.names[i]));
                }
            }
            let rel = match con.relation {
                Relation::Le => "<=",
                Relation::Ge => ">=",
                Relation::Eq => "=",
            };
            let _ = writeln!(out, " {rel} {}", con.rhs);
        }
        // All variables are non-negative by this crate's convention, which
        // is the LP-format default — no Bounds section needed.
        let _ = writeln!(out, "End");
        out
    }

    /// Checks primal feasibility of `x` within tolerance `tol`.
    ///
    /// Returns the first violated constraint label, or `None` if feasible.
    pub fn check_feasible(&self, x: &[f64], tol: f64) -> Option<String> {
        if x.iter().any(|&v| v < -tol) {
            return Some("non-negativity".to_string());
        }
        for (row, rel, rhs) in self.dense_rows() {
            let lhs: f64 = row.iter().zip(x).map(|(c, v)| c * v).sum();
            let ok = match rel {
                Relation::Le => lhs <= rhs + tol,
                Relation::Ge => lhs >= rhs - tol,
                Relation::Eq => (lhs - rhs).abs() <= tol,
            };
            if !ok {
                let label = self
                    .constraints
                    .iter()
                    .zip(self.dense_rows())
                    .find(|(_, (r, _, rh))| r == &row && *rh == rhs)
                    .map(|(c, _)| c.label.clone())
                    .unwrap_or_default();
                return Some(label);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_vars_and_constraints() {
        let mut p = Problem::maximize();
        let x = p.add_var("x", 1.0);
        let y = p.add_var("y", 2.0);
        p.add_constraint("cap", [(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
        assert_eq!(p.num_vars(), 2);
        assert_eq!(p.num_constraints(), 1);
        assert_eq!(p.var_name(x), "x");
        assert_eq!(p.var_name(y), "y");
        assert_eq!(p.sense(), Sense::Maximize);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validate_rejects_empty() {
        let p = Problem::maximize();
        assert_eq!(p.validate(), Err(LpError::Empty));
    }

    #[test]
    fn validate_rejects_unknown_variable() {
        let mut p = Problem::maximize();
        let _x = p.add_var("x", 1.0);
        p.constraints.push(Constraint {
            coeffs: vec![(5, 1.0)],
            relation: Relation::Le,
            rhs: 1.0,
            label: "bad".into(),
        });
        assert!(matches!(
            p.validate(),
            Err(LpError::UnknownVariable { index: 5, .. })
        ));
    }

    #[test]
    fn validate_rejects_nan() {
        let mut p = Problem::maximize();
        let x = p.add_var("x", f64::NAN);
        p.add_constraint("c", [(x, 1.0)], Relation::Le, 1.0);
        assert!(matches!(
            p.validate(),
            Err(LpError::NonFiniteCoefficient { .. })
        ));
    }

    #[test]
    fn dense_rows_sum_duplicates() {
        let mut p = Problem::maximize();
        let x = p.add_var("x", 1.0);
        p.add_constraint("dup", [(x, 1.0), (x, 2.0)], Relation::Le, 3.0);
        let rows = p.dense_rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, vec![3.0]);
    }

    #[test]
    fn lp_format_export() {
        let mut p = Problem::maximize();
        let x = p.add_var("alpha_P1", 1.0);
        let y = p.add_var("x P2", 0.0); // space gets sanitized
        p.add_constraint("deadline 1", [(x, 2.0), (y, 1.0)], Relation::Le, 1.0);
        p.add_constraint("balance", [(x, 1.0), (y, -1.0)], Relation::Eq, 0.0);
        p.add_constraint("floor", [(y, 1.0)], Relation::Ge, 0.25);
        let lp = p.to_lp_format();
        assert!(lp.starts_with("Maximize"));
        assert!(lp.contains("obj: +1 alpha_P1"));
        assert!(lp.contains("deadline_1: +2 alpha_P1 +1 x_P2 <= 1"));
        assert!(lp.contains("balance: +1 alpha_P1 -1 x_P2 = 0"));
        assert!(lp.contains("floor: +1 x_P2 >= 0.25"));
        assert!(lp.trim_end().ends_with("End"));
    }

    #[test]
    fn coefficient_scale_tracks_largest_magnitude() {
        let mut p = Problem::maximize();
        let x = p.add_var("x", -3.0);
        p.add_constraint("c", [(x, 2.0e6)], Relation::Le, 7.0);
        assert_eq!(p.coefficient_scale(), 2.0e6);
        // Floored at 1 for small instances.
        let mut q = Problem::maximize();
        let y = q.add_var("y", 0.25);
        q.add_constraint("c", [(y, 0.5)], Relation::Le, 0.125);
        assert_eq!(q.coefficient_scale(), 1.0);
    }

    #[test]
    fn eval_and_feasibility() {
        let mut p = Problem::maximize();
        let x = p.add_var("x", 3.0);
        let y = p.add_var("y", 1.0);
        p.add_constraint("sum", [(x, 1.0), (y, 1.0)], Relation::Le, 2.0);
        assert_eq!(p.eval_objective(&[1.0, 1.0]), 4.0);
        assert_eq!(p.check_feasible(&[1.0, 1.0], 1e-9), None);
        assert!(p.check_feasible(&[3.0, 0.0], 1e-9).is_some());
        assert_eq!(
            p.check_feasible(&[-1.0, 0.0], 1e-9).as_deref(),
            Some("non-negativity")
        );
    }
}
